#![warn(missing_docs)]

//! # cscw — CSCW middleware for Open Distributed Processing
//!
//! Umbrella crate for the reproduction of Blair & Rodden, *"The Challenges
//! of CSCW for Open Distributed Processing"* (1993). Re-exports every
//! subsystem crate in the workspace under one roof; see the individual
//! crates for details:
//!
//! - [`fabric`] — zero-copy payload bytes, binary span carriers, sorted-vec maps
//! - [`sim`] — deterministic discrete-event simulation substrate
//! - [`groupcomm`] — group membership, ordered multicast, group RPC
//! - [`concurrency`] — cooperation-aware concurrency control
//! - [`awareness`] — awareness mechanisms (focus/nimbus, Portholes)
//! - [`access`] — access control (matrix baselines, Shen–Dewan roles)
//! - [`streams`] — continuous-media streams with QoS management
//! - [`mobility`] — mobile hosts, disconnection, reintegration
//! - [`mgmt`] — group-aware placement and migration
//! - [`place`] — closed-loop telemetry-driven placement controller
//! - [`trader`] — federated, QoS-aware service trading
//! - [`workflow`] — speech-act and office-procedure workflows
//! - [`core`] — the groupware toolkit tying the substrates together
//!
//! ```
//! use cscw::sim::prelude::*;
//!
//! let sim: Sim<()> = SimBuilder::new(42).build();
//! assert_eq!(sim.now(), SimTime::ZERO);
//! ```

pub use cscw_core as core;
pub use odp_access as access;
pub use odp_awareness as awareness;
pub use odp_concurrency as concurrency;
pub use odp_fabric as fabric;
pub use odp_groupcomm as groupcomm;
pub use odp_mgmt as mgmt;
pub use odp_mobility as mobility;
pub use odp_place as place;
pub use odp_sim as sim;
pub use odp_streams as streams;
pub use odp_trader as trader;
pub use odp_workflow as workflow;
