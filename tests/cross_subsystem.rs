//! Integration across subsystems: one scenario threading sessions,
//! access control with negotiation, awareness with the spatial model,
//! and mobility — the "open" cooperative work the paper motivates.

use cscw::access::matrix::Subject;
use cscw::access::negotiation::Negotiator;
use cscw::access::rbac::{Effect, RoleId};
use cscw::access::rights::Rights;
use cscw::awareness::bus::EventBus;
use cscw::awareness::spatial::{Position, SpatialBody, SpatialModel};
use cscw::concurrency::store::{ObjectId as MobObj, ObjectStore};
use cscw::core::session::{Session, SessionId, SessionMode};
use cscw::core::workspace::{ObjectId, SharedWorkspace};
use cscw::mobility::host::MobileHost;
use cscw::mobility::reintegration::ConflictPolicy;
use cscw::streams::binding::{
    BindingRegistry, BindingState, Direction, InterfaceId, StreamInterface,
};
use cscw::streams::media::MediaKind;
use cscw::streams::qos::{negotiate, NegotiationOutcome, QosSpec};
use cscw::trader::federation::{DomainId, Federation};
use cscw::trader::offer::{ServiceOffer, ServiceType};
use cscw::trader::select::SelectionPolicy;
use cscw::trader::store::ShardedStore;
use odp_sim::net::{Connectivity, NodeId};
use odp_sim::time::SimTime;
use std::sync::{Arc, Mutex};

/// A cross-organisation co-authoring session: a contractor must
/// negotiate write rights, edits flow as spatially weighted awareness,
/// and a mobile member's offline work reintegrates.
#[test]
fn cross_organisation_co_authoring() {
    let author = NodeId(0);
    let contractor = NodeId(1);
    let mobile = NodeId(2);

    // --- Session across the matrix -------------------------------------
    let mut session = Session::new(SessionId(1), SessionMode::SYNC_DISTRIBUTED);
    for n in [author, contractor, mobile] {
        session.join(n, SimTime::ZERO).expect("fresh membership");
    }
    session.share("project/spec");

    // --- Workspace with role-based policy -------------------------------
    let mut ws = SharedWorkspace::new();
    ws.policy_mut()
        .add_rule(RoleId(1), "project".into(), Rights::ALL, Effect::Allow);
    ws.policy_mut()
        .add_rule(RoleId(2), "project".into(), Rights::READ, Effect::Allow);
    ws.policy_mut().assign(Subject(author.0), RoleId(1));
    ws.policy_mut().assign(Subject(contractor.0), RoleId(2));
    ws.policy_mut().assign(Subject(mobile.0), RoleId(1));
    ws.create_artefact(ObjectId(1), "project/spec", "v0: skeleton");
    for n in [author, contractor, mobile] {
        ws.register_observer(n, 0.0);
    }

    // The contractor (read-only role) cannot write yet.
    assert!(ws
        .write(contractor, ObjectId(1), "sneaky edit", SimTime::ZERO)
        .is_err());

    // --- Rights negotiation ---------------------------------------------
    let mut negotiator = Negotiator::new();
    let ask = negotiator.request(
        Subject(contractor.0),
        Subject(author.0),
        "project/spec".into(),
        Rights::READ | Rights::WRITE,
        SimTime::from_secs(10),
    );
    let agreed = negotiator
        .accept(Subject(author.0), ask, SimTime::from_secs(12))
        .expect("author grants");
    // Apply the agreement as a dedicated role.
    let negotiated_role = RoleId(99);
    ws.policy_mut().add_rule(
        negotiated_role,
        agreed.path.clone(),
        agreed.rights,
        Effect::Allow,
    );
    ws.policy_mut()
        .assign(Subject(contractor.0), negotiated_role);

    // --- Spatially weighted awareness ------------------------------------
    let space = Arc::new(Mutex::new(SpatialModel::new()));
    space.lock().unwrap().place(
        author,
        SpatialBody::symmetric(Position::new(0.0, 0.0), 1000.0, 50.0),
    );
    space.lock().unwrap().place(
        contractor,
        SpatialBody::symmetric(Position::new(10.0, 0.0), 1000.0, 50.0),
    );
    space.lock().unwrap().place(
        mobile,
        SpatialBody::symmetric(Position::new(2000.0, 0.0), 1000.0, 50.0),
    );
    let space_for_ws = Arc::clone(&space);
    ws.set_weight_fn(Box::new(move |observer, event| {
        space_for_ws.lock().unwrap().weight(observer, event.actor)
    }));

    // The contractor's (now permitted) edit reaches the nearby author but
    // not the far-away mobile member.
    let deliveries = ws
        .write(
            contractor,
            ObjectId(1),
            "v1: contractor's section",
            SimTime::from_secs(20),
        )
        .expect("negotiated rights in force");
    let observers: Vec<NodeId> = deliveries.iter().map(|d| d.observer).collect();
    assert!(observers.contains(&author), "nearby author is aware");
    assert!(
        !observers.contains(&mobile),
        "distant member is outside the nimbus"
    );

    // --- Mobility: offline work on a parallel artefact -------------------
    // Cooperation events (reintegration conflicts, session transitions)
    // flow over a shared, open bus everyone observes.
    let mut bus = EventBus::new();
    for n in [author, contractor, mobile] {
        bus.register(n, 0.0);
    }
    let mut field_store = ObjectStore::new();
    field_store.create(MobObj(7), "site notes v0");
    let mut host = MobileHost::new(ConflictPolicy::ServerWins);
    host.read(MobObj(7), &mut field_store)
        .expect("cache while connected");
    host.set_connectivity(Connectivity::Disconnected);
    host.write(
        MobObj(7),
        "site notes v1 (offline)",
        &mut field_store,
        SimTime::from_secs(30),
    )
    .expect("cached base");
    let (report, announced) = host
        .reconnect_via(&mut bus, mobile, &mut field_store, SimTime::from_secs(40))
        .expect("reintegration");
    assert_eq!(report.conflicts(), 0);
    assert!(announced.is_empty(), "clean replays stay quiet on the bus");
    assert_eq!(
        field_store.read(MobObj(7)).expect("exists").value,
        "site notes v1 (offline)"
    );

    // --- Seamless transition to async ------------------------------------
    let (t, seam) = session.switch_mode_via(
        &mut bus,
        author,
        SessionMode::ASYNC_DISTRIBUTED,
        SimTime::from_secs(3600),
    );
    assert_eq!(seam.len(), 2, "the others hear about the mode switch");
    assert_eq!(session.participants().len(), 3, "membership survives");
    assert!(t.cost.as_millis() > 0);
    // The public history carries everything for late joiners.
    assert_eq!(ws.history().len(), 1);
    let glance = ws.at_a_glance();
    assert_eq!(glance.len(), 1);
    assert_eq!(glance[0].who, contractor.0);
}

/// Trader → streams: an importer discovers a video producer through the
/// trading federation, binds to it through the binding registry, and
/// ends up with exactly the contract a direct negotiation would give.
#[test]
fn trader_resolved_producer_binds_with_negotiated_contract() {
    let producer_node = NodeId(10);
    let importer_node = NodeId(20);

    // The producer's interface, advertised to the trader rather than
    // configured into the importer.
    let producer_iface = StreamInterface {
        id: InterfaceId(1),
        node: producer_node,
        kind: MediaKind::Video,
        direction: Direction::Producer,
        qos: QosSpec::video(),
    };
    let mut federation = Federation::new();
    federation.add_domain(DomainId(0), ShardedStore::new([NodeId(100), NodeId(101)]));
    let st = ServiceType::new("video/conference");
    federation
        .domain_mut(DomainId(0))
        .unwrap()
        .export(ServiceOffer::stream(st.clone(), producer_iface))
        .unwrap();

    // The importer is on a weaker path: it asks for mobile-grade video.
    let required = QosSpec::mobile_video();
    let request = cscw::trader::plan::ImportRequest::for_type(st.clone())
        .qos(required)
        .rights(cscw::access::rights::Rights::READ)
        .policy(SelectionPolicy::FirstFit)
        .max_hops(2);
    let resolution = federation
        .resolve(DomainId(0), &request, None)
        .expect("trader resolves the producer");
    assert_eq!(resolution.hops, 0);
    let resolved = *resolution
        .matched
        .offer
        .stream_interface()
        .expect("offer fronts a stream");
    assert_eq!(resolved.node, producer_node);

    // Bind through the registry using the trader-resolved interface.
    let mut registry = BindingRegistry::new();
    registry.register(StreamInterface {
        id: InterfaceId(2),
        node: importer_node,
        kind: MediaKind::Video,
        direction: Direction::Consumer,
        qos: required,
    });
    let binding = registry
        .bind_resolved(resolved, &[InterfaceId(2)])
        .expect("resolved producer binds");

    // The binding's contract is what a direct negotiation would agree.
    let direct = match negotiate(&QosSpec::video(), &required) {
        NegotiationOutcome::Agreed(spec) => spec,
        NegotiationOutcome::BestEffortOnly(best) => panic!("unexpected best-effort: {best:?}"),
    };
    assert_eq!(binding.state, BindingState::Established(direct));
    assert_eq!(
        resolution.matched.agreed, direct,
        "trader and registry agree"
    );
}
