//! Integration: the full derived experiment suite runs end-to-end,
//! produces every table, and is exactly reproducible.

use cscw::core::experiments::{run_all, Table};

fn ids(tables: &[Table]) -> Vec<&str> {
    tables.iter().map(|t| t.id.as_str()).collect()
}

#[test]
fn all_experiments_produce_tables_with_rows() {
    let tables = run_all(42);
    let ids = ids(&tables);
    for expected in [
        "E1", "E2", "E3", "E4", "E5", "E5b", "E6", "E6b", "E7", "E7b", "E8", "E8b", "E8c", "E8d",
        "E9", "E9b", "E10", "E10b", "E11", "E12", "E13",
    ] {
        assert!(
            ids.contains(&expected),
            "missing table {expected}; got {ids:?}"
        );
    }
    for t in &tables {
        assert!(!t.rows.is_empty(), "table {} has no rows", t.id);
        assert!(!t.columns.is_empty(), "table {} has no columns", t.id);
        for row in &t.rows {
            assert_eq!(row.len(), t.columns.len(), "ragged row in {}", t.id);
        }
    }
}

#[test]
fn the_suite_is_deterministic() {
    let a = run_all(7);
    let b = run_all(7);
    assert_eq!(a, b, "same seed must reproduce byte-identical tables");
}

#[test]
fn different_seeds_keep_the_qualitative_shapes() {
    for seed in [1u64, 99] {
        let tables = run_all(seed);
        let e2 = tables.iter().find(|t| t.id == "E2").expect("E2 exists");
        let tp = e2
            .cell_f64("2pl-transactions(n=8)", "awareness_notices")
            .unwrap();
        let tg = e2
            .cell_f64("transaction-group(n=8)", "awareness_notices")
            .unwrap();
        assert_eq!(tp, 0.0, "seed {seed}: transactions stay wall-like");
        assert!(tg > 0.0, "seed {seed}: groups stay awareness-rich");
        let e11 = tables.iter().find(|t| t.id == "E11").expect("E11 exists");
        let free = e11.cell_f64("free-form", "forced_acts").unwrap();
        let speech = e11.cell_f64("speech-act", "forced_acts").unwrap();
        assert!(
            speech > free,
            "seed {seed}: the prescriptiveness ladder holds"
        );
    }
}
