//! Lock granularity: mapping text positions to lockable units.
//!
//! The paper asks (§4.2.1): *"it is not clear in joint authoring
//! applications whether locks should be applied at the granularity of
//! sections, paragraphs, sentences or even words"*. This module makes the
//! question operational: a [`Granularity`] plus a document text determine
//! a partition into units, and an edit position maps to the unit that must
//! be locked. Experiment E4 sweeps the five levels.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The five locking granularities named by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Granularity {
    /// One lock for the whole document.
    Document,
    /// Sections separated by blank lines (`\n\n`).
    Section,
    /// Paragraphs separated by single newlines.
    Paragraph,
    /// Sentences separated by `.`, `!` or `?` followed by whitespace/end.
    Sentence,
    /// Whitespace-separated words.
    Word,
}

impl Granularity {
    /// All levels, coarsest first.
    pub const ALL: [Granularity; 5] = [
        Granularity::Document,
        Granularity::Section,
        Granularity::Paragraph,
        Granularity::Sentence,
        Granularity::Word,
    ];
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Granularity::Document => "document",
            Granularity::Section => "section",
            Granularity::Paragraph => "paragraph",
            Granularity::Sentence => "sentence",
            Granularity::Word => "word",
        };
        f.write_str(name)
    }
}

/// Identifies one lockable unit within a document at some granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UnitId(pub u32);

/// Returns the half-open char ranges `[start, end)` of the units of
/// `text` at granularity `g`. Ranges cover the whole text (separators are
/// attached to the preceding unit) so every position maps to exactly one
/// unit; an empty text yields one empty unit.
pub fn unit_ranges(text: &str, g: Granularity) -> Vec<(usize, usize)> {
    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    if g == Granularity::Document || n == 0 {
        return vec![(0, n)];
    }
    // Identify the positions where a new unit starts.
    let mut starts = vec![0usize];
    let mut i = 0;
    while i < n {
        let boundary_len = match g {
            Granularity::Section => {
                if chars[i] == '\n' && i + 1 < n && chars[i + 1] == '\n' {
                    2
                } else {
                    0
                }
            }
            Granularity::Paragraph => {
                if chars[i] == '\n' {
                    1
                } else {
                    0
                }
            }
            Granularity::Sentence => {
                if matches!(chars[i], '.' | '!' | '?')
                    && (i + 1 >= n || chars[i + 1].is_whitespace())
                {
                    1
                } else {
                    0
                }
            }
            Granularity::Word => {
                if chars[i].is_whitespace() {
                    1
                } else {
                    0
                }
            }
            Granularity::Document => unreachable!(),
        };
        if boundary_len > 0 {
            // Consume any run of further whitespace as part of the boundary
            // (keeps word/sentence units non-empty under double spaces).
            let mut j = i + boundary_len;
            while j < n && chars[j].is_whitespace() && g != Granularity::Paragraph {
                j += 1;
            }
            if j < n {
                starts.push(j);
            }
            i = j;
        } else {
            i += 1;
        }
    }
    let mut ranges = Vec::with_capacity(starts.len());
    for (k, &s) in starts.iter().enumerate() {
        let e = starts.get(k + 1).copied().unwrap_or(n);
        ranges.push((s, e));
    }
    ranges
}

/// Number of units of `text` at granularity `g`.
pub fn unit_count(text: &str, g: Granularity) -> usize {
    unit_ranges(text, g).len()
}

/// Maps char position `pos` to its unit. Positions at or past the end map
/// to the last unit.
pub fn unit_at(text: &str, pos: usize, g: Granularity) -> UnitId {
    let ranges = unit_ranges(text, g);
    for (idx, &(s, e)) in ranges.iter().enumerate() {
        if pos >= s && pos < e {
            return UnitId(idx as u32);
        }
    }
    UnitId((ranges.len() - 1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str =
        "One two three. Four five!\nSecond paragraph here.\n\nNew section starts. More text?";

    #[test]
    fn document_is_one_unit() {
        assert_eq!(unit_count(DOC, Granularity::Document), 1);
        assert_eq!(unit_at(DOC, 0, Granularity::Document), UnitId(0));
        assert_eq!(unit_at(DOC, 999, Granularity::Document), UnitId(0));
    }

    #[test]
    fn sections_split_on_blank_lines() {
        assert_eq!(unit_count(DOC, Granularity::Section), 2);
        let last = DOC.chars().count() - 1;
        assert_eq!(unit_at(DOC, 0, Granularity::Section), UnitId(0));
        assert_eq!(unit_at(DOC, last, Granularity::Section), UnitId(1));
    }

    #[test]
    fn paragraphs_split_on_newlines() {
        // Three newline boundaries -> paragraphs: line1, line2, (empty run
        // merges), section line.
        let count = unit_count(DOC, Granularity::Paragraph);
        assert_eq!(count, 4, "{:?}", unit_ranges(DOC, Granularity::Paragraph));
    }

    #[test]
    fn sentences_split_on_terminators() {
        let text = "A b. C d! E f? G";
        assert_eq!(unit_count(text, Granularity::Sentence), 4);
        assert_eq!(unit_at(text, 0, Granularity::Sentence), UnitId(0));
        assert_eq!(unit_at(text, 6, Granularity::Sentence), UnitId(1));
    }

    #[test]
    fn abbreviation_dots_inside_words_do_not_split() {
        let text = "See e.g.the item. Next.";
        // "e.g.the" contains dots not followed by whitespace.
        assert_eq!(unit_count(text, Granularity::Sentence), 2);
    }

    #[test]
    fn words_split_on_whitespace_runs() {
        let text = "alpha  beta\tgamma";
        assert_eq!(unit_count(text, Granularity::Word), 3);
        assert_eq!(unit_at(text, 0, Granularity::Word), UnitId(0));
        assert_eq!(unit_at(text, 7, Granularity::Word), UnitId(1));
        assert_eq!(unit_at(text, 12, Granularity::Word), UnitId(2));
    }

    #[test]
    fn finer_granularity_never_has_fewer_units() {
        for pair in Granularity::ALL.windows(2) {
            assert!(
                unit_count(DOC, pair[0]) <= unit_count(DOC, pair[1]),
                "{} vs {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn empty_text_is_one_empty_unit() {
        for g in Granularity::ALL {
            assert_eq!(unit_count("", g), 1);
            assert_eq!(unit_at("", 0, g), UnitId(0));
        }
    }

    #[test]
    fn ranges_tile_the_text() {
        for g in Granularity::ALL {
            let ranges = unit_ranges(DOC, g);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, DOC.chars().count());
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "gap or overlap at {g}: {w:?}");
            }
        }
    }
}
