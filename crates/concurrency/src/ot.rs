//! Operational transformation primitives (GROVE, Ellis & Gibbs 1989).
//!
//! The paper (§4.2.1): *"the group editor GROVE adopts a new form of
//! concurrency control based on **operation transformations**. This allows
//! operations to proceed immediately to improve real-time response time."*
//!
//! Operations are character-granular ([`CharOp`]) — string edits decompose
//! into char op sequences — which keeps the transformation functions small
//! enough to verify exhaustively. The pairwise transform satisfies the
//! **TP1** convergence property (checked by property tests):
//! `apply(apply(s, a), T(b, a)) == apply(apply(s, b), T(a, b))`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A character-granular edit operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CharOp {
    /// Insert `ch` so that it ends up at char position `pos`.
    Insert {
        /// Target position (0 ..= len).
        pos: usize,
        /// The character.
        ch: char,
    },
    /// Delete the char at position `pos`.
    Delete {
        /// Target position (0 .. len).
        pos: usize,
    },
    /// Do nothing (the result of transforming away a duplicate delete).
    Noop,
}

impl fmt::Display for CharOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharOp::Insert { pos, ch } => write!(f, "ins({pos},{ch:?})"),
            CharOp::Delete { pos } => write!(f, "del({pos})"),
            CharOp::Noop => write!(f, "noop"),
        }
    }
}

/// Who wins when two concurrent inserts target the same position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// The op being transformed keeps the position (ends up left).
    OpWins,
    /// The op transformed against keeps the position (op shifts right).
    AgainstWins,
}

/// Transforms `op` to apply *after* `against` has been applied, assuming
/// both were generated against the same document state. `tie` resolves
/// same-position insert conflicts and must be chosen antisymmetrically by
/// the two replicas (e.g. by comparing site ids).
pub fn transform(op: CharOp, against: CharOp, tie: TieBreak) -> CharOp {
    use CharOp::*;
    match (op, against) {
        (Noop, _) | (_, Noop) => op,
        (Insert { pos: p1, ch }, Insert { pos: p2, .. }) => {
            if p1 < p2 || (p1 == p2 && tie == TieBreak::OpWins) {
                op
            } else {
                Insert { pos: p1 + 1, ch }
            }
        }
        (Insert { pos: p1, ch }, Delete { pos: p2 }) => {
            if p1 <= p2 {
                op
            } else {
                Insert { pos: p1 - 1, ch }
            }
        }
        (Delete { pos: p1 }, Insert { pos: p2, .. }) => {
            if p1 < p2 {
                op
            } else {
                Delete { pos: p1 + 1 }
            }
        }
        (Delete { pos: p1 }, Delete { pos: p2 }) => {
            if p1 < p2 {
                op
            } else if p1 > p2 {
                Delete { pos: p1 - 1 }
            } else {
                Noop // both deleted the same character
            }
        }
    }
}

/// Transforms the pair of concurrent ops against each other, returning
/// `(op', against')` such that applying `op; against'` and
/// `against; op'` converge. The tie given applies to `op`; `against` gets
/// the opposite.
pub fn transform_pair(op: CharOp, against: CharOp, tie: TieBreak) -> (CharOp, CharOp) {
    let other_tie = match tie {
        TieBreak::OpWins => TieBreak::AgainstWins,
        TieBreak::AgainstWins => TieBreak::OpWins,
    };
    (
        transform(op, against, tie),
        transform(against, op, other_tie),
    )
}

/// Errors from applying an operation to a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyError {
    /// The offending operation.
    pub op: CharOp,
    /// The document length at the time.
    pub len: usize,
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "operation {} out of bounds for document of length {}",
            self.op, self.len
        )
    }
}

impl std::error::Error for ApplyError {}

/// A replicated text document (one site's copy).
///
/// # Examples
///
/// ```
/// use odp_concurrency::ot::{CharOp, TextDoc};
///
/// let mut d = TextDoc::from("ac");
/// d.apply(CharOp::Insert { pos: 1, ch: 'b' })?;
/// assert_eq!(d.text(), "abc");
/// # Ok::<(), odp_concurrency::ot::ApplyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TextDoc {
    chars: Vec<char>,
}

impl TextDoc {
    /// Creates an empty document.
    pub fn new() -> Self {
        TextDoc::default()
    }

    /// Current contents.
    pub fn text(&self) -> String {
        self.chars.iter().collect()
    }

    /// Length in chars.
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// Applies one operation in place.
    ///
    /// # Errors
    ///
    /// [`ApplyError`] if the position is out of bounds.
    pub fn apply(&mut self, op: CharOp) -> Result<(), ApplyError> {
        match op {
            CharOp::Insert { pos, ch } => {
                if pos > self.chars.len() {
                    return Err(ApplyError {
                        op,
                        len: self.chars.len(),
                    });
                }
                self.chars.insert(pos, ch);
            }
            CharOp::Delete { pos } => {
                if pos >= self.chars.len() {
                    return Err(ApplyError {
                        op,
                        len: self.chars.len(),
                    });
                }
                self.chars.remove(pos);
            }
            CharOp::Noop => {}
        }
        Ok(())
    }
}

impl From<&str> for TextDoc {
    fn from(s: &str) -> Self {
        TextDoc {
            chars: s.chars().collect(),
        }
    }
}

impl fmt::Display for TextDoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ch in &self.chars {
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

/// Decomposes a string insertion into char ops.
pub fn ops_for_insert(pos: usize, text: &str) -> Vec<CharOp> {
    text.chars()
        .enumerate()
        .map(|(i, ch)| CharOp::Insert { pos: pos + i, ch })
        .collect()
}

/// Decomposes a range deletion into char ops (all at the same position,
/// since each delete shifts the rest left).
pub fn ops_for_delete(pos: usize, len: usize) -> Vec<CharOp> {
    (0..len).map(|_| CharOp::Delete { pos }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use CharOp::*;

    fn check_tp1(s: &str, a: CharOp, b: CharOp) {
        // a gets OpWins on one path, AgainstWins symmetric on the other.
        let (a2, b2) = transform_pair(a, b, TieBreak::OpWins);
        let mut left = TextDoc::from(s);
        left.apply(a).unwrap();
        left.apply(b2).unwrap();
        let mut right = TextDoc::from(s);
        right.apply(b).unwrap();
        right.apply(a2).unwrap();
        assert_eq!(
            left.text(),
            right.text(),
            "TP1 violated: a={a} b={b} on {s:?}"
        );
    }

    #[test]
    fn tp1_holds_exhaustively_on_a_small_document() {
        let s = "abcd";
        let n = s.len();
        let mut ops = vec![Noop];
        for pos in 0..=n {
            ops.push(Insert { pos, ch: 'X' });
        }
        for pos in 0..n {
            ops.push(Delete { pos });
        }
        for &a in &ops {
            for &b in &ops {
                check_tp1(s, a, b);
            }
        }
    }

    #[test]
    fn same_position_inserts_break_ties_consistently() {
        let a = Insert { pos: 1, ch: 'A' };
        let b = Insert { pos: 1, ch: 'B' };
        let (a2, b2) = transform_pair(a, b, TieBreak::OpWins);
        assert_eq!(a2, Insert { pos: 1, ch: 'A' }, "winner keeps position");
        assert_eq!(b2, Insert { pos: 2, ch: 'B' }, "loser shifts right");
    }

    #[test]
    fn duplicate_deletes_become_noop() {
        let a = Delete { pos: 2 };
        let b = Delete { pos: 2 };
        let (a2, b2) = transform_pair(a, b, TieBreak::OpWins);
        assert_eq!(a2, Noop);
        assert_eq!(b2, Noop);
    }

    #[test]
    fn insert_before_delete_shifts_the_delete() {
        let ins = Insert { pos: 0, ch: 'X' };
        let del = Delete { pos: 3 };
        assert_eq!(transform(del, ins, TieBreak::OpWins), Delete { pos: 4 });
        assert_eq!(transform(ins, del, TieBreak::OpWins), ins);
    }

    #[test]
    fn apply_bounds_are_checked() {
        let mut d = TextDoc::from("ab");
        assert!(d.apply(Insert { pos: 3, ch: 'x' }).is_err());
        assert!(d.apply(Delete { pos: 2 }).is_err());
        assert!(d.apply(Noop).is_ok());
        assert_eq!(d.text(), "ab");
    }

    #[test]
    fn string_edit_decomposition_round_trips() {
        let mut d = TextDoc::from("world");
        for op in ops_for_insert(0, "hello ") {
            d.apply(op).unwrap();
        }
        assert_eq!(d.text(), "hello world");
        for op in ops_for_delete(0, 6) {
            d.apply(op).unwrap();
        }
        assert_eq!(d.text(), "world");
    }

    #[test]
    fn noop_transforms_are_identity() {
        let a = Insert { pos: 1, ch: 'x' };
        assert_eq!(transform(a, Noop, TieBreak::OpWins), a);
        assert_eq!(transform(Noop, a, TieBreak::OpWins), Noop);
    }
}
