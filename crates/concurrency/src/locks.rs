//! Cooperative locking schemes: the alternative lock styles the paper
//! surveys against strict exclusive locks (§4.2.1):
//!
//! - **hard** locks — classic shared/exclusive with FIFO queueing (the
//!   building block of the Figure 2a transaction "walls");
//! - **tickle** locks (Greif & Sarin) — a requester "tickles" the holder;
//!   if the holder has been idle longer than a threshold the lock
//!   transfers automatically;
//! - **soft** locks (Cognoter/Colab) — advisory: conflicting access is
//!   granted immediately but both parties receive conflict warnings;
//! - **notification** locks (Hornick & Zdonik) — access is granted as for
//!   hard shared locks, but holders are notified of every other access so
//!   they remain *aware* of concurrent activity.
//!
//! All variants are driven through one [`LockTable`] so experiments can
//! swap the scheme without touching the workload.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

use odp_awareness::bus::{BusDelivery, CoopEvent, CoopKind, CoopMode, EventBus};
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifies a lockable resource (object, or object×unit under
/// fine-grained locking — compose with
/// [`crate::granularity::UnitId`] via [`ResourceId::with_unit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(pub u64);

impl ResourceId {
    /// Composes an object id and a unit index into one resource id.
    pub fn with_unit(object: crate::store::ObjectId, unit: crate::granularity::UnitId) -> Self {
        ResourceId(object.0 << 32 | unit.0 as u64)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "res{}", self.0)
    }
}

/// Identifies a lock client (a user/session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Shared (read) or exclusive (write) access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockMode {
    /// Multiple concurrent holders allowed.
    Shared,
    /// Single holder.
    Exclusive,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        self == LockMode::Shared && other == LockMode::Shared
    }
}

impl From<LockMode> for CoopMode {
    fn from(mode: LockMode) -> CoopMode {
        match mode {
            LockMode::Shared => CoopMode::Shared,
            LockMode::Exclusive => CoopMode::Exclusive,
        }
    }
}

/// The locking scheme a table enforces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LockScheme {
    /// Classic blocking shared/exclusive locks.
    Hard,
    /// Hard locks plus automatic transfer from idle holders.
    Tickle {
        /// A holder idle for this long loses the lock to a tickler.
        idle_timeout: SimDuration,
    },
    /// Advisory locks: conflicts grant immediately with warnings.
    Soft,
    /// Hard-shared semantics with awareness notifications on every access.
    Notification,
}

/// The immediate answer to a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockReply {
    /// The lock is held; go ahead.
    Granted,
    /// Queued behind current holders; a [`NoticeKind::Granted`] notice follows.
    Queued,
    /// Granted despite a conflict (soft locks); the listed clients hold
    /// conflicting locks.
    GrantedConflict(Vec<ClientId>),
}

/// Awareness/coordination notices emitted by the table. The caller (a
/// lock-server actor) forwards each to its addressee — this is the
/// "information flow between users" of Figure 2b.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notice {
    /// Addressee.
    pub to: ClientId,
    /// What happened.
    pub kind: NoticeKind,
    /// The resource concerned.
    pub resource: ResourceId,
}

/// The kinds of notice a [`LockTable`] emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NoticeKind {
    /// A queued request was granted.
    Granted {
        /// The granted mode.
        mode: LockMode,
    },
    /// Someone requested a lock you hold (tickle).
    TickleRequest {
        /// Who wants it.
        by: ClientId,
    },
    /// Your lock was transferred away after idleness (tickle).
    Revoked {
        /// Who received it.
        to: ClientId,
    },
    /// Someone acquired a conflicting soft lock.
    ConflictWarning {
        /// The other party.
        with: ClientId,
    },
    /// Someone accessed a resource you hold a notification lock on.
    AccessNotification {
        /// Who accessed.
        by: ClientId,
        /// How.
        mode: LockMode,
    },
}

impl Notice {
    /// The notice as a unified cooperation event: directed at its
    /// addressee on the resource's artefact path (`res/<id>`), with the
    /// causing party carried in the [`CoopKind`] payload. [`ClientId`]s
    /// map 1:1 onto [`NodeId`]s.
    pub fn to_coop(&self, at: SimTime) -> CoopEvent {
        let to = NodeId(self.to.0);
        let kind = match self.kind {
            NoticeKind::Granted { mode } => CoopKind::LockGranted { mode: mode.into() },
            NoticeKind::TickleRequest { by } => CoopKind::LockTickled { by: NodeId(by.0) },
            NoticeKind::Revoked { to } => CoopKind::LockRevoked { to: NodeId(to.0) },
            NoticeKind::ConflictWarning { with } => CoopKind::LockConflict {
                with: NodeId(with.0),
            },
            NoticeKind::AccessNotification { by, mode } => CoopKind::LockAccess {
                by: NodeId(by.0),
                mode: mode.into(),
            },
        };
        CoopEvent::direct(to, to, format!("res/{}", self.resource.0), at, kind)
    }
}

/// Publishes each notice through the bus, concatenating the surviving
/// deliveries.
fn publish_notices(bus: &mut EventBus, notices: &[Notice], at: SimTime) -> Vec<BusDelivery> {
    notices
        .iter()
        .flat_map(|n| bus.publish(n.to_coop(at)))
        .collect()
}

/// Errors from lock operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// Release of a lock the client does not hold.
    NotHeld(ClientId, ResourceId),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::NotHeld(c, r) => write!(f, "{c} does not hold {r}"),
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Debug, Clone)]
struct Waiter {
    client: ClientId,
    mode: LockMode,
}

#[derive(Debug, Default)]
struct LockState {
    holders: BTreeMap<ClientId, LockMode>,
    queue: VecDeque<Waiter>,
    last_access: HashMap<ClientId, SimTime>,
    /// Pending tickles: (requester, tickled holder, when).
    tickles: Vec<(ClientId, ClientId, SimTime)>,
}

impl LockState {
    fn compatible_with_holders(&self, client: ClientId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|(&h, &m)| h == client || m.compatible(mode))
    }
}

/// A lock table enforcing one [`LockScheme`].
///
/// # Examples
///
/// ```
/// use odp_awareness::bus::EventBus;
/// use odp_concurrency::locks::{ClientId, LockMode, LockReply, LockScheme, LockTable, ResourceId};
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut bus = EventBus::new();
/// bus.register(NodeId(0), 0.0);
/// bus.register(NodeId(1), 0.0);
/// let mut t = LockTable::new(LockScheme::Hard);
/// let (r1, _) = t.request_via(&mut bus, ClientId(0), ResourceId(1), LockMode::Exclusive, SimTime::ZERO);
/// assert_eq!(r1, LockReply::Granted);
/// let (r2, _) = t.request_via(&mut bus, ClientId(1), ResourceId(1), LockMode::Exclusive, SimTime::ZERO);
/// assert_eq!(r2, LockReply::Queued);
/// ```
#[derive(Debug)]
pub struct LockTable {
    scheme: LockScheme,
    locks: BTreeMap<ResourceId, LockState>,
}

impl LockTable {
    /// Creates a table enforcing `scheme`.
    pub fn new(scheme: LockScheme) -> Self {
        LockTable {
            scheme,
            locks: BTreeMap::new(),
        }
    }

    /// The scheme in force.
    pub fn scheme(&self) -> LockScheme {
        self.scheme
    }

    /// Requests a lock, publishing the resulting notices through the
    /// cooperation-event bus. Returns the immediate reply plus the bus
    /// deliveries that survived rights gating and weighting.
    pub fn request_via(
        &mut self,
        bus: &mut EventBus,
        client: ClientId,
        resource: ResourceId,
        mode: LockMode,
        now: SimTime,
    ) -> (LockReply, Vec<BusDelivery>) {
        let (reply, notices) = self.request_direct(client, resource, mode, now);
        (reply, publish_notices(bus, &notices, now))
    }

    /// Requests a lock, returning raw [`Notice`]s without bus
    /// publication (the direct-notice engine path used by consumers
    /// that drive their own notice distribution, e.g. the 2PL
    /// scheduler and the scheme rig).
    pub fn request_direct(
        &mut self,
        client: ClientId,
        resource: ResourceId,
        mode: LockMode,
        now: SimTime,
    ) -> (LockReply, Vec<Notice>) {
        let scheme = self.scheme;
        let state = self.locks.entry(resource).or_default();
        let mut notices = Vec::new();
        // Re-entrant request: upgrade or confirm.
        if let Some(&held) = state.holders.get(&client) {
            if held == mode || held == LockMode::Exclusive {
                state.last_access.insert(client, now);
                return (LockReply::Granted, notices);
            }
            // Shared -> exclusive upgrade: treat as fresh request below,
            // dropping the shared hold first.
            state.holders.remove(&client);
        }
        match scheme {
            LockScheme::Soft => {
                let conflicts: Vec<ClientId> = state
                    .holders
                    .iter()
                    .filter(|(_, &m)| !m.compatible(mode) || mode == LockMode::Exclusive)
                    .map(|(&c, _)| c)
                    .collect();
                for &other in &conflicts {
                    notices.push(Notice {
                        to: other,
                        kind: NoticeKind::ConflictWarning { with: client },
                        resource,
                    });
                }
                state.holders.insert(client, mode);
                state.last_access.insert(client, now);
                if conflicts.is_empty() {
                    (LockReply::Granted, notices)
                } else {
                    (LockReply::GrantedConflict(conflicts), notices)
                }
            }
            LockScheme::Notification => {
                // Notify every holder of the access attempt (awareness).
                for (&other, _) in state.holders.iter().filter(|(&c, _)| c != client) {
                    notices.push(Notice {
                        to: other,
                        kind: NoticeKind::AccessNotification { by: client, mode },
                        resource,
                    });
                }
                if state.compatible_with_holders(client, mode) && state.queue.is_empty() {
                    state.holders.insert(client, mode);
                    state.last_access.insert(client, now);
                    (LockReply::Granted, notices)
                } else {
                    state.queue.push_back(Waiter { client, mode });
                    (LockReply::Queued, notices)
                }
            }
            LockScheme::Hard | LockScheme::Tickle { .. } => {
                if state.compatible_with_holders(client, mode) && state.queue.is_empty() {
                    state.holders.insert(client, mode);
                    state.last_access.insert(client, now);
                    (LockReply::Granted, notices)
                } else {
                    state.queue.push_back(Waiter { client, mode });
                    if let LockScheme::Tickle { .. } = scheme {
                        // Tickle every conflicting holder.
                        for (&holder, &m) in state.holders.iter() {
                            if holder != client && !m.compatible(mode) {
                                notices.push(Notice {
                                    to: holder,
                                    kind: NoticeKind::TickleRequest { by: client },
                                    resource,
                                });
                                state.tickles.push((client, holder, now));
                            }
                        }
                    }
                    (LockReply::Queued, notices)
                }
            }
        }
    }

    /// Records activity by a holder (resets its tickle idle clock).
    pub fn touch(&mut self, client: ClientId, resource: ResourceId, now: SimTime) {
        if let Some(state) = self.locks.get_mut(&resource) {
            if state.holders.contains_key(&client) {
                state.last_access.insert(client, now);
            }
        }
    }

    /// Releases a lock and promotes waiters, publishing grant notices
    /// through the cooperation-event bus.
    ///
    /// # Errors
    ///
    /// [`LockError::NotHeld`] if the client holds no lock on `resource`.
    pub fn release_via(
        &mut self,
        bus: &mut EventBus,
        client: ClientId,
        resource: ResourceId,
        now: SimTime,
    ) -> Result<Vec<BusDelivery>, LockError> {
        let notices = self.release_direct(client, resource, now)?;
        Ok(publish_notices(bus, &notices, now))
    }

    /// Releases a lock and promotes waiters, returning raw notices
    /// without bus publication (direct-notice engine path).
    ///
    /// # Errors
    ///
    /// [`LockError::NotHeld`] if the client holds no lock on `resource`.
    pub fn release_direct(
        &mut self,
        client: ClientId,
        resource: ResourceId,
        now: SimTime,
    ) -> Result<Vec<Notice>, LockError> {
        let state = self
            .locks
            .get_mut(&resource)
            .ok_or(LockError::NotHeld(client, resource))?;
        if state.holders.remove(&client).is_none() {
            return Err(LockError::NotHeld(client, resource));
        }
        state.tickles.retain(|&(_, holder, _)| holder != client);
        Ok(Self::promote(state, resource, now))
    }

    /// Releases everything `client` holds or waits for (client
    /// departure), publishing grant notices through the bus.
    pub fn release_all_via(
        &mut self,
        bus: &mut EventBus,
        client: ClientId,
        now: SimTime,
    ) -> Vec<BusDelivery> {
        let notices = self.release_all_direct(client, now);
        publish_notices(bus, &notices, now)
    }

    /// Releases everything `client` holds or waits for (client
    /// departure), returning raw notices without bus publication
    /// (direct-notice engine path).
    pub fn release_all_direct(&mut self, client: ClientId, now: SimTime) -> Vec<Notice> {
        let mut notices = Vec::new();
        for (&r, state) in self.locks.iter_mut() {
            state.queue.retain(|w| w.client != client);
            state
                .tickles
                .retain(|&(req, holder, _)| req != client && holder != client);
            if state.holders.remove(&client).is_some() {
                notices.extend(Self::promote(state, r, now));
            }
        }
        notices
    }

    /// Tickle maintenance via the cooperation-event bus: transfers
    /// locks whose holders have been idle past the timeout, publishing
    /// revocations and grants. Call periodically.
    pub fn tick_via(&mut self, bus: &mut EventBus, now: SimTime) -> Vec<BusDelivery> {
        let notices = self.tick_direct(now);
        publish_notices(bus, &notices, now)
    }

    /// Tickle maintenance returning raw notices without bus publication
    /// (direct-notice engine path): transfers locks whose holders have
    /// been idle past the timeout to the (oldest) tickler.
    pub fn tick_direct(&mut self, now: SimTime) -> Vec<Notice> {
        let LockScheme::Tickle { idle_timeout } = self.scheme else {
            return Vec::new();
        };
        let mut notices = Vec::new();
        for (&resource, state) in self.locks.iter_mut() {
            let mut transfers: Vec<(ClientId, ClientId)> = Vec::new();
            for &(requester, holder, _when) in &state.tickles {
                let idle_since = state
                    .last_access
                    .get(&holder)
                    .copied()
                    .unwrap_or(SimTime::ZERO);
                if now.saturating_since(idle_since) >= idle_timeout
                    && state.holders.contains_key(&holder)
                {
                    transfers.push((requester, holder));
                }
            }
            for (requester, holder) in transfers {
                if !state.holders.contains_key(&holder) {
                    continue; // already transferred this round
                }
                state.holders.remove(&holder);
                state.tickles.retain(|&(_, h, _)| h != holder);
                notices.push(Notice {
                    to: holder,
                    kind: NoticeKind::Revoked { to: requester },
                    resource,
                });
                // The requester jumps its queue entry.
                let jumped = state
                    .queue
                    .iter()
                    .position(|w| w.client == requester)
                    .and_then(|pos| state.queue.remove(pos));
                if let Some(waiter) = jumped {
                    state.holders.insert(waiter.client, waiter.mode);
                    state.last_access.insert(waiter.client, now);
                    notices.push(Notice {
                        to: requester,
                        kind: NoticeKind::Granted { mode: waiter.mode },
                        resource,
                    });
                }
                notices.extend(Self::promote(state, resource, now));
            }
        }
        notices
    }

    fn promote(state: &mut LockState, resource: ResourceId, now: SimTime) -> Vec<Notice> {
        let mut notices = Vec::new();
        while let Some(next) = state.queue.front() {
            let ok = state
                .holders
                .iter()
                .all(|(&h, &m)| h == next.client || m.compatible(next.mode));
            if !ok {
                break;
            }
            let Some(w) = state.queue.pop_front() else {
                break;
            };
            state.holders.insert(w.client, w.mode);
            state.last_access.insert(w.client, now);
            notices.push(Notice {
                to: w.client,
                kind: NoticeKind::Granted { mode: w.mode },
                resource,
            });
        }
        notices
    }

    /// Every resource with lock state, in ascending id order (so
    /// checkers walking the table see a stable order).
    pub fn resources(&self) -> Vec<ResourceId> {
        self.locks.keys().copied().collect()
    }

    /// Current holders of `resource`.
    pub fn holders(&self, resource: ResourceId) -> Vec<(ClientId, LockMode)> {
        self.locks
            .get(&resource)
            .map(|s| s.holders.iter().map(|(&c, &m)| (c, m)).collect())
            .unwrap_or_default()
    }

    /// Number of clients queued on `resource`.
    pub fn queue_len(&self, resource: ResourceId) -> usize {
        self.locks
            .get(&resource)
            .map(|s| s.queue.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: ResourceId = ResourceId(1);
    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// An open bus observing clients 0..n (1:1 client→node mapping).
    fn bus(n: u32) -> EventBus {
        let mut b = EventBus::new();
        for i in 0..n {
            b.register(NodeId(i), 0.0);
        }
        b
    }

    #[test]
    fn via_promotion_grants_flow_through_the_bus() {
        let mut b = bus(3);
        let mut lt = LockTable::new(LockScheme::Hard);
        lt.request_via(&mut b, ClientId(0), R, LockMode::Exclusive, t(0));
        lt.request_via(&mut b, ClientId(1), R, LockMode::Exclusive, t(1));
        let out = lt.release_via(&mut b, ClientId(0), R, t(2)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].observer, NodeId(1), "grant reaches the promotee");
        assert_eq!(out[0].event.kind.label(), "lock.granted");
        assert_eq!(out[0].event.artefact, "res/1");
    }

    #[test]
    fn via_tickle_revocation_and_grant_flow_through_the_bus() {
        let mut b = bus(2);
        let mut lt = LockTable::new(LockScheme::Tickle {
            idle_timeout: SimDuration::from_millis(100),
        });
        lt.request_via(&mut b, ClientId(0), R, LockMode::Exclusive, t(0));
        let (reply, tickles) = lt.request_via(&mut b, ClientId(1), R, LockMode::Exclusive, t(50));
        assert_eq!(reply, LockReply::Queued);
        assert_eq!(tickles.len(), 1);
        assert_eq!(tickles[0].observer, NodeId(0), "holder is tickled");
        assert_eq!(tickles[0].event.kind.label(), "lock.tickled");
        let out = lt.tick_via(&mut b, t(160));
        let labels: Vec<&str> = out.iter().map(|d| d.event.kind.label()).collect();
        assert_eq!(labels, vec!["lock.revoked", "lock.granted"]);
        assert_eq!(out[0].observer, NodeId(0));
        assert_eq!(out[1].observer, NodeId(1));
    }

    #[test]
    fn rights_gate_suppresses_lock_notices_for_unauthorized_clients() {
        use odp_access::matrix::Subject;
        use odp_access::rbac::{Effect, RbacPolicy, RoleId};
        use odp_access::rights::Rights;

        // Only client 1 may read res/*; client 0's conflict warning is
        // suppressed by the gate (a participant you may not see cannot
        // make you aware of its activity).
        let mut policy = RbacPolicy::new();
        policy.add_rule(RoleId(1), "res".into(), Rights::READ, Effect::Allow);
        policy.assign(Subject(1), RoleId(1));
        let mut b = bus(2);
        b.set_policy(policy);

        let mut lt = LockTable::new(LockScheme::Soft);
        lt.request_via(&mut b, ClientId(0), R, LockMode::Exclusive, t(0));
        let (reply, out) = lt.request_via(&mut b, ClientId(1), R, LockMode::Exclusive, t(1));
        assert!(matches!(reply, LockReply::GrantedConflict(_)));
        assert!(out.is_empty(), "warning to client 0 is rights-gated");
        assert_eq!(b.suppressed_by_rights(), 1);
    }

    #[test]
    fn notice_conversion_addresses_the_recipient_directly() {
        let n = Notice {
            to: ClientId(3),
            kind: NoticeKind::AccessNotification {
                by: ClientId(7),
                mode: LockMode::Shared,
            },
            resource: ResourceId(42),
        };
        let ev = n.to_coop(t(5));
        assert_eq!(ev.actor, NodeId(3));
        assert_eq!(ev.artefact, "res/42");
        assert_eq!(ev.at, t(5));
        assert!(matches!(
            ev.kind,
            CoopKind::LockAccess {
                by: NodeId(7),
                mode: CoopMode::Shared
            }
        ));
    }

    #[test]
    fn hard_shared_locks_coexist() {
        let mut lt = LockTable::new(LockScheme::Hard);
        assert_eq!(
            lt.request_direct(ClientId(0), R, LockMode::Shared, t(0)).0,
            LockReply::Granted
        );
        assert_eq!(
            lt.request_direct(ClientId(1), R, LockMode::Shared, t(0)).0,
            LockReply::Granted
        );
        assert_eq!(lt.holders(R).len(), 2);
    }

    #[test]
    fn hard_exclusive_blocks_and_promotes_in_fifo_order() {
        let mut lt = LockTable::new(LockScheme::Hard);
        lt.request_direct(ClientId(0), R, LockMode::Exclusive, t(0));
        assert_eq!(
            lt.request_direct(ClientId(1), R, LockMode::Exclusive, t(1))
                .0,
            LockReply::Queued
        );
        assert_eq!(
            lt.request_direct(ClientId(2), R, LockMode::Exclusive, t(2))
                .0,
            LockReply::Queued
        );
        let notices = lt.release_direct(ClientId(0), R, t(3)).unwrap();
        assert_eq!(notices.len(), 1);
        assert_eq!(notices[0].to, ClientId(1));
        assert!(matches!(notices[0].kind, NoticeKind::Granted { .. }));
        assert_eq!(lt.queue_len(R), 1);
    }

    #[test]
    fn shared_waiters_promote_together() {
        let mut lt = LockTable::new(LockScheme::Hard);
        lt.request_direct(ClientId(0), R, LockMode::Exclusive, t(0));
        lt.request_direct(ClientId(1), R, LockMode::Shared, t(1));
        lt.request_direct(ClientId(2), R, LockMode::Shared, t(1));
        let notices = lt.release_direct(ClientId(0), R, t(2)).unwrap();
        assert_eq!(notices.len(), 2, "both readers promoted at once");
    }

    #[test]
    fn reentrant_request_is_granted() {
        let mut lt = LockTable::new(LockScheme::Hard);
        lt.request_direct(ClientId(0), R, LockMode::Exclusive, t(0));
        assert_eq!(
            lt.request_direct(ClientId(0), R, LockMode::Shared, t(1)).0,
            LockReply::Granted
        );
        assert_eq!(
            lt.request_direct(ClientId(0), R, LockMode::Exclusive, t(1))
                .0,
            LockReply::Granted
        );
    }

    #[test]
    fn release_without_hold_is_an_error() {
        let mut lt = LockTable::new(LockScheme::Hard);
        assert!(lt.release_direct(ClientId(0), R, t(0)).is_err());
        lt.request_direct(ClientId(1), R, LockMode::Shared, t(0));
        assert_eq!(
            lt.release_direct(ClientId(0), R, t(0)).unwrap_err(),
            LockError::NotHeld(ClientId(0), R)
        );
    }

    #[test]
    fn soft_locks_grant_immediately_with_warnings_to_both_sides() {
        let mut lt = LockTable::new(LockScheme::Soft);
        assert_eq!(
            lt.request_direct(ClientId(0), R, LockMode::Exclusive, t(0))
                .0,
            LockReply::Granted
        );
        let (reply, notices) = lt.request_direct(ClientId(1), R, LockMode::Exclusive, t(1));
        assert_eq!(reply, LockReply::GrantedConflict(vec![ClientId(0)]));
        assert_eq!(notices.len(), 1);
        assert_eq!(notices[0].to, ClientId(0));
        assert!(
            matches!(notices[0].kind, NoticeKind::ConflictWarning { with } if with == ClientId(1))
        );
        // Nobody ever blocks under soft locking.
        assert_eq!(lt.queue_len(R), 0);
        assert_eq!(lt.holders(R).len(), 2);
    }

    #[test]
    fn notification_locks_emit_awareness_on_every_access() {
        let mut lt = LockTable::new(LockScheme::Notification);
        lt.request_direct(ClientId(0), R, LockMode::Shared, t(0));
        let (reply, notices) = lt.request_direct(ClientId(1), R, LockMode::Shared, t(1));
        assert_eq!(reply, LockReply::Granted);
        assert_eq!(notices.len(), 1);
        assert!(matches!(
            notices[0].kind,
            NoticeKind::AccessNotification { by, mode: LockMode::Shared } if by == ClientId(1)
        ));
        // Exclusive still queues (it is a *lock*, not advisory)...
        let (reply2, notices2) = lt.request_direct(ClientId(2), R, LockMode::Exclusive, t(2));
        assert_eq!(reply2, LockReply::Queued);
        // ...but both holders heard about the attempt.
        assert_eq!(notices2.len(), 2);
    }

    #[test]
    fn tickle_transfers_after_idle_timeout() {
        let mut lt = LockTable::new(LockScheme::Tickle {
            idle_timeout: SimDuration::from_millis(100),
        });
        lt.request_direct(ClientId(0), R, LockMode::Exclusive, t(0));
        let (reply, notices) = lt.request_direct(ClientId(1), R, LockMode::Exclusive, t(50));
        assert_eq!(reply, LockReply::Queued);
        assert!(matches!(notices[0].kind, NoticeKind::TickleRequest { by } if by == ClientId(1)));
        // Holder still active at t=60: no transfer at t=120 (idle only 60ms).
        lt.touch(ClientId(0), R, t(60));
        assert!(lt.tick_direct(t(120)).is_empty());
        // At t=160 the holder has been idle 100ms: transfer.
        let notices = lt.tick_direct(t(160));
        assert_eq!(notices.len(), 2);
        assert!(matches!(notices[0].kind, NoticeKind::Revoked { to } if to == ClientId(1)));
        assert!(matches!(notices[1].kind, NoticeKind::Granted { .. }));
        assert_eq!(lt.holders(R), vec![(ClientId(1), LockMode::Exclusive)]);
    }

    #[test]
    fn tickle_active_holder_keeps_the_lock_indefinitely() {
        let mut lt = LockTable::new(LockScheme::Tickle {
            idle_timeout: SimDuration::from_millis(100),
        });
        lt.request_direct(ClientId(0), R, LockMode::Exclusive, t(0));
        lt.request_direct(ClientId(1), R, LockMode::Exclusive, t(10));
        for ms in (20..500).step_by(50) {
            lt.touch(ClientId(0), R, t(ms));
            assert!(lt.tick_direct(t(ms + 10)).is_empty(), "at {ms}");
        }
        assert_eq!(lt.holders(R), vec![(ClientId(0), LockMode::Exclusive)]);
    }

    #[test]
    fn release_all_frees_everything_and_promotes() {
        let mut lt = LockTable::new(LockScheme::Hard);
        let r2 = ResourceId(2);
        lt.request_direct(ClientId(0), R, LockMode::Exclusive, t(0));
        lt.request_direct(ClientId(0), r2, LockMode::Exclusive, t(0));
        lt.request_direct(ClientId(1), R, LockMode::Exclusive, t(1));
        lt.request_direct(ClientId(1), r2, LockMode::Shared, t(1));
        let notices = lt.release_all_direct(ClientId(0), t(2));
        assert_eq!(notices.len(), 2);
        assert_eq!(lt.holders(R), vec![(ClientId(1), LockMode::Exclusive)]);
        assert_eq!(lt.holders(r2), vec![(ClientId(1), LockMode::Shared)]);
    }

    #[test]
    fn upgrade_from_shared_to_exclusive_waits_for_other_readers() {
        let mut lt = LockTable::new(LockScheme::Hard);
        lt.request_direct(ClientId(0), R, LockMode::Shared, t(0));
        lt.request_direct(ClientId(1), R, LockMode::Shared, t(0));
        // Client 0 upgrades: must wait for client 1.
        let (reply, _) = lt.request_direct(ClientId(0), R, LockMode::Exclusive, t(1));
        assert_eq!(reply, LockReply::Queued);
        let notices = lt.release_direct(ClientId(1), R, t(2)).unwrap();
        assert_eq!(notices.len(), 1);
        assert_eq!(notices[0].to, ClientId(0));
        assert_eq!(lt.holders(R), vec![(ClientId(0), LockMode::Exclusive)]);
    }
}
