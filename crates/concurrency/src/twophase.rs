//! Strict two-phase-locking transactions: the serialisability baseline of
//! Figure 2a ("the approach in transaction mechanisms is to control shared
//! access by creating walls between the different users").
//!
//! The [`TxnManager`] is a sans-IO engine: operations either complete
//! immediately or block on a lock; blocked operations resume (as
//! [`TxnEvent::OpCompleted`]) when a commit or abort releases the lock.
//! Deadlocks are detected on a wait-for graph and resolved by aborting the
//! youngest transaction in the cycle.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use odp_sim::time::SimTime;

use crate::granularity::{unit_at, Granularity};
use crate::locks::{ClientId, LockMode, LockReply, LockScheme, LockTable, NoticeKind, ResourceId};
use crate::store::{ObjectId, ObjectStore, StoreError};

/// Identifies a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// What an operation does at its target position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Read the object's value (shared lock on the containing unit).
    Read,
    /// Insert text at the position (exclusive lock).
    Insert(String),
    /// Delete this many chars at the position (exclusive lock).
    Delete(usize),
}

/// One positional operation within a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnOp {
    /// Target object.
    pub object: ObjectId,
    /// Char position of the user's cursor (selects the locked unit).
    pub pos: usize,
    /// The action.
    pub kind: OpKind,
}

/// The result of a completed operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// The value read.
    Value(String),
    /// The new version after an edit.
    Applied {
        /// Post-edit version.
        version: u64,
    },
}

/// Immediate answer to [`TxnManager::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitReply {
    /// The operation completed.
    Done(OpResult),
    /// The operation is blocked on a lock; a [`TxnEvent`] will follow.
    Blocked,
}

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// Chosen as deadlock victim.
    Deadlock,
    /// Application-requested abort.
    Requested,
}

/// Deferred outcomes emitted when locks move between transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnEvent {
    /// A previously blocked operation completed.
    OpCompleted {
        /// The transaction whose operation resumed.
        txn: TxnId,
        /// Its result.
        result: OpResult,
    },
    /// A transaction was aborted (deadlock victim).
    TxnAborted {
        /// The victim.
        txn: TxnId,
        /// Why.
        reason: AbortReason,
    },
}

/// Errors from transaction operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnError {
    /// The transaction id is unknown or already finished.
    UnknownTxn(TxnId),
    /// A second operation was submitted while one is blocked.
    AlreadyBlocked(TxnId),
    /// The underlying store rejected the edit.
    Store(StoreError),
    /// Internal bookkeeping broke an invariant (a bug, not a caller
    /// error); the message names the broken invariant.
    Inconsistent(&'static str),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::UnknownTxn(t) => write!(f, "unknown or finished transaction {t}"),
            TxnError::AlreadyBlocked(t) => write!(f, "{t} already has a blocked operation"),
            TxnError::Store(e) => write!(f, "store error: {e}"),
            TxnError::Inconsistent(what) => write!(f, "manager state inconsistent: {what}"),
        }
    }
}

impl std::error::Error for TxnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TxnError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for TxnError {
    fn from(e: StoreError) -> Self {
        TxnError::Store(e)
    }
}

struct Txn {
    held: HashSet<ResourceId>,
    pending: Option<TxnOp>,
    waiting_on: Option<ResourceId>,
}

/// A strict-2PL transaction manager over an [`ObjectStore`].
///
/// # Examples
///
/// ```
/// use odp_concurrency::granularity::Granularity;
/// use odp_concurrency::store::ObjectId;
/// use odp_concurrency::twophase::{OpKind, SubmitReply, TxnManager, TxnOp};
/// use odp_sim::time::SimTime;
///
/// let mut tm = TxnManager::new(Granularity::Document);
/// tm.store_mut().create(ObjectId(1), "shared text");
/// let t1 = tm.begin();
/// let reply = tm.submit(t1, TxnOp { object: ObjectId(1), pos: 0, kind: OpKind::Read }, SimTime::ZERO)?;
/// assert!(matches!(reply, SubmitReply::Done(_)));
/// tm.commit(t1, SimTime::ZERO)?;
/// # Ok::<(), odp_concurrency::twophase::TxnError>(())
/// ```
pub struct TxnManager {
    table: LockTable,
    store: ObjectStore,
    txns: BTreeMap<TxnId, Txn>,
    next: u64,
    granularity: Granularity,
    aborts: u64,
    commits: u64,
}

impl TxnManager {
    /// Creates a manager locking at the given granularity.
    pub fn new(granularity: Granularity) -> Self {
        TxnManager {
            table: LockTable::new(LockScheme::Hard),
            store: ObjectStore::new(),
            txns: BTreeMap::new(),
            next: 0,
            granularity,
            aborts: 0,
            commits: 0,
        }
    }

    /// The backing store (pre-populate objects here).
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// Read access to the store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The locking granularity in force.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Read access to the lock table (consistency checkers walk it).
    pub fn lock_table(&self) -> &LockTable {
        &self.table
    }

    /// Total committed transactions.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Total aborted transactions (deadlock victims + requested).
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Starts a transaction.
    pub fn begin(&mut self) -> TxnId {
        let id = TxnId(self.next);
        self.next += 1;
        self.txns.insert(
            id,
            Txn {
                held: HashSet::new(),
                pending: None,
                waiting_on: None,
            },
        );
        id
    }

    fn lock_client(txn: TxnId) -> ClientId {
        ClientId(txn.0 as u32)
    }

    fn resource_for(&self, op: &TxnOp) -> ResourceId {
        let text = self
            .store
            .read(op.object)
            .map(|v| v.value.clone())
            .unwrap_or_default();
        ResourceId::with_unit(op.object, unit_at(&text, op.pos, self.granularity))
    }

    /// Submits an operation. Completes immediately or blocks; blocked
    /// operations finish via events from a later `commit`/`abort`.
    ///
    /// # Errors
    ///
    /// Fails on unknown transactions, double-blocking, or store errors.
    /// A deadlock does **not** return an error here: the victim learns of
    /// its abort through [`TxnEvent::TxnAborted`] in the returned events.
    pub fn submit(&mut self, txn: TxnId, op: TxnOp, now: SimTime) -> Result<SubmitReply, TxnError> {
        let (reply, _events) = self.submit_with_events(txn, op, now)?;
        Ok(reply)
    }

    /// Like [`TxnManager::submit`] but also returns events caused by
    /// deadlock resolution (a victim's abort can resume other
    /// transactions).
    pub fn submit_with_events(
        &mut self,
        txn: TxnId,
        op: TxnOp,
        now: SimTime,
    ) -> Result<(SubmitReply, Vec<TxnEvent>), TxnError> {
        let state = self.txns.get(&txn).ok_or(TxnError::UnknownTxn(txn))?;
        if state.pending.is_some() {
            return Err(TxnError::AlreadyBlocked(txn));
        }
        let resource = self.resource_for(&op);
        let mode = match op.kind {
            OpKind::Read => LockMode::Shared,
            OpKind::Insert(_) | OpKind::Delete(_) => LockMode::Exclusive,
        };
        // The 2PL scheduler consumes raw notices to drive TxnEvents; its
        // cooperative surface is the TxnEvent layer, not the bus.
        let (reply, _notices) =
            self.table
                .request_direct(Self::lock_client(txn), resource, mode, now);
        match reply {
            LockReply::Granted => {
                let result = self.perform(txn, &op)?;
                let state = self
                    .txns
                    .get_mut(&txn)
                    .ok_or(TxnError::Inconsistent("granted txn vanished"))?;
                state.held.insert(resource);
                Ok((SubmitReply::Done(result), Vec::new()))
            }
            LockReply::Queued => {
                let state = self
                    .txns
                    .get_mut(&txn)
                    .ok_or(TxnError::Inconsistent("queued txn vanished"))?;
                state.pending = Some(op);
                state.waiting_on = Some(resource);
                let events = self.resolve_deadlocks(now);
                Ok((SubmitReply::Blocked, events))
            }
            LockReply::GrantedConflict(_) => unreachable!("hard locks never soft-grant"),
        }
    }

    fn perform(&mut self, _txn: TxnId, op: &TxnOp) -> Result<OpResult, TxnError> {
        match &op.kind {
            OpKind::Read => Ok(OpResult::Value(self.store.read(op.object)?.value.clone())),
            OpKind::Insert(text) => {
                let version = self.store.insert(op.object, op.pos, text)?;
                Ok(OpResult::Applied { version })
            }
            OpKind::Delete(len) => {
                let version = self.store.delete(op.object, op.pos, *len)?;
                Ok(OpResult::Applied { version })
            }
        }
    }

    /// Commits a transaction, releasing its locks. Returns resumption /
    /// abort events for other transactions.
    ///
    /// # Errors
    ///
    /// [`TxnError::UnknownTxn`] if the transaction is not active.
    pub fn commit(&mut self, txn: TxnId, now: SimTime) -> Result<Vec<TxnEvent>, TxnError> {
        self.txns.get(&txn).ok_or(TxnError::UnknownTxn(txn))?;
        self.commits += 1;
        self.finish(txn, now)
    }

    /// Aborts a transaction (voluntarily), releasing its locks.
    ///
    /// # Errors
    ///
    /// [`TxnError::UnknownTxn`] if the transaction is not active.
    pub fn abort(&mut self, txn: TxnId, now: SimTime) -> Result<Vec<TxnEvent>, TxnError> {
        self.txns.get(&txn).ok_or(TxnError::UnknownTxn(txn))?;
        self.aborts += 1;
        self.finish(txn, now)
    }

    fn finish(&mut self, txn: TxnId, now: SimTime) -> Result<Vec<TxnEvent>, TxnError> {
        self.txns.remove(&txn).ok_or(TxnError::UnknownTxn(txn))?;
        let notices = self.table.release_all_direct(Self::lock_client(txn), now);
        let mut events = Vec::new();
        for notice in notices {
            if let NoticeKind::Granted { .. } = notice.kind {
                let resumed = TxnId(notice.to.0 as u64);
                if let Some(state) = self.txns.get_mut(&resumed) {
                    if state.waiting_on == Some(notice.resource) {
                        let op = state
                            .pending
                            .take()
                            .ok_or(TxnError::Inconsistent("blocked txn lost its pending op"))?;
                        state.waiting_on = None;
                        state.held.insert(notice.resource);
                        let result = self.perform(resumed, &op)?;
                        events.push(TxnEvent::OpCompleted {
                            txn: resumed,
                            result,
                        });
                    }
                }
            }
        }
        Ok(events)
    }

    /// Builds the wait-for graph and aborts the youngest transaction of
    /// any cycle until none remain.
    fn resolve_deadlocks(&mut self, now: SimTime) -> Vec<TxnEvent> {
        let mut events = Vec::new();
        while let Some(cycle) = self.find_cycle() {
            let Some(victim) = cycle.iter().max().copied() else {
                break; // find_cycle never returns an empty cycle
            };
            self.aborts += 1;
            events.push(TxnEvent::TxnAborted {
                txn: victim,
                reason: AbortReason::Deadlock,
            });
            match self.finish(victim, now) {
                Ok(more) => events.extend(more),
                Err(e) => unreachable!("victim was active: {e}"),
            }
        }
        events
    }

    fn find_cycle(&self) -> Option<Vec<TxnId>> {
        // Edges: waiter -> every holder of the resource it waits on.
        let mut edges: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        for (&id, txn) in &self.txns {
            if let Some(resource) = txn.waiting_on {
                for (holder_client, _) in self.table.holders(resource) {
                    let holder = TxnId(holder_client.0 as u64);
                    if holder != id {
                        edges.entry(id).or_default().push(holder);
                    }
                }
            }
        }
        // DFS cycle detection.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: HashMap<TxnId, Mark> = self.txns.keys().map(|&k| (k, Mark::White)).collect();
        fn dfs(
            node: TxnId,
            edges: &HashMap<TxnId, Vec<TxnId>>,
            marks: &mut HashMap<TxnId, Mark>,
            stack: &mut Vec<TxnId>,
        ) -> Option<Vec<TxnId>> {
            marks.insert(node, Mark::Grey);
            stack.push(node);
            for &next in edges.get(&node).map(|v| v.as_slice()).unwrap_or(&[]) {
                match marks.get(&next).copied().unwrap_or(Mark::Black) {
                    Mark::Grey => {
                        // A Grey node is on the DFS stack by construction.
                        // odp-check: allow(unwrap)
                        let pos = stack.iter().position(|&n| n == next).expect("on stack");
                        return Some(stack[pos..].to_vec());
                    }
                    Mark::White => {
                        if let Some(c) = dfs(next, edges, marks, stack) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
            stack.pop();
            marks.insert(node, Mark::Black);
            None
        }
        let nodes: Vec<TxnId> = self.txns.keys().copied().collect();
        for node in nodes {
            if marks[&node] == Mark::White {
                let mut stack = Vec::new();
                if let Some(c) = dfs(node, &edges, &mut marks, &mut stack) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// Number of active transactions.
    pub fn active(&self) -> usize {
        self.txns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn manager(g: Granularity) -> TxnManager {
        let mut tm = TxnManager::new(g);
        tm.store_mut().create(
            ObjectId(1),
            "First sentence. Second sentence. Third sentence.",
        );
        tm
    }

    fn read(obj: u64, pos: usize) -> TxnOp {
        TxnOp {
            object: ObjectId(obj),
            pos,
            kind: OpKind::Read,
        }
    }

    fn insert(obj: u64, pos: usize, s: &str) -> TxnOp {
        TxnOp {
            object: ObjectId(obj),
            pos,
            kind: OpKind::Insert(s.to_owned()),
        }
    }

    #[test]
    fn read_write_commit_cycle() {
        let mut tm = manager(Granularity::Document);
        let t1 = tm.begin();
        assert!(matches!(
            tm.submit(t1, read(1, 0), t(0)).unwrap(),
            SubmitReply::Done(OpResult::Value(_))
        ));
        assert!(matches!(
            tm.submit(t1, insert(1, 0, "X"), t(1)).unwrap(),
            SubmitReply::Done(OpResult::Applied { version: 1 })
        ));
        assert!(tm.commit(t1, t(2)).unwrap().is_empty());
        assert_eq!(tm.commits(), 1);
        assert_eq!(tm.active(), 0);
    }

    #[test]
    fn writer_blocks_writer_until_commit() {
        let mut tm = manager(Granularity::Document);
        let t1 = tm.begin();
        let t2 = tm.begin();
        assert!(matches!(
            tm.submit(t1, insert(1, 0, "A"), t(0)).unwrap(),
            SubmitReply::Done(_)
        ));
        assert_eq!(
            tm.submit(t2, insert(1, 5, "B"), t(1)).unwrap(),
            SubmitReply::Blocked
        );
        let events = tm.commit(t1, t(2)).unwrap();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], TxnEvent::OpCompleted { txn, .. } if txn == t2));
    }

    #[test]
    fn concurrent_readers_do_not_block() {
        let mut tm = manager(Granularity::Document);
        let t1 = tm.begin();
        let t2 = tm.begin();
        assert!(matches!(
            tm.submit(t1, read(1, 0), t(0)).unwrap(),
            SubmitReply::Done(_)
        ));
        assert!(matches!(
            tm.submit(t2, read(1, 0), t(0)).unwrap(),
            SubmitReply::Done(_)
        ));
    }

    #[test]
    fn sentence_granularity_allows_disjoint_writes() {
        let mut tm = manager(Granularity::Sentence);
        let t1 = tm.begin();
        let t2 = tm.begin();
        // Sentence 1 starts at 0; sentence 2 around pos 20.
        assert!(matches!(
            tm.submit(t1, insert(1, 2, "x"), t(0)).unwrap(),
            SubmitReply::Done(_)
        ));
        assert!(matches!(
            tm.submit(t2, insert(1, 20, "y"), t(0)).unwrap(),
            SubmitReply::Done(_)
        ));
    }

    #[test]
    fn document_granularity_serialises_the_same_writes() {
        let mut tm = manager(Granularity::Document);
        let t1 = tm.begin();
        let t2 = tm.begin();
        assert!(matches!(
            tm.submit(t1, insert(1, 2, "x"), t(0)).unwrap(),
            SubmitReply::Done(_)
        ));
        assert_eq!(
            tm.submit(t2, insert(1, 20, "y"), t(0)).unwrap(),
            SubmitReply::Blocked
        );
    }

    #[test]
    fn deadlock_is_detected_and_youngest_aborts() {
        let mut tm = TxnManager::new(Granularity::Document);
        tm.store_mut().create(ObjectId(1), "a");
        tm.store_mut().create(ObjectId(2), "b");
        let t1 = tm.begin();
        let t2 = tm.begin();
        // t1 holds obj1, t2 holds obj2.
        assert!(matches!(
            tm.submit(t1, insert(1, 0, "x"), t(0)).unwrap(),
            SubmitReply::Done(_)
        ));
        assert!(matches!(
            tm.submit(t2, insert(2, 0, "y"), t(0)).unwrap(),
            SubmitReply::Done(_)
        ));
        // t1 waits for obj2.
        assert_eq!(
            tm.submit(t1, insert(2, 0, "z"), t(1)).unwrap(),
            SubmitReply::Blocked
        );
        // t2 waits for obj1 -> cycle; t2 (youngest) aborts; t1 resumes.
        let (reply, events) = tm.submit_with_events(t2, insert(1, 0, "w"), t(2)).unwrap();
        assert_eq!(reply, SubmitReply::Blocked);
        assert!(events.contains(&TxnEvent::TxnAborted {
            txn: t2,
            reason: AbortReason::Deadlock
        }));
        assert!(events
            .iter()
            .any(|e| matches!(e, TxnEvent::OpCompleted { txn, .. } if *txn == t1)));
        assert_eq!(tm.aborts(), 1);
        assert_eq!(tm.active(), 1);
    }

    #[test]
    fn double_submit_while_blocked_is_an_error() {
        let mut tm = manager(Granularity::Document);
        let t1 = tm.begin();
        let t2 = tm.begin();
        tm.submit(t1, insert(1, 0, "a"), t(0)).unwrap();
        tm.submit(t2, insert(1, 0, "b"), t(0)).unwrap();
        assert_eq!(
            tm.submit(t2, read(1, 0), t(1)).unwrap_err(),
            TxnError::AlreadyBlocked(t2)
        );
    }

    #[test]
    fn operations_on_finished_txn_fail() {
        let mut tm = manager(Granularity::Document);
        let t1 = tm.begin();
        tm.commit(t1, t(0)).unwrap();
        assert_eq!(
            tm.submit(t1, read(1, 0), t(1)).unwrap_err(),
            TxnError::UnknownTxn(t1)
        );
        assert_eq!(tm.commit(t1, t(1)).unwrap_err(), TxnError::UnknownTxn(t1));
    }

    #[test]
    fn voluntary_abort_releases_locks() {
        let mut tm = manager(Granularity::Document);
        let t1 = tm.begin();
        let t2 = tm.begin();
        tm.submit(t1, insert(1, 0, "a"), t(0)).unwrap();
        tm.submit(t2, insert(1, 0, "b"), t(0)).unwrap();
        let events = tm.abort(t1, t(1)).unwrap();
        assert!(matches!(events[0], TxnEvent::OpCompleted { txn, .. } if txn == t2));
        assert_eq!(tm.aborts(), 1);
    }

    #[test]
    fn store_error_propagates() {
        let mut tm = manager(Granularity::Document);
        let t1 = tm.begin();
        let bad = TxnOp {
            object: ObjectId(99),
            pos: 0,
            kind: OpKind::Read,
        };
        assert!(matches!(
            tm.submit(t1, bad, t(0)),
            Err(TxnError::Store(StoreError::UnknownObject(_)))
        ));
    }
}
