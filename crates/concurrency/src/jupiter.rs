//! Client–server operational transformation (the Jupiter / NLS "two-way
//! bridge" algorithm).
//!
//! GROVE's peer-to-peer dOPT (see [`crate::dopt`]) is the historically
//! faithful scheme; Jupiter is the provably convergent refinement used by
//! the experiments: each client synchronises with a central serialising
//! server over an independent two-party bridge, and only the TP1 property
//! of [`crate::ot::transform`] is required for convergence.
//!
//! Local edits apply immediately (the Ellis *response time* requirement);
//! propagation to peers costs one client→server→client relay (the
//! *notification time*).

use std::collections::BTreeMap;

use crate::ot::{transform_pair, CharOp, TieBreak};

/// An operation in flight between a client and the server, stamped with
/// the sender's bridge state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMsg {
    /// How many ops the sender had generated before this one.
    pub sent: u64,
    /// How many of the receiver's ops the sender had seen.
    pub seen: u64,
    /// The operation, in the sender's current context.
    pub op: CharOp,
}

/// One end of a client↔server bridge.
///
/// `tie` must be [`TieBreak::OpWins`] on exactly one end (we fix: the
/// **client** end wins insert ties), mirrored on the other.
#[derive(Debug, Clone)]
pub struct Bridge {
    generated: u64,
    received: u64,
    outgoing: Vec<(u64, CharOp)>,
    /// Tie-break applied to *incoming* ops transformed against local ones.
    incoming_tie: TieBreak,
}

impl Bridge {
    /// Creates the client end of a bridge.
    pub fn client_end() -> Self {
        Bridge {
            generated: 0,
            received: 0,
            outgoing: Vec::new(),
            // Incoming (server) ops lose ties to our local ops.
            incoming_tie: TieBreak::AgainstWins,
        }
    }

    /// Creates the server end of a bridge.
    pub fn server_end() -> Self {
        Bridge {
            generated: 0,
            received: 0,
            outgoing: Vec::new(),
            // Incoming (client) ops win ties over our local ops.
            incoming_tie: TieBreak::OpWins,
        }
    }

    /// Records a locally applied op and returns the message to transmit.
    pub fn send(&mut self, op: CharOp) -> OpMsg {
        let msg = OpMsg {
            sent: self.generated,
            seen: self.received,
            op,
        };
        self.outgoing.push((self.generated, op));
        self.generated += 1;
        msg
    }

    /// Processes an incoming message, returning the op transformed into
    /// the local context (apply it to the local document).
    pub fn receive(&mut self, msg: OpMsg) -> CharOp {
        // Drop ops the peer has acknowledged.
        self.outgoing.retain(|&(idx, _)| idx >= msg.seen);
        // Transform the incoming op across every op still in flight.
        let mut incoming = msg.op;
        for entry in self.outgoing.iter_mut() {
            let (inc2, out2) = transform_pair(incoming, entry.1, self.incoming_tie);
            incoming = inc2;
            entry.1 = out2;
        }
        self.received += 1;
        incoming
    }

    /// Ops sent but not yet acknowledged by the peer.
    pub fn in_flight(&self) -> usize {
        self.outgoing.len()
    }
}

/// The server side: one bridge per client plus the authoritative document.
///
/// # Examples
///
/// ```
/// use odp_concurrency::jupiter::{Bridge, OtServer};
/// use odp_concurrency::ot::{CharOp, TextDoc};
///
/// let mut server = OtServer::new("ab");
/// server.add_client(1);
/// server.add_client(2);
///
/// // Client 1 inserts 'X' at 0 locally and sends.
/// let mut c1 = Bridge::client_end();
/// let mut doc1 = TextDoc::from("ab");
/// doc1.apply(CharOp::Insert { pos: 0, ch: 'X' })?;
/// let msg = c1.send(CharOp::Insert { pos: 0, ch: 'X' });
/// let fanout = server.client_message(1, msg).unwrap();
/// assert_eq!(server.text(), "Xab");
/// assert_eq!(fanout.len(), 1, "relayed to client 2");
/// # Ok::<(), odp_concurrency::ot::ApplyError>(())
/// ```
#[derive(Debug)]
pub struct OtServer {
    doc: crate::ot::TextDoc,
    bridges: BTreeMap<u32, Bridge>,
}

/// Error for messages from unknown clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownClient(pub u32);

impl std::fmt::Display for UnknownClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown ot client {}", self.0)
    }
}

impl std::error::Error for UnknownClient {}

impl OtServer {
    /// Creates a server with an initial document.
    pub fn new(initial: &str) -> Self {
        OtServer {
            doc: crate::ot::TextDoc::from(initial),
            bridges: BTreeMap::new(),
        }
    }

    /// Registers a client connection.
    pub fn add_client(&mut self, client: u32) {
        self.bridges.insert(client, Bridge::server_end());
    }

    /// Removes a client connection.
    pub fn remove_client(&mut self, client: u32) {
        self.bridges.remove(&client);
    }

    /// The authoritative text.
    pub fn text(&self) -> String {
        self.doc.text()
    }

    /// Handles a client message: applies it to the authoritative document
    /// and returns `(client, message)` relays for every *other* client.
    ///
    /// # Errors
    ///
    /// [`UnknownClient`] if the sender was never added.
    pub fn client_message(
        &mut self,
        from: u32,
        msg: OpMsg,
    ) -> Result<Vec<(u32, OpMsg)>, UnknownClient> {
        let bridge = self.bridges.get_mut(&from).ok_or(UnknownClient(from))?;
        let op = bridge.receive(msg);
        // The bridge transform keeps client ops applicable; a failure is
        // a transformation bug, and the authoritative doc must not drift.
        self.doc
            .apply(op)
            // odp-check: allow(unwrap)
            .expect("transformed op applies to authoritative doc");
        let mut fanout = Vec::new();
        for (&client, bridge) in self.bridges.iter_mut() {
            if client != from {
                fanout.push((client, bridge.send(op)));
            }
        }
        Ok(fanout)
    }
}

/// The client side: a bridge plus the local replica.
#[derive(Debug)]
pub struct OtClient {
    /// Client identity (as registered with the server).
    pub id: u32,
    doc: crate::ot::TextDoc,
    bridge: Bridge,
}

impl OtClient {
    /// Creates a client replica with the same initial document as the
    /// server.
    pub fn new(id: u32, initial: &str) -> Self {
        OtClient {
            id,
            doc: crate::ot::TextDoc::from(initial),
            bridge: Bridge::client_end(),
        }
    }

    /// The local text.
    pub fn text(&self) -> String {
        self.doc.text()
    }

    /// Applies a local edit immediately and returns the message for the
    /// server.
    ///
    /// # Errors
    ///
    /// [`crate::ot::ApplyError`] if the op is out of bounds locally.
    pub fn local_edit(&mut self, op: CharOp) -> Result<OpMsg, crate::ot::ApplyError> {
        self.doc.apply(op)?;
        Ok(self.bridge.send(op))
    }

    /// Integrates a message from the server into the local replica.
    pub fn server_message(&mut self, msg: OpMsg) {
        let op = self.bridge.receive(msg);
        // Same invariant as the server side: transformed ops apply.
        self.doc
            .apply(op)
            // odp-check: allow(unwrap)
            .expect("transformed op applies to replica");
    }

    /// Ops awaiting server acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.bridge.in_flight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ot::CharOp::*;

    /// A tiny in-order message fabric between clients and server.
    struct Fabric {
        server: OtServer,
        clients: Vec<OtClient>,
        to_server: Vec<(u32, OpMsg)>,
        to_client: Vec<(u32, OpMsg)>,
    }

    impl Fabric {
        fn new(n: u32, initial: &str) -> Self {
            let mut server = OtServer::new(initial);
            let clients = (0..n)
                .map(|i| {
                    server.add_client(i);
                    OtClient::new(i, initial)
                })
                .collect();
            Fabric {
                server,
                clients,
                to_server: Vec::new(),
                to_client: Vec::new(),
            }
        }

        fn edit(&mut self, client: u32, op: CharOp) {
            let msg = self.clients[client as usize].local_edit(op).unwrap();
            self.to_server.push((client, msg));
        }

        fn drain(&mut self) {
            // Links are FIFO: deliver in send order per queue.
            while !self.to_server.is_empty() || !self.to_client.is_empty() {
                if !self.to_server.is_empty() {
                    let (from, msg) = self.to_server.remove(0);
                    let fanout = self.server.client_message(from, msg).unwrap();
                    self.to_client.extend(fanout);
                }
                if !self.to_client.is_empty() {
                    let (to, msg) = self.to_client.remove(0);
                    self.clients[to as usize].server_message(msg);
                }
            }
        }

        fn assert_converged(&self) {
            for c in &self.clients {
                assert_eq!(c.text(), self.server.text(), "client {} diverged", c.id);
            }
        }
    }

    #[test]
    fn concurrent_inserts_converge() {
        let mut f = Fabric::new(2, "ab");
        f.edit(0, Insert { pos: 1, ch: 'X' });
        f.edit(1, Insert { pos: 1, ch: 'Y' });
        f.drain();
        f.assert_converged();
        assert_eq!(f.server.text().len(), 4);
    }

    #[test]
    fn concurrent_insert_and_delete_converge() {
        let mut f = Fabric::new(2, "abcd");
        f.edit(0, Delete { pos: 1 });
        f.edit(1, Insert { pos: 3, ch: 'Z' });
        f.drain();
        f.assert_converged();
    }

    #[test]
    fn duplicate_concurrent_deletes_converge() {
        let mut f = Fabric::new(3, "abcd");
        f.edit(0, Delete { pos: 2 });
        f.edit(1, Delete { pos: 2 });
        f.edit(2, Insert { pos: 0, ch: 'Q' });
        f.drain();
        f.assert_converged();
        assert_eq!(f.server.text(), "Qabd");
    }

    #[test]
    fn rapid_uncoordinated_typing_converges() {
        let mut f = Fabric::new(3, "");
        // Interleave local edits without draining (high concurrency).
        for k in 0..5 {
            for c in 0..3u32 {
                let pos = (k as usize).min(f.clients[c as usize].text().len());
                f.edit(
                    c,
                    Insert {
                        pos,
                        ch: char::from(b'a' + c as u8),
                    },
                );
            }
        }
        f.drain();
        f.assert_converged();
        assert_eq!(f.server.text().len(), 15);
    }

    #[test]
    fn local_edits_apply_immediately() {
        let mut c = OtClient::new(0, "hello");
        c.local_edit(Insert { pos: 5, ch: '!' }).unwrap();
        assert_eq!(c.text(), "hello!", "no round trip needed");
        assert_eq!(c.in_flight(), 1);
    }

    #[test]
    fn unknown_client_is_an_error() {
        let mut s = OtServer::new("");
        let msg = OpMsg {
            sent: 0,
            seen: 0,
            op: Noop,
        };
        assert_eq!(s.client_message(7, msg).unwrap_err(), UnknownClient(7));
    }

    #[test]
    fn out_of_bounds_local_edit_is_an_error() {
        let mut c = OtClient::new(0, "ab");
        assert!(c.local_edit(Delete { pos: 5 }).is_err());
        assert_eq!(c.text(), "ab");
    }
}
