//! dOPT: the distributed operational transformation algorithm of GROVE
//! (Ellis & Gibbs 1989), peer-to-peer with vector-clock causality.
//!
//! This is the historically faithful algorithm the paper cites. Each site
//! applies local operations immediately, stamps them with its vector
//! clock, and broadcasts them; remote operations wait until causally
//! ready, are transformed against concurrent operations in the site's
//! log, and then applied.
//!
//! **Known limitation** (the "dOPT puzzle", documented in later
//! literature): with three or more sites and certain interleavings of
//! *mutually concurrent* operations, sites may transform against the same
//! concurrent set in different orders and diverge. The experiments in
//! this workspace therefore use the provably convergent client–server
//! scheme in [`crate::jupiter`]; `dopt` is provided for fidelity to the
//! paper and is guaranteed convergent for two sites (see tests).

use odp_awareness::bus::{BusDelivery, CoopEvent, CoopKind, EventBus};
use odp_groupcomm::vclock::{Causality, VectorClock};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;

use crate::ot::{transform_pair, ApplyError, CharOp, TextDoc, TieBreak};

/// Artefact path used for dOPT remote-op cooperation events.
pub const DOPT_ARTEFACT: &str = "doc";

/// A stamped operation broadcast between sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteOp {
    /// Originating site.
    pub site: NodeId,
    /// The origin's vector clock *after* generating the op (so
    /// `clock[site]` numbers the op itself).
    pub clock: VectorClock,
    /// The operation, in the origin's context at generation time.
    pub op: CharOp,
}

#[derive(Debug, Clone)]
struct LogEntry {
    site: NodeId,
    clock: VectorClock,
    /// The op in the form it was executed at this site.
    executed: CharOp,
}

/// One collaborating site.
///
/// # Examples
///
/// ```
/// use odp_concurrency::dopt::DoptSite;
/// use odp_concurrency::ot::CharOp;
/// use odp_sim::net::NodeId;
///
/// let mut a = DoptSite::new(NodeId(0), "ab");
/// let mut b = DoptSite::new(NodeId(1), "ab");
/// let op_a = a.local(CharOp::Insert { pos: 1, ch: 'X' })?;
/// let op_b = b.local(CharOp::Insert { pos: 1, ch: 'Y' })?;
/// a.receive(op_b);
/// b.receive(op_a);
/// assert_eq!(a.text(), b.text(), "concurrent inserts converge");
/// # Ok::<(), odp_concurrency::ot::ApplyError>(())
/// ```
#[derive(Debug)]
pub struct DoptSite {
    site: NodeId,
    doc: TextDoc,
    clock: VectorClock,
    log: Vec<LogEntry>,
    pending: Vec<RemoteOp>,
}

impl DoptSite {
    /// Creates a site replica with the shared initial text.
    pub fn new(site: NodeId, initial: &str) -> Self {
        DoptSite {
            site,
            doc: TextDoc::from(initial),
            clock: VectorClock::new(),
            log: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// This site's id.
    pub fn site(&self) -> NodeId {
        self.site
    }

    /// The local text.
    pub fn text(&self) -> String {
        self.doc.text()
    }

    /// Remote operations waiting for causal predecessors.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Applies a local edit immediately and returns the stamped op to
    /// broadcast to the other sites.
    ///
    /// # Errors
    ///
    /// [`ApplyError`] if the edit is out of bounds.
    pub fn local(&mut self, op: CharOp) -> Result<RemoteOp, ApplyError> {
        self.doc.apply(op)?;
        self.clock.tick(self.site);
        let stamped = RemoteOp {
            site: self.site,
            clock: self.clock.clone(),
            op,
        };
        self.log.push(LogEntry {
            site: self.site,
            clock: self.clock.clone(),
            executed: op,
        });
        Ok(stamped)
    }

    /// Integrates a remote operation (possibly deferring it until its
    /// causal predecessors arrive). Returns the ops actually applied to
    /// the local document, in application order.
    pub fn receive(&mut self, op: RemoteOp) -> Vec<CharOp> {
        self.receive_inner(op)
            .into_iter()
            .map(|(_, executed)| executed)
            .collect()
    }

    /// Like [`DoptSite::receive`], but every remote op actually applied
    /// is also announced on the cooperation-event bus as a
    /// [`CoopKind::RemoteOp`] broadcast from the *originating* site — so
    /// co-authors become aware of whose edit just landed, not merely
    /// that the text changed.
    pub fn receive_via(
        &mut self,
        bus: &mut EventBus,
        op: RemoteOp,
        at: SimTime,
    ) -> (Vec<CharOp>, Vec<BusDelivery>) {
        let mut executed = Vec::new();
        let mut deliveries = Vec::new();
        for (remote, applied) in self.receive_inner(op) {
            executed.push(applied);
            deliveries.extend(bus.publish(CoopEvent::broadcast(
                remote.site,
                DOPT_ARTEFACT,
                at,
                CoopKind::RemoteOp {
                    site: remote.site,
                    seq: remote.clock.get(remote.site),
                },
            )));
        }
        (executed, deliveries)
    }

    fn receive_inner(&mut self, op: RemoteOp) -> Vec<(RemoteOp, CharOp)> {
        self.pending.push(op);
        let mut applied = Vec::new();
        loop {
            let ready = self
                .pending
                .iter()
                .position(|r| self.clock.deliverable(&r.clock, r.site));
            let Some(idx) = ready else { break };
            let remote = self.pending.remove(idx);
            let executed = self.integrate(&remote);
            applied.push((remote, executed));
        }
        applied
    }

    fn integrate(&mut self, remote: &RemoteOp) -> CharOp {
        // Transform against every logged op concurrent with the remote op,
        // in the order this site executed them (the dOPT rule). Each
        // concurrent log entry is itself re-transformed against the
        // incoming op so that later arrivals — whose context includes this
        // op — meet log entries expressed in the matching context (the
        // two-party "bridge" fold; without it even two sites diverge).
        let mut op = remote.op;
        for entry in &mut self.log {
            if remote.clock.compare(&entry.clock) == Causality::Concurrent {
                let tie = if remote.site.0 < entry.site.0 {
                    TieBreak::OpWins
                } else {
                    TieBreak::AgainstWins
                };
                let (op2, entry2) = transform_pair(op, entry.executed, tie);
                op = op2;
                entry.executed = entry2;
            }
        }
        // OT transformation keeps remote ops applicable; failing here is
        // a transformation-function bug and fail-stop is the only safe
        // response for a replica.
        self.doc
            .apply(op)
            // odp-check: allow(unwrap)
            .expect("transformed remote op applies cleanly");
        self.clock.tick(remote.site);
        self.log.push(LogEntry {
            site: remote.site,
            clock: remote.clock.clone(),
            executed: op,
        });
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ot::CharOp::*;

    #[test]
    fn sequential_ops_need_no_transformation() {
        let mut a = DoptSite::new(NodeId(0), "ab");
        let mut b = DoptSite::new(NodeId(1), "ab");
        let op1 = a.local(Insert { pos: 0, ch: 'X' }).unwrap();
        b.receive(op1);
        let op2 = b.local(Insert { pos: 3, ch: 'Y' }).unwrap();
        a.receive(op2);
        assert_eq!(a.text(), "XabY");
        assert_eq!(b.text(), "XabY");
    }

    #[test]
    fn concurrent_edits_converge_for_two_sites() {
        let mut a = DoptSite::new(NodeId(0), "abcd");
        let mut b = DoptSite::new(NodeId(1), "abcd");
        let oa = a.local(Delete { pos: 1 }).unwrap();
        let ob = b.local(Insert { pos: 2, ch: 'Z' }).unwrap();
        a.receive(ob);
        b.receive(oa);
        assert_eq!(a.text(), b.text());
        assert_eq!(a.text(), "aZcd".to_owned());
    }

    #[test]
    fn out_of_causal_order_delivery_is_buffered() {
        let mut a = DoptSite::new(NodeId(0), "x");
        let mut b = DoptSite::new(NodeId(1), "x");
        let op1 = a.local(Insert { pos: 1, ch: '1' }).unwrap();
        // a's second op causally follows its first.
        let op2 = a.local(Insert { pos: 2, ch: '2' }).unwrap();
        // b receives op2 first: must buffer.
        assert!(b.receive(op2).is_empty());
        assert_eq!(b.pending(), 1);
        let applied = b.receive(op1);
        assert_eq!(applied.len(), 2, "both apply once the gap fills");
        assert_eq!(b.text(), "x12");
    }

    #[test]
    fn two_site_random_convergence() {
        use odp_sim::rng::DetRng;
        for seed in 0..20u64 {
            let mut rng = DetRng::seed_from(seed);
            let mut a = DoptSite::new(NodeId(0), "seed text");
            let mut b = DoptSite::new(NodeId(1), "seed text");
            let mut from_a = Vec::new();
            let mut from_b = Vec::new();
            for _ in 0..10 {
                // Each site makes a random valid local edit.
                let la = a.text().chars().count();
                let op_a = if rng.chance(0.5) || la == 0 {
                    Insert {
                        pos: rng.index(la + 1),
                        ch: 'a',
                    }
                } else {
                    Delete { pos: rng.index(la) }
                };
                from_a.push(a.local(op_a).unwrap());
                let lb = b.text().chars().count();
                let op_b = if rng.chance(0.5) || lb == 0 {
                    Insert {
                        pos: rng.index(lb + 1),
                        ch: 'b',
                    }
                } else {
                    Delete { pos: rng.index(lb) }
                };
                from_b.push(b.local(op_b).unwrap());
            }
            // Exchange everything (causal order preserved per sender).
            for op in from_b {
                a.receive(op);
            }
            for op in from_a {
                b.receive(op);
            }
            assert_eq!(a.text(), b.text(), "diverged at seed {seed}");
            assert_eq!(a.pending(), 0);
            assert_eq!(b.pending(), 0);
        }
    }

    #[test]
    fn local_response_is_immediate() {
        let mut a = DoptSite::new(NodeId(0), "");
        a.local(Insert { pos: 0, ch: 'h' }).unwrap();
        a.local(Insert { pos: 1, ch: 'i' }).unwrap();
        assert_eq!(a.text(), "hi", "no communication required");
    }

    #[test]
    fn out_of_bounds_local_edit_fails_cleanly() {
        let mut a = DoptSite::new(NodeId(0), "ab");
        assert!(a.local(Delete { pos: 7 }).is_err());
        assert_eq!(a.text(), "ab");
    }

    #[test]
    fn via_integration_announces_the_originating_site() {
        let mut bus = EventBus::new();
        bus.register(NodeId(0), 0.0);
        bus.register(NodeId(2), 0.0);
        let mut a = DoptSite::new(NodeId(0), "x");
        let mut b = DoptSite::new(NodeId(1), "x");
        let op1 = b.local(Insert { pos: 1, ch: '1' }).unwrap();
        let op2 = b.local(Insert { pos: 2, ch: '2' }).unwrap();
        // Deliver out of causal order: op2 buffers, op1 releases both.
        let (executed, seen) = a.receive_via(&mut bus, op2, SimTime::ZERO);
        assert!(executed.is_empty() && seen.is_empty());
        let (executed, seen) = a.receive_via(&mut bus, op1, SimTime::ZERO);
        assert_eq!(executed.len(), 2);
        // One broadcast per integrated op: actor is the *origin* (site 1),
        // so both registered observers hear about both ops.
        assert_eq!(seen.len(), 4);
        assert!(seen.iter().all(|d| matches!(
            d.event.kind,
            CoopKind::RemoteOp {
                site: NodeId(1),
                ..
            }
        )));
        let seqs: Vec<u64> = seen
            .iter()
            .filter(|d| d.observer == NodeId(2))
            .map(|d| match d.event.kind {
                CoopKind::RemoteOp { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![1, 2], "announced in application order");
    }
}
