//! A versioned shared-object store: the "shared information space" of
//! Figure 2 in the paper.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a shared object (e.g. one document).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// A value plus its monotonically increasing version.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Versioned {
    /// Current content.
    pub value: String,
    /// Bumped on every write; version 0 is the initial value.
    pub version: u64,
}

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The object does not exist.
    UnknownObject(ObjectId),
    /// An edit referenced a position beyond the end of the value.
    OutOfBounds {
        /// The object being edited.
        object: ObjectId,
        /// The offending position.
        pos: usize,
        /// The value's length.
        len: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownObject(o) => write!(f, "unknown object {o}"),
            StoreError::OutOfBounds { object, pos, len } => {
                write!(
                    f,
                    "edit position {pos} out of bounds for {object} (len {len})"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// An in-memory object store.
///
/// # Examples
///
/// ```
/// use odp_concurrency::store::{ObjectId, ObjectStore};
///
/// let mut s = ObjectStore::new();
/// s.create(ObjectId(1), "hello");
/// s.write(ObjectId(1), "hello world")?;
/// assert_eq!(s.read(ObjectId(1))?.value, "hello world");
/// assert_eq!(s.read(ObjectId(1))?.version, 1);
/// # Ok::<(), odp_concurrency::store::StoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    objects: BTreeMap<ObjectId, Versioned>,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Creates (or resets) an object with an initial value at version 0.
    pub fn create(&mut self, id: ObjectId, value: impl Into<String>) {
        self.objects.insert(
            id,
            Versioned {
                value: value.into(),
                version: 0,
            },
        );
    }

    /// Reads an object.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownObject`] if it was never created.
    pub fn read(&self, id: ObjectId) -> Result<&Versioned, StoreError> {
        self.objects.get(&id).ok_or(StoreError::UnknownObject(id))
    }

    /// Replaces an object's value, bumping its version.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownObject`] if it was never created.
    pub fn write(&mut self, id: ObjectId, value: impl Into<String>) -> Result<u64, StoreError> {
        let obj = self
            .objects
            .get_mut(&id)
            .ok_or(StoreError::UnknownObject(id))?;
        obj.value = value.into();
        obj.version += 1;
        Ok(obj.version)
    }

    /// Inserts `text` at char position `pos`, bumping the version.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfBounds`] if `pos` exceeds the value length.
    pub fn insert(&mut self, id: ObjectId, pos: usize, text: &str) -> Result<u64, StoreError> {
        let obj = self
            .objects
            .get_mut(&id)
            .ok_or(StoreError::UnknownObject(id))?;
        let chars: Vec<char> = obj.value.chars().collect();
        if pos > chars.len() {
            return Err(StoreError::OutOfBounds {
                object: id,
                pos,
                len: chars.len(),
            });
        }
        let mut out: String = chars[..pos].iter().collect();
        out.push_str(text);
        out.extend(&chars[pos..]);
        obj.value = out;
        obj.version += 1;
        Ok(obj.version)
    }

    /// Deletes `len` chars at position `pos` (clamped to the value end),
    /// bumping the version.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfBounds`] if `pos` exceeds the value length.
    pub fn delete(&mut self, id: ObjectId, pos: usize, len: usize) -> Result<u64, StoreError> {
        let obj = self
            .objects
            .get_mut(&id)
            .ok_or(StoreError::UnknownObject(id))?;
        let chars: Vec<char> = obj.value.chars().collect();
        if pos > chars.len() {
            return Err(StoreError::OutOfBounds {
                object: id,
                pos,
                len: chars.len(),
            });
        }
        let end = (pos + len).min(chars.len());
        let mut out: String = chars[..pos].iter().collect();
        out.extend(&chars[end..]);
        obj.value = out;
        obj.version += 1;
        Ok(obj.version)
    }

    /// True if the object exists.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// All object ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.keys().copied()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_read_write() {
        let mut s = ObjectStore::new();
        s.create(ObjectId(1), "abc");
        assert_eq!(s.read(ObjectId(1)).unwrap().version, 0);
        assert_eq!(s.write(ObjectId(1), "xyz").unwrap(), 1);
        assert_eq!(s.read(ObjectId(1)).unwrap().value, "xyz");
    }

    #[test]
    fn unknown_object_errors() {
        let mut s = ObjectStore::new();
        assert!(matches!(
            s.read(ObjectId(9)),
            Err(StoreError::UnknownObject(_))
        ));
        assert!(s.write(ObjectId(9), "x").is_err());
        assert!(s.insert(ObjectId(9), 0, "x").is_err());
    }

    #[test]
    fn insert_and_delete_edit_text() {
        let mut s = ObjectStore::new();
        s.create(ObjectId(1), "hello world");
        s.insert(ObjectId(1), 5, ",").unwrap();
        assert_eq!(s.read(ObjectId(1)).unwrap().value, "hello, world");
        s.delete(ObjectId(1), 5, 1).unwrap();
        assert_eq!(s.read(ObjectId(1)).unwrap().value, "hello world");
        assert_eq!(s.read(ObjectId(1)).unwrap().version, 2);
    }

    #[test]
    fn insert_at_end_is_ok_but_past_end_errors() {
        let mut s = ObjectStore::new();
        s.create(ObjectId(1), "ab");
        assert!(s.insert(ObjectId(1), 2, "c").is_ok());
        assert!(matches!(
            s.insert(ObjectId(1), 9, "x"),
            Err(StoreError::OutOfBounds { pos: 9, .. })
        ));
    }

    #[test]
    fn delete_clamps_to_end() {
        let mut s = ObjectStore::new();
        s.create(ObjectId(1), "abcdef");
        s.delete(ObjectId(1), 4, 100).unwrap();
        assert_eq!(s.read(ObjectId(1)).unwrap().value, "abcd");
    }

    #[test]
    fn unicode_positions_are_char_based() {
        let mut s = ObjectStore::new();
        s.create(ObjectId(1), "héllo");
        s.insert(ObjectId(1), 2, "X").unwrap();
        assert_eq!(s.read(ObjectId(1)).unwrap().value, "héXllo");
        s.delete(ObjectId(1), 1, 2).unwrap();
        assert_eq!(s.read(ObjectId(1)).unwrap().value, "hllo");
    }
}
