//! Transaction groups (Skarra & Zdonik): cooperative transactions whose
//! internal concurrency control is governed by *access rules* instead of
//! serialisability.
//!
//! The paper (§4.2.1): *"Within a transaction group, the notion of
//! serialisability is replaced by access rules based on the semantics of
//! the cooperation. Access rules provide the **policy** of cooperation and
//! these policies can be **tailored** for a particular application by
//! amending the access rules."*
//!
//! A [`TransactionGroup`] wraps an [`ObjectStore`]; members issue reads
//! and writes that an [`AccessRule`] adjudicates. Member writes are
//! immediately visible *inside* the group (awareness!), and become visible
//! outside only when the group as a whole commits.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use odp_awareness::bus::{BusDelivery, CoopEvent, CoopKind, CoopMode, EventBus};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;

use crate::locks::ClientId;
use crate::store::{ObjectId, ObjectStore, StoreError};

/// Read or write, as seen by access rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Read the group-internal (dirty) value.
    Read,
    /// Replace the group-internal value.
    Write,
}

/// A member's view of who else is active on an object, given to rules.
#[derive(Debug, Clone, Default)]
pub struct ObjectActivity {
    /// Members that have read the object since group start.
    pub readers: BTreeSet<ClientId>,
    /// Members that have written it (in write order).
    pub writers: Vec<ClientId>,
    /// The member currently holding an exclusive claim, if the rule
    /// created one.
    pub claimed_by: Option<ClientId>,
}

/// A rule's decision about an access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleDecision {
    /// Allowed.
    Allow,
    /// Allowed, and the listed members should be notified (awareness).
    AllowNotify(Vec<ClientId>),
    /// Denied with a human-readable reason.
    Deny(String),
}

/// The tailorable cooperation policy of a group.
///
/// Implementations inspect the current [`ObjectActivity`] and decide. The
/// three canonical policies from the literature are provided:
/// [`CooperativeRule`], [`ExclusiveWriterRule`], [`ReviewerRule`].
pub trait AccessRule: fmt::Debug {
    /// Adjudicates `member` performing `mode` on `object`.
    fn adjudicate(
        &self,
        member: ClientId,
        object: ObjectId,
        mode: AccessMode,
        activity: &ObjectActivity,
    ) -> RuleDecision;
}

impl AccessRule for Box<dyn AccessRule> {
    fn adjudicate(
        &self,
        member: ClientId,
        object: ObjectId,
        mode: AccessMode,
        activity: &ObjectActivity,
    ) -> RuleDecision {
        (**self).adjudicate(member, object, mode, activity)
    }
}

/// Everything is allowed; every access notifies all other active members.
/// (Figure 2b taken to its extreme: pure social-protocol regulation.)
#[derive(Debug, Clone, Copy, Default)]
pub struct CooperativeRule;

impl AccessRule for CooperativeRule {
    fn adjudicate(
        &self,
        member: ClientId,
        _object: ObjectId,
        _mode: AccessMode,
        activity: &ObjectActivity,
    ) -> RuleDecision {
        let others: Vec<ClientId> = activity
            .readers
            .iter()
            .copied()
            .chain(activity.writers.iter().copied())
            .filter(|&c| c != member)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        RuleDecision::AllowNotify(others)
    }
}

/// One writer per object at a time (first writer claims it until group
/// commit); reads always allowed and the writer is notified of them.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExclusiveWriterRule;

impl AccessRule for ExclusiveWriterRule {
    fn adjudicate(
        &self,
        member: ClientId,
        _object: ObjectId,
        mode: AccessMode,
        activity: &ObjectActivity,
    ) -> RuleDecision {
        match mode {
            AccessMode::Read => match activity.claimed_by {
                Some(writer) if writer != member => RuleDecision::AllowNotify(vec![writer]),
                _ => RuleDecision::Allow,
            },
            AccessMode::Write => match activity.claimed_by {
                None => RuleDecision::Allow,
                Some(writer) if writer == member => RuleDecision::Allow,
                Some(writer) => RuleDecision::Deny(format!("object claimed by {writer}")),
            },
        }
    }
}

/// Writers may write only objects they have previously read (reviewers
/// must read before amending); all writes notify prior readers.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReviewerRule;

impl AccessRule for ReviewerRule {
    fn adjudicate(
        &self,
        member: ClientId,
        _object: ObjectId,
        mode: AccessMode,
        activity: &ObjectActivity,
    ) -> RuleDecision {
        match mode {
            AccessMode::Read => RuleDecision::Allow,
            AccessMode::Write => {
                if !activity.readers.contains(&member) {
                    return RuleDecision::Deny("must read before writing".to_owned());
                }
                let others: Vec<ClientId> = activity
                    .readers
                    .iter()
                    .copied()
                    .filter(|&c| c != member)
                    .collect();
                RuleDecision::AllowNotify(others)
            }
        }
    }
}

/// Awareness notification emitted by group accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupNotice {
    /// Addressee.
    pub to: ClientId,
    /// Acting member.
    pub by: ClientId,
    /// Object concerned.
    pub object: ObjectId,
    /// What the actor did.
    pub mode: AccessMode,
    /// When.
    pub at: SimTime,
}

impl GroupNotice {
    /// The notice as a unified cooperation event: the acting member is
    /// the actor, the notified member the (direct) audience, on the
    /// object's artefact path (`obj/<id>`).
    pub fn to_coop(&self) -> CoopEvent {
        let mode = match self.mode {
            AccessMode::Read => CoopMode::Shared,
            AccessMode::Write => CoopMode::Exclusive,
        };
        CoopEvent::direct(
            NodeId(self.by.0),
            NodeId(self.to.0),
            format!("obj/{}", self.object.0),
            self.at,
            CoopKind::GroupAccess { mode },
        )
    }
}

/// Publishes each group notice through the bus, concatenating the
/// surviving deliveries.
fn publish_notices(bus: &mut EventBus, notices: &[GroupNotice]) -> Vec<BusDelivery> {
    notices
        .iter()
        .flat_map(|n| bus.publish(n.to_coop()))
        .collect()
}

/// Errors from group operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupError {
    /// Actor is not a member of the group.
    NotMember(ClientId),
    /// The rule denied the access.
    Denied {
        /// Who was denied.
        member: ClientId,
        /// Target object.
        object: ObjectId,
        /// Rule's reason.
        reason: String,
    },
    /// Underlying store failure.
    Store(StoreError),
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::NotMember(c) => write!(f, "{c} is not a group member"),
            GroupError::Denied {
                member,
                object,
                reason,
            } => {
                write!(f, "access by {member} to {object} denied: {reason}")
            }
            GroupError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for GroupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GroupError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for GroupError {
    fn from(e: StoreError) -> Self {
        GroupError::Store(e)
    }
}

/// A transaction group over a shared store.
///
/// # Examples
///
/// ```
/// use odp_awareness::bus::EventBus;
/// use odp_concurrency::locks::ClientId;
/// use odp_concurrency::store::{ObjectId, ObjectStore};
/// use odp_concurrency::txgroup::{CooperativeRule, TransactionGroup};
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut bus = EventBus::new();
/// bus.register(NodeId(0), 0.0);
/// bus.register(NodeId(1), 0.0);
/// let mut store = ObjectStore::new();
/// store.create(ObjectId(1), "draft");
/// let mut g = TransactionGroup::new(store, [ClientId(0), ClientId(1)], CooperativeRule);
/// let (val, _) = g.read_via(&mut bus, ClientId(0), ObjectId(1), SimTime::ZERO)?;
/// assert_eq!(val, "draft");
/// let (_, seen) = g.write_via(&mut bus, ClientId(1), ObjectId(1), "draft v2", SimTime::ZERO)?;
/// assert_eq!(seen.len(), 1, "reader 0 is notified of the write");
/// # Ok::<(), odp_concurrency::txgroup::GroupError>(())
/// ```
pub struct TransactionGroup<R> {
    /// Committed (outside-visible) state.
    committed: ObjectStore,
    /// Group-internal working state.
    working: ObjectStore,
    members: BTreeSet<ClientId>,
    rule: R,
    activity: BTreeMap<ObjectId, ObjectActivity>,
    notices_sent: u64,
    denials: u64,
}

impl<R: AccessRule> TransactionGroup<R> {
    /// Creates a group over `store` with the given members and rule.
    pub fn new(store: ObjectStore, members: impl IntoIterator<Item = ClientId>, rule: R) -> Self {
        TransactionGroup {
            working: store.clone(),
            committed: store,
            members: members.into_iter().collect(),
            rule,
            activity: BTreeMap::new(),
            notices_sent: 0,
            denials: 0,
        }
    }

    /// The cooperation rule.
    pub fn rule(&self) -> &R {
        &self.rule
    }

    /// Total awareness notices generated so far.
    pub fn notices_sent(&self) -> u64 {
        self.notices_sent
    }

    /// Total denials so far.
    pub fn denials(&self) -> u64 {
        self.denials
    }

    fn check(
        &mut self,
        member: ClientId,
        object: ObjectId,
        mode: AccessMode,
        at: SimTime,
    ) -> Result<Vec<GroupNotice>, GroupError> {
        if !self.members.contains(&member) {
            return Err(GroupError::NotMember(member));
        }
        let activity = self.activity.entry(object).or_default();
        match self.rule.adjudicate(member, object, mode, activity) {
            RuleDecision::Allow => Ok(Vec::new()),
            RuleDecision::AllowNotify(others) => {
                self.notices_sent += others.len() as u64;
                Ok(others
                    .into_iter()
                    .map(|to| GroupNotice {
                        to,
                        by: member,
                        object,
                        mode,
                        at,
                    })
                    .collect())
            }
            RuleDecision::Deny(reason) => {
                self.denials += 1;
                Err(GroupError::Denied {
                    member,
                    object,
                    reason,
                })
            }
        }
    }

    /// Reads the group-internal value of `object`, publishing awareness
    /// notices through the cooperation-event bus.
    ///
    /// # Errors
    ///
    /// Denied accesses, non-members and unknown objects fail.
    pub fn read_via(
        &mut self,
        bus: &mut EventBus,
        member: ClientId,
        object: ObjectId,
        at: SimTime,
    ) -> Result<(String, Vec<BusDelivery>), GroupError> {
        let (value, notices) = self.read_direct(member, object, at)?;
        Ok((value, publish_notices(bus, &notices)))
    }

    /// Reads the group-internal value of `object` — including dirty
    /// writes by other members ("reading over their shoulder") —
    /// returning raw [`GroupNotice`]s without bus publication (the
    /// direct-notice engine path, e.g. for the scheme rig).
    ///
    /// # Errors
    ///
    /// Denied accesses, non-members and unknown objects fail.
    pub fn read_direct(
        &mut self,
        member: ClientId,
        object: ObjectId,
        at: SimTime,
    ) -> Result<(String, Vec<GroupNotice>), GroupError> {
        let notices = self.check(member, object, AccessMode::Read, at)?;
        let value = self.working.read(object)?.value.clone();
        self.activity
            .entry(object)
            .or_default()
            .readers
            .insert(member);
        Ok((value, notices))
    }

    /// Writes `object` inside the group, publishing awareness notices
    /// through the cooperation-event bus.
    ///
    /// # Errors
    ///
    /// Denied accesses, non-members and unknown objects fail.
    pub fn write_via(
        &mut self,
        bus: &mut EventBus,
        member: ClientId,
        object: ObjectId,
        value: impl Into<String>,
        at: SimTime,
    ) -> Result<(u64, Vec<BusDelivery>), GroupError> {
        let (version, notices) = self.write_direct(member, object, value, at)?;
        Ok((version, publish_notices(bus, &notices)))
    }

    /// Writes `object` inside the group, returning raw notices without
    /// bus publication (direct-notice engine path). The new value is
    /// immediately visible to other members but not outside the group.
    ///
    /// # Errors
    ///
    /// Denied accesses, non-members and unknown objects fail.
    pub fn write_direct(
        &mut self,
        member: ClientId,
        object: ObjectId,
        value: impl Into<String>,
        at: SimTime,
    ) -> Result<(u64, Vec<GroupNotice>), GroupError> {
        let notices = self.check(member, object, AccessMode::Write, at)?;
        let version = self.working.write(object, value)?;
        let act = self.activity.entry(object).or_default();
        act.writers.push(member);
        act.claimed_by.get_or_insert(member);
        Ok((version, notices))
    }

    /// The value visible *outside* the group (last group commit).
    ///
    /// # Errors
    ///
    /// Fails for unknown objects.
    pub fn external_read(&self, object: ObjectId) -> Result<&str, GroupError> {
        Ok(&self.committed.read(object)?.value)
    }

    /// Commits the whole group: working state becomes the committed state
    /// and per-object claims reset.
    pub fn commit_group(&mut self) {
        self.committed = self.working.clone();
        self.activity.clear();
    }

    /// Aborts the whole group: working state resets to the last commit.
    pub fn abort_group(&mut self) {
        self.working = self.committed.clone();
        self.activity.clear();
    }

    /// A snapshot of the group-internal working state (used by nested
    /// groups to seed and publish between levels).
    pub fn working_snapshot(&self) -> ObjectStore {
        self.working.clone()
    }

    /// Replaces the working state (a subgroup publishing upward). Claims
    /// and activity are preserved — the parent's cooperation continues.
    pub fn adopt_working(&mut self, store: ObjectStore) {
        self.working = store;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup<R: AccessRule>(rule: R) -> TransactionGroup<R> {
        let mut store = ObjectStore::new();
        store.create(ObjectId(1), "v0");
        TransactionGroup::new(store, [ClientId(0), ClientId(1), ClientId(2)], rule)
    }

    const NOW: SimTime = SimTime::ZERO;

    #[test]
    fn via_accesses_publish_group_notices_on_the_bus() {
        let mut bus = EventBus::new();
        for i in 0..3 {
            bus.register(NodeId(i), 0.0);
        }
        let mut g = setup(CooperativeRule);
        g.read_via(&mut bus, ClientId(0), ObjectId(1), NOW).unwrap();
        g.read_via(&mut bus, ClientId(1), ObjectId(1), NOW).unwrap();
        let (_, seen) = g
            .write_via(&mut bus, ClientId(2), ObjectId(1), "x", NOW)
            .unwrap();
        let observers: Vec<NodeId> = seen.iter().map(|d| d.observer).collect();
        assert_eq!(observers, vec![NodeId(0), NodeId(1)]);
        assert_eq!(seen[0].event.actor, NodeId(2));
        assert_eq!(seen[0].event.artefact, "obj/1");
        assert_eq!(seen[0].event.kind.label(), "group.access");
    }

    #[test]
    fn group_notice_conversion_maps_modes_onto_coop_modes() {
        let n = GroupNotice {
            to: ClientId(1),
            by: ClientId(2),
            object: ObjectId(9),
            mode: AccessMode::Write,
            at: SimTime::from_millis(3),
        };
        let ev = n.to_coop();
        assert_eq!(ev.actor, NodeId(2));
        assert_eq!(ev.artefact, "obj/9");
        assert!(matches!(
            ev.kind,
            CoopKind::GroupAccess {
                mode: CoopMode::Exclusive
            }
        ));
    }

    #[test]
    fn dirty_reads_inside_the_group_are_visible() {
        let mut g = setup(CooperativeRule);
        g.write_direct(ClientId(0), ObjectId(1), "dirty", NOW)
            .unwrap();
        let (val, _) = g.read_direct(ClientId(1), ObjectId(1), NOW).unwrap();
        assert_eq!(val, "dirty", "member sees uncommitted write");
        assert_eq!(
            g.external_read(ObjectId(1)).unwrap(),
            "v0",
            "outside sees committed"
        );
    }

    #[test]
    fn group_commit_publishes_externally() {
        let mut g = setup(CooperativeRule);
        g.write_direct(ClientId(0), ObjectId(1), "done", NOW)
            .unwrap();
        g.commit_group();
        assert_eq!(g.external_read(ObjectId(1)).unwrap(), "done");
    }

    #[test]
    fn group_abort_rolls_back_working_state() {
        let mut g = setup(CooperativeRule);
        g.write_direct(ClientId(0), ObjectId(1), "scrap", NOW)
            .unwrap();
        g.abort_group();
        let (val, _) = g.read_direct(ClientId(1), ObjectId(1), NOW).unwrap();
        assert_eq!(val, "v0");
    }

    #[test]
    fn cooperative_rule_notifies_all_active_members() {
        let mut g = setup(CooperativeRule);
        g.read_direct(ClientId(0), ObjectId(1), NOW).unwrap();
        g.read_direct(ClientId(1), ObjectId(1), NOW).unwrap();
        let (_, notices) = g.write_direct(ClientId(2), ObjectId(1), "x", NOW).unwrap();
        let to: Vec<ClientId> = notices.iter().map(|n| n.to).collect();
        assert_eq!(to, vec![ClientId(0), ClientId(1)]);
        assert_eq!(
            g.notices_sent(),
            3,
            "read by 1 notified 0; write by 2 notified both"
        );
    }

    #[test]
    fn exclusive_writer_rule_claims_and_denies() {
        let mut g = setup(ExclusiveWriterRule);
        g.write_direct(ClientId(0), ObjectId(1), "a", NOW).unwrap();
        let err = g
            .write_direct(ClientId(1), ObjectId(1), "b", NOW)
            .unwrap_err();
        assert!(matches!(err, GroupError::Denied { member, .. } if member == ClientId(1)));
        // Claim holder may keep writing.
        g.write_direct(ClientId(0), ObjectId(1), "a2", NOW).unwrap();
        // Readers are allowed, and the writer is told.
        let (_, notices) = g.read_direct(ClientId(2), ObjectId(1), NOW).unwrap();
        assert_eq!(notices[0].to, ClientId(0));
        assert_eq!(g.denials(), 1);
    }

    #[test]
    fn exclusive_claim_resets_on_group_commit() {
        let mut g = setup(ExclusiveWriterRule);
        g.write_direct(ClientId(0), ObjectId(1), "a", NOW).unwrap();
        g.commit_group();
        assert!(g.write_direct(ClientId(1), ObjectId(1), "b", NOW).is_ok());
    }

    #[test]
    fn reviewer_rule_requires_read_before_write() {
        let mut g = setup(ReviewerRule);
        assert!(matches!(
            g.write_direct(ClientId(0), ObjectId(1), "x", NOW),
            Err(GroupError::Denied { .. })
        ));
        g.read_direct(ClientId(0), ObjectId(1), NOW).unwrap();
        assert!(g.write_direct(ClientId(0), ObjectId(1), "x", NOW).is_ok());
    }

    #[test]
    fn non_members_are_rejected() {
        let mut g = setup(CooperativeRule);
        assert_eq!(
            g.read_direct(ClientId(9), ObjectId(1), NOW).unwrap_err(),
            GroupError::NotMember(ClientId(9))
        );
    }

    #[test]
    fn unknown_objects_error_through() {
        let mut g = setup(CooperativeRule);
        assert!(matches!(
            g.read_direct(ClientId(0), ObjectId(42), NOW),
            Err(GroupError::Store(StoreError::UnknownObject(_)))
        ));
    }
}
