//! Hierarchical (nested) transaction groups.
//!
//! Skarra & Zdonik's transaction-group model is explicitly hierarchical:
//! "a transaction group co-ordinates access to shared data for a number
//! of co-operating members" — and a member may itself be a group. This
//! module provides a tree of groups with layered visibility:
//!
//! - a write is immediately visible **inside** its group;
//! - committing a group publishes its working state to the **parent**;
//! - committing the **root** publishes externally;
//! - aborting a group discards its work without touching the parent.
//!
//! Each group carries its own tailorable [`AccessRule`], so a sub-team
//! can run a looser (or stricter) cooperation policy than its parent.

use std::collections::BTreeMap;
use std::fmt;

use odp_awareness::bus::{BusDelivery, EventBus};
use odp_sim::time::SimTime;

use crate::locks::ClientId;
use crate::store::{ObjectId, ObjectStore, StoreError};
use crate::txgroup::{AccessRule, GroupError, GroupNotice, TransactionGroup};

/// Names a group in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupNodeId(pub u32);

impl fmt::Display for GroupNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group{}", self.0)
    }
}

/// Errors from the group tree.
#[derive(Debug)]
pub enum TreeError {
    /// Unknown group id.
    UnknownGroup(GroupNodeId),
    /// Reserved: operations that require a parent were applied to the
    /// root (the root commits externally and aborts in place).
    RootHasNoParent,
    /// An inner group operation failed.
    Group(GroupError),
    /// Store failure.
    Store(StoreError),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownGroup(g) => write!(f, "unknown {g}"),
            TreeError::RootHasNoParent => write!(f, "the root group has no parent"),
            TreeError::Group(e) => write!(f, "group error: {e}"),
            TreeError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for TreeError {}

impl From<GroupError> for TreeError {
    fn from(e: GroupError) -> Self {
        TreeError::Group(e)
    }
}

impl From<StoreError> for TreeError {
    fn from(e: StoreError) -> Self {
        TreeError::Store(e)
    }
}

struct GroupNode {
    parent: Option<GroupNodeId>,
    group: TransactionGroup<Box<dyn AccessRule>>,
}

/// A tree of transaction groups over one external store.
///
/// # Examples
///
/// ```
/// use odp_awareness::bus::EventBus;
/// use odp_concurrency::locks::ClientId;
/// use odp_concurrency::nested::GroupTree;
/// use odp_concurrency::store::{ObjectId, ObjectStore};
/// use odp_concurrency::txgroup::CooperativeRule;
/// use odp_sim::time::SimTime;
///
/// let mut bus = EventBus::new();
/// let mut store = ObjectStore::new();
/// store.create(ObjectId(1), "v0");
/// let mut tree = GroupTree::new(store, [ClientId(0)], Box::new(CooperativeRule));
/// let sub = tree.create_subgroup(tree.root(), [ClientId(1)], Box::new(CooperativeRule))?;
/// tree.write_via(&mut bus, sub, ClientId(1), ObjectId(1), "sub draft", SimTime::ZERO)?;
/// // The parent does not see the subgroup's dirty work yet...
/// assert_eq!(tree.read_via(&mut bus, tree.root(), ClientId(0), ObjectId(1), SimTime::ZERO)?.0, "v0");
/// tree.commit(sub)?;
/// // ...until the subgroup commits upward.
/// assert_eq!(tree.read_via(&mut bus, tree.root(), ClientId(0), ObjectId(1), SimTime::ZERO)?.0, "sub draft");
/// # Ok::<(), odp_concurrency::nested::TreeError>(())
/// ```
pub struct GroupTree {
    nodes: BTreeMap<GroupNodeId, GroupNode>,
    root: GroupNodeId,
    external: ObjectStore,
    next: u32,
}

impl GroupTree {
    /// Creates a tree whose root group works over `external`.
    pub fn new(
        external: ObjectStore,
        members: impl IntoIterator<Item = ClientId>,
        rule: Box<dyn AccessRule>,
    ) -> Self {
        let root = GroupNodeId(0);
        let group = TransactionGroup::new(external.clone(), members, rule);
        let mut nodes = BTreeMap::new();
        nodes.insert(
            root,
            GroupNode {
                parent: None,
                group,
            },
        );
        GroupTree {
            nodes,
            root,
            external,
            next: 1,
        }
    }

    /// The root group's id.
    pub fn root(&self) -> GroupNodeId {
        self.root
    }

    /// Creates a subgroup under `parent`, seeded with the parent's
    /// current working state (so the sub-team starts from the team's
    /// in-progress work, not the external state).
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownGroup`] if the parent is absent.
    pub fn create_subgroup(
        &mut self,
        parent: GroupNodeId,
        members: impl IntoIterator<Item = ClientId>,
        rule: Box<dyn AccessRule>,
    ) -> Result<GroupNodeId, TreeError> {
        let parent_node = self
            .nodes
            .get(&parent)
            .ok_or(TreeError::UnknownGroup(parent))?;
        let seed = parent_node.group.working_snapshot();
        let id = GroupNodeId(self.next);
        self.next += 1;
        self.nodes.insert(
            id,
            GroupNode {
                parent: Some(parent),
                group: TransactionGroup::new(seed, members, rule),
            },
        );
        Ok(id)
    }

    fn node_mut(&mut self, id: GroupNodeId) -> Result<&mut GroupNode, TreeError> {
        self.nodes.get_mut(&id).ok_or(TreeError::UnknownGroup(id))
    }

    /// Reads inside a group (dirty within the group, per its rule),
    /// publishing any access notices on the cooperation-event bus.
    ///
    /// # Errors
    ///
    /// Propagates rule denials and unknown groups/objects.
    pub fn read_via(
        &mut self,
        bus: &mut EventBus,
        group: GroupNodeId,
        member: ClientId,
        object: ObjectId,
        at: SimTime,
    ) -> Result<(String, Vec<BusDelivery>), TreeError> {
        Ok(self
            .node_mut(group)?
            .group
            .read_via(bus, member, object, at)?)
    }

    /// Reads inside a group (dirty within the group, per its rule),
    /// returning raw notices without bus publication (direct-notice
    /// engine path).
    ///
    /// # Errors
    ///
    /// Propagates rule denials and unknown groups/objects.
    pub fn read_direct(
        &mut self,
        group: GroupNodeId,
        member: ClientId,
        object: ObjectId,
        at: SimTime,
    ) -> Result<(String, Vec<GroupNotice>), TreeError> {
        Ok(self
            .node_mut(group)?
            .group
            .read_direct(member, object, at)?)
    }

    /// Writes inside a group, publishing any access notices on the
    /// cooperation-event bus.
    ///
    /// # Errors
    ///
    /// Propagates rule denials and unknown groups/objects.
    pub fn write_via(
        &mut self,
        bus: &mut EventBus,
        group: GroupNodeId,
        member: ClientId,
        object: ObjectId,
        value: impl Into<String>,
        at: SimTime,
    ) -> Result<(u64, Vec<BusDelivery>), TreeError> {
        Ok(self
            .node_mut(group)?
            .group
            .write_via(bus, member, object, value, at)?)
    }

    /// Writes inside a group, returning raw notices without bus
    /// publication (direct-notice engine path).
    ///
    /// # Errors
    ///
    /// Propagates rule denials and unknown groups/objects.
    pub fn write_direct(
        &mut self,
        group: GroupNodeId,
        member: ClientId,
        object: ObjectId,
        value: impl Into<String>,
        at: SimTime,
    ) -> Result<(u64, Vec<GroupNotice>), TreeError> {
        Ok(self
            .node_mut(group)?
            .group
            .write_direct(member, object, value, at)?)
    }

    /// Commits a group: a subgroup publishes its working state into its
    /// parent's working state; the root publishes externally.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownGroup`] if absent.
    pub fn commit(&mut self, group: GroupNodeId) -> Result<(), TreeError> {
        let parent = self
            .nodes
            .get(&group)
            .ok_or(TreeError::UnknownGroup(group))?
            .parent;
        let snapshot = {
            let node = self.node_mut(group)?;
            node.group.commit_group();
            node.group.working_snapshot()
        };
        match parent {
            Some(p) => {
                let parent_node = self.node_mut(p)?;
                parent_node.group.adopt_working(snapshot);
            }
            None => {
                self.external = snapshot;
            }
        }
        Ok(())
    }

    /// Aborts a group, discarding its work (the parent is untouched).
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownGroup`] if absent.
    pub fn abort(&mut self, group: GroupNodeId) -> Result<(), TreeError> {
        self.node_mut(group)?.group.abort_group();
        Ok(())
    }

    /// The externally visible value of an object.
    ///
    /// # Errors
    ///
    /// [`TreeError::Store`] for unknown objects.
    pub fn external_read(&self, object: ObjectId) -> Result<&str, TreeError> {
        Ok(&self.external.read(object)?.value)
    }
}

#[cfg(test)]
// the legacy Vec<GroupNotice> shims stay covered until removal
mod tests {
    use super::*;
    use crate::txgroup::{CooperativeRule, ExclusiveWriterRule};
    use odp_sim::net::NodeId;

    const NOW: SimTime = SimTime::ZERO;
    const DOC: ObjectId = ObjectId(1);

    fn tree() -> GroupTree {
        let mut store = ObjectStore::new();
        store.create(DOC, "v0");
        GroupTree::new(store, [ClientId(0), ClientId(1)], Box::new(CooperativeRule))
    }

    #[test]
    fn subgroup_work_is_invisible_until_commit() {
        let mut t = tree();
        let sub = t
            .create_subgroup(t.root(), [ClientId(2)], Box::new(CooperativeRule))
            .unwrap();
        t.write_direct(sub, ClientId(2), DOC, "sub work", NOW)
            .unwrap();
        assert_eq!(
            t.read_direct(t.root(), ClientId(0), DOC, NOW).unwrap().0,
            "v0"
        );
        assert_eq!(t.external_read(DOC).unwrap(), "v0");
        t.commit(sub).unwrap();
        assert_eq!(
            t.read_direct(t.root(), ClientId(0), DOC, NOW).unwrap().0,
            "sub work"
        );
        assert_eq!(
            t.external_read(DOC).unwrap(),
            "v0",
            "still internal to the root"
        );
        let root = t.root();
        t.commit(root).unwrap();
        assert_eq!(t.external_read(DOC).unwrap(), "sub work");
    }

    #[test]
    fn subgroups_start_from_the_parents_working_state() {
        let mut t = tree();
        t.write_direct(t.root(), ClientId(0), DOC, "team draft", NOW)
            .unwrap();
        let sub = t
            .create_subgroup(t.root(), [ClientId(2)], Box::new(CooperativeRule))
            .unwrap();
        assert_eq!(
            t.read_direct(sub, ClientId(2), DOC, NOW).unwrap().0,
            "team draft",
            "the sub-team sees the in-progress work"
        );
    }

    #[test]
    fn aborting_a_subgroup_leaves_the_parent_untouched() {
        let mut t = tree();
        t.write_direct(t.root(), ClientId(0), DOC, "keep me", NOW)
            .unwrap();
        let sub = t
            .create_subgroup(t.root(), [ClientId(2)], Box::new(CooperativeRule))
            .unwrap();
        t.write_direct(sub, ClientId(2), DOC, "scrap me", NOW)
            .unwrap();
        t.abort(sub).unwrap();
        assert_eq!(
            t.read_direct(t.root(), ClientId(0), DOC, NOW).unwrap().0,
            "keep me"
        );
        // The aborted subgroup rolled back to its seed.
        assert_eq!(
            t.read_direct(sub, ClientId(2), DOC, NOW).unwrap().0,
            "keep me"
        );
    }

    #[test]
    fn subgroups_may_run_different_rules() {
        let mut t = tree();
        let strict = t
            .create_subgroup(
                t.root(),
                [ClientId(2), ClientId(3)],
                Box::new(ExclusiveWriterRule),
            )
            .unwrap();
        t.write_direct(strict, ClientId(2), DOC, "claimed", NOW)
            .unwrap();
        // The strict subgroup's rule denies a second writer...
        assert!(matches!(
            t.write_direct(strict, ClientId(3), DOC, "denied", NOW),
            Err(TreeError::Group(GroupError::Denied { .. }))
        ));
        // ...while the cooperative root lets both members write.
        t.write_direct(t.root(), ClientId(0), DOC, "a", NOW)
            .unwrap();
        t.write_direct(t.root(), ClientId(1), DOC, "b", NOW)
            .unwrap();
    }

    #[test]
    fn unknown_groups_error() {
        let mut t = tree();
        let ghost = GroupNodeId(99);
        assert!(matches!(t.commit(ghost), Err(TreeError::UnknownGroup(_))));
        assert!(matches!(t.abort(ghost), Err(TreeError::UnknownGroup(_))));
        assert!(matches!(
            t.read_direct(ghost, ClientId(0), DOC, NOW),
            Err(TreeError::UnknownGroup(_))
        ));
        assert!(matches!(
            t.create_subgroup(ghost, [ClientId(5)], Box::new(CooperativeRule)),
            Err(TreeError::UnknownGroup(_))
        ));
    }

    #[test]
    fn via_accesses_inside_a_subgroup_publish_on_the_bus() {
        let mut bus = EventBus::new();
        bus.register(NodeId(0), 0.0);
        bus.register(NodeId(2), 0.0);
        let mut t = tree();
        let sub = t
            .create_subgroup(
                t.root(),
                [ClientId(0), ClientId(2)],
                Box::new(CooperativeRule),
            )
            .unwrap();
        t.write_via(&mut bus, sub, ClientId(2), DOC, "sub work", NOW)
            .unwrap();
        let (value, seen) = t.read_via(&mut bus, sub, ClientId(0), DOC, NOW).unwrap();
        assert_eq!(value, "sub work");
        // The cooperative rule notifies the other member of the access.
        assert!(seen.iter().any(|d| d.observer == NodeId(2)));
        assert!(seen.iter().all(|d| d.event.kind.label() == "group.access"));
    }
}
