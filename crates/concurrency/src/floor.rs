//! Floor control — concurrency by *reservation* (§4.2.1: "Conferencing
//! systems often use a floor passing approach to reservation. Other
//! systems, such as Colab, use an approach based on more informal
//! negotiation. Reservation is only suitable however for approaches that
//! do not want to interleave operations.").
//!
//! Used by collaboration-transparent conferencing (one input stream, so
//! users must take turns) — see `cscw-core::conference`.

use std::collections::VecDeque;
use std::fmt;

use odp_awareness::bus::{BusDelivery, CoopEvent, CoopKind, EventBus};
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};

use crate::locks::ClientId;

/// How the floor moves between participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloorPolicy {
    /// The holder must explicitly pass the floor (chalk-passing).
    ExplicitPass,
    /// Requests queue FIFO; the floor transfers on release.
    RequestQueue,
    /// Like `RequestQueue` but the floor is also preempted after a
    /// maximum holding time (fairness under monologues).
    PreemptAfter(SimDuration),
}

/// Events emitted by floor-control decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FloorEvent {
    /// `who` now holds the floor.
    Granted {
        /// The new holder.
        who: ClientId,
        /// When the grant happened.
        at: SimTime,
    },
    /// The holder was preempted for exceeding the holding limit.
    Preempted {
        /// The ousted holder.
        who: ClientId,
    },
    /// The floor is now free (no holder, empty queue).
    Idle,
}

/// The conference-floor artefact path the bus gates floor events on.
pub const FLOOR_ARTEFACT: &str = "floor";

impl FloorEvent {
    /// The event as a unified cooperation event, broadcast to every
    /// participant: floor movements concern the whole conference. The
    /// actor is the granted/preempted party, or — for [`FloorEvent::Idle`],
    /// which names nobody — the `fallback` client that triggered the
    /// state change.
    pub fn to_coop(&self, fallback: ClientId, at: SimTime) -> CoopEvent {
        let (actor, at, kind) = match *self {
            FloorEvent::Granted { who, at } => (who, at, CoopKind::FloorGranted),
            FloorEvent::Preempted { who } => (who, at, CoopKind::FloorPreempted),
            FloorEvent::Idle => (fallback, at, CoopKind::FloorIdle),
        };
        CoopEvent::broadcast(NodeId(actor.0), FLOOR_ARTEFACT, at, kind)
    }
}

/// Publishes floor events through the bus, concatenating the surviving
/// deliveries.
fn publish_events(
    bus: &mut EventBus,
    events: &[FloorEvent],
    fallback: ClientId,
    at: SimTime,
) -> Vec<BusDelivery> {
    events
        .iter()
        .flat_map(|e| bus.publish(e.to_coop(fallback, at)))
        .collect()
}

/// Errors from floor operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloorError {
    /// A non-holder tried to release or pass the floor.
    NotHolder(ClientId),
    /// The pass target has not requested the floor.
    TargetNotWaiting(ClientId),
}

impl fmt::Display for FloorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorError::NotHolder(c) => write!(f, "{c} does not hold the floor"),
            FloorError::TargetNotWaiting(c) => write!(f, "{c} has not requested the floor"),
        }
    }
}

impl std::error::Error for FloorError {}

/// The floor-control state machine for one conference.
///
/// # Examples
///
/// ```
/// use odp_awareness::bus::{CoopKind, EventBus};
/// use odp_concurrency::floor::{FloorControl, FloorPolicy};
/// use odp_concurrency::locks::ClientId;
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut bus = EventBus::new();
/// bus.register(NodeId(0), 0.0);
/// bus.register(NodeId(1), 0.0);
/// let mut fc = FloorControl::new(FloorPolicy::RequestQueue);
/// let seen = fc.request_via(&mut bus, ClientId(0), SimTime::ZERO);
/// // The grant is broadcast: participant 1 becomes aware of it.
/// assert!(matches!(seen[0].event.kind, CoopKind::FloorGranted));
/// assert_eq!(fc.holder(), Some(ClientId(0)));
/// ```
#[derive(Debug)]
pub struct FloorControl {
    policy: FloorPolicy,
    holder: Option<(ClientId, SimTime)>,
    queue: VecDeque<(ClientId, SimTime)>,
    grants: u64,
    preemptions: u64,
    wait_total: SimDuration,
}

impl FloorControl {
    /// Creates a free floor under `policy`.
    pub fn new(policy: FloorPolicy) -> Self {
        FloorControl {
            policy,
            holder: None,
            queue: VecDeque::new(),
            grants: 0,
            preemptions: 0,
            wait_total: SimDuration::ZERO,
        }
    }

    /// Current holder, if any.
    pub fn holder(&self) -> Option<ClientId> {
        self.holder.map(|(c, _)| c)
    }

    /// Clients waiting, in queue order.
    pub fn waiting(&self) -> Vec<ClientId> {
        self.queue.iter().map(|&(c, _)| c).collect()
    }

    /// Total grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total preemptions (only under [`FloorPolicy::PreemptAfter`]).
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Sum of time requesters spent waiting before their grants.
    pub fn total_wait(&self) -> SimDuration {
        self.wait_total
    }

    /// Requests the floor, publishing resulting events through the
    /// cooperation-event bus. Grants immediately if free, else queues.
    pub fn request_via(
        &mut self,
        bus: &mut EventBus,
        client: ClientId,
        now: SimTime,
    ) -> Vec<BusDelivery> {
        let events = self.request_direct(client, now);
        publish_events(bus, &events, client, now)
    }

    /// Requests the floor, returning raw [`FloorEvent`]s without bus
    /// publication (the direct-notice engine path used by consumers
    /// that drive their own event distribution, e.g. the scheme rig).
    /// Grants immediately if free, else queues.
    pub fn request_direct(&mut self, client: ClientId, now: SimTime) -> Vec<FloorEvent> {
        if self.holder.map(|(c, _)| c) == Some(client) {
            return Vec::new(); // already holding
        }
        if self.queue.iter().any(|&(c, _)| c == client) {
            return Vec::new(); // already waiting
        }
        if self.holder.is_none() {
            self.grant(client, now, now)
        } else {
            self.queue.push_back((client, now));
            Vec::new()
        }
    }

    /// Releases the floor via the cooperation-event bus, promoting the
    /// next waiter (if the policy queues) or leaving the floor idle.
    ///
    /// # Errors
    ///
    /// [`FloorError::NotHolder`] if `client` does not hold the floor.
    pub fn release_via(
        &mut self,
        bus: &mut EventBus,
        client: ClientId,
        now: SimTime,
    ) -> Result<Vec<BusDelivery>, FloorError> {
        let events = self.release_direct(client, now)?;
        Ok(publish_events(bus, &events, client, now))
    }

    /// Releases the floor without bus publication (direct-notice engine
    /// path), promoting the next waiter or leaving the floor idle.
    ///
    /// # Errors
    ///
    /// [`FloorError::NotHolder`] if `client` does not hold the floor.
    pub fn release_direct(
        &mut self,
        client: ClientId,
        now: SimTime,
    ) -> Result<Vec<FloorEvent>, FloorError> {
        match self.holder {
            Some((c, _)) if c == client => {
                self.holder = None;
                Ok(self.promote(now))
            }
            _ => Err(FloorError::NotHolder(client)),
        }
    }

    /// Explicitly passes the floor to `target` via the cooperation-event
    /// bus.
    ///
    /// # Errors
    ///
    /// Fails if `client` is not the holder or `target` is not waiting.
    pub fn pass_via(
        &mut self,
        bus: &mut EventBus,
        client: ClientId,
        target: ClientId,
        now: SimTime,
    ) -> Result<Vec<BusDelivery>, FloorError> {
        let events = self.pass_direct(client, target, now)?;
        Ok(publish_events(bus, &events, client, now))
    }

    /// Explicitly passes the floor to `target` (who must be waiting)
    /// without bus publication (direct-notice engine path) — required
    /// under [`FloorPolicy::ExplicitPass`], allowed under all.
    ///
    /// # Errors
    ///
    /// Fails if `client` is not the holder or `target` is not waiting.
    pub fn pass_direct(
        &mut self,
        client: ClientId,
        target: ClientId,
        now: SimTime,
    ) -> Result<Vec<FloorEvent>, FloorError> {
        match self.holder {
            Some((c, _)) if c == client => {}
            _ => return Err(FloorError::NotHolder(client)),
        }
        let Some(pos) = self.queue.iter().position(|&(c, _)| c == target) else {
            return Err(FloorError::TargetNotWaiting(target));
        };
        let Some((target, asked)) = self.queue.remove(pos) else {
            return Err(FloorError::TargetNotWaiting(target));
        };
        self.holder = None;
        Ok(self.grant(target, asked, now))
    }

    /// Time-based maintenance via the cooperation-event bus: under
    /// [`FloorPolicy::PreemptAfter`], preempts over-long holders.
    pub fn tick_via(&mut self, bus: &mut EventBus, now: SimTime) -> Vec<BusDelivery> {
        // Preemption only fires while someone holds the floor, so the
        // fallback actor (only used for Idle, which tick never emits) is
        // moot; the pre-tick holder keeps it well-defined regardless.
        let fallback = self.holder().unwrap_or(ClientId(0));
        let events = self.tick_direct(now);
        publish_events(bus, &events, fallback, now)
    }

    /// Time-based maintenance without bus publication (direct-notice
    /// engine path): under [`FloorPolicy::PreemptAfter`], preempts
    /// over-long holders.
    pub fn tick_direct(&mut self, now: SimTime) -> Vec<FloorEvent> {
        let FloorPolicy::PreemptAfter(limit) = self.policy else {
            return Vec::new();
        };
        let Some((holder, since)) = self.holder else {
            return Vec::new();
        };
        if now.saturating_since(since) >= limit && !self.queue.is_empty() {
            self.holder = None;
            self.preemptions += 1;
            let mut events = vec![FloorEvent::Preempted { who: holder }];
            events.extend(self.promote(now));
            events
        } else {
            Vec::new()
        }
    }

    fn promote(&mut self, now: SimTime) -> Vec<FloorEvent> {
        match self.policy {
            FloorPolicy::ExplicitPass => {
                // The floor stays free until someone requests it afresh or
                // it is explicitly passed; waiters stay queued for `pass`.
                if self.queue.is_empty() {
                    vec![FloorEvent::Idle]
                } else {
                    Vec::new()
                }
            }
            FloorPolicy::RequestQueue | FloorPolicy::PreemptAfter(_) => {
                if let Some((next, asked)) = self.queue.pop_front() {
                    self.grant(next, asked, now)
                } else {
                    vec![FloorEvent::Idle]
                }
            }
        }
    }

    fn grant(&mut self, client: ClientId, asked: SimTime, now: SimTime) -> Vec<FloorEvent> {
        self.holder = Some((client, now));
        self.grants += 1;
        self.wait_total += now.saturating_since(asked);
        vec![FloorEvent::Granted {
            who: client,
            at: now,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_sim::net::NodeId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn bus(n: u32) -> EventBus {
        let mut bus = EventBus::new();
        for i in 0..n {
            bus.register(NodeId(i), 0.0);
        }
        bus
    }

    #[test]
    fn via_grants_broadcast_to_every_other_participant() {
        let mut bus = bus(3);
        let mut fc = FloorControl::new(FloorPolicy::RequestQueue);
        let seen = fc.request_via(&mut bus, ClientId(0), t(0));
        // Broadcast audience: the actor itself is excluded, the other two hear it.
        let observers: Vec<NodeId> = seen.iter().map(|d| d.observer).collect();
        assert_eq!(observers, vec![NodeId(1), NodeId(2)]);
        assert!(seen
            .iter()
            .all(|d| matches!(d.event.kind, CoopKind::FloorGranted)));
        assert!(seen.iter().all(|d| d.event.artefact == FLOOR_ARTEFACT));
    }

    #[test]
    fn via_preemption_publishes_preempted_then_granted() {
        let mut bus = bus(3);
        let mut fc = FloorControl::new(FloorPolicy::PreemptAfter(SimDuration::from_millis(5)));
        fc.request_via(&mut bus, ClientId(0), t(0));
        fc.request_via(&mut bus, ClientId(1), t(1));
        let seen = fc.tick_via(&mut bus, t(10));
        // Each event fans out to the two non-actors, preserving order.
        let labels: Vec<&str> = seen
            .iter()
            .filter(|d| d.observer == NodeId(2))
            .map(|d| d.event.kind.label())
            .collect();
        assert_eq!(labels, vec!["floor.preempted", "floor.granted"]);
    }

    #[test]
    fn via_release_with_empty_queue_publishes_idle_from_the_releaser() {
        let mut bus = bus(2);
        let mut fc = FloorControl::new(FloorPolicy::RequestQueue);
        fc.request_via(&mut bus, ClientId(0), t(0));
        let seen = fc.release_via(&mut bus, ClientId(0), t(5)).unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].observer, NodeId(1));
        assert!(matches!(seen[0].event.kind, CoopKind::FloorIdle));
        assert_eq!(seen[0].event.actor, NodeId(0));
    }

    #[test]
    fn free_floor_grants_immediately() {
        let mut fc = FloorControl::new(FloorPolicy::RequestQueue);
        let ev = fc.request_direct(ClientId(0), t(0));
        assert_eq!(
            ev,
            vec![FloorEvent::Granted {
                who: ClientId(0),
                at: t(0)
            }]
        );
        assert_eq!(fc.grants(), 1);
    }

    #[test]
    fn queue_policy_transfers_on_release_in_fifo_order() {
        let mut fc = FloorControl::new(FloorPolicy::RequestQueue);
        fc.request_direct(ClientId(0), t(0));
        fc.request_direct(ClientId(1), t(1));
        fc.request_direct(ClientId(2), t(2));
        let ev = fc.release_direct(ClientId(0), t(10)).unwrap();
        assert_eq!(
            ev,
            vec![FloorEvent::Granted {
                who: ClientId(1),
                at: t(10)
            }]
        );
        assert_eq!(fc.waiting(), vec![ClientId(2)]);
        assert_eq!(fc.total_wait(), SimDuration::from_millis(9));
    }

    #[test]
    fn explicit_pass_policy_requires_a_pass() {
        let mut fc = FloorControl::new(FloorPolicy::ExplicitPass);
        fc.request_direct(ClientId(0), t(0));
        fc.request_direct(ClientId(1), t(1));
        // Release does not auto-promote.
        let ev = fc.release_direct(ClientId(0), t(2)).unwrap();
        assert!(ev.is_empty());
        assert_eq!(fc.holder(), None);
        assert_eq!(fc.waiting(), vec![ClientId(1)]);
        // Re-request and pass.
        fc.request_direct(ClientId(0), t(3));
        let ev = fc.pass_direct(ClientId(0), ClientId(1), t(4)).unwrap();
        assert_eq!(
            ev,
            vec![FloorEvent::Granted {
                who: ClientId(1),
                at: t(4)
            }]
        );
    }

    #[test]
    fn pass_to_non_waiter_fails() {
        let mut fc = FloorControl::new(FloorPolicy::ExplicitPass);
        fc.request_direct(ClientId(0), t(0));
        assert_eq!(
            fc.pass_direct(ClientId(0), ClientId(5), t(1)).unwrap_err(),
            FloorError::TargetNotWaiting(ClientId(5))
        );
    }

    #[test]
    fn non_holder_release_fails() {
        let mut fc = FloorControl::new(FloorPolicy::RequestQueue);
        fc.request_direct(ClientId(0), t(0));
        assert_eq!(
            fc.release_direct(ClientId(1), t(1)).unwrap_err(),
            FloorError::NotHolder(ClientId(1))
        );
    }

    #[test]
    fn preemption_after_holding_limit() {
        let mut fc = FloorControl::new(FloorPolicy::PreemptAfter(SimDuration::from_millis(100)));
        fc.request_direct(ClientId(0), t(0));
        fc.request_direct(ClientId(1), t(5));
        assert!(fc.tick_direct(t(50)).is_empty(), "not yet over the limit");
        let ev = fc.tick_direct(t(100));
        assert_eq!(
            ev,
            vec![
                FloorEvent::Preempted { who: ClientId(0) },
                FloorEvent::Granted {
                    who: ClientId(1),
                    at: t(100)
                },
            ]
        );
        assert_eq!(fc.preemptions(), 1);
    }

    #[test]
    fn no_preemption_when_nobody_waits() {
        let mut fc = FloorControl::new(FloorPolicy::PreemptAfter(SimDuration::from_millis(100)));
        fc.request_direct(ClientId(0), t(0));
        assert!(
            fc.tick_direct(t(500)).is_empty(),
            "holder keeps an uncontested floor"
        );
    }

    #[test]
    fn duplicate_requests_are_idempotent() {
        let mut fc = FloorControl::new(FloorPolicy::RequestQueue);
        fc.request_direct(ClientId(0), t(0));
        assert!(fc.request_direct(ClientId(0), t(1)).is_empty());
        fc.request_direct(ClientId(1), t(2));
        assert!(fc.request_direct(ClientId(1), t(3)).is_empty());
        assert_eq!(fc.waiting(), vec![ClientId(1)]);
    }

    #[test]
    fn release_with_empty_queue_reports_idle() {
        let mut fc = FloorControl::new(FloorPolicy::RequestQueue);
        fc.request_direct(ClientId(0), t(0));
        let ev = fc.release_direct(ClientId(0), t(1)).unwrap();
        assert_eq!(ev, vec![FloorEvent::Idle]);
    }
}
