#![warn(missing_docs)]

//! # odp-concurrency — cooperation-aware concurrency control
//!
//! The paper's central technical argument (§4.2.1) is that strict
//! serialisability — concurrency *transparency* — is the wrong tool for
//! cooperative work: it "masks out" other users exactly where CSCW needs
//! *awareness*. This crate implements the full spectrum the paper
//! surveys, so the trade-off can be measured:
//!
//! | Module | Scheme | Source |
//! |---|---|---|
//! | [`twophase`] | strict 2PL serialisable transactions (baseline, Figure 2a) | Bernstein & Goodman |
//! | [`locks`] | tickle locks | Greif & Sarin |
//! | [`locks`] | soft locks | Stefik et al. (Cognoter/Colab) |
//! | [`locks`] | notification locks | Hornick & Zdonik |
//! | [`txgroup`] | transaction groups with tailorable access rules | Skarra & Zdonik |
//! | [`nested`] | hierarchical (nested) transaction groups | Skarra & Zdonik |
//! | [`ot`], [`dopt`] | operation transformation (GROVE) | Ellis & Gibbs |
//! | [`jupiter`] | client–server OT (provably convergent refinement) | Nichols et al. |
//! | [`floor`] | reservation / floor passing | Colab et al. |
//! | [`granularity`] | document/section/paragraph/sentence/word lock units | §4.2.1 |
//!
//! Every scheme reports the two Ellis real-time measures — *response
//! time* and *notification time* — plus the awareness events it lets
//! flow, which is what experiments E2–E4 compare.

pub mod dopt;
pub mod floor;
pub mod granularity;
pub mod jupiter;
pub mod locks;
pub mod nested;
pub mod ot;
pub mod store;
pub mod twophase;
pub mod txgroup;

pub use dopt::{DoptSite, RemoteOp};
pub use floor::{FloorControl, FloorError, FloorEvent, FloorPolicy};
pub use granularity::{unit_at, unit_count, unit_ranges, Granularity, UnitId};
pub use jupiter::{Bridge, OpMsg, OtClient, OtServer};
pub use locks::{
    ClientId, LockError, LockMode, LockReply, LockScheme, LockTable, Notice, NoticeKind, ResourceId,
};
pub use nested::{GroupNodeId, GroupTree, TreeError};
pub use ot::{
    ops_for_delete, ops_for_insert, transform, transform_pair, CharOp, TextDoc, TieBreak,
};
pub use store::{ObjectId, ObjectStore, StoreError, Versioned};
pub use twophase::{
    AbortReason, OpKind, OpResult, SubmitReply, TxnError, TxnEvent, TxnId, TxnManager, TxnOp,
};
pub use txgroup::{
    AccessMode, AccessRule, CooperativeRule, ExclusiveWriterRule, GroupError, GroupNotice,
    ReviewerRule, RuleDecision, TransactionGroup,
};
