//! Property tests for the concurrency-control schemes: OT convergence
//! (TP1 and end-to-end), serialisability of 2PL, and granularity
//! invariants.

use odp_concurrency::granularity::{unit_at, unit_count, unit_ranges, Granularity};
use odp_concurrency::jupiter::{OtClient, OtServer};
use odp_concurrency::ot::{transform_pair, CharOp, TextDoc, TieBreak};
use odp_concurrency::store::ObjectId;
use odp_concurrency::twophase::{OpKind, SubmitReply, TxnManager, TxnOp};
use odp_sim::time::SimTime;
use proptest::prelude::*;

proptest! {
    /// TP1: for any document and any two ops valid on it,
    /// `s·a·T(b,a) == s·b·T(a,b)`.
    #[test]
    fn tp1_for_arbitrary_ops(
        s in "[a-z]{0,12}",
        seed_a in 0usize..64,
        seed_b in 0usize..64,
        ch_a in proptest::char::range('a', 'z'),
        ch_b in proptest::char::range('a', 'z'),
        del_a in any::<bool>(),
        del_b in any::<bool>(),
    ) {
        let n = s.chars().count();
        let mk = |seed: usize, ch: char, del: bool| -> CharOp {
            if del && n > 0 {
                CharOp::Delete { pos: seed % n }
            } else {
                CharOp::Insert { pos: seed % (n + 1), ch }
            }
        };
        let a = mk(seed_a, ch_a, del_a);
        let b = mk(seed_b, ch_b, del_b);
        let (a2, b2) = transform_pair(a, b, TieBreak::OpWins);
        let mut left = TextDoc::from(s.as_str());
        left.apply(a).unwrap();
        left.apply(b2).unwrap();
        let mut right = TextDoc::from(s.as_str());
        right.apply(b).unwrap();
        right.apply(a2).unwrap();
        prop_assert_eq!(left.text(), right.text());
    }

    /// End-to-end Jupiter convergence: N clients make random concurrent
    /// edits; after draining all queues every replica equals the server.
    #[test]
    fn jupiter_replicas_converge(
        seed in any::<u64>(),
        n_clients in 2u32..5,
        rounds in 1usize..8,
    ) {
        use odp_sim::rng::DetRng;
        let mut rng = DetRng::seed_from(seed);
        let initial = "base document";
        let mut server = OtServer::new(initial);
        let mut clients: Vec<OtClient> = (0..n_clients)
            .map(|i| {
                server.add_client(i);
                OtClient::new(i, initial)
            })
            .collect();
        let mut to_server: Vec<(u32, odp_concurrency::jupiter::OpMsg)> = Vec::new();
        let mut to_client: Vec<(u32, odp_concurrency::jupiter::OpMsg)> = Vec::new();
        for _ in 0..rounds {
            for (c, client) in clients.iter_mut().enumerate() {
                let len = client.text().chars().count();
                let op = if rng.chance(0.6) || len == 0 {
                    CharOp::Insert { pos: rng.index(len + 1), ch: 'x' }
                } else {
                    CharOp::Delete { pos: rng.index(len) }
                };
                let msg = client.local_edit(op).unwrap();
                to_server.push((c as u32, msg));
            }
            // Randomly deliver some messages mid-round (per-link FIFO).
            if rng.chance(0.5) && !to_server.is_empty() {
                let (from, msg) = to_server.remove(0);
                to_client.extend(server.client_message(from, msg).unwrap());
            }
        }
        // Drain everything.
        while !to_server.is_empty() || !to_client.is_empty() {
            if !to_server.is_empty() {
                let (from, msg) = to_server.remove(0);
                to_client.extend(server.client_message(from, msg).unwrap());
            }
            if !to_client.is_empty() {
                let (to, msg) = to_client.remove(0);
                clients[to as usize].server_message(msg);
            }
        }
        for c in &clients {
            prop_assert_eq!(c.text(), server.text(), "client {} diverged", c.id);
        }
    }

    /// Granularity: unit ranges always tile the text exactly, and
    /// `unit_at` is consistent with the ranges.
    #[test]
    fn granularity_ranges_tile(text in "[a-zA-Z .!?\n]{0,200}") {
        for g in Granularity::ALL {
            let ranges = unit_ranges(&text, g);
            prop_assert!(!ranges.is_empty());
            prop_assert_eq!(ranges[0].0, 0);
            prop_assert_eq!(ranges.last().unwrap().1, text.chars().count());
            for w in ranges.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0);
            }
            prop_assert_eq!(ranges.len(), unit_count(&text, g));
            for pos in 0..text.chars().count() {
                let u = unit_at(&text, pos, g);
                let (s, e) = ranges[u.0 as usize];
                prop_assert!(pos >= s && pos < e);
            }
        }
    }

    /// 2PL serialisability: under document granularity, interleaved writer
    /// transactions produce a document state equal to *some* serial
    /// execution — with our insert-only workload, all chars survive and
    /// per-transaction chars stay contiguous.
    #[test]
    fn twophase_writes_are_serialised(orders in prop::collection::vec(0usize..3, 3..12)) {
        let mut tm = TxnManager::new(Granularity::Document);
        tm.store_mut().create(ObjectId(1), "");
        let mut txns = vec![tm.begin(), tm.begin(), tm.begin()];
        let mut blocked = [false; 3];
        let now = SimTime::ZERO;
        for &who in &orders {
            if blocked[who] {
                continue;
            }
            let op = TxnOp {
                object: ObjectId(1),
                pos: 0,
                kind: OpKind::Insert(format!("{who}")),
            };
            match tm.submit(txns[who], op, now) {
                Ok(SubmitReply::Done(_)) => {}
                Ok(SubmitReply::Blocked) => blocked[who] = true,
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
        // Commit everyone, resuming blocked transactions as locks free.
        let mut done = [false; 3];
        let mut worklist: Vec<usize> = (0..3).filter(|&i| !blocked[i]).collect();
        while let Some(i) = worklist.pop() {
            if done[i] {
                continue;
            }
            done[i] = true;
            let events = tm.commit(txns[i], now).unwrap();
            for ev in events {
                if let odp_concurrency::twophase::TxnEvent::OpCompleted { txn, .. } = ev {
                    let pos = txns.iter().position(|&t| t == txn).unwrap();
                    blocked[pos] = false;
                    worklist.push(pos);
                }
            }
        }
        prop_assert!(done.iter().all(|&d| d), "every transaction committed");
        txns.clear();
        // Serialisability check: since a txn holds the exclusive document
        // lock from its first write to commit, all inserts of one txn are
        // contiguous at the front in some order: the final string must be
        // a concatenation of per-writer runs.
        let text = tm.store().read(ObjectId(1)).unwrap().value.clone();
        let mut runs: Vec<char> = Vec::new();
        for ch in text.chars() {
            if runs.last() != Some(&ch) {
                runs.push(ch);
            }
        }
        let mut dedup = runs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(runs.len(), dedup.len(), "writer runs interleaved: {}", text);
    }
}
