//! Differential suite for the message fabric: re-enveloping any typed
//! protocol message onto the byte-oriented `odp-fabric` layer must not
//! change a single wire frame, and a group scenario run over
//! `GcMsg<Payload>` must reproduce the typed run's delivery schedule
//! exactly — same times, same sequence numbers, same bytes. Together
//! these prove the zero-copy refactor is observationally invisible:
//! the fabric changes who owns the bytes, never what is on the wire or
//! when it is delivered.

use odp_awareness::bus::{Audience, CoopEvent, CoopKind, CoopMode};
use odp_awareness::dist::BusWire;
use odp_awareness::events::ActivityKind;
use odp_fabric::Payload;
use odp_groupcomm::actors::{GroupActor, GroupApp};
use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::{DataMsg, Delivery, GcMsg, MsgId, Ordering, Reliability};
use odp_groupcomm::vclock::VectorClock;
use odp_groupcomm::{from_fabric, to_fabric};
use odp_net::ctx::NetCtx;
use odp_net::wire::{payload_of, WireCodec};
use odp_place::wire::{PlaceWire, SpanObs};
use odp_sim::prelude::*;
use odp_telemetry::span::SpanContext;
use odp_trader::actors::{Invalidation, InvalidationReason};
use odp_trader::offer::ServiceType;

fn encoding<T: WireCodec>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Every `BusWire` shape the awareness bus puts on the wire: bare
/// injections, cleared grant lists, directed and broadcast audiences.
fn bus_wires() -> Vec<BusWire> {
    let broadcast = CoopEvent::broadcast(
        NodeId(1),
        "doc/report.tex",
        SimTime::from_millis(10),
        CoopKind::Activity(ActivityKind::Edit),
    );
    let mut granted = BusWire::new(broadcast.clone());
    granted.grants = vec![(NodeId(2), 0.75), (NodeId(3), 0.5)];
    let directed = CoopEvent {
        actor: NodeId(4),
        artefact: "doc/fig1.svg".to_owned(),
        at: SimTime::from_millis(20),
        audience: Audience::Direct(NodeId(5)),
        kind: CoopKind::LockGranted {
            mode: CoopMode::Exclusive,
        },
    };
    vec![BusWire::new(broadcast), granted, BusWire::new(directed)]
}

/// Every `Invalidation` reason the trader coherence plane multicasts.
fn invalidations() -> Vec<Invalidation> {
    [
        InvalidationReason::Withdrawn,
        InvalidationReason::Modified,
        InvalidationReason::Rebalanced,
    ]
    .into_iter()
    .map(|reason| Invalidation {
        service_type: ServiceType::new("video/live"),
        reason,
    })
    .collect()
}

/// Every `PlaceWire` variant, workload and migration plane alike.
fn place_wires() -> Vec<PlaceWire> {
    let span = SpanContext::root_with(0x11, 0x22);
    vec![
        PlaceWire::Read {
            cluster: odp_mgmt::model::ClusterId(3),
            span: Some(span),
        },
        PlaceWire::ReadOk {
            cluster: odp_mgmt::model::ClusterId(3),
        },
        PlaceWire::Write {
            cluster: odp_mgmt::model::ClusterId(4),
            byte: 0xA5,
            span: None,
        },
        PlaceWire::WriteOk {
            cluster: odp_mgmt::model::ClusterId(4),
        },
        PlaceWire::WriteRefused {
            cluster: odp_mgmt::model::ClusterId(4),
        },
        PlaceWire::Moved {
            cluster: odp_mgmt::model::ClusterId(4),
            to: NodeId(7),
        },
        PlaceWire::Stats {
            spans: vec![SpanObs {
                ctx: span.child_with(0x33),
                kind: "tile.serve".to_owned(),
                node: NodeId(2),
                opened: SimTime::from_millis(1),
                closed: SimTime::from_millis(2),
            }],
            accesses: vec![(3, 12), (4, 1)],
        },
        PlaceWire::HomeUpdate {
            cluster: odp_mgmt::model::ClusterId(3),
            node: NodeId(9),
        },
        PlaceWire::ViewChange {
            view_id: 2,
            members: vec![NodeId(0), NodeId(1)],
        },
        PlaceWire::Notice(CoopEvent::broadcast(
            NodeId(0),
            "cluster/3",
            SimTime::from_millis(30),
            CoopKind::Activity(ActivityKind::View),
        )),
        PlaceWire::Freeze {
            cluster: odp_mgmt::model::ClusterId(5),
            epoch: 1,
            to: NodeId(6),
        },
        PlaceWire::Chunk {
            cluster: odp_mgmt::model::ClusterId(5),
            epoch: 1,
            index: 0,
            total: 2,
            data: vec![1, 2, 3],
        },
        PlaceWire::ChunkAck {
            cluster: odp_mgmt::model::ClusterId(5),
            epoch: 1,
            index: 0,
        },
        PlaceWire::TransferDone {
            cluster: odp_mgmt::model::ClusterId(5),
            epoch: 1,
            hash: 0xfeed,
        },
        PlaceWire::TransferFailed {
            cluster: odp_mgmt::model::ClusterId(5),
            epoch: 1,
            reason: "destination down".to_owned(),
        },
        PlaceWire::Commit {
            cluster: odp_mgmt::model::ClusterId(5),
            epoch: 1,
            hash: 0xfeed,
        },
        PlaceWire::Installed {
            cluster: odp_mgmt::model::ClusterId(5),
            epoch: 1,
        },
        PlaceWire::InstallFailed {
            cluster: odp_mgmt::model::ClusterId(5),
            epoch: 1,
            reason: "hash mismatch".to_owned(),
        },
        PlaceWire::Release {
            cluster: odp_mgmt::model::ClusterId(5),
            epoch: 1,
            to: NodeId(6),
        },
        PlaceWire::Abort {
            cluster: odp_mgmt::model::ClusterId(5),
            epoch: 1,
        },
    ]
}

/// Wraps each payload value in every payload-carrying `GcMsg` envelope
/// plus the payload-free control variants.
fn gc_envelopes<P: Clone>(payload: P) -> Vec<GcMsg<P>> {
    let id = MsgId {
        origin: NodeId(2),
        seq: 9,
    };
    let mut vc = VectorClock::new();
    vc.tick(NodeId(0));
    let span = SpanContext::root_with(0xaa, 0xbb);
    vec![
        GcMsg::Data(DataMsg {
            id,
            group: GroupId(1),
            vclock: Some(vc),
            span: Some(span),
            payload: payload.clone(),
        }),
        GcMsg::Ack { id },
        GcMsg::SeqRequest { id },
        GcMsg::SeqAssign {
            assign_id: MsgId {
                origin: NodeId(0),
                seq: 1,
            },
            id,
            total: 17,
        },
        GcMsg::RpcRequest {
            call: 4,
            execute_at: Some(SimTime::from_millis(250)),
            span: None,
            payload: payload.clone(),
        },
        GcMsg::RpcReply {
            call: 4,
            span: Some(span.child_with(0xcc)),
            payload: payload.clone(),
        },
        GcMsg::AppCmd(payload),
        GcMsg::InstallView(View::initial(GroupId(3), [NodeId(0), NodeId(4)])),
    ]
}

/// The core frame differential, generic over the payload type: the
/// typed envelope and its fabric re-enveloping must encode to the same
/// bytes, and `from_fabric` must invert `to_fabric` exactly.
fn assert_fabric_transparent<P>(payloads: Vec<P>)
where
    P: WireCodec + Clone + PartialEq + std::fmt::Debug,
{
    for payload in payloads {
        for msg in gc_envelopes(payload) {
            let fabric = to_fabric(&msg);
            assert_eq!(
                encoding(&msg),
                encoding(&fabric),
                "typed and fabric frames diverge for {msg:?}"
            );
            let back: GcMsg<P> = from_fabric(&fabric).expect("fabric payloads decode");
            assert_eq!(back, msg);
        }
    }
}

#[test]
fn gcmsg_over_buswire_is_fabric_transparent() {
    assert_fabric_transparent(bus_wires());
}

#[test]
fn gcmsg_over_trader_invalidations_is_fabric_transparent() {
    assert_fabric_transparent(invalidations());
}

/// `PlaceWire` rides point-to-point (no `GcMsg` envelope), so its
/// fabric form is a bare `Payload` wrapper: wrapping must be
/// frame-invisible for every variant of both planes.
#[test]
fn placewire_payload_wrapping_is_frame_invisible() {
    for wire in place_wires() {
        let wrapped: Payload = payload_of(&wire);
        assert_eq!(
            encoding(&wire),
            encoding(&wrapped),
            "wrapping changed the frame for {wire:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Sim-level schedule differential: typed vs fabric group actors.
// ---------------------------------------------------------------------------

/// One observed delivery: `(micros, origin, seq, payload bytes)`.
type Observed = (u64, u32, u64, Vec<u8>);

/// Records every delivery — the full observable schedule of a group
/// member.
struct ScheduleLog<P> {
    log: Vec<Observed>,
    to_bytes: fn(&P) -> Vec<u8>,
}

impl<P: Clone + 'static> GroupApp<P> for ScheduleLog<P> {
    fn on_deliver(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>, d: Delivery<P>) {
        self.log.push((
            ctx.now().as_micros(),
            d.id.origin.0,
            d.id.seq,
            (self.to_bytes)(&d.payload),
        ));
    }
}

/// Runs a 4-node totally-ordered reliable group where every node
/// multicasts twice, and returns each node's delivery schedule.
fn run_group<P: Clone + 'static>(
    seed: u64,
    wrap: fn(&str) -> P,
    to_bytes: fn(&P) -> Vec<u8>,
) -> Vec<Vec<Observed>> {
    let nodes = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
    let view = View::initial(GroupId(0), nodes);
    let mut sim = SimBuilder::new(seed).build();
    for &n in &nodes {
        sim.add_actor(
            n,
            GroupActor::new(
                n,
                view.clone(),
                Ordering::Total,
                Reliability::reliable(),
                ScheduleLog {
                    log: Vec::new(),
                    to_bytes,
                },
            ),
        );
    }
    for (round, at) in [5u64, 40].into_iter().enumerate() {
        for &n in &nodes {
            let text = format!("m{}-{}", round, n.0);
            sim.inject(
                SimTime::from_millis(at + n.0 as u64),
                n,
                n,
                GcMsg::AppCmd(wrap(&text)),
            );
        }
    }
    // The group maintenance tick re-arms forever, so bound the horizon:
    // two simulated seconds is dozens of ticks past the last inject
    // round (40ms) plus full ack/retransmit settling.
    sim.run(Until::For(SimDuration::from_secs(2)));
    nodes
        .iter()
        .map(|&n| {
            sim.get::<GroupActor<P, ScheduleLog<P>>>(ActorHandle::of(n))
                .expect("actor present")
                .app()
                .log
                .clone()
        })
        .collect()
}

/// The same seeded scenario run over `GcMsg<String>` and over
/// `GcMsg<Payload>` must produce identical delivery schedules on every
/// node: same delivery instants, same `(origin, seq)` ids, same bytes,
/// in the same order. This is the fabric's determinism contract at the
/// simulation level — the explorer/DPOR fixtures then pin it across
/// schedules.
#[test]
fn typed_and_fabric_runs_deliver_identically() {
    for seed in [1, 7, 42] {
        let typed = run_group::<String>(seed, |s| s.to_owned(), encoding);
        let fabric = run_group::<Payload>(
            seed,
            |s| payload_of(&s.to_owned()),
            |p| p.as_slice().to_vec(),
        );
        assert_eq!(
            typed, fabric,
            "delivery schedules diverged under seed {seed}"
        );
        // Sanity: everyone delivered all 8 multicasts, in total order —
        // every node saw the same (origin, seq) sequence.
        for node in &typed {
            assert_eq!(node.len(), 8, "all multicasts deliver");
        }
        let canonical: Vec<(u32, u64)> = typed[0].iter().map(|&(_, o, s, _)| (o, s)).collect();
        for node in &typed[1..] {
            let order: Vec<(u32, u64)> = node.iter().map(|&(_, o, s, _)| (o, s)).collect();
            assert_eq!(order, canonical, "total order must agree across nodes");
        }
    }
}
