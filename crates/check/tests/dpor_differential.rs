//! Differential suite for the reduced explorer: on small, fully
//! enumerable schedule spaces, DPOR (with and without state hashing)
//! must reach *exactly* the same final states and catch *exactly* the
//! same seeded violations as exhaustive enumeration — in fewer runs.
//! A deliberately disarmed dependence relation must demonstrably miss
//! a seeded violation, proving the dependence analysis is what makes
//! the reduction sound rather than lucky.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use odp_check::explore::{hash_of, Budget, Explorer, Invariant, Reduction, ReplayError};
use odp_sim::prelude::*;

const SEED: u64 = 7;

/// Separator between per-receiver delivery orders in a recorded key.
const SEP: u64 = u64::MAX;

/// A receiver that logs payloads in arrival order — the order *is* the
/// state, so every distinct interleaving of same-receiver messages is a
/// distinct final state, and disjoint-receiver messages commute.
struct OrderLog {
    order: Vec<u64>,
}

impl Actor<u64> for OrderLog {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
        self.order.push(msg);
    }
}

/// The workload source (no actor; messages only originate here).
const DRIVER: NodeId = NodeId(9);

/// `payloads[i]` is delivered to `receivers[i]`, all injected at the
/// same instant so every delivery is mutually concurrent.
fn fan_sim(seed: u64, receivers: &[NodeId], payloads: &[(NodeId, u64)]) -> Sim<u64> {
    let mut sim = SimBuilder::new(seed).build();
    for &r in receivers {
        sim.add_actor(r, OrderLog { order: Vec::new() });
    }
    for &(to, payload) in payloads {
        sim.inject(SimTime::from_millis(1), DRIVER, to, payload);
    }
    sim
}

/// Records each run's final `(per-receiver order)` key into a shared
/// set; never fails. The recorded sets are what the differential
/// assertions compare across reduction modes.
struct RecordFinal {
    receivers: Vec<NodeId>,
    seen: Rc<RefCell<BTreeSet<Vec<u64>>>>,
}

impl Invariant<u64> for RecordFinal {
    fn name(&self) -> &'static str {
        "record-final"
    }

    fn check_quiescent(&mut self, sim: &Sim<u64>) -> Result<(), String> {
        let mut key = Vec::new();
        for &r in &self.receivers {
            let log: &OrderLog = sim.get(ActorHandle::of(r)).ok_or("receiver missing")?;
            key.extend(log.order.iter().copied());
            key.push(SEP);
        }
        self.seen.borrow_mut().insert(key);
        Ok(())
    }
}

/// Fails iff the receiver saw exactly `forbidden` — a violation seeded
/// on one specific non-default delivery order.
struct BadOrder {
    receiver: NodeId,
    forbidden: Vec<u64>,
}

impl Invariant<u64> for BadOrder {
    fn name(&self) -> &'static str {
        "bad-order"
    }

    fn check_quiescent(&mut self, sim: &Sim<u64>) -> Result<(), String> {
        let log: &OrderLog = sim
            .get(ActorHandle::of(self.receiver))
            .ok_or("receiver missing")?;
        if log.order == self.forbidden {
            return Err(format!("forbidden delivery order {:?} reached", log.order));
        }
        Ok(())
    }
}

/// Canonical fingerprint for the fan-in harness: the per-receiver
/// orders (everything the invariants read).
fn order_fingerprint(receivers: Vec<NodeId>) -> impl Fn(&Sim<u64>) -> u64 {
    move |sim| {
        let mut key: Vec<u64> = Vec::new();
        for &r in &receivers {
            if let Some(log) = sim.get::<OrderLog>(ActorHandle::of(r)) {
                key.extend(log.order.iter().copied());
                key.push(SEP);
            }
        }
        hash_of(&key)
    }
}

fn recorder_invs(
    receivers: Vec<NodeId>,
    seen: Rc<RefCell<BTreeSet<Vec<u64>>>>,
) -> impl Fn() -> Vec<Box<dyn Invariant<u64>>> {
    move || {
        vec![Box::new(RecordFinal {
            receivers: receivers.clone(),
            seen: seen.clone(),
        }) as Box<dyn Invariant<u64>>]
    }
}

/// Three same-receiver messages: every pair is dependent, so DPOR may
/// not skip anything — exhaustive enumeration, plain DPOR and
/// DPOR+hashing must each reach all 3! = 6 final orders.
#[test]
fn fully_dependent_three_message_space_reaches_all_orders_in_every_mode() {
    let receivers = vec![NodeId(0)];
    let payloads = [(NodeId(0), 1), (NodeId(0), 2), (NodeId(0), 3)];
    let sim = |s| fan_sim(s, &[NodeId(0)], &payloads);

    let mut sets = Vec::new();
    let mut runs = Vec::new();
    for mode in [Reduction::Full, Reduction::Dpor] {
        let seen = Rc::new(RefCell::new(BTreeSet::new()));
        let report = Explorer::new(SEED, Budget::default())
            .with_reduction(mode)
            .explore(sim, recorder_invs(receivers.clone(), seen.clone()));
        assert!(report.complete, "{mode:?} must exhaust the space");
        assert!(report.violation.is_none());
        sets.push(seen.borrow().clone());
        runs.push(report.runs);
    }
    let seen = Rc::new(RefCell::new(BTreeSet::new()));
    let report = Explorer::new(SEED, Budget::default()).explore_hashed(
        sim,
        recorder_invs(receivers.clone(), seen.clone()),
        order_fingerprint(receivers),
    );
    assert!(report.complete);
    sets.push(seen.borrow().clone());
    runs.push(report.runs);

    assert_eq!(sets[0].len(), 6, "exhaustive must reach all 3! orders");
    assert_eq!(sets[0], sets[1], "DPOR lost or invented a final state");
    assert_eq!(sets[0], sets[2], "hashing lost or invented a final state");
    assert_eq!(runs[0], 6);
    assert_eq!(runs[1], 6, "a fully dependent space admits no reduction");
}

/// Two disjoint receivers with two messages each: cross-receiver pairs
/// commute, so exhaustive enumeration wastes 24 runs on 2! x 2! = 4
/// distinct final states. DPOR must reach exactly the same state set in
/// strictly fewer runs.
#[test]
fn disjoint_receivers_dpor_reaches_full_state_set_in_fewer_runs() {
    let receivers = vec![NodeId(0), NodeId(1)];
    let payloads = [
        (NodeId(0), 1),
        (NodeId(0), 2),
        (NodeId(1), 11),
        (NodeId(1), 12),
    ];
    let budget = Budget {
        max_branch: 4,
        max_runs: 200,
        ..Budget::default()
    };
    let sim = |s| fan_sim(s, &[NodeId(0), NodeId(1)], &payloads);

    let full_seen = Rc::new(RefCell::new(BTreeSet::new()));
    let full = Explorer::new(SEED, budget)
        .with_reduction(Reduction::Full)
        .explore(sim, recorder_invs(receivers.clone(), full_seen.clone()));
    assert!(full.complete && full.violation.is_none());
    assert_eq!(full.runs, 24, "exhaustive enumeration of 4 deliveries");

    let dpor_seen = Rc::new(RefCell::new(BTreeSet::new()));
    let dpor = Explorer::new(SEED, budget)
        .explore(sim, recorder_invs(receivers.clone(), dpor_seen.clone()));
    assert!(dpor.complete && dpor.violation.is_none());

    let hash_seen = Rc::new(RefCell::new(BTreeSet::new()));
    let hashed = Explorer::new(SEED, budget).explore_hashed(
        sim,
        recorder_invs(receivers.clone(), hash_seen.clone()),
        order_fingerprint(receivers),
    );
    assert!(hashed.complete && hashed.violation.is_none());

    assert_eq!(full_seen.borrow().len(), 4, "2! x 2! distinct final states");
    assert_eq!(*full_seen.borrow(), *dpor_seen.borrow());
    assert_eq!(*full_seen.borrow(), *hash_seen.borrow());
    assert!(
        dpor.runs < full.runs,
        "DPOR must prune commuting reversals ({} vs {})",
        dpor.runs,
        full.runs
    );
    assert!(hashed.runs <= dpor.runs);
}

/// A violation seeded on one specific non-default order: exhaustive
/// enumeration, DPOR and DPOR+hashing must all find it (same invariant,
/// same forbidden order), and each counterexample must replay.
#[test]
fn every_sound_mode_finds_the_seeded_bad_order_and_it_replays() {
    let payloads = [(NodeId(0), 1), (NodeId(0), 2), (NodeId(0), 3)];
    let sim = |s| fan_sim(s, &[NodeId(0)], &payloads);
    let invs = || {
        vec![Box::new(BadOrder {
            receiver: NodeId(0),
            forbidden: vec![3, 2, 1],
        }) as Box<dyn Invariant<u64>>]
    };

    let mut traces = Vec::new();
    for mode in [Reduction::Full, Reduction::Dpor] {
        let ex = Explorer::new(SEED, Budget::default()).with_reduction(mode);
        let report = ex.explore(sim, invs);
        let cx = report
            .violation
            .unwrap_or_else(|| panic!("{mode:?} missed the seeded bad order"));
        assert_eq!(cx.invariant, "bad-order");
        assert!(cx.violation.contains("[3, 2, 1]"));
        let replayed = ex
            .replay(sim, invs, &cx.choices)
            .expect("trace stays in range")
            .expect("counterexample must reproduce");
        assert_eq!(replayed.violation, cx.violation);
        traces.push(cx.trace());
    }

    let ex = Explorer::new(SEED, Budget::default());
    let report = ex.explore_hashed(sim, invs, order_fingerprint(vec![NodeId(0)]));
    let cx = report
        .violation
        .expect("DPOR+hashing missed the seeded bad order");
    assert_eq!(cx.invariant, "bad-order");
    let replayed = ex
        .replay(sim, invs, &cx.choices)
        .expect("trace stays in range")
        .expect("counterexample must reproduce");
    assert_eq!(replayed.violation, cx.violation);
}

/// The known-bad reducer: declaring every pair independent collapses
/// the space to a single run that reports itself `complete` — and
/// misses the violation exhaustive enumeration finds. This is the
/// soundness counterweight to the differential tests above: the
/// dependence relation is load-bearing, not decorative.
#[test]
fn disarmed_dependence_claims_completeness_but_misses_the_violation() {
    let payloads = [(NodeId(0), 1), (NodeId(0), 2), (NodeId(0), 3)];
    let sim = |s| fan_sim(s, &[NodeId(0)], &payloads);
    let invs = || {
        vec![Box::new(BadOrder {
            receiver: NodeId(0),
            forbidden: vec![3, 2, 1],
        }) as Box<dyn Invariant<u64>>]
    };

    let disarmed = Explorer::new(SEED, Budget::default())
        .with_reduction(Reduction::DisarmedDependence)
        .explore(sim, invs);
    assert_eq!(disarmed.runs, 1, "no dependence, no backtracking");
    assert!(
        disarmed.complete,
        "the unsound reducer even claims completeness"
    );
    assert!(
        disarmed.violation.is_none(),
        "the default schedule does not exhibit the bug"
    );

    let full = Explorer::new(SEED, Budget::default())
        .with_reduction(Reduction::Full)
        .explore(sim, invs);
    assert!(
        full.violation.is_some(),
        "exhaustive enumeration finds what the disarmed reducer missed"
    );
}

/// A stale or hand-mangled trace whose choice index exceeds the branch
/// point's candidate count surfaces as a typed error, not a silently
/// clamped (wrong) schedule.
#[test]
fn replay_reports_out_of_range_choices_as_typed_errors() {
    let payloads = [(NodeId(0), 1), (NodeId(0), 2), (NodeId(0), 3)];
    let sim = |s| fan_sim(s, &[NodeId(0)], &payloads);
    let invs = || Vec::<Box<dyn Invariant<u64>>>::new();

    let err = Explorer::new(SEED, Budget::default())
        .replay(sim, invs, &[42])
        .expect_err("choice 42 cannot be in range");
    assert!(err.to_string().contains("out of range"));
    let ReplayError::ChoiceOutOfRange {
        position,
        choice,
        candidates,
    } = err;
    assert_eq!(position, 0);
    assert_eq!(choice, 42);
    assert_eq!(candidates, 3);
}
