//! End-to-end exploration suite: the checker must *pass* the fixed
//! protocols across every bounded schedule, and must *fail* the seeded
//! known-bad variants — proving the detector actually detects.

use odp_check::explore::{Budget, Explorer, Invariant};
use odp_check::invariants::{
    awareness, federation, groupcomm, locks, placement, replication, telemetry, trader, transport,
};
use odp_groupcomm::multicast::Ordering;
use odp_sim::prelude::{ActorHandle, Until};
use odp_sim::time::SimTime;

const SEED: u64 = 42;

fn locks_invs(n: usize) -> Vec<Box<dyn Invariant<locks::TxnHarnessMsg>>> {
    vec![
        Box::new(locks::LockTableConsistent),
        Box::new(locks::DeadlockResolved::new(n)),
    ]
}

/// Satellite: every 2-, 3- and 4-transaction lock cycle resolves by
/// aborting exactly the youngest transaction, under every explored
/// acquisition order.
#[test]
fn txn_cycles_abort_exactly_the_youngest_in_every_schedule() {
    for n in 2..=4 {
        let budget = Budget {
            max_runs: 200,
            ..Budget::default()
        };
        let report =
            Explorer::new(SEED, budget).explore(|s| locks::cycle_sim(s, n), || locks_invs(n));
        assert!(
            report.violation.is_none(),
            "{n}-cycle: {}",
            report.violation.unwrap()
        );
        assert!(report.runs > 1, "{n}-cycle explored only one schedule");
    }
}

/// The default (un-permuted) schedule of the ring scenario always forms
/// the full deadlock, and resolution picks the youngest victim.
#[test]
fn default_schedule_deadlocks_and_aborts_the_youngest() {
    for n in 2..=4 {
        let mut sim = locks::cycle_sim(SEED, n);
        sim.run(Until::At(SimTime::from_secs(1)));
        let host: &locks::TxnHost = sim.get(ActorHandle::of(locks::HOST)).expect("host");
        let youngest = *host.txn_ids().last().expect("txns");
        assert_eq!(
            host.aborted,
            vec![youngest],
            "{n}-cycle must abort exactly the youngest"
        );
        assert_eq!(host.committed.len(), n - 1, "{n}-cycle survivors commit");
        assert_eq!(host.manager().active(), 0);
    }
}

/// Regression for the ROADMAP "cache coherence under churn" item: with
/// rebalance invalidations in place, no explored schedule of the churn
/// scenario leaves a stale importer cache.
#[test]
fn trader_rebalance_is_coherent_in_every_schedule() {
    let budget = Budget::default().with_horizon(SimTime::from_secs(2));
    let report = Explorer::new(SEED, budget).explore(
        |s| trader::rebalance_sim(s, true),
        || {
            vec![Box::new(trader::CacheCoherent::for_rebalance_sim())
                as Box<dyn Invariant<odp_trader::actors::TraderMsg>>]
        },
    );
    assert!(
        report.violation.is_none(),
        "stale cache: {}",
        report.violation.unwrap()
    );
    assert!(report.runs > 1, "churn scenario explored only one schedule");
}

/// Seeded known-bad fixture: a trader that adopts transferred offers
/// *silently* (no rebalance invalidation) leaves some schedule with a
/// stale importer cache. The explorer must find it within the CI smoke
/// budget, and the counterexample must replay.
#[test]
fn explorer_finds_the_silent_transfer_coherence_bug() {
    let budget = Budget::smoke().with_horizon(SimTime::from_secs(2));
    let invs = || {
        vec![Box::new(trader::CacheCoherent::for_rebalance_sim())
            as Box<dyn Invariant<odp_trader::actors::TraderMsg>>]
    };
    let ex = Explorer::new(SEED, budget);
    let report = ex.explore(|s| trader::rebalance_sim(s, false), invs);
    let cx = report
        .violation
        .expect("the injected coherence bug must be detected");
    assert_eq!(cx.invariant, "trader-cache-coherent");
    let replayed = ex
        .replay(|s| trader::rebalance_sim(s, false), invs, &cx.choices)
        .expect("trace stays in range")
        .expect("counterexample must reproduce");
    assert_eq!(replayed.violation, cx.violation);
    // The trace is the user-facing replay handle; it must round-trip.
    let (seed, choices) =
        odp_check::explore::Counterexample::parse_trace(&cx.trace()).expect("trace parses");
    assert_eq!(seed, SEED);
    assert_eq!(choices, cx.choices);
}

fn federation_invs() -> Vec<Box<dyn Invariant<federation::FedMsg>>> {
    vec![Box::new(federation::FederationSound)]
}

/// Every explored interleaving of imports against offer churn yields
/// resolutions whose narrowed scope, penalty and agreed contract
/// withstand recomputation from the traversed links.
#[test]
fn federated_imports_are_sound_in_every_schedule() {
    let report = Explorer::new(SEED, Budget::default())
        .explore(|s| federation::federation_sim(s, true), federation_invs);
    assert!(
        report.violation.is_none(),
        "unsound resolution: {}",
        report.violation.unwrap()
    );
    assert!(
        report.runs > 1,
        "federation scenario explored only one schedule"
    );
}

/// Seeded known-bad fixture: with penalty accounting disabled the
/// planner reports offers on their raw advertised QoS, so any
/// resolution across a penalized link disagrees with the link
/// recomputation. The explorer must find it within the CI smoke budget
/// and the counterexample must replay.
#[test]
fn explorer_finds_the_unaccounted_penalty_bug() {
    let ex = Explorer::new(SEED, Budget::smoke());
    let report = ex.explore(|s| federation::federation_sim(s, false), federation_invs);
    let cx = report
        .violation
        .expect("the disabled penalty accounting must be detected");
    assert_eq!(cx.invariant, "trader-federation-sound");
    assert!(
        cx.violation.contains("penalty accounting broken"),
        "unexpected violation: {}",
        cx.violation
    );
    let replayed = ex
        .replay(
            |s| federation::federation_sim(s, false),
            federation_invs,
            &cx.choices,
        )
        .expect("trace stays in range")
        .expect("counterexample must reproduce");
    assert_eq!(replayed.violation, cx.violation);
    let (seed, choices) =
        odp_check::explore::Counterexample::parse_trace(&cx.trace()).expect("trace parses");
    assert_eq!(seed, SEED);
    assert_eq!(choices, cx.choices);
}

/// Two dOPT replicas converge under every delivery order (the provable
/// case).
#[test]
fn dopt_pair_converges_in_every_schedule() {
    let report = Explorer::new(SEED, Budget::default()).explore(
        |s| replication::dopt_sim(s, 2),
        || {
            vec![
                Box::new(replication::Converged::new(replication::dopt_sites(2)))
                    as Box<dyn Invariant<odp_concurrency::dopt::RemoteOp>>,
            ]
        },
    );
    assert!(report.violation.is_none(), "{}", report.violation.unwrap());
    assert!(report.complete);
}

/// The documented "dOPT puzzle": with three sites and mutually
/// concurrent edits, some delivery order diverges. The explorer
/// surfaces the divergence the module docs only assert.
#[test]
fn explorer_exhibits_the_dopt_puzzle_on_three_sites() {
    let budget = Budget {
        max_runs: 800,
        ..Budget::default()
    };
    let report = Explorer::new(SEED, budget).explore(
        |s| replication::dopt_sim(s, 3),
        || {
            vec![
                Box::new(replication::Converged::new(replication::dopt_sites(3)))
                    as Box<dyn Invariant<odp_concurrency::dopt::RemoteOp>>,
            ]
        },
    );
    let cx = report
        .violation
        .expect("three-site dOPT must diverge somewhere");
    assert_eq!(cx.invariant, "dopt-convergence");
}

/// FIFO multicast keeps per-origin order and loses nothing, in every
/// explored schedule of the three-member group.
#[test]
fn group_fifo_holds_in_every_schedule() {
    let budget = Budget::smoke().with_horizon(SimTime::from_secs(2));
    let report = Explorer::new(SEED, budget).explore(
        |s| groupcomm::group_sim(s, Ordering::Fifo, 2),
        || {
            let members = groupcomm::group_members();
            vec![
                Box::new(groupcomm::VClockMonotone::new(members.clone()))
                    as Box<dyn Invariant<odp_groupcomm::multicast::GcMsg<u64>>>,
                Box::new(groupcomm::FifoDelivery::new(members, 2)),
            ]
        },
    );
    assert!(report.violation.is_none(), "{}", report.violation.unwrap());
}

/// Totally ordered multicast produces identical delivery sequences at
/// all members, in every explored schedule.
#[test]
fn group_total_order_agreement_holds_in_every_schedule() {
    let budget = Budget::smoke().with_horizon(SimTime::from_secs(2));
    let report = Explorer::new(SEED, budget).explore(
        |s| groupcomm::group_sim(s, Ordering::Total, 2),
        || {
            let members = groupcomm::group_members();
            vec![
                Box::new(groupcomm::VClockMonotone::new(members.clone()))
                    as Box<dyn Invariant<odp_groupcomm::multicast::GcMsg<u64>>>,
                Box::new(groupcomm::DeliveryAgreement::new(members)),
            ]
        },
    );
    assert!(report.violation.is_none(), "{}", report.violation.unwrap());
}

fn telemetry_invs() -> Vec<Box<dyn Invariant<odp_groupcomm::multicast::GcMsg<String>>>> {
    vec![Box::new(telemetry::TelemetrySpans)]
}

/// The instrumented group-RPC workload emits a well-formed span DAG in
/// every explored schedule: all spans close, parents precede children.
#[test]
fn telemetry_spans_are_well_formed_in_every_schedule() {
    let budget = Budget::smoke().with_horizon(SimTime::from_secs(2));
    let report =
        Explorer::new(SEED, budget).explore(|s| telemetry::telemetry_sim(s, true), telemetry_invs);
    assert!(
        report.violation.is_none(),
        "malformed span log: {}",
        report.violation.unwrap()
    );
    assert!(
        report.runs > 1,
        "telemetry scenario explored only one schedule"
    );
}

fn awareness_invs(
) -> Vec<Box<dyn Invariant<odp_groupcomm::multicast::GcMsg<odp_awareness::dist::BusWire>>>> {
    vec![Box::new(awareness::RightsGated::for_gating_sim())]
}

/// The rights-gated cooperation-event bus never surfaces an event to an
/// observer lacking read rights on its artefact, in every explored
/// multicast schedule — and the workload is non-vacuous (events do
/// reach the entitled observers).
#[test]
fn awareness_gating_holds_in_every_schedule() {
    let budget = Budget::smoke().with_horizon(SimTime::from_secs(2));
    let report =
        Explorer::new(SEED, budget).explore(|s| awareness::gating_sim(s, true), awareness_invs);
    assert!(
        report.violation.is_none(),
        "rights leak: {}",
        report.violation.unwrap()
    );
    assert!(
        report.runs > 1,
        "gating scenario explored only one schedule"
    );
}

/// Seeded known-bad fixture: every replica's rights gate disarmed. The
/// rightless observer then receives the racing publications, the
/// detector must flag it, and the counterexample must replay.
#[test]
fn explorer_finds_the_disarmed_rights_gate() {
    let budget = Budget::smoke().with_horizon(SimTime::from_secs(2));
    let ex = Explorer::new(SEED, budget);
    let report = ex.explore(|s| awareness::gating_sim(s, false), awareness_invs);
    let cx = report
        .violation
        .expect("the disarmed gate must be detected");
    assert_eq!(cx.invariant, "awareness-gating");
    assert!(
        cx.violation.contains("no read rights"),
        "unexpected violation: {}",
        cx.violation
    );
    let replayed = ex
        .replay(
            |s| awareness::gating_sim(s, false),
            awareness_invs,
            &cx.choices,
        )
        .expect("trace stays in range")
        .expect("counterexample must reproduce");
    assert_eq!(replayed.violation, cx.violation);
    let (seed, choices) =
        odp_check::explore::Counterexample::parse_trace(&cx.trace()).expect("trace parses");
    assert_eq!(seed, SEED);
    assert_eq!(choices, cx.choices);
}

/// Seeded known-bad fixture: a `bad.probe` span opened at start and
/// never closed. The explorer must flag it in the first schedule and
/// the counterexample must replay.
#[test]
fn explorer_finds_the_leaked_span() {
    let budget = Budget::smoke().with_horizon(SimTime::from_secs(2));
    let ex = Explorer::new(SEED, budget);
    let report = ex.explore(|s| telemetry::telemetry_sim(s, false), telemetry_invs);
    let cx = report.violation.expect("the leaked span must be detected");
    assert_eq!(cx.invariant, "telemetry-spans");
    assert!(
        cx.violation.contains("never closed"),
        "unexpected violation: {}",
        cx.violation
    );
    let replayed = ex
        .replay(
            |s| telemetry::telemetry_sim(s, false),
            telemetry_invs,
            &cx.choices,
        )
        .expect("trace stays in range")
        .expect("counterexample must reproduce");
    assert_eq!(replayed.violation, cx.violation);
    let (seed, choices) =
        odp_check::explore::Counterexample::parse_trace(&cx.trace()).expect("trace parses");
    assert_eq!(seed, SEED);
    assert_eq!(choices, cx.choices);
}

fn transport_invs() -> Vec<Box<dyn Invariant<transport::TransportMsg>>> {
    vec![Box::new(transport::TransportFidelity::for_transport_sim())]
}

/// The live transport's session layer keeps its fidelity promises in
/// every explored schedule of the crash/replay scenario: no sequence
/// gaps after reconnect replay, the dead origin's forwarded broadcast
/// delivered exactly once, and the forwarding/dedup paths actually ran.
#[test]
fn transport_fidelity_holds_in_every_schedule() {
    let budget = Budget::smoke().with_horizon(SimTime::from_secs(2));
    let report =
        Explorer::new(SEED, budget).explore(|s| transport::transport_sim(s, true), transport_invs);
    assert!(
        report.violation.is_none(),
        "transport infidelity: {}",
        report.violation.unwrap()
    );
    assert!(
        report.runs > 1,
        "transport scenario explored only one schedule"
    );
}

/// Seeded known-bad fixture: `(origin, bseq)` dedup disarmed for
/// forwarded frames. Overlapping survivors then double-deliver the
/// crashed origin's broadcast, the detector must flag it, and the
/// counterexample must replay.
#[test]
fn explorer_finds_the_disarmed_forward_dedup() {
    let budget = Budget::smoke().with_horizon(SimTime::from_secs(2));
    let ex = Explorer::new(SEED, budget);
    let report = ex.explore(|s| transport::transport_sim(s, false), transport_invs);
    let cx = report
        .violation
        .expect("the disarmed forward dedup must be detected");
    assert_eq!(cx.invariant, "transport-fidelity");
    assert!(
        cx.violation.contains("duplicates or omissions"),
        "unexpected violation: {}",
        cx.violation
    );
    let replayed = ex
        .replay(
            |s| transport::transport_sim(s, false),
            transport_invs,
            &cx.choices,
        )
        .expect("trace stays in range")
        .expect("counterexample must reproduce");
    assert_eq!(replayed.violation, cx.violation);
    let (seed, choices) =
        odp_check::explore::Counterexample::parse_trace(&cx.trace()).expect("trace parses");
    assert_eq!(seed, SEED);
    assert_eq!(choices, cx.choices);
}

fn placement_invs() -> Vec<Box<dyn Invariant<odp_place::wire::PlaceWire>>> {
    vec![Box::new(placement::PlacementSound::for_placement_sim())]
}

/// The closed-loop placement controller is sound in every explored
/// schedule of the raster workload: each migration decision replays
/// bit-for-bit from its recorded inputs, epochs are serialised, state
/// transfers exactly once, and no write slips inside a freeze window —
/// non-vacuously (a migration commits, writes do hit freezes).
#[test]
fn placement_soundness_holds_in_every_schedule() {
    let budget = Budget::smoke().with_horizon(SimTime::from_secs(2));
    let report =
        Explorer::new(SEED, budget).explore(|s| placement::placement_sim(s, true), placement_invs);
    assert!(
        report.violation.is_none(),
        "unsound placement: {}",
        report.violation.unwrap()
    );
    assert!(
        report.runs > 1,
        "placement scenario explored only one schedule"
    );
}

/// Seeded known-bad fixture: the write freeze disarmed
/// (`set_quiesce(false)`). Writes then land inside freeze windows and
/// are lost to the in-flight snapshot; the detector must flag it and
/// the counterexample must replay.
#[test]
fn explorer_finds_the_disarmed_write_freeze() {
    let budget = Budget::smoke().with_horizon(SimTime::from_secs(2));
    let ex = Explorer::new(SEED, budget);
    let report = ex.explore(|s| placement::placement_sim(s, false), placement_invs);
    let cx = report
        .violation
        .expect("the disarmed write freeze must be detected");
    assert_eq!(cx.invariant, "placement-soundness");
    assert!(
        cx.violation.contains("freeze window"),
        "unexpected violation: {}",
        cx.violation
    );
    let replayed = ex
        .replay(
            |s| placement::placement_sim(s, false),
            placement_invs,
            &cx.choices,
        )
        .expect("trace stays in range")
        .expect("counterexample must reproduce");
    assert_eq!(replayed.violation, cx.violation);
    let (seed, choices) =
        odp_check::explore::Counterexample::parse_trace(&cx.trace()).expect("trace parses");
    assert_eq!(seed, SEED);
    assert_eq!(choices, cx.choices);
}
