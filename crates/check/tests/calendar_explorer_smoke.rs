//! Explorer smoke test for the calendar queue: the existing deep dOPT
//! convergence check explores the *identical* schedule space whether
//! the simulator runs on the calendar queue or the pre-refactor
//! `BTreeMap` queue — same `ExploreStats`, same run/event counts, and
//! byte-identical schedules (the executed `seq` stream of every run).
//!
//! This is the contract that keeps every recorded `seed:choices`
//! counterexample in the repo replayable across the queue swap.

use std::cell::RefCell;
use std::rc::Rc;

use odp_check::explore::{Budget, Explorer, Invariant, Report};
use odp_check::invariants::replication::{
    dopt_deep_sim_on, dopt_sim_on, dopt_sites, fingerprint_for, Converged,
};
use odp_concurrency::dopt::RemoteOp;
use odp_sim::prelude::*;

/// Wraps [`Converged`] and additionally records, per explored run, the
/// sequence numbers of every executed event — a byte-exact transcript
/// of the schedule the explorer drove.
struct ScheduleRecorder {
    inner: Converged,
    current: Vec<u64>,
    runs: Rc<RefCell<Vec<Vec<u64>>>>,
}

impl ScheduleRecorder {
    fn new(sites: Vec<NodeId>, runs: Rc<RefCell<Vec<Vec<u64>>>>) -> Self {
        ScheduleRecorder {
            inner: Converged::new(sites),
            current: Vec::new(),
            runs,
        }
    }
}

impl Invariant<RemoteOp> for ScheduleRecorder {
    fn name(&self) -> &'static str {
        "schedule-recorder"
    }

    fn check_step(&mut self, sim: &Sim<RemoteOp>) -> Result<(), String> {
        self.current
            .extend(sim.last_executed().iter().map(|e| e.desc.seq()));
        self.inner.check_step(sim)
    }

    fn check_quiescent(&mut self, sim: &Sim<RemoteOp>) -> Result<(), String> {
        self.runs
            .borrow_mut()
            .push(std::mem::take(&mut self.current));
        self.inner.check_quiescent(sim)
    }
}

fn explore_deep_on(queue: QueueKind) -> (Report, Vec<Vec<u64>>) {
    let runs = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&runs);
    let ex = Explorer::new(11, Budget::deep());
    let report = ex.explore_hashed(
        move |seed| dopt_deep_sim_on(seed, queue),
        move || {
            vec![
                Box::new(ScheduleRecorder::new(dopt_sites(2), Rc::clone(&sink)))
                    as Box<dyn Invariant<RemoteOp>>,
            ]
        },
        fingerprint_for(dopt_sites(2)),
    );
    let schedules = runs.borrow().clone();
    (report, schedules)
}

fn assert_reports_match(cal: &Report, leg: &Report) {
    assert_eq!(cal.runs, leg.runs, "run counts diverged");
    assert_eq!(cal.events, leg.events, "event counts diverged");
    assert_eq!(cal.complete, leg.complete);
    assert_eq!(
        cal.violation.is_none(),
        leg.violation.is_none(),
        "one queue found a violation the other did not"
    );
    assert_eq!(cal.stats.naive_bound, leg.stats.naive_bound);
    assert_eq!(cal.stats.sleep_pruned, leg.stats.sleep_pruned);
    assert_eq!(cal.stats.hash_pruned, leg.stats.hash_pruned);
    assert_eq!(cal.stats.racing_pairs, leg.stats.racing_pairs);
    assert_eq!(
        cal.stats.reduction_factor.to_bits(),
        leg.stats.reduction_factor.to_bits()
    );
}

/// The headline check: the deep dOPT exploration (DPOR + state
/// hashing, depth-10 budget) is schedule-for-schedule identical on
/// both queue implementations.
#[test]
fn deep_dopt_exploration_is_identical_on_both_queues() {
    let (cal_report, cal_runs) = explore_deep_on(QueueKind::Calendar);
    let (leg_report, leg_runs) = explore_deep_on(QueueKind::Legacy);
    assert!(
        cal_report.violation.is_none(),
        "two-site dOPT must converge: {:?}",
        cal_report.violation
    );
    assert_reports_match(&cal_report, &leg_report);
    assert_eq!(cal_runs.len(), leg_runs.len(), "schedule counts diverged");
    for (i, (a, b)) in cal_runs.iter().zip(&leg_runs).enumerate() {
        assert_eq!(a, b, "schedule #{i} diverged between queues");
    }
}

/// The three-site dOPT-puzzle scenario finds the same divergence
/// counterexample (same seed, same choice trace) on both queues.
#[test]
fn dopt_puzzle_counterexample_is_identical_on_both_queues() {
    let run = |queue: QueueKind| {
        Explorer::new(7, Budget::default()).explore(
            move |seed| dopt_sim_on(seed, 3, queue),
            || vec![Box::new(Converged::new(dopt_sites(3))) as Box<dyn Invariant<RemoteOp>>],
        )
    };
    let cal = run(QueueKind::Calendar);
    let leg = run(QueueKind::Legacy);
    assert_reports_match(&cal, &leg);
    let cx_cal = cal.violation.expect("dOPT puzzle must surface");
    let cx_leg = leg.violation.expect("dOPT puzzle must surface");
    assert_eq!(cx_cal.trace(), cx_leg.trace(), "counterexamples diverged");
    assert_eq!(cx_cal.violation, cx_leg.violation);
}
