//! The workspace determinism lint pass.
//!
//! A self-contained source-level analyzer: no rustc plugin, no network
//! access, no syn — just the [`scanner`] token stream and a handful of
//! project-specific [`rules`]. The driver walks every `.rs` file under
//! the workspace's crate source trees, skips test/example/bench/vendor
//! code, applies `// odp-check: allow(<rule>)` comments, and reports
//! `file:line` diagnostics. Anything it prints is a build-gate failure
//! in CI.

pub mod rules;
pub mod scanner;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use rules::{Finding, RULES, RULE_HOT_ALLOC, RULE_UNUSED_ALLOW, RULE_UNWRAP};

/// One reportable lint violation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path relative to the lint root.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// The rule that fired.
    pub rule: String,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// What to lint and what to skip.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Directory names whose entire subtree is skipped.
    pub skip_dirs: Vec<String>,
    /// Path prefixes (relative to the lint root) scoped out of the
    /// `unwrap` and `hot-path-alloc` rules: experiment drivers and
    /// benchmark harnesses abort the whole run on failure by design and
    /// allocate freely while staging scenarios — they are not protocol
    /// code, a panic there tears down nothing but the experiment itself,
    /// and their allocations are not on any measured delivery path. The
    /// determinism rules (`wallclock`, `hashmap-iter`) still apply.
    pub harness_paths: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            // tests/, examples/ and benches/ are exempt by the rules'
            // own definition; vendor/ is third-party; target/ is build
            // output.
            skip_dirs: ["tests", "examples", "benches", "vendor", "target", ".git"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            // odp-core hosts the scripted experiment drivers; odp-bench
            // is the measurement harness; the invariants directory holds
            // the explorer's scenario harnesses (bus replicas, scripted
            // races) whose construction aborts the check run by design.
            harness_paths: ["crates/core", "crates/bench", "crates/check/src/invariants"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

impl LintConfig {
    /// Whether `rule` is in scope for the file at `rel`.
    pub fn rule_applies(&self, rel: &Path, rule: &str) -> bool {
        (rule != RULE_UNWRAP && rule != RULE_HOT_ALLOC)
            || !self.harness_paths.iter().any(|p| rel.starts_with(p))
    }
}

/// Finds the workspace root by walking up from `start` until a
/// `Cargo.toml` containing `[workspace]` appears.
pub fn workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects the `.rs` files to lint under `root`, sorted for
/// deterministic output.
pub fn collect_files(root: &Path, config: &LintConfig) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if config.skip_dirs.contains(&name) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Lints one file's source text. `rel` is the path used in diagnostics.
pub fn lint_source(rel: &Path, src: &str) -> Vec<Diagnostic> {
    let scanned = scanner::scan(src);
    let findings: Vec<Finding> = rules::run_all(&scanned)
        .into_iter()
        .filter(|f| !scanned.in_test_code(f.line))
        .collect();

    // Apply allows: a finding on a covered line with a matching rule is
    // suppressed; each allow must suppress at least one finding.
    let mut used = vec![false; scanned.allows.len()];
    let mut out: Vec<Diagnostic> = Vec::new();
    for f in findings {
        let suppressed = scanned.allows.iter().enumerate().any(|(i, a)| {
            let hit = a.covers.contains(&f.line) && a.rules.iter().any(|r| r == f.rule);
            if hit {
                used[i] = true;
            }
            hit
        });
        if !suppressed {
            out.push(Diagnostic {
                file: rel.to_path_buf(),
                line: f.line,
                rule: f.rule.to_string(),
                message: f.message,
            });
        }
    }
    for (i, a) in scanned.allows.iter().enumerate() {
        for r in &a.rules {
            if !RULES.contains(&r.as_str()) {
                out.push(Diagnostic {
                    file: rel.to_path_buf(),
                    line: a.line,
                    rule: RULE_UNUSED_ALLOW.to_string(),
                    message: format!(
                        "unknown rule `{r}` in allow-comment (known: {})",
                        RULES.join(", ")
                    ),
                });
            }
        }
        if !used[i] && !scanned.in_test_code(a.line) {
            out.push(Diagnostic {
                file: rel.to_path_buf(),
                line: a.line,
                rule: RULE_UNUSED_ALLOW.to_string(),
                message: "allow-comment suppressed nothing; remove it".to_string(),
            });
        }
    }
    out.sort_by_key(|d| d.line);
    out
}

/// Lints every source file under `root` and returns the diagnostics,
/// sorted by path then line.
pub fn run(root: &Path, config: &LintConfig) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for path in collect_files(root, config) {
        let src = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        out.extend(
            lint_source(&rel, &src)
                .into_iter()
                .filter(|d| config.rule_applies(&rel, &d.rule)),
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_suppresses_and_is_marked_used() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // odp-check: allow(unwrap)\n\
                   x.unwrap()\n\
                   }\n";
        let d = lint_source(Path::new("a.rs"), src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn trailing_allow_on_same_line_works() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // odp-check: allow(unwrap)\n";
        let d = lint_source(Path::new("a.rs"), src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// odp-check: allow(unwrap)\nfn f() {}\n";
        let d = lint_source(Path::new("a.rs"), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unused-allow");
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let src = "// odp-check: allow(nonsense)\nfn f(x: Option<u32>) { x.unwrap(); }\n";
        let d = lint_source(Path::new("a.rs"), src);
        assert!(d.iter().any(|d| d.rule == "unused-allow"));
        assert!(d.iter().any(|d| d.rule == "unwrap"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn f(x: Option<u32>) { x.unwrap(); }\n\
                   }\n";
        let d = lint_source(Path::new("a.rs"), src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn harness_paths_are_scoped_out_of_unwrap_and_hot_alloc_only() {
        let config = LintConfig::default();
        let harness = Path::new("crates/core/src/experiments/media.rs");
        let protocol = Path::new("crates/groupcomm/src/rpc.rs");
        assert!(!config.rule_applies(harness, "unwrap"));
        assert!(!config.rule_applies(harness, "hot-path-alloc"));
        assert!(config.rule_applies(harness, "hashmap-iter"));
        assert!(config.rule_applies(harness, "wallclock"));
        assert!(config.rule_applies(protocol, "unwrap"));
        assert!(config.rule_applies(protocol, "hot-path-alloc"));
        // The explorer's scenario harnesses are harness code too, but
        // the bus protocol module they exercise is not.
        let invariant_harness = Path::new("crates/check/src/invariants/awareness.rs");
        let bus_protocol = Path::new("crates/awareness/src/dist.rs");
        assert!(!config.rule_applies(invariant_harness, "unwrap"));
        assert!(config.rule_applies(invariant_harness, "wallclock"));
        assert!(config.rule_applies(bus_protocol, "unwrap"));
    }

    #[test]
    fn diagnostics_have_file_line_shape() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); }\n";
        let d = lint_source(Path::new("crates/x/src/lib.rs"), src);
        assert_eq!(d.len(), 1);
        let shown = d[0].to_string();
        assert!(
            shown.starts_with("crates/x/src/lib.rs:1: [unwrap]"),
            "{shown}"
        );
    }
}
