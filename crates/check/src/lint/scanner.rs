//! Source preparation for the lint rules: a small scanner that strips
//! comments and literals, records `odp-check: allow(...)` comments, and
//! marks `#[cfg(test)]` regions, so rules run over a token stream that
//! cannot be fooled by strings or doc text.
//!
//! This is deliberately *not* a Rust parser. The rules are lexical
//! (method-call and path patterns), and a lexical scanner keeps the
//! checker dependency-free and robust to code it has never seen; the
//! cost is a small false-positive rate, which the allow-comment
//! mechanism absorbs.

use std::fmt;

/// One word or punctuation character of the cleaned source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text: an identifier/number word, or one punctuation
    /// character.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

impl Token {
    /// True when the token is an identifier-like word.
    pub fn is_word(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    }
}

/// An `// odp-check: allow(rule, ...)` comment found in the source.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule names listed in the comment.
    pub rules: Vec<String>,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Lines the allow applies to: its own line plus the next line that
    /// carries code.
    pub covers: Vec<usize>,
}

/// A scanned source file, ready for the rules.
pub struct ScannedFile {
    /// The cleaned token stream (comments and literal contents gone).
    pub tokens: Vec<Token>,
    /// Allow-comments in source order.
    pub allows: Vec<Allow>,
    /// For each 1-based line, whether it lies inside a `#[cfg(test)]`
    /// item (index 0 unused).
    test_lines: Vec<bool>,
}

impl ScannedFile {
    /// True when `line` (1-based) is inside a `#[cfg(test)]` region.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }
}

impl fmt::Debug for ScannedFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScannedFile")
            .field("tokens", &self.tokens.len())
            .field("allows", &self.allows)
            .finish()
    }
}

/// The marker the allow-comment syntax hangs off.
pub const ALLOW_PREFIX: &str = "odp-check: allow(";

/// Scans one file's source text.
pub fn scan(src: &str) -> ScannedFile {
    let line_count = src.lines().count() + 1;
    let mut cleaned = String::with_capacity(src.len());
    let mut allows: Vec<Allow> = Vec::new();

    // Pass 1: strip comments / string / char literals, keeping newlines
    // so line numbers survive. Allow-comments are harvested here, since
    // they are comments and would otherwise vanish.
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let rest = &src[i..];
        if rest.starts_with("//") {
            let end = rest.find('\n').map_or(src.len(), |n| i + n);
            let comment = &src[i..end];
            // An allow-comment is a plain `//` comment whose body BEGINS
            // with the marker. Doc comments, and comments that merely
            // mention the syntax mid-sentence, are prose, not directives.
            let body = comment
                .trim_start_matches('/')
                .trim_start_matches('!')
                .trim_start();
            let is_doc = comment.starts_with("///") || comment.starts_with("//!");
            if !is_doc && body.starts_with(ALLOW_PREFIX) {
                let args = &body[ALLOW_PREFIX.len()..];
                let args = args.split(')').next().unwrap_or("");
                let rules = args
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                allows.push(Allow {
                    rules,
                    line,
                    covers: Vec::new(),
                });
            }
            i = end;
        } else if rest.starts_with("/*") {
            let mut depth = 1;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if src[j..].starts_with("/*") {
                    depth += 1;
                    j += 2;
                } else if src[j..].starts_with("*/") {
                    depth -= 1;
                    j += 2;
                } else {
                    if bytes[j] == b'\n' {
                        line += 1;
                        cleaned.push('\n');
                    }
                    j += 1;
                }
            }
            i = j;
        } else if rest.starts_with("r\"") || rest.starts_with("r#") || rest.starts_with("br") {
            // Raw string: r"..." or r#"..."# (any number of #).
            let prefix_len = if rest.starts_with("br") { 2 } else { 1 };
            let mut hashes = 0;
            let mut j = i + prefix_len;
            while j < bytes.len() && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'"' {
                j += 1;
                let closer = format!("\"{}", "#".repeat(hashes));
                let end = src[j..]
                    .find(&closer)
                    .map_or(src.len(), |n| j + n + closer.len());
                for &b in &bytes[j..end.min(bytes.len())] {
                    if b == b'\n' {
                        line += 1;
                        cleaned.push('\n');
                    }
                }
                cleaned.push_str("\"\"");
                i = end;
            } else {
                // `r` was just an identifier prefix (e.g. `r#if` raw ident).
                cleaned.push_str(&src[i..j]);
                i = j;
            }
        } else if bytes[i] == b'"' {
            let mut j = i + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    b'\n' => {
                        line += 1;
                        cleaned.push('\n');
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            cleaned.push_str("\"\"");
            i = j;
        } else if bytes[i] == b'\'' {
            // Char literal or lifetime. A lifetime has no closing quote
            // within a couple of characters; a char literal does.
            let lit_end = src[i + 1..]
                .char_indices()
                .take(6)
                .scan(false, |esc, (off, c)| {
                    if *esc {
                        *esc = false;
                        Some((off, c, false))
                    } else {
                        *esc = c == '\\';
                        Some((off, c, c == '\'' && off > 0))
                    }
                })
                .find(|(_, _, close)| *close)
                .map(|(off, _, _)| i + 1 + off);
            // 'a (lifetime) vs 'x' (char). Treat `'` followed by
            // `ident` then non-quote as a lifetime and keep it.
            let is_char = matches!(lit_end, Some(e) if e > i + 1);
            if is_char {
                let e = lit_end.unwrap_or(i + 1) + 1;
                for &b in &bytes[i..e.min(bytes.len())] {
                    if b == b'\n' {
                        line += 1;
                        cleaned.push('\n');
                    }
                }
                cleaned.push_str("' '");
                i = e;
            } else {
                cleaned.push('\'');
                i += 1;
            }
        } else {
            let c = src[i..].chars().next().unwrap_or(' ');
            if c == '\n' {
                line += 1;
            }
            cleaned.push(c);
            i += c.len_utf8();
        }
    }

    // Pass 2: tokenize the cleaned text.
    let mut tokens: Vec<Token> = Vec::new();
    let mut line = 1;
    let mut word = String::new();
    let mut word_line = 1;
    for c in cleaned.chars() {
        if c.is_alphanumeric() || c == '_' {
            if word.is_empty() {
                word_line = line;
            }
            word.push(c);
            continue;
        }
        if !word.is_empty() {
            tokens.push(Token {
                text: std::mem::take(&mut word),
                line: word_line,
            });
        }
        if c == '\n' {
            line += 1;
        } else if !c.is_whitespace() {
            tokens.push(Token {
                text: c.to_string(),
                line,
            });
        }
    }
    if !word.is_empty() {
        tokens.push(Token {
            text: word,
            line: word_line,
        });
    }

    // Pass 3: which lines carry code, and which lie inside a
    // `#[cfg(test)]` item (attribute → following brace-balanced block).
    let mut code_lines = vec![false; line_count + 1];
    for t in &tokens {
        if t.line < code_lines.len() {
            code_lines[t.line] = true;
        }
    }
    let mut test_lines = vec![false; line_count + 1];
    let mut idx = 0;
    while idx < tokens.len() {
        if is_cfg_test_at(&tokens, idx) {
            // Find the block the attribute is attached to: the first `{`
            // at or after the attribute, then its matching `}`.
            let mut j = idx;
            while j < tokens.len() && tokens[j].text != "{" {
                j += 1;
            }
            let mut depth = 0;
            let start_line = tokens[idx].line;
            let mut end_line = start_line;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end_line = tokens[j].line;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if depth != 0 {
                end_line = line_count;
            }
            for flag in &mut test_lines[start_line..=end_line.min(line_count)] {
                *flag = true;
            }
            idx = j.max(idx + 1);
        } else {
            idx += 1;
        }
    }

    // Resolve each allow's coverage: its own line plus the next line
    // with code on it.
    for allow in &mut allows {
        allow.covers.push(allow.line);
        if let Some(l) = (allow.line + 1..code_lines.len()).find(|&l| code_lines[l]) {
            allow.covers.push(l);
        }
    }

    ScannedFile {
        tokens,
        allows,
        test_lines,
    }
}

/// Matches `# [ cfg ( test ) ]` or `# [ cfg ( all|any ( ... test ... ) ) ]`
/// starting at token `idx`.
fn is_cfg_test_at(tokens: &[Token], idx: usize) -> bool {
    let texts: Vec<&str> = tokens[idx..]
        .iter()
        .take(12)
        .map(|t| t.text.as_str())
        .collect();
    if texts.len() < 6 {
        return false;
    }
    if texts[0] != "#" || texts[1] != "[" || texts[2] != "cfg" || texts[3] != "(" {
        return false;
    }
    // Scan the attribute body for a bare `test` word.
    let mut depth = 0;
    for t in &tokens[idx + 3..] {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "]" if depth == 0 => return false,
            "test" => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let s = scan(r#"let x = "a.unwrap()"; // .unwrap() in comment"#);
        assert!(!s.tokens.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let s = scan("let x = r#\"body .unwrap() here\"#; let y = 1;");
        assert!(!s.tokens.iter().any(|t| t.text == "unwrap"));
        assert!(s.tokens.iter().any(|t| t.text == "y"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = scan("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(s.tokens.iter().any(|t| t.text == "a"));
        assert!(!s.tokens.iter().any(|t| t.text == "x" && t.line == 0));
    }

    #[test]
    fn prose_mentioning_the_allow_syntax_is_not_a_directive() {
        let src = "//! Suppress with `// odp-check: allow(unwrap)` comments.\n\
                   /// See `// odp-check: allow(rule, ...)` for syntax.\n\
                   fn f() {}\n";
        let s = scan(src);
        assert!(s.allows.is_empty(), "{:?}", s.allows);
    }

    #[test]
    fn allow_comment_parses_and_covers_next_code_line() {
        let src = "fn f() {\n    // odp-check: allow(unwrap, wallclock)\n\n    x.unwrap();\n}\n";
        let s = scan(src);
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].rules, vec!["unwrap", "wallclock"]);
        assert_eq!(s.allows[0].covers, vec![2, 4]);
    }

    #[test]
    fn cfg_test_region_detected() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let s = scan(src);
        assert!(!s.in_test_code(1));
        assert!(s.in_test_code(2));
        assert!(s.in_test_code(4));
        assert!(s.in_test_code(5));
        assert!(!s.in_test_code(6));
    }

    #[test]
    fn token_lines_are_accurate() {
        let s = scan("a\nb b\n  c");
        let lines: Vec<usize> = s.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 2, 3]);
    }
}
