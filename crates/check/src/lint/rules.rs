//! The determinism lint rules.
//!
//! Each rule is a pure function from a [`ScannedFile`] token stream to
//! raw findings; the driver in [`crate::lint`] applies allow-comments,
//! test-region exemptions and path scoping on top.

use crate::lint::scanner::{ScannedFile, Token};

/// A raw finding before allow/scope filtering.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired (one of [`RULES`]).
    pub rule: &'static str,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Rule: no `.unwrap()` / `.expect(...)` in protocol code.
pub const RULE_UNWRAP: &str = "unwrap";
/// Rule: no wall-clock time or OS randomness in sim-driven code.
pub const RULE_WALLCLOCK: &str = "wallclock";
/// Rule: no iteration over `HashMap`/`HashSet` (order leaks).
pub const RULE_HASHMAP_ITER: &str = "hashmap-iter";
/// Rule: no per-delivery heap allocation in delivery-path methods.
pub const RULE_HOT_ALLOC: &str = "hot-path-alloc";
/// Meta-rule: an allow-comment that suppressed nothing.
pub const RULE_UNUSED_ALLOW: &str = "unused-allow";

/// Every rule name an allow-comment may reference.
pub const RULES: &[&str] = &[
    RULE_UNWRAP,
    RULE_WALLCLOCK,
    RULE_HASHMAP_ITER,
    RULE_HOT_ALLOC,
];

/// `.unwrap()` and `.expect(` on any receiver. Protocol state machines
/// must surface failures as typed errors (or carry a documented
/// invariant via an allow-comment); a panic inside an actor tears down
/// the whole simulated node set.
pub fn unwrap_rule(file: &ScannedFile) -> Vec<Finding> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text != "." {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        let callee = name.text.as_str();
        if callee != "unwrap" && callee != "expect" {
            continue;
        }
        if toks.get(i + 2).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        out.push(Finding {
            rule: RULE_UNWRAP,
            line: name.line,
            message: format!(
                ".{callee}() in protocol code — return a typed error, or document \
                 the invariant with `// odp-check: allow(unwrap)`"
            ),
        });
    }
    out
}

/// Wall-clock time sources and OS-seeded randomness. Everything in a
/// sim-driven crate must read time from `Ctx::now()` and randomness
/// from the seeded `DetRng`, or runs stop being reproducible.
pub fn wallclock_rule(file: &ScannedFile) -> Vec<Finding> {
    let banned: &[(&str, &str)] = &[
        ("Instant", "std::time::Instant is wall-clock"),
        ("SystemTime", "std::time::SystemTime is wall-clock"),
        ("thread_rng", "thread_rng is OS-seeded"),
        ("from_entropy", "entropy seeding is nondeterministic"),
    ];
    let mut out = Vec::new();
    for t in &file.tokens {
        for (word, why) in banned {
            if t.text == *word {
                out.push(Finding {
                    rule: RULE_WALLCLOCK,
                    line: t.line,
                    message: format!(
                        "`{word}` in sim-driven code ({why}); use SimTime/DetRng instead"
                    ),
                });
            }
        }
    }
    out
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Iteration over identifiers the file declares as `HashMap`/`HashSet`.
///
/// Heuristic, single-file, no type inference: an identifier counts as a
/// hash collection if it appears as `name: HashMap<...>` (field or
/// binding annotation) or `name = HashMap::new/with_capacity/from`.
/// Flagged uses are `name.iter()`-style calls and `for ... in &name`
/// loops. Iterating a `HashMap` is fine for pure aggregation, but the
/// moment the order reaches a message, a trace or serialized output the
/// protocol stops being deterministic — so the rule fires everywhere
/// and benign aggregation sites carry an allow-comment.
pub fn hashmap_iter_rule(file: &ScannedFile) -> Vec<Finding> {
    let toks = &file.tokens;
    let mut names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i].text;
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        // `name : [std :: collections ::] HashMap`
        let mut j = i;
        while j >= 2 && toks[j - 1].text == ":" && toks[j - 2].text == ":" {
            // skip a `path::` segment
            if j >= 3 && toks[j - 3].is_word() {
                j -= 3;
            } else {
                break;
            }
        }
        if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].is_word() {
            names.push(toks[j - 2].text.clone());
        }
        // `name = HashMap :: ctor`
        if i >= 2 && toks[i - 1].text == "=" && toks[i - 2].is_word() {
            names.push(toks[i - 2].text.clone());
        }
    }
    names.sort();
    names.dedup();
    let is_tracked = |t: &Token| names.contains(&t.text);

    let mut out = Vec::new();
    for i in 0..toks.len() {
        // `name . iter (` — with optional `self .` prefix handled by the
        // name itself being the last path segment.
        if toks[i].is_word()
            && is_tracked(&toks[i])
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some(".")
        {
            if let Some(m) = toks.get(i + 2) {
                if ITER_METHODS.contains(&m.text.as_str())
                    && toks.get(i + 3).map(|t| t.text.as_str()) == Some("(")
                {
                    out.push(Finding {
                        rule: RULE_HASHMAP_ITER,
                        line: m.line,
                        message: format!(
                            "iterating hash collection `{}` via `.{}()` — arbitrary \
                             order; use BTreeMap/BTreeSet or sort first",
                            toks[i].text, m.text
                        ),
                    });
                }
            }
        }
        // `for pat in [& [mut]] [self .] name {`
        if toks[i].text == "in" && i > 0 {
            let mut j = i + 1;
            while toks
                .get(j)
                .map(|t| t.text == "&" || t.text == "mut")
                .unwrap_or(false)
            {
                j += 1;
            }
            if toks.get(j).map(|t| t.text.as_str()) == Some("self")
                && toks.get(j + 1).map(|t| t.text.as_str()) == Some(".")
            {
                j += 2;
            }
            if let (Some(name), Some(open)) = (toks.get(j), toks.get(j + 1)) {
                if name.is_word() && is_tracked(name) && open.text == "{" {
                    out.push(Finding {
                        rule: RULE_HASHMAP_ITER,
                        line: name.line,
                        message: format!(
                            "for-loop over hash collection `{}` — arbitrary order; \
                             use BTreeMap/BTreeSet or sort first",
                            name.text
                        ),
                    });
                }
            }
        }
    }
    out
}

/// The method names that make up the delivery hot path: the sim calls
/// these once per message (or tick), so anything they allocate is paid
/// per delivery across the whole run.
const HOT_FNS: &[&str] = &[
    "on_message",
    "on_data",
    "on_deliver",
    "on_tick",
    "apply_step",
    "handle_message",
    "deliver",
    "publish",
];

/// Per-delivery heap allocation inside hot delivery-path methods.
///
/// Flags, inside any function named in [`HOT_FNS`]: `format!` (builds a
/// `String` per delivery), `.to_string()` / `.to_owned()` / `.to_vec()`
/// (deep copies), and `.clone()` *inside a loop* (the per-peer fan-out
/// pattern — clone a handle like `odp_fabric::Payload` instead, or
/// restructure so the last peer takes the value by move). A `.clone()`
/// outside a loop is tolerated: it is a constant per-delivery cost, and
/// handle types make it cheap. Sites with a documented reason carry
/// `// odp-check: allow(hot-path-alloc)`.
pub fn hot_alloc_rule(file: &ScannedFile) -> Vec<Finding> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "fn" {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            break;
        };
        if !HOT_FNS.contains(&name.text.as_str()) {
            i += 1;
            continue;
        }
        let fn_name = name.text.clone();
        // Find the body `{`; hitting `;` first means a bodiless trait
        // declaration, which has nothing to scan.
        let mut j = i + 2;
        let body_open = loop {
            match toks.get(j).map(|t| t.text.as_str()) {
                Some("{") => break Some(j),
                Some(";") | None => break None,
                _ => j += 1,
            }
        };
        let Some(open) = body_open else {
            i = j;
            continue;
        };
        // Walk the brace-balanced body, tracking which depths are loop
        // bodies so `.clone()` can be scoped to fan-out loops.
        let mut depth = 0usize;
        let mut loop_depths: Vec<usize> = Vec::new();
        let mut pending_loop = false;
        let mut k = open;
        while k < toks.len() {
            let text = toks[k].text.as_str();
            match text {
                "{" => {
                    depth += 1;
                    if pending_loop {
                        loop_depths.push(depth);
                        pending_loop = false;
                    }
                }
                "}" => {
                    if loop_depths.last() == Some(&depth) {
                        loop_depths.pop();
                    }
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "for" | "while" | "loop" => pending_loop = true,
                "format" if toks.get(k + 1).map(|t| t.text.as_str()) == Some("!") => {
                    out.push(Finding {
                        rule: RULE_HOT_ALLOC,
                        line: toks[k].line,
                        message: format!(
                            "`format!` in hot path `{fn_name}` builds a String per \
                             delivery; precompute it or move it off the delivery path"
                        ),
                    });
                }
                "to_string" | "to_owned" | "to_vec"
                    if k > 0
                        && toks[k - 1].text == "."
                        && toks.get(k + 1).map(|t| t.text.as_str()) == Some("(") =>
                {
                    out.push(Finding {
                        rule: RULE_HOT_ALLOC,
                        line: toks[k].line,
                        message: format!(
                            "`.{text}()` in hot path `{fn_name}` deep-copies per \
                             delivery; borrow, intern, or precompute instead"
                        ),
                    });
                }
                "clone"
                    if k > 0
                        && toks[k - 1].text == "."
                        && toks.get(k + 1).map(|t| t.text.as_str()) == Some("(")
                        && !loop_depths.is_empty() =>
                {
                    out.push(Finding {
                        rule: RULE_HOT_ALLOC,
                        line: toks[k].line,
                        message: format!(
                            "`.clone()` inside a loop in hot path `{fn_name}` — a \
                             per-peer deep copy; clone a cheap handle (e.g. \
                             odp_fabric::Payload) or let the last peer take the \
                             value by move"
                        ),
                    });
                }
                _ => {}
            }
            k += 1;
        }
        i = k + 1;
    }
    out
}

/// Runs every content rule over one scanned file.
pub fn run_all(file: &ScannedFile) -> Vec<Finding> {
    let mut out = unwrap_rule(file);
    out.extend(wallclock_rule(file));
    out.extend(hashmap_iter_rule(file));
    out.extend(hot_alloc_rule(file));
    out.sort_by_key(|f| f.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::scanner::scan;

    #[test]
    fn unwrap_and_expect_fire() {
        let s = scan("fn f() { x.unwrap(); y.expect(\"m\"); z.unwrap_or(0); }");
        let f = unwrap_rule(&s);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn wallclock_fires_on_instant_and_thread_rng() {
        let s = scan("use std::time::Instant; fn f() { let r = thread_rng(); }");
        let f = wallclock_rule(&s);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn hashmap_iter_fires_on_field_and_local() {
        let src = "
            struct S { m: HashMap<u32, u32> }
            impl S {
                fn f(&self) {
                    for (k, v) in &self.m {}
                    let n: HashSet<u32> = HashSet::new();
                    n.iter().count();
                }
            }
        ";
        let s = scan(src);
        let f = hashmap_iter_rule(&s);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn hashmap_lookup_is_fine() {
        let s = scan("struct S { m: HashMap<u32, u32> } fn f(s: &S) { s.m.get(&1); }");
        assert!(hashmap_iter_rule(&s).is_empty());
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let s = scan("struct S { m: BTreeMap<u32, u32> } fn f(s: &S) { for x in &s.m {} }");
        assert!(hashmap_iter_rule(&s).is_empty());
    }

    #[test]
    fn hot_alloc_fires_on_format_and_to_string() {
        let src = "
            fn on_message(&mut self) {
                let s = format!(\"x{}\", 1);
                let t = name.to_string();
                let o = name.to_owned();
                let v = bytes.to_vec();
            }
        ";
        let f = hot_alloc_rule(&scan(src));
        assert_eq!(f.len(), 4, "{f:?}");
        assert!(f.iter().all(|f| f.rule == RULE_HOT_ALLOC));
    }

    #[test]
    fn hot_alloc_clone_fires_only_inside_loops() {
        let src = "
            fn on_deliver(&mut self, d: Delivery) {
                let once = d.payload.clone();
                for peer in &self.peers {
                    out.push((peer, msg.clone()));
                }
                while busy {
                    let again = msg.clone();
                }
            }
        ";
        let f = hot_alloc_rule(&scan(src));
        assert_eq!(f.len(), 2, "clone outside a loop is tolerated: {f:?}");
    }

    #[test]
    fn hot_alloc_ignores_cold_functions_and_bodiless_decls() {
        let src = "
            trait A { fn on_message(&mut self, m: M); }
            fn setup(&mut self) {
                let s = format!(\"cold path {}\", 1);
                for p in &self.peers { out.push(p.clone()); }
            }
        ";
        assert!(hot_alloc_rule(&scan(src)).is_empty());
    }

    #[test]
    fn hot_alloc_clone_scope_ends_with_the_loop() {
        let src = "
            fn handle_message(&mut self) {
                for p in &self.peers { touch(p); }
                let after = msg.clone();
            }
        ";
        assert!(
            hot_alloc_rule(&scan(src)).is_empty(),
            "clone after the loop closes is not per-peer"
        );
    }
}
