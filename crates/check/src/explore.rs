//! Bounded exploration of message-delivery interleavings with dynamic
//! partial-order reduction and state hashing.
//!
//! The default simulator schedule processes events in `(time, seq)`
//! order, which exercises exactly one interleaving per seed. Protocol
//! bugs of the kind the paper worries about — stale caches, divergent
//! replicas, mis-resolved deadlocks — hide in the *other* orders, so
//! this module drives [`Sim::step_nth`] through a bounded DFS over
//! pending-delivery permutations, in the style of stateless model
//! checkers for optimistic-replication algorithms.
//!
//! Exploration is stateless: a schedule is identified by the choice
//! indices taken at each branch point, and replaying a prefix means
//! rebuilding the simulation from its seed and stepping through the
//! same choices. That makes every counterexample a `(seed, choices)`
//! pair that reproduces exactly, on any machine.
//!
//! Naive enumeration visits `branch^depth` schedules. Two reductions
//! keep deeper spaces tractable without losing violations:
//!
//! * **Dynamic partial-order reduction** ([`Reduction::Dpor`], the
//!   default). Deliveries to *different* receivers commute — running
//!   them in either order reaches the same state — so reversing them
//!   is wasted work. Each run records a happens-before relation over
//!   its executed deliveries (vector clocks grown along the
//!   [`Sim::last_executed`] cause chain); after the run, every pair of
//!   same-receiver deliveries where the later one was *not* already
//!   caused by the earlier one is a race, and only schedules reversing
//!   such races are enqueued. Sleep sets carry "already explored from
//!   here" knowledge into sibling subtrees so the same reversal is
//!   never explored twice.
//! * **State hashing** (via [`StateFingerprint`]). Different
//!   interleavings often converge to the same protocol state. When a
//!   fingerprint is supplied, a branch point whose `(actor-state,
//!   pending-set)` digest was already expanded with at least as much
//!   remaining depth budget is pruned.
//!
//! Both reductions are audited by a differential test suite proving
//! they find exactly the violations plain enumeration finds (see
//! `tests/dpor_differential.rs`), and their effect is reported in
//! [`ExploreStats`].

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use odp_sim::net::NodeId;
use odp_sim::sim::{PendingEvent, Sim};
use odp_sim::time::{SimDuration, SimTime};

/// A safety/liveness predicate checked while a schedule runs.
///
/// An instance is created fresh (via the invariant factory handed to
/// [`Explorer::explore`]) for every explored schedule, so it may keep
/// per-run state such as "last vector clock seen per member".
pub trait Invariant<M> {
    /// Short stable name, quoted in counterexamples.
    fn name(&self) -> &'static str;

    /// Called after every processed event.
    fn check_step(&mut self, _sim: &Sim<M>) -> Result<(), String> {
        Ok(())
    }

    /// Called once the schedule quiesces (event queue drained).
    fn check_quiescent(&mut self, _sim: &Sim<M>) -> Result<(), String> {
        Ok(())
    }
}

/// A canonical digest of the protocol state relevant to a scenario.
///
/// Used by [`Explorer::explore_hashed`] to prune schedules that
/// converge to an already-expanded `(state, pending-set)` pair. The
/// digest must cover *all* state the scenario's invariants read —
/// missing state makes distinct states collide and can hide
/// violations, which is exactly what the differential suite checks.
///
/// Implemented for any `Fn(&Sim<M>) -> u64`, so invariant modules
/// expose plain `fn fingerprint(sim: &Sim<M>) -> u64` functions.
pub trait StateFingerprint<M> {
    /// Digest of the current actor state.
    fn fingerprint(&self, sim: &Sim<M>) -> u64;
}

impl<M, F> StateFingerprint<M> for F
where
    F: Fn(&Sim<M>) -> u64,
{
    fn fingerprint(&self, sim: &Sim<M>) -> u64 {
        self(sim)
    }
}

/// Hashes any `Hash` value with the deterministic std SipHash (fixed
/// keys), the convention for [`StateFingerprint`] impls.
pub fn hash_of<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Which schedule-space reduction the explorer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// Dynamic partial-order reduction with sleep sets (sound: finds
    /// every violation plain enumeration finds, in fewer runs).
    #[default]
    Dpor,
    /// Plain enumeration of every sibling at every branch point — the
    /// ground truth the differential suite compares against.
    Full,
    /// **Intentionally unsound**: treats every delivery pair as
    /// independent, so no reversals are ever enqueued. Exists so tests
    /// can prove a broken dependence relation is *detected* (it misses
    /// seeded violations that [`Reduction::Full`] finds).
    DisarmedDependence,
}

/// Exploration limits. Naive schedule spaces grow as `branch^depth`;
/// DPOR and hashing tame that, but `max_runs` still caps the total.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Branch points permuted per schedule; beyond this the run follows
    /// the default order.
    pub max_depth: usize,
    /// Alternatives considered per branch point (first `n` pending
    /// deliveries).
    pub max_branch: usize,
    /// Total schedules explored.
    pub max_runs: usize,
    /// Per-schedule event cap (runaway guard).
    pub max_events: u64,
    /// Treat a run as quiescent once no deliveries are in flight and
    /// the next event (necessarily a timer) lies past this time.
    /// Required for protocols with self-re-arming tick timers, whose
    /// event queue never empties on its own.
    pub horizon: Option<SimTime>,
    /// Only deliveries scheduled within this much of the earliest
    /// pending delivery count as concurrent (and thus permutable).
    /// Models bounded network reordering: a message is never delayed
    /// past traffic sent much later, so branch depth is spent on
    /// genuine races instead of wildly anachronistic orders.
    pub window: SimDuration,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_depth: 6,
            max_branch: 3,
            max_runs: 400,
            max_events: 200_000,
            horizon: None,
            window: SimDuration::from_millis(10),
        }
    }
}

impl Budget {
    /// A small budget for CI smoke runs.
    pub fn smoke() -> Self {
        Budget {
            max_depth: 4,
            max_branch: 3,
            max_runs: 60,
            max_events: 100_000,
            horizon: None,
            window: SimDuration::from_millis(10),
        }
    }

    /// A deep-search budget: depths naive enumeration cannot reach
    /// (`4^10` ≈ a million schedules naively), made tractable by DPOR
    /// and state hashing.
    pub fn deep() -> Self {
        Budget {
            max_depth: 10,
            max_branch: 4,
            max_runs: 20_000,
            max_events: 1_000_000,
            horizon: None,
            window: SimDuration::from_millis(10),
        }
    }

    /// The same budget with a quiescence horizon.
    pub fn with_horizon(mut self, at: SimTime) -> Self {
        self.horizon = Some(at);
        self
    }
}

/// A reproducible schedule that violated an invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The simulation seed.
    pub seed: u64,
    /// Branch choices taken, in order (indices into each branch point's
    /// candidate list).
    pub choices: Vec<usize>,
    /// Which invariant failed.
    pub invariant: String,
    /// The invariant's message.
    pub violation: String,
}

impl Counterexample {
    /// The compact replayable form: `seed:c0.c1.c2`.
    pub fn trace(&self) -> String {
        let choices: Vec<String> = self.choices.iter().map(|c| c.to_string()).collect();
        format!("{}:{}", self.seed, choices.join("."))
    }

    /// Parses the form produced by [`Counterexample::trace`].
    pub fn parse_trace(s: &str) -> Option<(u64, Vec<usize>)> {
        let (seed, rest) = s.split_once(':')?;
        let seed = seed.parse().ok()?;
        if rest.is_empty() {
            return Some((seed, Vec::new()));
        }
        let choices = rest
            .split('.')
            .map(|c| c.parse().ok())
            .collect::<Option<Vec<usize>>>()?;
        Some((seed, choices))
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant `{}` violated under schedule {} — {}",
            self.invariant,
            self.trace(),
            self.violation
        )
    }
}

/// A stale or corrupted trace handed to [`Explorer::replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// A prescribed choice exceeded the candidate count at its branch
    /// point — the trace was recorded against a different scenario
    /// build, so replaying any *other* schedule would be misleading.
    ChoiceOutOfRange {
        /// Which branch point (index into the choice list).
        position: usize,
        /// The out-of-range choice.
        choice: usize,
        /// How many candidates the branch point actually had.
        candidates: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::ChoiceOutOfRange {
                position,
                choice,
                candidates,
            } => write!(
                f,
                "stale trace: choice {choice} at branch point {position} is out of range \
                 ({candidates} candidates) — the trace does not match this scenario"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// How much work a reduction saved, reported alongside the run counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// Naive size of the bounded schedule space, estimated by
    /// multiplying the branch widths seen along the default schedule.
    pub naive_bound: u64,
    /// Runs cut short because every branch candidate was in the sleep
    /// set (their subtrees were proven covered by sibling schedules).
    pub sleep_pruned: usize,
    /// Runs cut short at a branch point whose `(state, pending)`
    /// fingerprint was already expanded with at least as much remaining
    /// depth budget.
    pub hash_pruned: usize,
    /// Same-receiver delivery pairs found racing (neither causally
    /// ordered before the other) across all runs.
    pub racing_pairs: u64,
    /// `naive_bound / runs` — how much smaller the explored space was
    /// than the naive bound. 1.0 means no reduction (e.g. every pair
    /// of deliveries shared a receiver).
    pub reduction_factor: f64,
}

/// What an exploration did.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules executed.
    pub runs: usize,
    /// Events processed across all schedules.
    pub events: u64,
    /// The first violation found, if any.
    pub violation: Option<Counterexample>,
    /// True when the whole bounded schedule space was covered before
    /// `max_runs` tripped.
    pub complete: bool,
    /// Reduction accounting.
    pub stats: ExploreStats,
}

/// The bounded-DFS schedule explorer.
pub struct Explorer {
    seed: u64,
    budget: Budget,
    reduction: Reduction,
}

/// A pending delivery eligible at a branch point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    /// Index into the sim's pending order (what `step_nth` takes).
    idx: usize,
    /// Stable event identity across interleavings.
    seq: u64,
    /// The sender.
    #[allow(dead_code)]
    from: NodeId,
    /// The receiver — the dependence relation keys on this.
    to: NodeId,
}

/// A delivery whose subtree is already covered by a sibling schedule.
/// It stays asleep until an event at its receiver executes (a
/// dependent transition invalidates the coverage argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SleepEntry {
    seq: u64,
    to: NodeId,
}

/// One branch point as a run saw it.
struct BranchPoint {
    /// Position of the chosen event in the run's execution order.
    pos: usize,
    /// Index into the run's choice vector.
    depth: usize,
    candidates: Vec<Candidate>,
    /// Index into `candidates` actually taken.
    choice: usize,
    /// Sleep entries active when the branch point was reached.
    asleep: Vec<SleepEntry>,
}

/// One executed event with its happens-before bookkeeping.
struct ExecRec {
    seq: u64,
    /// `(from, to)` when the event was a delivery.
    deliver: Option<(NodeId, NodeId)>,
    /// `seq` of the event during whose processing this was enqueued.
    caused_by: Option<u64>,
    /// 1-based execution ordinal at this event's node.
    ordinal: usize,
    /// Vector clock after executing the event: for each node, the
    /// ordinal of the latest event there in this event's causal past.
    clock: BTreeMap<NodeId, usize>,
}

/// Everything a finished (non-violating) run learned.
struct RunData {
    taken: Vec<usize>,
    branch_points: Vec<BranchPoint>,
    execs: Vec<ExecRec>,
    seq_to_pos: BTreeMap<u64, usize>,
    /// Run ended at a fingerprint hit.
    hash_pruned: bool,
    /// Run ended because every continuation was asleep.
    sleep_pruned: bool,
}

/// A schedule prefix queued for execution.
struct Job {
    choices: Vec<usize>,
    /// Sleep set in force at the deviation point (the state reached by
    /// the last prescribed choice's branch point).
    sleep: Vec<SleepEntry>,
}

enum RunOutcome {
    Violation(Counterexample),
    Finished(RunData),
    /// A prescribed choice was out of range (possible only for
    /// user-supplied replay traces; internal jobs replay exactly).
    BadChoice {
        position: usize,
        choice: usize,
        candidates: usize,
    },
}

impl Explorer {
    /// An explorer over schedules of `factory(seed)`, using
    /// [`Reduction::Dpor`].
    pub fn new(seed: u64, budget: Budget) -> Self {
        Explorer {
            seed,
            budget,
            reduction: Reduction::default(),
        }
    }

    /// The same explorer with an explicit reduction mode.
    pub fn with_reduction(mut self, reduction: Reduction) -> Self {
        self.reduction = reduction;
        self
    }

    /// The seed in force.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Explores the bounded schedule space. `factory` must build the
    /// *same* simulation for the same seed every call; `invariants`
    /// builds a fresh invariant set per schedule.
    pub fn explore<M, F, G>(&self, factory: F, invariants: G) -> Report
    where
        M: 'static,
        F: Fn(u64) -> Sim<M>,
        G: Fn() -> Vec<Box<dyn Invariant<M>>>,
    {
        self.drive(&factory, &invariants, None)
    }

    /// Like [`Explorer::explore`], additionally pruning branch points
    /// whose `(state, pending)` fingerprint was already expanded.
    pub fn explore_hashed<M, F, G, H>(&self, factory: F, invariants: G, fingerprint: H) -> Report
    where
        M: 'static,
        F: Fn(u64) -> Sim<M>,
        G: Fn() -> Vec<Box<dyn Invariant<M>>>,
        H: StateFingerprint<M>,
    {
        self.drive(&factory, &invariants, Some(&fingerprint))
    }

    fn drive<M, F, G>(
        &self,
        factory: &F,
        invariants: &G,
        fingerprint: Option<&dyn StateFingerprint<M>>,
    ) -> Report
    where
        M: 'static,
        F: Fn(u64) -> Sim<M>,
        G: Fn() -> Vec<Box<dyn Invariant<M>>>,
    {
        let mut report = Report {
            runs: 0,
            events: 0,
            violation: None,
            complete: false,
            stats: ExploreStats::default(),
        };
        // Fingerprint → largest remaining depth budget it was expanded
        // with. Shared across the whole exploration.
        let mut visited: BTreeMap<(u64, u64), usize> = BTreeMap::new();
        // Branch-point path → candidates already dispatched or queued
        // from that state. Sibling jobs sleep on these.
        let mut dispatched: BTreeMap<Vec<usize>, Vec<SleepEntry>> = BTreeMap::new();
        // Lazy DFS over the schedule tree: run a prefix past its end
        // following default choices, and enqueue reversal prefixes
        // discovered along the way.
        let mut stack: Vec<Job> = vec![Job {
            choices: Vec::new(),
            sleep: Vec::new(),
        }];
        while let Some(job) = stack.pop() {
            if report.runs >= self.budget.max_runs {
                self.finalize(&mut report);
                return report;
            }
            report.runs += 1;
            match self.run_schedule(
                factory,
                invariants,
                &job,
                fingerprint,
                &mut visited,
                &mut report.events,
            ) {
                RunOutcome::Violation(cx) => {
                    report.violation = Some(cx);
                    self.finalize(&mut report);
                    return report;
                }
                RunOutcome::BadChoice { .. } => {
                    // Internally queued prefixes always replay within
                    // range; treat an impossible mismatch as a pruned
                    // run rather than exploring a wrong schedule.
                    debug_assert!(false, "internal prefix out of range");
                    continue;
                }
                RunOutcome::Finished(data) => {
                    if report.runs == 1 {
                        report.stats.naive_bound =
                            data.branch_points.iter().fold(1u64, |acc, bp| {
                                acc.saturating_mul(bp.candidates.len() as u64)
                            });
                    }
                    if data.hash_pruned {
                        report.stats.hash_pruned += 1;
                    }
                    if data.sleep_pruned {
                        report.stats.sleep_pruned += 1;
                    }
                    let exts = match self.reduction {
                        Reduction::Full => self.full_extensions(&job, &data),
                        Reduction::Dpor | Reduction::DisarmedDependence => {
                            self.dpor_extensions(&data, &mut dispatched, &mut report.stats)
                        }
                    };
                    // Reverse keeps exploration order depth-first in
                    // discovery order.
                    stack.extend(exts.into_iter().rev());
                }
            }
        }
        report.complete = true;
        self.finalize(&mut report);
        report
    }

    fn finalize(&self, report: &mut Report) {
        let runs = report.runs.max(1) as f64;
        let bound = report.stats.naive_bound.max(1) as f64;
        report.stats.reduction_factor = bound / runs;
    }

    /// Plain enumeration: every sibling of every branch point past the
    /// prescribed prefix becomes a new prefix. Visits each bounded
    /// schedule exactly once.
    fn full_extensions(&self, job: &Job, data: &RunData) -> Vec<Job> {
        let mut exts = Vec::new();
        for bp in &data.branch_points {
            if bp.depth < job.choices.len() {
                continue;
            }
            for c in 0..bp.candidates.len() {
                if c == bp.choice {
                    continue;
                }
                let mut choices = data.taken[..bp.depth].to_vec();
                choices.push(c);
                exts.push(Job {
                    choices,
                    sleep: Vec::new(),
                });
            }
        }
        exts
    }

    /// DPOR: enqueue only prefixes that reverse a racing pair of
    /// same-receiver deliveries, with sleep sets preventing the same
    /// reversal from being queued twice from one state.
    fn dpor_extensions(
        &self,
        data: &RunData,
        dispatched: &mut BTreeMap<Vec<usize>, Vec<SleepEntry>>,
        stats: &mut ExploreStats,
    ) -> Vec<Job> {
        // The choice this run took at each branch point is now covered:
        // siblings queued later from the same state sleep on it.
        for bp in &data.branch_points {
            let key = data.taken[..bp.depth].to_vec();
            let chosen = bp.candidates[bp.choice];
            let entry = dispatched.entry(key).or_default();
            let se = SleepEntry {
                seq: chosen.seq,
                to: chosen.to,
            };
            if !entry.contains(&se) {
                entry.push(se);
            }
        }
        let mut exts = Vec::new();
        if self.reduction == Reduction::DisarmedDependence {
            // Every pair deemed independent: no races, no reversals.
            return exts;
        }
        let pos_to_bp: BTreeMap<usize, usize> = data
            .branch_points
            .iter()
            .enumerate()
            .map(|(k, bp)| (bp.pos, k))
            .collect();
        for (j, q) in data.execs.iter().enumerate() {
            let Some((_, q_to)) = q.deliver else { continue };
            for (&i, &bpk) in pos_to_bp.range(..j) {
                let bp = &data.branch_points[bpk];
                let p = &data.execs[i];
                let Some((_, p_to)) = p.deliver else { continue };
                if p_to != q_to {
                    // Disjoint receivers commute.
                    continue;
                }
                // p happened-before q's *send* ⇒ the order is forced,
                // not a race. The send's causal past is the cause
                // event's clock; an injected q (no cause) races any
                // earlier same-receiver delivery.
                let forced = q
                    .caused_by
                    .and_then(|cb| data.seq_to_pos.get(&cb))
                    .map(|&cp| data.execs[cp].clock.get(&p_to).copied().unwrap_or(0) >= p.ordinal)
                    .unwrap_or(false);
                if forced {
                    continue;
                }
                stats.racing_pairs += 1;
                // Reverse the race at p's branch point: prefer running
                // q (or its earliest pending ancestor) instead of p.
                // If neither is a candidate there, conservatively queue
                // every alternative (Flanagan–Godefroid fallback).
                let mut promote: Option<usize> = None;
                let mut cur = Some(j);
                while let Some(cj) = cur {
                    if cj <= i {
                        break;
                    }
                    let seq = data.execs[cj].seq;
                    if let Some(k) = bp.candidates.iter().position(|c| c.seq == seq) {
                        promote = Some(k);
                        break;
                    }
                    cur = data.execs[cj]
                        .caused_by
                        .and_then(|cb| data.seq_to_pos.get(&cb).copied());
                }
                let targets: Vec<usize> = match promote {
                    Some(k) => vec![k],
                    None => (0..bp.candidates.len()).collect(),
                };
                for k in targets {
                    if k == bp.choice {
                        continue;
                    }
                    let cand = bp.candidates[k];
                    let se = SleepEntry {
                        seq: cand.seq,
                        to: cand.to,
                    };
                    if bp.asleep.contains(&se) {
                        // Covered by a sibling subtree already.
                        continue;
                    }
                    let key = data.taken[..bp.depth].to_vec();
                    let entry = dispatched.entry(key.clone()).or_default();
                    if entry.contains(&se) {
                        // Already run or queued from this state.
                        continue;
                    }
                    // The new job sleeps on everything already covered
                    // from this state: siblings dispatched/queued plus
                    // entries that were asleep here in this run.
                    let mut sleep = entry.clone();
                    for inherited in &bp.asleep {
                        if !sleep.contains(inherited) {
                            sleep.push(*inherited);
                        }
                    }
                    entry.push(se);
                    let mut choices = key;
                    choices.push(k);
                    exts.push(Job { choices, sleep });
                }
            }
        }
        exts
    }

    /// Replays one exact schedule (e.g. a counterexample's `choices`)
    /// and returns its violation, if it still fails.
    ///
    /// A trace recorded against a different scenario build is rejected
    /// with [`ReplayError::ChoiceOutOfRange`] instead of silently
    /// replaying some other schedule.
    pub fn replay<M, F, G>(
        &self,
        factory: F,
        invariants: G,
        choices: &[usize],
    ) -> Result<Option<Counterexample>, ReplayError>
    where
        M: 'static,
        F: Fn(u64) -> Sim<M>,
        G: Fn() -> Vec<Box<dyn Invariant<M>>>,
    {
        let mut events = 0;
        let mut visited = BTreeMap::new();
        let job = Job {
            choices: choices.to_vec(),
            sleep: Vec::new(),
        };
        match self.run_schedule(&factory, &invariants, &job, None, &mut visited, &mut events) {
            RunOutcome::Violation(cx) => Ok(Some(cx)),
            RunOutcome::Finished(_) => Ok(None),
            RunOutcome::BadChoice {
                position,
                choice,
                candidates,
            } => Err(ReplayError::ChoiceOutOfRange {
                position,
                choice,
                candidates,
            }),
        }
    }

    /// Runs one schedule: follow the job's choices at branch points,
    /// then default to the first non-sleeping candidate, recording
    /// branch structure and happens-before for the reducer.
    fn run_schedule<M, F, G>(
        &self,
        factory: &F,
        invariants: &G,
        job: &Job,
        fingerprint: Option<&dyn StateFingerprint<M>>,
        visited: &mut BTreeMap<(u64, u64), usize>,
        total_events: &mut u64,
    ) -> RunOutcome
    where
        M: 'static,
        F: Fn(u64) -> Sim<M>,
        G: Fn() -> Vec<Box<dyn Invariant<M>>>,
    {
        let prefix = &job.choices;
        let mut sim = factory(self.seed);
        let mut invs = invariants();
        let dpor = self.reduction != Reduction::Full;
        let mut data = RunData {
            taken: Vec::new(),
            branch_points: Vec::new(),
            execs: Vec::new(),
            seq_to_pos: BTreeMap::new(),
            hash_pruned: false,
            sleep_pruned: false,
        };
        // Per-node happens-before bookkeeping.
        let mut node_clock: BTreeMap<NodeId, BTreeMap<NodeId, usize>> = BTreeMap::new();
        let mut node_count: BTreeMap<NodeId, usize> = BTreeMap::new();
        // The job's sleep set describes the deviation state; it arms
        // when the run reaches that state and is woken (entries
        // removed) by dependent executions thereafter.
        let mut sleep: Vec<SleepEntry> = if prefix.is_empty() {
            job.sleep.clone()
        } else {
            Vec::new()
        };
        let mut events_this_run = 0u64;

        loop {
            if sim.pending_len() == 0 {
                break;
            }
            if events_this_run >= self.budget.max_events {
                break;
            }
            let candidates = branch_candidates(&sim, self.budget.max_branch, self.budget.window);
            if candidates.is_empty() {
                // Only timers/net-changes remain; past the horizon the
                // protocol is as settled as it will get.
                if let (Some(h), Some(next)) = (self.budget.horizon, sim.next_event_time()) {
                    if next > h {
                        break;
                    }
                }
            }
            let at_branch = candidates.len() >= 2 && data.taken.len() < self.budget.max_depth;
            let stepped = if at_branch {
                let depth = data.taken.len();
                if !prefix.is_empty() && depth == prefix.len() - 1 {
                    // Reached the deviation state the sleep set
                    // describes.
                    sleep = job.sleep.clone();
                }
                let choice = if depth < prefix.len() {
                    let c = prefix[depth];
                    if c >= candidates.len() {
                        return RunOutcome::BadChoice {
                            position: depth,
                            choice: c,
                            candidates: candidates.len(),
                        };
                    }
                    c
                } else {
                    if let Some(fp) = fingerprint {
                        let key = (fp.fingerprint(&sim), pending_signature(&sim));
                        let remaining = self.budget.max_depth - depth;
                        match visited.get(&key) {
                            Some(&r) if r >= remaining => {
                                data.hash_pruned = true;
                                break;
                            }
                            _ => {
                                visited.insert(key, remaining);
                            }
                        }
                    }
                    let free = candidates
                        .iter()
                        .position(|c| !dpor || !sleep.iter().any(|e| e.seq == c.seq));
                    match free {
                        Some(c) => c,
                        None => {
                            // Every continuation is covered by a
                            // sibling subtree.
                            data.sleep_pruned = true;
                            break;
                        }
                    }
                };
                data.branch_points.push(BranchPoint {
                    pos: data.execs.len(),
                    depth,
                    candidates: candidates.clone(),
                    choice,
                    asleep: sleep.clone(),
                });
                let idx = candidates[choice].idx;
                data.taken.push(choice);
                sim.step_nth(idx)
            } else {
                // A forced head that is asleep means the whole
                // remaining schedule is covered by a sibling subtree.
                if dpor && !sleep.is_empty() {
                    if let Some(head) = sim.pending_events().first() {
                        if matches!(head, PendingEvent::Deliver { .. })
                            && sleep.iter().any(|e| e.seq == head.seq())
                        {
                            data.sleep_pruned = true;
                            break;
                        }
                    }
                }
                sim.step()
            };
            if !stepped {
                break;
            }
            events_this_run += 1;
            *total_events += 1;
            if let Some(done) = sim.last_executed() {
                let node = done.desc.node();
                let mut clock = node
                    .and_then(|n| node_clock.get(&n).cloned())
                    .unwrap_or_default();
                if let Some(cp) = done
                    .caused_by
                    .and_then(|cb| data.seq_to_pos.get(&cb).copied())
                {
                    for (n, &o) in &data.execs[cp].clock {
                        let slot = clock.entry(*n).or_insert(0);
                        *slot = (*slot).max(o);
                    }
                }
                let ordinal = match node {
                    Some(n) => {
                        let c = node_count.entry(n).or_insert(0);
                        *c += 1;
                        clock.insert(n, *c);
                        node_clock.insert(n, clock.clone());
                        *c
                    }
                    None => 0,
                };
                let deliver = match done.desc {
                    PendingEvent::Deliver { from, to, .. } => Some((from, to)),
                    _ => None,
                };
                data.seq_to_pos.insert(done.desc.seq(), data.execs.len());
                data.execs.push(ExecRec {
                    seq: done.desc.seq(),
                    deliver,
                    caused_by: done.caused_by,
                    ordinal,
                    clock,
                });
                // An execution at a sleeping delivery's receiver is a
                // dependent transition: the coverage argument for that
                // entry no longer holds, so it wakes.
                if let Some(n) = node {
                    sleep.retain(|e| e.to != n);
                }
            }
            for inv in &mut invs {
                if let Err(violation) = inv.check_step(&sim) {
                    return RunOutcome::Violation(Counterexample {
                        seed: self.seed,
                        choices: data.taken,
                        invariant: inv.name().to_string(),
                        violation,
                    });
                }
            }
        }
        if !data.hash_pruned && !data.sleep_pruned {
            for inv in &mut invs {
                if let Err(violation) = inv.check_quiescent(&sim) {
                    return RunOutcome::Violation(Counterexample {
                        seed: self.seed,
                        choices: data.taken,
                        invariant: inv.name().to_string(),
                        violation,
                    });
                }
            }
        }
        RunOutcome::Finished(data)
    }
}

/// Digest of the pending event set (kinds, times, endpoints — *not*
/// seqs, which differ across interleavings that converge to the same
/// state). Combined with a [`StateFingerprint`] this identifies a
/// point in the bounded schedule space.
fn pending_signature<M: 'static>(sim: &Sim<M>) -> u64 {
    let mut h = DefaultHasher::new();
    for ev in sim.pending_events() {
        match ev {
            PendingEvent::Start { node, time, .. } => (0u8, node, time.as_micros()).hash(&mut h),
            PendingEvent::Deliver { from, to, time, .. } => {
                (1u8, from, to, time.as_micros()).hash(&mut h)
            }
            PendingEvent::Timer { node, time, .. } => (2u8, node, time.as_micros()).hash(&mut h),
            PendingEvent::NetChange { time, .. } => (3u8, NodeId(0), time.as_micros()).hash(&mut h),
        }
    }
    h.finish()
}

/// The first `max_branch` in-flight deliveries that genuinely race the
/// head event. Branching happens only when the next-due event *is* a
/// delivery — timers and scheduled mutations fire exactly when the sim
/// says they do; reordering a delivery ahead of a pending timer would
/// fabricate schedules the deterministic runtime can never produce
/// (e.g. a node reacting to a message before generating its own
/// scripted event, changing the causal structure under test). Among
/// deliveries, only those due within `window` of the head and before
/// the next non-delivery event count as concurrent.
fn branch_candidates<M: 'static>(
    sim: &Sim<M>,
    max_branch: usize,
    window: SimDuration,
) -> Vec<Candidate> {
    let pending = sim.pending_events();
    let Some(PendingEvent::Deliver { time: head, .. }) = pending.first() else {
        return Vec::new();
    };
    let mut cutoff = head.saturating_add(window);
    if let Some(barrier) = pending
        .iter()
        .find(|ev| !matches!(ev, PendingEvent::Deliver { .. }))
    {
        cutoff = cutoff.min(barrier.time());
    }
    pending
        .iter()
        .enumerate()
        .filter_map(|(i, ev)| match ev {
            PendingEvent::Deliver {
                from,
                to,
                time,
                seq,
            } if *time <= cutoff => Some(Candidate {
                idx: i,
                seq: *seq,
                from: *from,
                to: *to,
            }),
            _ => None,
        })
        .take(max_branch)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_sim::net::NodeId;
    use odp_sim::prelude::*;

    /// An actor that records the order messages arrive in.
    struct Recorder {
        got: Vec<u32>,
    }
    impl Actor<u32> for Recorder {
        fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, msg: u32) {
            self.got.push(msg);
        }
    }

    fn build(seed: u64) -> Sim<u32> {
        let mut sim = SimBuilder::new(seed).build();
        sim.add_actor(NodeId(0), Recorder { got: Vec::new() });
        for (i, at) in [1u64, 2, 3].iter().enumerate() {
            sim.inject(
                SimTime::from_millis(*at),
                NodeId(9),
                NodeId(0),
                i as u32 + 1,
            );
        }
        sim
    }

    /// Rejects the order 3,1,2 — the explorer must find it.
    struct NoThreeFirst;
    impl Invariant<u32> for NoThreeFirst {
        fn name(&self) -> &'static str {
            "no-three-first"
        }
        fn check_quiescent(&mut self, sim: &Sim<u32>) -> Result<(), String> {
            let r: &Recorder = sim.get(ActorHandle::of(NodeId(0))).ok_or("no recorder")?;
            if r.got == vec![3, 1, 2] {
                return Err(format!("forbidden order {:?}", r.got));
            }
            Ok(())
        }
    }

    #[test]
    fn explorer_finds_a_specific_bad_order() {
        let ex = Explorer::new(7, Budget::default());
        let report = ex.explore(build, || vec![Box::new(NoThreeFirst)]);
        let cx = report.violation.expect("must find the 3,1,2 schedule");
        // The counterexample replays.
        let again = ex
            .replay(build, || vec![Box::new(NoThreeFirst)], &cx.choices)
            .expect("trace in range")
            .expect("replay reproduces");
        assert_eq!(again.violation, cx.violation);
    }

    #[test]
    fn exploration_covers_all_permutations_of_three_messages() {
        // With no invariant, a full exploration of 3 pending deliveries
        // needs 3! = 6 schedules (branch points shrink as messages
        // drain). All three share a receiver, so every pair is
        // dependent and DPOR must keep all six.
        let ex = Explorer::new(7, Budget::default());
        let report = ex.explore(build, Vec::new);
        assert!(report.complete);
        assert_eq!(report.runs, 6, "3! interleavings");
        assert_eq!(report.stats.naive_bound, 6);
    }

    #[test]
    fn full_enumeration_matches_dpor_on_dependent_space() {
        let ex = Explorer::new(7, Budget::default()).with_reduction(Reduction::Full);
        let report = ex.explore(build, Vec::new);
        assert!(report.complete);
        assert_eq!(report.runs, 6);
    }

    #[test]
    fn clean_invariants_pass_and_space_is_complete() {
        struct AllThree;
        impl Invariant<u32> for AllThree {
            fn name(&self) -> &'static str {
                "all-three-arrive"
            }
            fn check_quiescent(&mut self, sim: &Sim<u32>) -> Result<(), String> {
                let r: &Recorder = sim.get(ActorHandle::of(NodeId(0))).ok_or("no recorder")?;
                if r.got.len() != 3 {
                    return Err(format!("only {:?}", r.got));
                }
                Ok(())
            }
        }
        let ex = Explorer::new(7, Budget::default());
        let report = ex.explore(build, || vec![Box::new(AllThree)]);
        assert!(report.violation.is_none());
        assert!(report.complete);
    }

    #[test]
    fn trace_round_trips() {
        let cx = Counterexample {
            seed: 42,
            choices: vec![2, 0, 1],
            invariant: "x".into(),
            violation: "y".into(),
        };
        assert_eq!(cx.trace(), "42:2.0.1");
        assert_eq!(
            Counterexample::parse_trace(&cx.trace()),
            Some((42, vec![2, 0, 1]))
        );
        assert_eq!(Counterexample::parse_trace("5:"), Some((5, vec![])));
        assert_eq!(Counterexample::parse_trace("bogus"), None);
    }

    #[test]
    fn max_runs_truncates() {
        let ex = Explorer::new(
            7,
            Budget {
                max_runs: 2,
                ..Budget::default()
            },
        );
        let report = ex.explore(build, Vec::new);
        assert_eq!(report.runs, 2);
        assert!(!report.complete);
    }

    #[test]
    fn replay_rejects_out_of_range_choice() {
        let ex = Explorer::new(7, Budget::default());
        // The first branch point has 3 candidates; choice 9 is stale.
        let err = ex
            .replay(build, Vec::new, &[9])
            .expect_err("stale trace must be rejected");
        assert_eq!(
            err,
            ReplayError::ChoiceOutOfRange {
                position: 0,
                choice: 9,
                candidates: 3,
            }
        );
    }

    /// Two disjoint receivers: the two deliveries commute, so DPOR
    /// needs a single run where full enumeration needs two.
    fn build_disjoint(seed: u64) -> Sim<u32> {
        let mut sim = SimBuilder::new(seed).build();
        sim.add_actor(NodeId(0), Recorder { got: Vec::new() });
        sim.add_actor(NodeId(1), Recorder { got: Vec::new() });
        sim.inject(SimTime::from_millis(1), NodeId(9), NodeId(0), 1);
        sim.inject(SimTime::from_millis(2), NodeId(9), NodeId(1), 2);
        sim
    }

    #[test]
    fn dpor_skips_commuting_reversals() {
        let dpor = Explorer::new(7, Budget::default()).explore(build_disjoint, Vec::new);
        assert!(dpor.complete);
        assert_eq!(dpor.runs, 1, "disjoint receivers commute");
        let full = Explorer::new(7, Budget::default())
            .with_reduction(Reduction::Full)
            .explore(build_disjoint, Vec::new);
        assert!(full.complete);
        assert_eq!(full.runs, 2);
        assert!(dpor.stats.racing_pairs == 0);
    }
}
