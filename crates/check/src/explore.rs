//! Bounded exploration of message-delivery interleavings.
//!
//! The default simulator schedule processes events in `(time, seq)`
//! order, which exercises exactly one interleaving per seed. Protocol
//! bugs of the kind the paper worries about — stale caches, divergent
//! replicas, mis-resolved deadlocks — hide in the *other* orders, so
//! this module drives [`Sim::step_nth`] through a bounded DFS over
//! pending-delivery permutations, in the style of stateless model
//! checkers for optimistic-replication algorithms.
//!
//! Exploration is stateless: a schedule is identified by the choice
//! indices taken at each branch point, and replaying a prefix means
//! rebuilding the simulation from its seed and stepping through the
//! same choices. That makes every counterexample a `(seed, choices)`
//! pair that reproduces exactly, on any machine.

use odp_sim::sim::{PendingEvent, Sim};
use odp_sim::time::{SimDuration, SimTime};

/// A safety/liveness predicate checked while a schedule runs.
///
/// An instance is created fresh (via the invariant factory handed to
/// [`Explorer::explore`]) for every explored schedule, so it may keep
/// per-run state such as "last vector clock seen per member".
pub trait Invariant<M> {
    /// Short stable name, quoted in counterexamples.
    fn name(&self) -> &'static str;

    /// Called after every processed event.
    fn check_step(&mut self, _sim: &Sim<M>) -> Result<(), String> {
        Ok(())
    }

    /// Called once the schedule quiesces (event queue drained).
    fn check_quiescent(&mut self, _sim: &Sim<M>) -> Result<(), String> {
        Ok(())
    }
}

/// Exploration limits. Schedules grow as `branch^depth`, so both knobs
/// are small by design; `max_runs` caps the total regardless.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Branch points permuted per schedule; beyond this the run follows
    /// the default order.
    pub max_depth: usize,
    /// Alternatives considered per branch point (first `n` pending
    /// deliveries).
    pub max_branch: usize,
    /// Total schedules explored.
    pub max_runs: usize,
    /// Per-schedule event cap (runaway guard).
    pub max_events: u64,
    /// Treat a run as quiescent once no deliveries are in flight and
    /// the next event (necessarily a timer) lies past this time.
    /// Required for protocols with self-re-arming tick timers, whose
    /// event queue never empties on its own.
    pub horizon: Option<SimTime>,
    /// Only deliveries scheduled within this much of the earliest
    /// pending delivery count as concurrent (and thus permutable).
    /// Models bounded network reordering: a message is never delayed
    /// past traffic sent much later, so branch depth is spent on
    /// genuine races instead of wildly anachronistic orders.
    pub window: SimDuration,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_depth: 6,
            max_branch: 3,
            max_runs: 400,
            max_events: 200_000,
            horizon: None,
            window: SimDuration::from_millis(10),
        }
    }
}

impl Budget {
    /// A small budget for CI smoke runs.
    pub fn smoke() -> Self {
        Budget {
            max_depth: 4,
            max_branch: 3,
            max_runs: 60,
            max_events: 100_000,
            horizon: None,
            window: SimDuration::from_millis(10),
        }
    }

    /// The same budget with a quiescence horizon.
    pub fn with_horizon(mut self, at: SimTime) -> Self {
        self.horizon = Some(at);
        self
    }
}

/// A reproducible schedule that violated an invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The simulation seed.
    pub seed: u64,
    /// Branch choices taken, in order (indices into each branch point's
    /// candidate list).
    pub choices: Vec<usize>,
    /// Which invariant failed.
    pub invariant: String,
    /// The invariant's message.
    pub violation: String,
}

impl Counterexample {
    /// The compact replayable form: `seed:c0.c1.c2`.
    pub fn trace(&self) -> String {
        let choices: Vec<String> = self.choices.iter().map(|c| c.to_string()).collect();
        format!("{}:{}", self.seed, choices.join("."))
    }

    /// Parses the form produced by [`Counterexample::trace`].
    pub fn parse_trace(s: &str) -> Option<(u64, Vec<usize>)> {
        let (seed, rest) = s.split_once(':')?;
        let seed = seed.parse().ok()?;
        if rest.is_empty() {
            return Some((seed, Vec::new()));
        }
        let choices = rest
            .split('.')
            .map(|c| c.parse().ok())
            .collect::<Option<Vec<usize>>>()?;
        Some((seed, choices))
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant `{}` violated under schedule {} — {}",
            self.invariant,
            self.trace(),
            self.violation
        )
    }
}

/// What an exploration did.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules executed.
    pub runs: usize,
    /// Events processed across all schedules.
    pub events: u64,
    /// The first violation found, if any.
    pub violation: Option<Counterexample>,
    /// True when the whole bounded schedule space was covered before
    /// `max_runs` tripped.
    pub complete: bool,
}

/// The bounded-DFS schedule explorer.
pub struct Explorer {
    seed: u64,
    budget: Budget,
}

enum RunOutcome {
    Violation(Counterexample),
    /// Sibling prefixes discovered at branch points past this run's
    /// prescribed prefix.
    Extensions(Vec<Vec<usize>>),
}

impl Explorer {
    /// An explorer over schedules of `factory(seed)`.
    pub fn new(seed: u64, budget: Budget) -> Self {
        Explorer { seed, budget }
    }

    /// The seed in force.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Explores the bounded schedule space. `factory` must build the
    /// *same* simulation for the same seed every call; `invariants`
    /// builds a fresh invariant set per schedule.
    pub fn explore<M, F, G>(&self, factory: F, invariants: G) -> Report
    where
        M: 'static,
        F: Fn(u64) -> Sim<M>,
        G: Fn() -> Vec<Box<dyn Invariant<M>>>,
    {
        let mut report = Report {
            runs: 0,
            events: 0,
            violation: None,
            complete: false,
        };
        // Lazy DFS over the schedule tree: run a prefix following
        // choice 0 past its end, and enqueue the sibling prefixes seen
        // along the way. Every bounded schedule is visited exactly once.
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        while let Some(prefix) = stack.pop() {
            if report.runs >= self.budget.max_runs {
                return report;
            }
            report.runs += 1;
            match self.run_schedule(&factory, &invariants, &prefix, &mut report.events) {
                RunOutcome::Violation(cx) => {
                    report.violation = Some(cx);
                    return report;
                }
                RunOutcome::Extensions(exts) => {
                    // Reverse keeps exploration order depth-first in
                    // ascending choice order.
                    stack.extend(exts.into_iter().rev());
                }
            }
        }
        report.complete = true;
        report
    }

    /// Replays one exact schedule (e.g. a counterexample's `choices`)
    /// and returns its violation, if it still fails.
    pub fn replay<M, F, G>(
        &self,
        factory: F,
        invariants: G,
        choices: &[usize],
    ) -> Option<Counterexample>
    where
        M: 'static,
        F: Fn(u64) -> Sim<M>,
        G: Fn() -> Vec<Box<dyn Invariant<M>>>,
    {
        let mut events = 0;
        match self.run_schedule(&factory, &invariants, choices, &mut events) {
            RunOutcome::Violation(cx) => Some(cx),
            RunOutcome::Extensions(_) => None,
        }
    }

    /// Runs one schedule: follow `prefix` at branch points, then
    /// default to choice 0, recording sibling prefixes along the way.
    fn run_schedule<M, F, G>(
        &self,
        factory: &F,
        invariants: &G,
        prefix: &[usize],
        total_events: &mut u64,
    ) -> RunOutcome
    where
        M: 'static,
        F: Fn(u64) -> Sim<M>,
        G: Fn() -> Vec<Box<dyn Invariant<M>>>,
    {
        let mut sim = factory(self.seed);
        sim.set_max_events(self.budget.max_events);
        let mut invs = invariants();
        let mut taken: Vec<usize> = Vec::new();
        let mut extensions: Vec<Vec<usize>> = Vec::new();
        let mut events_this_run = 0u64;

        loop {
            if sim.pending_len() == 0 {
                break;
            }
            if events_this_run >= self.budget.max_events {
                break;
            }
            let candidates = branch_candidates(&sim, self.budget.max_branch, self.budget.window);
            if candidates.is_empty() {
                // Only timers/net-changes remain; past the horizon the
                // protocol is as settled as it will get.
                if let (Some(h), Some(next)) = (self.budget.horizon, sim.next_event_time()) {
                    if next > h {
                        break;
                    }
                }
            }
            let stepped = if candidates.len() >= 2 && taken.len() < self.budget.max_depth {
                let choice = prefix.get(taken.len()).copied().unwrap_or(0);
                if taken.len() >= prefix.len() {
                    // A branch point past the prescribed prefix: its
                    // siblings become new prefixes to explore.
                    for c in 1..candidates.len() {
                        let mut ext = taken.clone();
                        ext.push(c);
                        extensions.push(ext);
                    }
                }
                let idx = candidates.get(choice).copied().unwrap_or(0);
                taken.push(choice);
                sim.step_nth(idx)
            } else {
                sim.step()
            };
            if !stepped {
                break;
            }
            events_this_run += 1;
            *total_events += 1;
            for inv in &mut invs {
                if let Err(violation) = inv.check_step(&sim) {
                    return RunOutcome::Violation(Counterexample {
                        seed: self.seed,
                        choices: taken,
                        invariant: inv.name().to_string(),
                        violation,
                    });
                }
            }
        }
        for inv in &mut invs {
            if let Err(violation) = inv.check_quiescent(&sim) {
                return RunOutcome::Violation(Counterexample {
                    seed: self.seed,
                    choices: taken,
                    invariant: inv.name().to_string(),
                    violation,
                });
            }
        }
        RunOutcome::Extensions(extensions)
    }
}

/// The indices (in pending `(time, seq)` order) of the first
/// `max_branch` in-flight deliveries that genuinely race the head
/// event. Branching happens only when the next-due event *is* a
/// delivery — timers and scheduled mutations fire exactly when the sim
/// says they do; reordering a delivery ahead of a pending timer would
/// fabricate schedules the deterministic runtime can never produce
/// (e.g. a node reacting to a message before generating its own
/// scripted event, changing the causal structure under test). Among
/// deliveries, only those due within `window` of the head and before
/// the next non-delivery event count as concurrent.
fn branch_candidates<M: 'static>(
    sim: &Sim<M>,
    max_branch: usize,
    window: SimDuration,
) -> Vec<usize> {
    let pending = sim.pending_events();
    let Some(PendingEvent::Deliver { time: head, .. }) = pending.first() else {
        return Vec::new();
    };
    let mut cutoff = head.saturating_add(window);
    if let Some(barrier) = pending
        .iter()
        .find(|ev| !matches!(ev, PendingEvent::Deliver { .. }))
    {
        cutoff = cutoff.min(barrier.time());
    }
    pending
        .iter()
        .enumerate()
        .filter(|(_, ev)| matches!(ev, PendingEvent::Deliver { time, .. } if *time <= cutoff))
        .map(|(i, _)| i)
        .take(max_branch)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_sim::net::NodeId;
    use odp_sim::prelude::*;

    /// An actor that records the order messages arrive in.
    struct Recorder {
        got: Vec<u32>,
    }
    impl Actor<u32> for Recorder {
        fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, msg: u32) {
            self.got.push(msg);
        }
    }

    fn build(seed: u64) -> Sim<u32> {
        let mut sim = Sim::new(seed);
        sim.add_actor(NodeId(0), Recorder { got: Vec::new() });
        for (i, at) in [1u64, 2, 3].iter().enumerate() {
            sim.inject(
                SimTime::from_millis(*at),
                NodeId(9),
                NodeId(0),
                i as u32 + 1,
            );
        }
        sim
    }

    /// Rejects the order 3,1,2 — the explorer must find it.
    struct NoThreeFirst;
    impl Invariant<u32> for NoThreeFirst {
        fn name(&self) -> &'static str {
            "no-three-first"
        }
        fn check_quiescent(&mut self, sim: &Sim<u32>) -> Result<(), String> {
            let r: &Recorder = sim.actor(NodeId(0)).ok_or("no recorder")?;
            if r.got == vec![3, 1, 2] {
                return Err(format!("forbidden order {:?}", r.got));
            }
            Ok(())
        }
    }

    #[test]
    fn explorer_finds_a_specific_bad_order() {
        let ex = Explorer::new(7, Budget::default());
        let report = ex.explore(build, || vec![Box::new(NoThreeFirst)]);
        let cx = report.violation.expect("must find the 3,1,2 schedule");
        // The counterexample replays.
        let again = ex
            .replay(build, || vec![Box::new(NoThreeFirst)], &cx.choices)
            .expect("replay reproduces");
        assert_eq!(again.violation, cx.violation);
    }

    #[test]
    fn exploration_covers_all_permutations_of_three_messages() {
        // With no invariant, a full exploration of 3 pending deliveries
        // needs 3! = 6 schedules (branch points shrink as messages
        // drain).
        let ex = Explorer::new(7, Budget::default());
        let report = ex.explore(build, Vec::new);
        assert!(report.complete);
        assert_eq!(report.runs, 6, "3! interleavings");
    }

    #[test]
    fn clean_invariants_pass_and_space_is_complete() {
        struct AllThree;
        impl Invariant<u32> for AllThree {
            fn name(&self) -> &'static str {
                "all-three-arrive"
            }
            fn check_quiescent(&mut self, sim: &Sim<u32>) -> Result<(), String> {
                let r: &Recorder = sim.actor(NodeId(0)).ok_or("no recorder")?;
                if r.got.len() != 3 {
                    return Err(format!("only {:?}", r.got));
                }
                Ok(())
            }
        }
        let ex = Explorer::new(7, Budget::default());
        let report = ex.explore(build, || vec![Box::new(AllThree)]);
        assert!(report.violation.is_none());
        assert!(report.complete);
    }

    #[test]
    fn trace_round_trips() {
        let cx = Counterexample {
            seed: 42,
            choices: vec![2, 0, 1],
            invariant: "x".into(),
            violation: "y".into(),
        };
        assert_eq!(cx.trace(), "42:2.0.1");
        assert_eq!(
            Counterexample::parse_trace(&cx.trace()),
            Some((42, vec![2, 0, 1]))
        );
        assert_eq!(Counterexample::parse_trace("5:"), Some((5, vec![])));
        assert_eq!(Counterexample::parse_trace("bogus"), None);
    }

    #[test]
    fn max_runs_truncates() {
        let ex = Explorer::new(
            7,
            Budget {
                max_runs: 2,
                ..Budget::default()
            },
        );
        let report = ex.explore(build, Vec::new);
        assert_eq!(report.runs, 2);
        assert!(!report.complete);
    }
}
