//! Telemetry invariants: the causal span log a run emits must assemble
//! into well-formed DAGs — every opened span closes, every child's
//! parent exists and opened no later than the child, and parent chains
//! are acyclic.
//!
//! The harness is a three-member group where one member issues a group
//! RPC at start with span telemetry on, so every explored schedule
//! produces a full `rpc.call → rpc.serve → rpc.reply` chain. The
//! known-bad variant opens a `bad.probe` root span that nothing ever
//! closes — the exact bug (an instrumented operation that loses its
//! completion path) the invariant exists to catch.

use odp_fabric::SpanOp;
use odp_groupcomm::actors::{GroupActor, GroupApp, RpcConfig};
use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::{Delivery, GcMsg, Ordering, Reliability};
use odp_net::ctx::NetCtx;
use odp_sim::prelude::*;
use odp_telemetry::collector::Collector;
use odp_telemetry::span::SpanContext;

use crate::explore::Invariant;

/// The trivial application under test: acknowledges every RPC.
pub struct EchoApp;

impl GroupApp<String> for EchoApp {
    fn on_deliver(&mut self, _ctx: &mut dyn NetCtx<GcMsg<String>>, _delivery: Delivery<String>) {}

    fn on_rpc(
        &mut self,
        _ctx: &mut dyn NetCtx<GcMsg<String>>,
        _from: NodeId,
        _call: u64,
        payload: &String,
    ) -> Option<String> {
        Some(format!("ack:{payload}"))
    }
}

/// Node 0's wrapper: starts the group actor, then immediately issues a
/// group RPC. The known-bad variant (`leak_a_span`) also opens a
/// `bad.probe` root span with a fixed id and never closes it.
struct CallerHost {
    inner: GroupActor<String, EchoApp>,
    leak_a_span: bool,
}

impl Actor<GcMsg<String>> for CallerHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>) {
        Actor::on_start(&mut self.inner, ctx);
        if self.leak_a_span {
            // Fixed ids, not rng-minted: the leak must appear in every
            // explored schedule, not just the first.
            let probe = SpanContext::root_with(0xbad, 0xbad);
            ctx.span_open(probe.carrier(), "bad.probe");
        }
        self.inner
            .invoke_rpc_now(ctx, "ping".to_owned(), RpcConfig::default());
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>, from: NodeId, msg: GcMsg<String>) {
        Actor::on_message(&mut self.inner, ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>, timer: TimerId, tag: u64) {
        self.inner.on_timer(ctx, timer, tag);
    }
}

/// A three-member group with span telemetry on everywhere; node 0
/// issues one group RPC at start. With `well_formed: false` the caller
/// additionally leaks an unclosed `bad.probe` span.
pub fn telemetry_sim(seed: u64, well_formed: bool) -> Sim<GcMsg<String>> {
    let members = [NodeId(0), NodeId(1), NodeId(2)];
    let view = View::initial(GroupId(1), members);
    let mut sim = SimBuilder::new(seed).build();
    let mut caller = GroupActor::new(
        NodeId(0),
        view.clone(),
        Ordering::Unordered,
        Reliability::BestEffort,
        EchoApp,
    );
    caller.set_telemetry(true);
    sim.add_actor(
        NodeId(0),
        CallerHost {
            inner: caller,
            leak_a_span: !well_formed,
        },
    );
    for &m in &members[1..] {
        let mut member = GroupActor::new(
            m,
            view.clone(),
            Ordering::Unordered,
            Reliability::BestEffort,
            EchoApp,
        );
        member.set_telemetry(true);
        sim.add_actor(m, member);
    }
    sim
}

/// Canonical [`crate::explore::StateFingerprint`] for the telemetry
/// scenario: the full string event stream (time, node, label, payload)
/// plus the binary span log (with kind ids resolved back to names, so
/// the hash is independent of interning order) plus the eviction count
/// — exactly what the well-formedness audit reads.
pub fn fingerprint(sim: &Sim<GcMsg<String>>) -> u64 {
    let trace = sim.trace();
    let mut parts: Vec<(u64, u32, &str, &str)> = Vec::new();
    for ev in trace.events() {
        parts.push((
            ev.time.as_micros(),
            ev.node.0,
            ev.label.as_str(),
            ev.data.as_str(),
        ));
    }
    // One digested span event: (time, node, op tag, trace, span,
    // parent, kind name).
    type SpanDigest<'a> = (u64, u32, u8, u64, u64, Option<u64>, &'a str);
    let log = trace.spans();
    let mut spans: Vec<SpanDigest> = Vec::new();
    for e in log.events() {
        spans.push(match e.op {
            SpanOp::Open { span, kind } => (
                e.time_us,
                e.node,
                0,
                span.trace_id,
                span.span_id,
                span.parent,
                log.kind(kind),
            ),
            SpanOp::Close { trace_id, span_id } => {
                (e.time_us, e.node, 1, trace_id, span_id, None, "")
            }
        });
    }
    crate::explore::hash_of(&(parts, spans, trace.dropped()))
}

/// Quiescence invariant: the run's span log assembles into well-formed
/// causal DAGs, and the instrumented workload actually emitted spans
/// (an empty log would pass the audit vacuously while proving nothing).
///
/// Checked only at quiescence: mid-run there are legitimately open
/// spans (an rpc.call waiting for its quorum), so the audit would
/// misfire on every step.
pub struct TelemetrySpans;

impl Invariant<GcMsg<String>> for TelemetrySpans {
    fn name(&self) -> &'static str {
        "telemetry-spans"
    }

    fn check_quiescent(&mut self, sim: &Sim<GcMsg<String>>) -> Result<(), String> {
        let collector = Collector::from_trace(sim.trace());
        if collector.span_count() == 0 {
            return Err("instrumented run emitted no spans".to_owned());
        }
        collector.well_formed()
    }
}
