//! Placement-soundness invariant: every migration the closed-loop
//! controller executes must withstand independent recomputation, across
//! *every* explored delivery schedule of the raster workload.
//!
//! The harness is a shrunk `collab_raster` scenario (one editor per
//! island, three tiles): phase 1 pans from island A, the session view
//! flips, phase 2 pans from island B, and the controller migrates the
//! now-remote tiles across the WAN while writes are still arriving.
//!
//! The invariant re-derives every verdict from recorded inputs alone:
//!
//! - **decision soundness** — each [`DecisionRecord`] is replayed
//!   through [`odp_mgmt::placement::place`] with a [`UsagePattern`]
//!   rebuilt from the recorded weights and a latency oracle rebuilt
//!   from the recorded pair estimates; the chosen node, both costs and
//!   the hysteresis gate must reproduce bit-for-bit;
//! - **serialised epochs** — migration epochs never overlap (at most
//!   one in flight), and none is left dangling at quiescence;
//! - **exactly-once transfer** — each committed epoch installed its
//!   state exactly once at the destination, no orphan installs exist,
//!   and no tile is resident at both storage nodes;
//! - **freeze atomicity** — no host ever applied a write inside a
//!   freeze window (the snapshot in flight would silently drop it).
//!
//! Vacuity guards demand at least one committed migration and at least
//! one write that actually hit a freeze window (refused, under the
//! fixed protocol). The seeded known-bad fixture disarms the write
//! freeze ([`odp_place::host::TileHostActor::set_quiesce`]`(false)`):
//! writes then land inside the freeze window and are lost to the
//! already-snapshotted transfer, and the detector must say so.

use std::collections::BTreeMap;

use odp_mgmt::model::ClusterId;
use odp_mgmt::placement::{place, UsagePattern};
use odp_net::sim_host::SimHost;
use odp_place::controller::{DecisionRecord, EpochOutcome, EpochRecord, PlacementActor};
use odp_place::host::TileHostActor;
use odp_place::scenario::{collab_raster, RasterConfig};
use odp_place::wire::PlaceWire;
use odp_sim::net::NodeId;
use odp_sim::sim::{ActorHandle, Sim};
use odp_sim::time::SimDuration;

use crate::explore::Invariant;

/// Storage on island A (every tile's initial home).
pub const STORAGE_A: NodeId = NodeId(0);
/// Storage on island B (the profitable destination in phase 2).
pub const STORAGE_B: NodeId = NodeId(1);
/// The placement controller.
pub const CONTROLLER: NodeId = NodeId(2);

/// Builds the shrunk raster scenario. `quiesce: false` is the seeded
/// known-bad fixture (writes land inside freeze windows and are lost).
///
/// Phase 2 keeps writing for ~600 ms while each freeze streams sixteen
/// stop-and-wait chunks across the 8 ms WAN (~260 ms per transfer), so
/// every schedule sees at least one write arrive at a frozen tile — the
/// non-vacuity the invariant insists on. The WAN is kept short enough
/// that an access round trip (~17 ms) finishes inside the editor's
/// 30 ms per-tile cadence; otherwise its one-outstanding-per-tile rule
/// would skip exactly the writes the freeze window is meant to catch.
pub fn placement_sim(seed: u64, quiesce: bool) -> Sim<PlaceWire> {
    let cfg = RasterConfig {
        seed,
        editors_per_island: 1,
        tiles: 3,
        tile_bytes: 32 * 1024,
        chunk_bytes: 2 * 1024,
        phase_ops: 60,
        op_gap: SimDuration::from_millis(10),
        wan: SimDuration::from_millis(8),
        controller_on: true,
        quiesce,
    };
    collab_raster(&cfg).0
}

fn controller(sim: &Sim<PlaceWire>) -> Result<&PlacementActor, String> {
    sim.get::<SimHost<PlacementActor>>(ActorHandle::of(CONTROLLER))
        .map(SimHost::inner)
        .ok_or_else(|| "placement controller missing".to_owned())
}

fn host(sim: &Sim<PlaceWire>, node: NodeId) -> Result<&TileHostActor, String> {
    sim.get::<SimHost<TileHostActor>>(ActorHandle::of(node))
        .map(SimHost::inner)
        .ok_or_else(|| format!("tile host {node} missing"))
}

/// Canonical [`crate::explore::StateFingerprint`] for the placement
/// scenario: the controller's decision/epoch logs and homes, plus each
/// storage host's residency, freeze log, installs and write counters.
pub fn fingerprint(sim: &Sim<PlaceWire>) -> u64 {
    let mut parts: Vec<String> = Vec::new();
    if let Ok(ctl) = controller(sim) {
        let homes: Vec<(ClusterId, Option<NodeId>)> = ctl
            .epochs()
            .iter()
            .map(|e| (e.cluster, ctl.home_of(e.cluster)))
            .collect();
        parts.push(format!(
            "ctl:{:?}|{:?}|{homes:?}",
            ctl.decisions(),
            ctl.epochs()
        ));
    }
    for node in [STORAGE_A, STORAGE_B] {
        if let Ok(h) = host(sim, node) {
            parts.push(format!(
                "{node}:{:?}:{:?}:{:?}:{:?}:{}",
                h.resident(),
                h.freeze_log(),
                h.installs(),
                h.writes_in_freeze(),
                h.writes_refused()
            ));
        }
    }
    crate::explore::hash_of(&parts)
}

/// Replays one recorded decision through [`place`] and checks the
/// verdict, both costs and the hysteresis gate reproduce exactly.
fn recheck_decision(d: &DecisionRecord) -> Result<(), String> {
    let mut usage = UsagePattern::new();
    for &(site, weight) in &d.weights {
        usage.record(site, weight);
    }
    let pairs: BTreeMap<(NodeId, NodeId), u64> = d.latency_us.iter().copied().collect();
    let default_us = d.default_us;
    let latency = move |a: NodeId, b: NodeId| -> SimDuration {
        if a == b {
            return SimDuration::ZERO;
        }
        let us = pairs
            .get(&(a, b))
            .or_else(|| pairs.get(&(b, a)))
            .copied()
            .unwrap_or(default_us);
        SimDuration::from_micros(us)
    };
    if d.to == d.from {
        return Err(format!(
            "epoch {}: decision migrates cluster {:?} to its own source {}",
            d.epoch, d.cluster, d.from
        ));
    }
    let chosen = place(d.policy, &usage, &d.candidates, d.home, &latency);
    if chosen.node != d.to {
        return Err(format!(
            "epoch {}: recomputed placement picks {} but the controller \
             migrated cluster {:?} to {} (weights {:?}, latencies {:?})",
            d.epoch, chosen.node, d.cluster, d.to, d.weights, d.latency_us
        ));
    }
    if chosen.cost_us != d.cost_after_us {
        return Err(format!(
            "epoch {}: recomputed destination cost {} != recorded {}",
            d.epoch, chosen.cost_us, d.cost_after_us
        ));
    }
    // Cost of staying put, under the identical scoring.
    let before = place(d.policy, &usage, &[d.from], d.home, &latency).cost_us;
    if before != d.cost_before_us {
        return Err(format!(
            "epoch {}: recomputed status-quo cost {} != recorded {}",
            d.epoch, before, d.cost_before_us
        ));
    }
    // Mirrors `MigrationManager::plan`'s gate exactly: it migrates
    // only when the new cost is strictly under the hysteresis margin.
    if d.cost_after_us >= before * (1.0 - d.hysteresis) {
        return Err(format!(
            "epoch {}: hysteresis gate does not clear ({} !< {} * {}), \
             the migration was not worth taking",
            d.epoch,
            d.cost_after_us,
            before,
            1.0 - d.hysteresis
        ));
    }
    Ok(())
}

/// Epochs must be fully serialised: every one ended, starts ordered
/// after the previous end, epoch numbers unique.
fn recheck_epochs(epochs: &[EpochRecord]) -> Result<(), String> {
    let mut sorted: Vec<&EpochRecord> = epochs.iter().collect();
    sorted.sort_by_key(|e| e.started);
    let mut prev: Option<&EpochRecord> = None;
    for e in sorted {
        let Some((ended_at, _)) = e.ended else {
            return Err(format!("epoch {} never ended: {e:?}", e.epoch));
        };
        if ended_at < e.started {
            return Err(format!("epoch {} ended before it started: {e:?}", e.epoch));
        }
        if let Some(p) = prev {
            if p.epoch == e.epoch {
                return Err(format!("epoch number {} reused", e.epoch));
            }
            let (p_end, _) = p
                .ended
                .ok_or_else(|| format!("epoch {} unended", p.epoch))?;
            if e.started < p_end {
                return Err(format!(
                    "concurrent migrations: epoch {} (cluster {:?}) started at \
                     {:?} while epoch {} (cluster {:?}) ran until {:?}",
                    e.epoch, e.cluster, e.started, p.epoch, p.cluster, p_end
                ));
            }
        }
        prev = Some(e);
    }
    Ok(())
}

/// The placement-soundness invariant for [`placement_sim`].
pub struct PlacementSound;

impl PlacementSound {
    /// The invariant instance for [`placement_sim`].
    pub fn for_placement_sim() -> Self {
        PlacementSound
    }
}

impl Invariant<PlaceWire> for PlacementSound {
    fn name(&self) -> &'static str {
        "placement-soundness"
    }

    fn check_quiescent(&mut self, sim: &Sim<PlaceWire>) -> Result<(), String> {
        let ctl = controller(sim)?;
        let host_a = host(sim, STORAGE_A)?;
        let host_b = host(sim, STORAGE_B)?;

        // Freeze atomicity first: a write applied inside a freeze window
        // was dropped from the already-snapshotted transfer — the
        // lost-update the known-bad fixture seeds.
        for (node, h) in [(STORAGE_A, host_a), (STORAGE_B, host_b)] {
            if let Some(&(at, cluster, epoch)) = h.writes_in_freeze().first() {
                return Err(format!(
                    "host {node} applied a write to cluster {:?} inside the \
                     freeze window of epoch {epoch} (at {at:?}): the update is \
                     lost to the in-flight snapshot ({} such writes)",
                    cluster,
                    h.writes_in_freeze().len()
                ));
            }
        }

        // Every decision withstands independent recomputation.
        for d in ctl.decisions() {
            recheck_decision(d)?;
        }

        // Epochs are serialised and none dangles.
        recheck_epochs(ctl.epochs())?;

        // Exactly-once state transfer: each committed epoch has exactly
        // one install at its destination, and no install exists without
        // a committed epoch behind it.
        let committed: Vec<&EpochRecord> = ctl
            .epochs()
            .iter()
            .filter(|e| matches!(e.ended, Some((_, EpochOutcome::Committed))))
            .collect();
        for e in &committed {
            let dest = host(sim, e.to)?;
            let n = dest
                .installs()
                .iter()
                .filter(|i| i.cluster == e.cluster && i.epoch == e.epoch)
                .count();
            if n != 1 {
                return Err(format!(
                    "epoch {} (cluster {:?}) committed but installed {n} times \
                     at {} — state must transfer exactly once",
                    e.epoch, e.cluster, e.to
                ));
            }
        }
        for (node, h) in [(STORAGE_A, host_a), (STORAGE_B, host_b)] {
            for inst in h.installs() {
                let backed = committed
                    .iter()
                    .any(|e| e.cluster == inst.cluster && e.epoch == inst.epoch && e.to == node);
                if !backed {
                    return Err(format!(
                        "orphan install at {node}: cluster {:?} epoch {} was \
                         installed without a committed epoch",
                        inst.cluster, inst.epoch
                    ));
                }
            }
        }

        // Residency is exclusive, and a committed cluster lives where
        // its last committed epoch (and the offer registry) says.
        for cluster in host_a.resident() {
            if host_b.tile(cluster).is_some() {
                return Err(format!(
                    "cluster {cluster:?} resident at both storage nodes"
                ));
            }
        }
        for e in &committed {
            let last_commit = committed
                .iter()
                .filter(|c| c.cluster == e.cluster)
                .max_by_key(|c| c.epoch)
                .map(|c| c.to);
            if last_commit != Some(e.to) {
                continue; // superseded by a later move of the same cluster
            }
            if host(sim, e.to)?.tile(e.cluster).is_none() {
                return Err(format!(
                    "cluster {:?} committed to {} but is not resident there",
                    e.cluster, e.to
                ));
            }
            if ctl.home_of(e.cluster) != Some(e.to) {
                return Err(format!(
                    "cluster {:?} committed to {} but the controller's home is {:?}",
                    e.cluster,
                    e.to,
                    ctl.home_of(e.cluster)
                ));
            }
            if ctl.offer_of(e.cluster).map(|o| o.node) != Some(e.to) {
                return Err(format!(
                    "cluster {:?} committed to {} but its service offer points at {:?}",
                    e.cluster,
                    e.to,
                    ctl.offer_of(e.cluster).map(|o| o.node)
                ));
            }
        }

        // Vacuity guards: the loop must actually have migrated, and the
        // write stream must actually have hit a freeze window.
        if committed.is_empty() {
            return Err("no migration ever committed — the control loop never \
                 closed (vacuous)"
                .to_owned());
        }
        let freeze_hits = host_a.writes_refused()
            + host_b.writes_refused()
            + (host_a.writes_in_freeze().len() + host_b.writes_in_freeze().len()) as u64;
        if freeze_hits == 0 {
            return Err("no write ever arrived during a freeze window — the \
                 freeze-atomicity path never ran (vacuous)"
                .to_owned());
        }
        Ok(())
    }
}
