//! Federation invariant: every import the planner resolves is *sound*
//! against the links it claims to have traversed.
//!
//! The harness wraps a [`Federation`] in a single host actor and races
//! scripted [`FedMsg::Import`]s against offer churn
//! ([`FedMsg::Export`] / [`FedMsg::Withdraw`]), so the explorer decides
//! which offers each import can see. At quiescence the invariant walks
//! every logged resolution and *recomputes* the path from
//! [`Federation::links`]:
//!
//! - the reported narrowed scope must equal the stepwise intersection
//!   of the traversed link scopes, and must admit the resolved type (no
//!   import may cross a link whose narrowed scope excludes what it
//!   resolved);
//! - the reported penalty must equal the stepwise [`LinkQos::then`]
//!   composition, and must be monotonically non-improving hop by hop;
//! - the matched offer's penalized QoS must equal its advertised QoS
//!   degraded across that penalty, and the agreed contract must be what
//!   negotiation against the penalized QoS yields.
//!
//! The seeded known-bad variant builds its imports with
//! [`ImportRequest::penalty_accounting`] off — the planner then matches
//! and reports offers on their raw advertised QoS, the recomputation
//! disagrees on every schedule that resolves across a link, and the
//! explorer must surface it.

use odp_access::rights::Rights;
use odp_sim::net::{LinkQos, NodeId};
use odp_sim::prelude::*;
use odp_streams::qos::{negotiate, NegotiationOutcome, QosSpec};
use odp_trader::error::TraderError;
use odp_trader::federation::{DomainId, Federation};
use odp_trader::offer::{OfferId, ServiceOffer, ServiceType, SessionKind};
use odp_trader::plan::{ImportRequest, ImportResolution, Scope};
use odp_trader::store::ShardedStore;

use crate::explore::Invariant;

/// The node hosting the federated trader.
pub const HOST: NodeId = NodeId(0);
/// The workload driver (appears only as a message source).
pub const DRIVER: NodeId = NodeId(9);
/// The domain every scripted import starts from.
pub const START: DomainId = DomainId(0);

/// The workload a federated trading host processes.
#[derive(Debug, Clone)]
pub enum FedMsg {
    /// Resolve an import from [`START`].
    Import(ImportRequest),
    /// Export an offer into a domain's store.
    Export {
        /// The exporting domain.
        domain: DomainId,
        /// The offer to register.
        offer: ServiceOffer,
    },
    /// Withdraw an offer from a domain's store.
    Withdraw {
        /// The withdrawing domain.
        domain: DomainId,
        /// The offer to remove.
        offer: OfferId,
    },
}

/// A single actor owning the whole federation: imports and offer churn
/// arrive as messages, and every import's outcome is logged for the
/// invariant to audit.
pub struct FedHost {
    federation: Federation,
    log: Vec<(ImportRequest, Result<ImportResolution, TraderError>)>,
}

impl FedHost {
    /// Hosts `federation`.
    pub fn new(federation: Federation) -> Self {
        FedHost {
            federation,
            log: Vec::new(),
        }
    }

    /// The hosted federation (the invariant reads its links).
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// Every processed import with its outcome, in processing order.
    pub fn log(&self) -> &[(ImportRequest, Result<ImportResolution, TraderError>)] {
        &self.log
    }
}

impl Actor<FedMsg> for FedHost {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, FedMsg>, _from: NodeId, msg: FedMsg) {
        match msg {
            FedMsg::Import(request) => {
                let outcome = self.federation.resolve(START, &request, None);
                self.log.push((request, outcome));
            }
            FedMsg::Export { domain, offer } => {
                // A racing export may target a domain the scenario never
                // registered; the workload is still well-formed.
                if let Some(store) = self.federation.domain_mut(domain) {
                    let _ = store.export(offer);
                }
            }
            FedMsg::Withdraw { domain, offer } => {
                if let Some(store) = self.federation.domain_mut(domain) {
                    let _ = store.withdraw(offer);
                }
            }
        }
    }
}

fn penalty_ms(lat: u64) -> LinkQos {
    LinkQos::new(SimDuration::from_millis(lat), SimDuration::ZERO, 0.0)
}

fn conference_offer(node: NodeId) -> ServiceOffer {
    ServiceOffer::session(
        ServiceType::new("video/conference"),
        SessionKind::Conference,
        QosSpec::video(),
        node,
    )
}

/// Builds the diamond scenario: imports from [`START`] race offer churn
/// behind penalized, scope-narrowing links.
///
/// ```text
///        video/ 40ms          "" 40ms
///   D0 ──────────────► D1 ──────────────► D3
///    │   video/hd/ 10ms       "" 10ms      ▲
///    └───────────────► D2 ────────────────┘
/// ```
///
/// D3 starts out holding a far `video/conference` offer and a
/// `video/hd/tour` offer. At 10 ms a nearer `video/conference` offer is
/// exported into D1, racing an import at 11 ms — the explorer decides
/// whether that import pays 40 ms to D1 or 80 ms to D3. At 20 ms the
/// tour offer is withdrawn, racing a tour import at 21 ms. When
/// `accounted` is false every import runs with penalty accounting
/// disabled (the seeded known-bad variant).
pub fn federation_sim(seed: u64, accounted: bool) -> Sim<FedMsg> {
    let mut fed = Federation::new();
    for (d, trader) in [(0u32, 10u32), (1, 11), (2, 12), (3, 13)] {
        fed.add_domain(DomainId(d), ShardedStore::new([NodeId(trader)]));
    }
    fed.link_via(START, DomainId(1), "video/", Rights::NONE, penalty_ms(40));
    fed.link_via(
        START,
        DomainId(2),
        "video/hd/",
        Rights::NONE,
        penalty_ms(10),
    );
    fed.link_via(DomainId(1), DomainId(3), "", Rights::NONE, penalty_ms(40));
    fed.link_via(DomainId(2), DomainId(3), "", Rights::NONE, penalty_ms(10));
    // Scenario construction: the domains and shards were registered
    // just above, so these cannot fail.
    // odp-check: allow(unwrap)
    let far = fed.domain_mut(DomainId(3)).expect("D3 registered");
    far.export(conference_offer(NodeId(33)))
        // odp-check: allow(unwrap)
        .expect("D3 has a shard");
    let tour_id = far
        .export(ServiceOffer::session(
            ServiceType::new("video/hd/tour"),
            SessionKind::Conference,
            QosSpec::video(),
            NodeId(36),
        ))
        // odp-check: allow(unwrap)
        .expect("D3 has a shard");

    let mut sim = SimBuilder::new(seed).build();
    sim.add_actor(HOST, FedHost::new(fed));
    let import = |name: &str, required: QosSpec| {
        FedMsg::Import(
            ImportRequest::for_type(ServiceType::new(name))
                .qos(required)
                .penalty_accounting(accounted),
        )
    };
    // 10/11 ms: a nearer conference offer appears in D1 while an import
    // is in flight — both delivery orders are explored.
    sim.inject(
        SimTime::from_millis(10),
        DRIVER,
        HOST,
        FedMsg::Export {
            domain: DomainId(1),
            offer: conference_offer(NodeId(31)),
        },
    );
    sim.inject(
        SimTime::from_millis(11),
        DRIVER,
        HOST,
        import("video/conference", QosSpec::video()),
    );
    // 20/21 ms: the tour offer is withdrawn while a second import is in
    // flight — it resolves via the hd arm or finds nothing.
    sim.inject(
        SimTime::from_millis(20),
        DRIVER,
        HOST,
        FedMsg::Withdraw {
            domain: DomainId(3),
            offer: tour_id,
        },
    );
    sim.inject(
        SimTime::from_millis(21),
        DRIVER,
        HOST,
        import("video/hd/tour", QosSpec::mobile_video()),
    );
    sim
}

/// Canonical [`crate::explore::StateFingerprint`] for the diamond
/// scenario: the host's import log plus every domain store's offers —
/// churn that has landed but not yet been imported against is part of
/// the state, so reordered-but-converged schedules hash equal only
/// when they truly are.
pub fn fingerprint(sim: &Sim<FedMsg>) -> u64 {
    let Some(host) = sim.get::<FedHost>(ActorHandle::of(HOST)) else {
        return 0;
    };
    let mut parts: Vec<String> = vec![format!("{:?}", host.log())];
    let scenario_types = [
        ServiceType::new("video/conference"),
        ServiceType::new("video/hd/tour"),
    ];
    for d in 0..4u32 {
        if let Some(store) = host.federation().domain(DomainId(d)) {
            let present: Vec<bool> = scenario_types.iter().map(|t| store.has_type(t)).collect();
            parts.push(format!(
                "d{d}:{}:{:?}:{present:?}",
                store.len(),
                store.loads()
            ));
        }
    }
    crate::explore::hash_of(&parts)
}

/// Quiescence invariant: every logged resolution withstands
/// recomputation from the federation's links (scope soundness, penalty
/// accounting, negotiated agreement, hop-wise monotonicity).
pub struct FederationSound;

impl FederationSound {
    fn audit(
        &self,
        federation: &Federation,
        request: &ImportRequest,
        r: &ImportResolution,
    ) -> Result<(), String> {
        if r.path.first() != Some(&START) || r.path.last() != Some(&r.domain) {
            return Err(format!(
                "path {:?} does not run from {START} to {}",
                r.path, r.domain
            ));
        }
        if r.path.len() != r.hops as usize + 1 {
            return Err(format!("{} hops but path {:?}", r.hops, r.path));
        }
        let mut scope = Scope::all();
        let mut penalty = LinkQos::NONE;
        for pair in r.path.windows(2) {
            let link = federation
                .links()
                .iter()
                .find(|l| l.from == pair[0] && l.to == pair[1])
                .ok_or_else(|| {
                    format!(
                        "path {:?} uses a link {} → {} that does not exist",
                        r.path, pair[0], pair[1]
                    )
                })?;
            scope = scope.narrow(&link.scope);
            let next = penalty.then(link.qos);
            if next.latency < penalty.latency
                || next.jitter < penalty.jitter
                || next.loss < penalty.loss
            {
                return Err(format!(
                    "penalty improved across {} → {}: {} then {}",
                    pair[0], pair[1], penalty, next
                ));
            }
            penalty = next;
        }
        if scope != r.narrowed_scope {
            return Err(format!(
                "reported narrowed scope {} but the links narrow to {}",
                r.narrowed_scope, scope
            ));
        }
        if !scope.admits(&r.matched.offer.service_type) {
            return Err(format!(
                "import traversed links narrowing to {} yet resolved {} through them",
                scope, r.matched.offer.service_type
            ));
        }
        if penalty != r.penalty {
            return Err(format!(
                "reported penalty {} but the links charge {}",
                r.penalty, penalty
            ));
        }
        let expected = r.matched.offer.qos.degrade_across(&penalty);
        if r.matched.penalized != expected {
            return Err(format!(
                "penalty accounting broken for {}: reported penalized {:?}, links yield {:?}",
                r.matched.offer.service_type, r.matched.penalized, expected
            ));
        }
        match negotiate(&expected, request.required()) {
            NegotiationOutcome::Agreed(agreed) if agreed == r.matched.agreed => Ok(()),
            outcome => Err(format!(
                "agreed contract {:?} is not what negotiating the penalized QoS \
                 yields ({outcome:?})",
                r.matched.agreed
            )),
        }
    }
}

impl Invariant<FedMsg> for FederationSound {
    fn name(&self) -> &'static str {
        "trader-federation-sound"
    }

    fn check_quiescent(&mut self, sim: &Sim<FedMsg>) -> Result<(), String> {
        let host: &FedHost = sim
            .get(ActorHandle::of(HOST))
            .ok_or("federation host missing")?;
        for (request, outcome) in host.log() {
            // Failed imports carry no path to audit; the planner's
            // NoMatch/AccessDenied split is covered by unit tests.
            if let Ok(resolution) = outcome {
                self.audit(host.federation(), request, resolution)?;
            }
        }
        Ok(())
    }
}
