//! Strict-2PL invariants: lock-table consistency at every step, and
//! deadlock resolution that aborts exactly the youngest transaction of
//! a cycle while every survivor commits.
//!
//! The harness hosts one [`TxnManager`] on a coordinator node and
//! scripts each transaction's operations as injected messages from
//! distinct client nodes — so the explorer permutes the order
//! operations reach the manager, covering every acquisition order of
//! the underlying locks.

use std::collections::VecDeque;

use odp_concurrency::granularity::Granularity;
use odp_concurrency::locks::LockMode;
use odp_concurrency::store::ObjectId;
use odp_concurrency::twophase::{
    AbortReason, OpKind, SubmitReply, TxnEvent, TxnId, TxnManager, TxnOp,
};
use odp_sim::net::NodeId;
use odp_sim::prelude::*;

use crate::explore::Invariant;

/// The coordinator node hosting the transaction manager.
pub const HOST: NodeId = NodeId(0);

/// Harness messages: a client submits the next operation of its
/// scripted transaction.
#[derive(Debug, Clone)]
pub enum TxnHarnessMsg {
    /// Run `op` under transaction `txn_ix` (index into the host's
    /// transaction table).
    Submit {
        /// Which scripted transaction.
        txn_ix: usize,
        /// The operation.
        op: TxnOp,
    },
}

/// The coordinator actor: owns the [`TxnManager`], pumps each scripted
/// transaction through submit → (block/resume) → commit, and records
/// outcomes for the invariants.
pub struct TxnHost {
    mgr: TxnManager,
    ids: Vec<TxnId>,
    /// Ops queued per transaction (arrived but not yet submitted).
    queued: Vec<VecDeque<TxnOp>>,
    /// Ops still expected to *complete* per transaction.
    outstanding: Vec<usize>,
    blocked: Vec<bool>,
    alive: Vec<bool>,
    /// Transactions that committed, in commit order.
    pub committed: Vec<TxnId>,
    /// Transactions aborted by deadlock resolution.
    pub aborted: Vec<TxnId>,
}

impl TxnHost {
    /// A host with `n` transactions over `objects` (each created with
    /// the given initial text), locking at document granularity so each
    /// object is one lock resource.
    pub fn new(n: usize, objects: &[(ObjectId, &str)], ops_per_txn: usize) -> Self {
        let mut mgr = TxnManager::new(Granularity::Document);
        for (id, text) in objects {
            mgr.store_mut().create(*id, *text);
        }
        let ids: Vec<TxnId> = (0..n).map(|_| mgr.begin()).collect();
        TxnHost {
            mgr,
            ids,
            queued: vec![VecDeque::new(); n],
            outstanding: vec![ops_per_txn; n],
            blocked: vec![false; n],
            alive: vec![true; n],
            committed: Vec::new(),
            aborted: Vec::new(),
        }
    }

    /// The manager (invariants inspect its lock table).
    pub fn manager(&self) -> &TxnManager {
        &self.mgr
    }

    /// The scripted transactions' ids, in begin order (so index `i` is
    /// older than index `i + 1`).
    pub fn txn_ids(&self) -> &[TxnId] {
        &self.ids
    }

    /// Canonical digest of the host's scheduling-relevant state: queued
    /// ops, progress counters, liveness flags and outcomes. Two hosts
    /// digesting equal behave identically on any future schedule.
    pub fn state_digest(&self) -> u64 {
        crate::explore::hash_of(&format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.queued, self.outstanding, self.blocked, self.alive, self.committed, self.aborted
        ))
    }

    fn ix_of(&self, txn: TxnId) -> Option<usize> {
        self.ids.iter().position(|&t| t == txn)
    }

    fn handle_events(&mut self, events: Vec<TxnEvent>, now: SimTime) {
        let mut work: VecDeque<TxnEvent> = events.into();
        while let Some(ev) = work.pop_front() {
            match ev {
                TxnEvent::OpCompleted { txn, .. } => {
                    let Some(ix) = self.ix_of(txn) else { continue };
                    self.blocked[ix] = false;
                    self.outstanding[ix] = self.outstanding[ix].saturating_sub(1);
                    self.pump(ix, now, &mut work);
                }
                TxnEvent::TxnAborted { txn, reason } => {
                    let Some(ix) = self.ix_of(txn) else { continue };
                    debug_assert_eq!(reason, AbortReason::Deadlock);
                    self.alive[ix] = false;
                    self.blocked[ix] = false;
                    self.queued[ix].clear();
                    self.aborted.push(txn);
                }
            }
        }
    }

    /// Submits queued ops for transaction `ix` until it blocks, runs
    /// dry, or finishes (at which point it commits).
    fn pump(&mut self, ix: usize, now: SimTime, work: &mut VecDeque<TxnEvent>) {
        while self.alive[ix] && !self.blocked[ix] {
            if self.outstanding[ix] == 0 {
                let txn = self.ids[ix];
                self.alive[ix] = false;
                match self.mgr.commit(txn, now) {
                    Ok(events) => {
                        self.committed.push(txn);
                        work.extend(events);
                    }
                    Err(e) => panic!("harness bug: commit of active {txn} failed: {e}"),
                }
                return;
            }
            let Some(op) = self.queued[ix].pop_front() else {
                return;
            };
            let txn = self.ids[ix];
            match self.mgr.submit_with_events(txn, op, now) {
                Ok((SubmitReply::Done(_), events)) => {
                    self.outstanding[ix] = self.outstanding[ix].saturating_sub(1);
                    work.extend(events);
                }
                Ok((SubmitReply::Blocked, events)) => {
                    self.blocked[ix] = true;
                    work.extend(events);
                }
                Err(e) => panic!("harness bug: submit to {txn} failed: {e}"),
            }
        }
    }
}

impl Actor<TxnHarnessMsg> for TxnHost {
    fn on_message(&mut self, ctx: &mut Ctx<'_, TxnHarnessMsg>, _from: NodeId, msg: TxnHarnessMsg) {
        let TxnHarnessMsg::Submit { txn_ix, op } = msg;
        if txn_ix >= self.ids.len() || !self.alive[txn_ix] {
            return; // op for an aborted transaction: dropped
        }
        self.queued[txn_ix].push_back(op);
        let mut work = VecDeque::new();
        self.pump(txn_ix, ctx.now(), &mut work);
        let events: Vec<TxnEvent> = work.into();
        self.handle_events(events, ctx.now());
    }
}

fn exclusive_op(object: ObjectId) -> TxnOp {
    TxnOp {
        object,
        pos: 0,
        kind: OpKind::Insert("x".into()),
    }
}

/// Builds the classic ring-deadlock scenario: `n` transactions, `n`
/// objects; transaction `i` first locks object `i`, then object
/// `(i + 1) % n`. Under the default schedule every first op lands
/// before any second op, so the full cycle forms and deadlock
/// resolution must fire; permuted schedules may dodge the deadlock
/// entirely, which the invariants also accept.
pub fn cycle_sim(seed: u64, n: usize) -> Sim<TxnHarnessMsg> {
    let objects: Vec<(ObjectId, String)> = (0..n)
        .map(|i| (ObjectId(i as u64), "seed".into()))
        .collect();
    let refs: Vec<(ObjectId, &str)> = objects.iter().map(|(o, t)| (*o, t.as_str())).collect();
    let mut sim = SimBuilder::new(seed).build();
    sim.add_actor(HOST, TxnHost::new(n, &refs, 2));
    for i in 0..n {
        let client = NodeId(10 + i as u32);
        sim.inject(
            SimTime::from_millis(1 + i as u64),
            client,
            HOST,
            TxnHarnessMsg::Submit {
                txn_ix: i,
                op: exclusive_op(ObjectId(i as u64)),
            },
        );
        sim.inject(
            SimTime::from_millis(20 + i as u64),
            client,
            HOST,
            TxnHarnessMsg::Submit {
                txn_ix: i,
                op: exclusive_op(ObjectId(((i + 1) % n) as u64)),
            },
        );
    }
    sim
}

/// Canonical [`crate::explore::StateFingerprint`] for lock scenarios:
/// the host digest plus the lock table's full grant map.
pub fn fingerprint(sim: &Sim<TxnHarnessMsg>) -> u64 {
    let Some(host) = sim.get::<TxnHost>(ActorHandle::of(HOST)) else {
        return 0;
    };
    let table = host.manager().lock_table();
    let grants: Vec<String> = table
        .resources()
        .into_iter()
        .map(|r| format!("{r:?}:{:?}", table.holders(r)))
        .collect();
    crate::explore::hash_of(&(host.state_digest(), grants))
}

/// Step invariant: the lock table never holds incompatible grants —
/// a resource has either one exclusive holder or only shared holders.
pub struct LockTableConsistent;

impl Invariant<TxnHarnessMsg> for LockTableConsistent {
    fn name(&self) -> &'static str {
        "lock-table-consistent"
    }

    fn check_step(&mut self, sim: &Sim<TxnHarnessMsg>) -> Result<(), String> {
        let host: &TxnHost = sim.get(ActorHandle::of(HOST)).ok_or("no host actor")?;
        let table = host.manager().lock_table();
        for resource in table.resources() {
            let holders = table.holders(resource);
            let exclusive = holders
                .iter()
                .filter(|(_, m)| *m == LockMode::Exclusive)
                .count();
            if exclusive > 1 || (exclusive == 1 && holders.len() > 1) {
                return Err(format!(
                    "resource {resource:?} has incompatible holders {holders:?}"
                ));
            }
        }
        Ok(())
    }
}

/// Quiescence invariant for [`cycle_sim`]: every transaction finished;
/// at most one abort; and any victim is the youngest transaction (the
/// ring cycle is the only possible cycle, and its youngest member has
/// the highest id).
pub struct DeadlockResolved {
    n: usize,
}

impl DeadlockResolved {
    /// For a [`cycle_sim`] of `n` transactions.
    pub fn new(n: usize) -> Self {
        DeadlockResolved { n }
    }
}

impl Invariant<TxnHarnessMsg> for DeadlockResolved {
    fn name(&self) -> &'static str {
        "deadlock-victim-youngest"
    }

    fn check_quiescent(&mut self, sim: &Sim<TxnHarnessMsg>) -> Result<(), String> {
        let host: &TxnHost = sim.get(ActorHandle::of(HOST)).ok_or("no host actor")?;
        if host.manager().active() != 0 {
            return Err(format!(
                "liveness: {} transaction(s) never finished (committed {:?}, aborted {:?})",
                host.manager().active(),
                host.committed,
                host.aborted
            ));
        }
        if host.committed.len() + host.aborted.len() != self.n {
            return Err(format!(
                "{} of {} transactions unaccounted for",
                self.n - host.committed.len() - host.aborted.len(),
                self.n
            ));
        }
        match host.aborted.as_slice() {
            [] => Ok(()),
            [victim] => {
                let youngest = *host.txn_ids().last().ok_or("no transactions")?;
                if *victim != youngest {
                    return Err(format!("victim {victim} is not the youngest ({youngest})"));
                }
                Ok(())
            }
            more => Err(format!("multiple victims {more:?} for a single cycle")),
        }
    }
}
