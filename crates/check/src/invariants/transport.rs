//! Transport-fidelity invariant: the live transport's sans-IO session
//! layer keeps its reliability promises across *every* explored
//! delivery schedule — no sequence gaps after a reconnect replay, and
//! exactly-once delivery of a crashed origin's forwarded broadcasts.
//!
//! The harness hosts [`SessionLayer`] state machines directly on three
//! sim actors — the same struct the threaded TCP driver wraps, minus
//! the sockets — and scripts the transport's two hard paths in one
//! scenario:
//!
//! - **crash forwarding**: node 2 broadcasts, then drops off the
//!   network; both survivors' failure detectors fire and each forwards
//!   the retained broadcast to the other, so `(origin, bseq)` dedup is
//!   what stands between exactly-once and double delivery;
//! - **reconnect replay**: while node 2 is gone, node 0 unicasts to it
//!   (the frame is lost); after connectivity returns, the reconnect
//!   `Hello`s replay the buffered frame and the lost forward, and the
//!   receiver must end up gap-free.
//!
//! The invariant recomputes the expected delivery multiset per node and
//! rejects any gap, eviction, duplicate or omission; vacuity guards
//! demand that forwarding and dedup actually ran. The seeded known-bad
//! variant disarms `(origin, bseq)` dedup for forwarded frames
//! ([`SessionLayer::set_forward_dedup`]`(false)`): overlapping
//! survivors then double-deliver the dead node's broadcast on every
//! schedule, and the detector must say so.

use odp_net::session::{Frame, SessionConfig, SessionLayer, SessionStats, SessionStep};
use odp_sim::prelude::*;

use crate::explore::Invariant;

/// The session members; node 2 is the crasher.
pub fn session_members() -> Vec<NodeId> {
    vec![NodeId(0), NodeId(1), NodeId(2)]
}

/// The crashing broadcaster.
const CRASHER: NodeId = NodeId(2);

/// Host tick cadence; several ticks per heartbeat interval keeps the
/// failure detector responsive to the scripted timeline.
const TICK: SimDuration = SimDuration::from_millis(10);

/// Harness messages: wire frames between peers, plus scripted commands
/// a node receives from itself.
#[derive(Debug, Clone)]
pub enum TransportMsg {
    /// A session-layer frame on the wire.
    Wire(Frame<String>),
    /// Command: broadcast the payload to every peer.
    Broadcast(String),
    /// Command: unicast the payload to one peer.
    Unicast(NodeId, String),
    /// Command: (re-)establish the session towards a peer by sending it
    /// a fresh `Hello` (what the TCP driver does on every connect).
    Hello(NodeId),
}

/// A sim actor hosting one [`SessionLayer`], exactly as the TCP driver
/// hosts it: frames in, frames out, payloads delivered.
pub struct SessionHost {
    session: SessionLayer<String>,
    /// Payloads delivered to the application, tagged with origin.
    pub delivered: Vec<(NodeId, String)>,
}

impl SessionHost {
    /// A host for `me` peered with the other `members`. `forward_dedup:
    /// false` is the seeded known-bad fixture.
    pub fn new(me: NodeId, members: &[NodeId], forward_dedup: bool) -> Self {
        let mut session = SessionLayer::new(me, SessionConfig::default());
        for &peer in members {
            if peer != me {
                session.add_peer(peer, SimTime::ZERO);
            }
        }
        session.set_forward_dedup(forward_dedup);
        SessionHost {
            session,
            delivered: Vec::new(),
        }
    }

    /// The session's counters (the invariant reads gaps/forwards).
    pub fn stats(&self) -> SessionStats {
        self.session.stats()
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, TransportMsg>, step: SessionStep<String>) {
        for (to, frame) in step.outbound {
            ctx.send(to, TransportMsg::Wire(frame));
        }
        self.delivered.extend(step.delivered);
    }
}

impl Actor<TransportMsg> for SessionHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_, TransportMsg>) {
        ctx.set_timer(TICK, 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, TransportMsg>, from: NodeId, msg: TransportMsg) {
        let now = ctx.now();
        let step = match msg {
            TransportMsg::Wire(frame) => self.session.on_frame(from, frame, now),
            TransportMsg::Broadcast(payload) => self.session.broadcast(payload, now),
            TransportMsg::Unicast(to, payload) => self.session.unicast(to, payload, now),
            TransportMsg::Hello(peer) => {
                let hello = self.session.hello_for(peer, now);
                ctx.send(peer, TransportMsg::Wire(hello));
                return;
            }
        };
        self.apply(ctx, step);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TransportMsg>, _timer: TimerId, _tag: u64) {
        let step = self.session.on_tick(ctx.now());
        self.apply(ctx, step);
        ctx.set_timer(TICK, 0);
    }
}

/// Builds the crash/replay scenario. With `forward_dedup: false` every
/// host's forward dedup is disarmed — the seeded known-bad fixture the
/// detector must catch.
///
/// The script keeps at most one sequenced frame in flight per link at a
/// time: the session layer (like the TCP byte stream under it) assumes
/// FIFO links, so permuting two sequenced frames on one link would
/// explore schedules the transport never promises to survive.
pub fn transport_sim(seed: u64, forward_dedup: bool) -> Sim<TransportMsg> {
    let members = session_members();
    let mut net = Network::new(LinkSpec::lan());
    net.set_default_link(LinkSpec::lan());
    let mut sim = SimBuilder::new(seed).network(net).build();
    for &member in &members {
        sim.add_actor(member, SessionHost::new(member, &members, forward_dedup));
    }
    let ms = SimTime::from_millis;
    // The crasher broadcasts; every peer retains the payload.
    sim.inject(
        ms(10),
        CRASHER,
        CRASHER,
        TransportMsg::Broadcast("crash-note".to_owned()),
    );
    // A survivor broadcast too, so the crasher's links carry state that
    // the reconnect must reconcile.
    sim.inject(
        ms(30),
        NodeId(0),
        NodeId(0),
        TransportMsg::Broadcast("note-a".to_owned()),
    );
    // The crash: node 2 drops off the network. Survivors stop hearing
    // heartbeats, declare it down (~160 ms) and forward its retained
    // broadcast to each other.
    sim.schedule_net_change(ms(60), |net| {
        net.set_connectivity(CRASHER, Connectivity::Disconnected);
    });
    // A unicast into the void; the frame is lost but retained in node
    // 0's retransmit buffer.
    sim.inject(
        ms(150),
        NodeId(0),
        NodeId(0),
        TransportMsg::Unicast(CRASHER, "m1".to_owned()),
    );
    // Recovery: connectivity returns and every affected link re-runs
    // the hello handshake (both directions, as real reconnects do).
    sim.schedule_net_change(ms(600), |net| {
        net.set_connectivity(CRASHER, Connectivity::Full);
    });
    sim.inject(ms(620), NodeId(0), NodeId(0), TransportMsg::Hello(CRASHER));
    sim.inject(ms(620), NodeId(1), NodeId(1), TransportMsg::Hello(CRASHER));
    sim.inject(ms(620), CRASHER, CRASHER, TransportMsg::Hello(NodeId(0)));
    sim.inject(ms(621), CRASHER, CRASHER, TransportMsg::Hello(NodeId(1)));
    sim
}

/// What each node must have delivered at quiescence, independent of
/// schedule: the broadcast fan-out minus each origin's own copy, plus
/// the replayed unicast at the crasher.
fn expected_deliveries(member: NodeId) -> Vec<(NodeId, String)> {
    let crash_note = (CRASHER, "crash-note".to_owned());
    let note_a = (NodeId(0), "note-a".to_owned());
    match member.0 {
        0 => vec![crash_note],
        1 => vec![note_a, crash_note],
        _ => vec![note_a, (NodeId(0), "m1".to_owned())],
    }
}

/// Canonical [`crate::explore::StateFingerprint`] for the crash/replay
/// scenario: each host's delivery log and session counters.
pub fn fingerprint(sim: &Sim<TransportMsg>) -> u64 {
    let mut parts: Vec<String> = Vec::new();
    for member in session_members() {
        if let Some(host) = sim.get::<SessionHost>(ActorHandle::of(member)) {
            parts.push(format!("{member}:{:?}:{:?}", host.delivered, host.stats()));
        }
    }
    crate::explore::hash_of(&parts)
}

/// Quiescence invariant: per node, no sequence gaps and no retransmit
/// evictions; the delivered multiset equals the recomputed expectation
/// (which subsumes exactly-once); and the run actually exercised the
/// forwarding and dedup paths (vacuity guards).
pub struct TransportFidelity {
    members: Vec<NodeId>,
}

impl TransportFidelity {
    /// The invariant instance for [`transport_sim`].
    pub fn for_transport_sim() -> Self {
        TransportFidelity {
            members: session_members(),
        }
    }
}

impl Invariant<TransportMsg> for TransportFidelity {
    fn name(&self) -> &'static str {
        "transport-fidelity"
    }

    fn check_quiescent(&mut self, sim: &Sim<TransportMsg>) -> Result<(), String> {
        let mut forwarded = 0u64;
        let mut deduped = 0u64;
        for &member in &self.members {
            let host: &SessionHost = sim
                .get(ActorHandle::of(member))
                .ok_or_else(|| format!("session host {member} missing"))?;
            let stats = host.stats();
            if stats.gaps != 0 {
                return Err(format!(
                    "node {member} recorded {} sequence gap(s): data was lost \
                     despite reconnect replay ({stats:?})",
                    stats.gaps
                ));
            }
            if stats.evicted != 0 {
                return Err(format!(
                    "node {member} evicted {} retained frame(s); replay after \
                     this can gap ({stats:?})",
                    stats.evicted
                ));
            }
            let mut got = host.delivered.clone();
            let mut want = expected_deliveries(member);
            got.sort();
            want.sort();
            if got != want {
                return Err(format!(
                    "node {member} delivered {got:?}, expected {want:?} \
                     (duplicates or omissions break transport fidelity)"
                ));
            }
            forwarded += stats.forwarded;
            deduped += stats.bcast_duplicates;
        }
        if forwarded == 0 {
            return Err("no survivor forwarded the dead origin's broadcast — \
                 the crash path never ran (vacuous)"
                .to_owned());
        }
        if deduped == 0 {
            return Err("no forwarded broadcast was deduplicated — overlap \
                 between survivors never happened (vacuous)"
                .to_owned());
        }
        Ok(())
    }
}
