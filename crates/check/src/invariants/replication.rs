//! Replication invariant: dOPT replicas converge — all site texts are
//! equal (with no operation still deferred) once the system quiesces.
//!
//! The harness wraps one [`DoptSite`] per node; each site applies a
//! scripted local edit and broadcasts the stamped op to its peers, and
//! the explorer permutes the broadcast deliveries. Two sites are
//! provably convergent; with three or more sites the explorer can
//! surface the classic "dOPT puzzle" divergence (see
//! [`odp_concurrency::dopt`]).

use odp_concurrency::dopt::{DoptSite, RemoteOp};
use odp_concurrency::ot::CharOp;
use odp_sim::net::NodeId;
use odp_sim::prelude::*;

use crate::explore::Invariant;

/// One dOPT replica as a simulator actor.
pub struct DoptActor {
    site: DoptSite,
    peers: Vec<NodeId>,
    script: Vec<(SimDuration, CharOp)>,
    /// Origins of remote ops, in receive order (diagnostics).
    pub received: Vec<NodeId>,
}

impl DoptActor {
    /// A replica of `initial` that applies each `(at, op)` of `script`
    /// locally and broadcasts it to `peers`.
    pub fn new(
        me: NodeId,
        initial: &str,
        peers: Vec<NodeId>,
        script: Vec<(SimDuration, CharOp)>,
    ) -> Self {
        DoptActor {
            site: DoptSite::new(me, initial),
            peers,
            script,
            received: Vec::new(),
        }
    }

    /// The wrapped site (invariants read its text and pending count).
    pub fn site(&self) -> &DoptSite {
        &self.site
    }
}

impl Actor<RemoteOp> for DoptActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, RemoteOp>) {
        for (i, (at, _)) in self.script.iter().enumerate() {
            ctx.set_timer(*at, i as u64);
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, RemoteOp>, _from: NodeId, msg: RemoteOp) {
        self.received.push(msg.site);
        self.site.receive(msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, RemoteOp>, _timer: TimerId, tag: u64) {
        let Some((_, op)) = self.script.get(tag as usize).copied() else {
            return;
        };
        // Scripted edits target positions that exist in every reachable
        // intermediate state, so a local apply cannot fail.
        if let Ok(stamped) = self.site.local(op) {
            for &p in &self.peers {
                ctx.send(p, stamped.clone());
            }
        }
    }
}

/// A sim of `n` replicas of `"abcd"` editing the same position at the
/// same instant — all ops mutually concurrent and all broadcasts
/// simultaneously in flight, so the explorer can permute every delivery
/// order. The first two sites insert distinct characters; the third
/// site (when present) deletes, the insert/insert/delete mix that
/// violates transformation property TP2 and exhibits the dOPT puzzle.
pub fn dopt_sim(seed: u64, n: usize) -> Sim<RemoteOp> {
    dopt_sim_on(seed, n, QueueKind::Calendar)
}

/// [`dopt_sim`] on an explicit event-queue implementation — the
/// calendar/legacy differential smoke tests build the *same* scenario
/// on both queues and assert the explorer sees identical schedules.
pub fn dopt_sim_on(seed: u64, n: usize, queue: QueueKind) -> Sim<RemoteOp> {
    let nodes: Vec<NodeId> = (0..n).map(|i| NodeId(i as u32)).collect();
    let mut sim = SimBuilder::new(seed).queue(queue).build();
    for (i, &me) in nodes.iter().enumerate() {
        let peers: Vec<NodeId> = nodes.iter().copied().filter(|&p| p != me).collect();
        let op = if i == 2 {
            CharOp::Delete { pos: 0 }
        } else {
            CharOp::Insert {
                pos: 0,
                ch: (b'A' + i as u8) as char,
            }
        };
        let script = vec![(SimDuration::from_millis(1), op)];
        sim.add_actor(me, DoptActor::new(me, "abcd", peers, script));
    }
    sim
}

/// The replica ids [`dopt_sim`] uses.
pub fn dopt_sites(n: usize) -> Vec<NodeId> {
    (0..n).map(|i| NodeId(i as u32)).collect()
}

/// A deep two-site scenario: both replicas of `"abcd"` apply three
/// position-0 inserts each at the same instant (six mutually concurrent
/// broadcasts simultaneously in flight), so the bounded schedule space
/// reaches the depth-10 branch budget. Two sites are provably convergent under
/// dOPT, so the convergence check must *pass* at every depth — the
/// scenario exists to exercise deep DPOR search, not to fail.
pub fn dopt_deep_sim(seed: u64) -> Sim<RemoteOp> {
    dopt_deep_sim_on(seed, QueueKind::Calendar)
}

/// [`dopt_deep_sim`] on an explicit event-queue implementation (see
/// [`dopt_sim_on`]).
pub fn dopt_deep_sim_on(seed: u64, queue: QueueKind) -> Sim<RemoteOp> {
    let nodes = dopt_sites(2);
    let mut sim = SimBuilder::new(seed).queue(queue).build();
    for (i, &me) in nodes.iter().enumerate() {
        let peers: Vec<NodeId> = nodes.iter().copied().filter(|&p| p != me).collect();
        let script: Vec<(SimDuration, CharOp)> = (0..3u64)
            .map(|k| {
                (
                    SimDuration::from_millis(1),
                    CharOp::Insert {
                        pos: 0,
                        ch: (b'A' + (i as u8) * 3 + k as u8) as char,
                    },
                )
            })
            .collect();
        sim.add_actor(me, DoptActor::new(me, "abcd", peers, script));
    }
    sim
}

/// Canonical [`crate::explore::StateFingerprint`] for dOPT scenarios
/// over `sites`: each replica's text, deferred-op count, and remote-op
/// receive order (the receive order determines all future transforms,
/// so two states hashing equal genuinely behave identically).
pub fn fingerprint_for(sites: Vec<NodeId>) -> impl Fn(&Sim<RemoteOp>) -> u64 {
    move |sim| {
        let mut parts: Vec<(u32, String, usize, Vec<u32>)> = Vec::new();
        for &s in &sites {
            if let Some(actor) = sim.get::<DoptActor>(ActorHandle::of(s)) {
                parts.push((
                    s.0,
                    actor.site().text(),
                    actor.site().pending(),
                    actor.received.iter().map(|n| n.0).collect(),
                ));
            }
        }
        crate::explore::hash_of(&parts)
    }
}

/// Quiescence invariant: every replica drained its pending queue and
/// all texts are identical.
pub struct Converged {
    sites: Vec<NodeId>,
}

impl Converged {
    /// Watches the given replicas.
    pub fn new(sites: Vec<NodeId>) -> Self {
        Converged { sites }
    }
}

impl Invariant<RemoteOp> for Converged {
    fn name(&self) -> &'static str {
        "dopt-convergence"
    }

    fn check_quiescent(&mut self, sim: &Sim<RemoteOp>) -> Result<(), String> {
        let mut texts = Vec::new();
        for &s in &self.sites {
            let actor: &DoptActor = sim.get(ActorHandle::of(s)).ok_or("replica missing")?;
            if actor.site().pending() != 0 {
                return Err(format!(
                    "site {s}: {} op(s) still deferred at quiescence",
                    actor.site().pending()
                ));
            }
            texts.push((s, actor.site().text()));
        }
        for w in texts.windows(2) {
            if w[0].1 != w[1].1 {
                return Err(format!(
                    "sites {} and {} diverged: {:?} vs {:?}",
                    w[0].0, w[1].0, w[0].1, w[1].1
                ));
            }
        }
        Ok(())
    }
}
