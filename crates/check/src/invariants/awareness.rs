//! Awareness invariant: the cooperation-event bus never delivers an
//! event to an observer lacking read rights on its artefact — across
//! *every* explored multicast schedule, not just the happy path.
//!
//! The harness is a three-replica [`BusActor`] group where observers 0
//! and 1 may read `doc/*` and observer 2 may not. Two publications (from
//! node 0 and node 1) race over causal multicast, so the explorer
//! interleaves wire deliveries freely. At quiescence the invariant walks
//! every delivery surfaced at every node and *recomputes* the rights
//! check from an independently constructed copy of the scenario policy —
//! it does not trust the bus's own gate.
//!
//! The seeded known-bad variant disarms the rights gate on every replica
//! ([`EventBus::set_rights_gate`]`(false)`): the rightless observer then
//! receives both events on every schedule, and the detector must say so.

use odp_access::matrix::Subject;
use odp_access::rbac::{Effect, ObjectPath, RbacPolicy, RoleId};
use odp_access::rights::Rights;
use odp_awareness::bus::{CoopEvent, CoopKind, EventBus};
use odp_awareness::dist::{BusActor, BusWire};
use odp_awareness::events::ActivityKind;
use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::GcMsg;
use odp_sim::prelude::*;

use crate::explore::Invariant;

/// The group members; each hosts a bus replica and observes as itself.
pub fn bus_members() -> Vec<NodeId> {
    vec![NodeId(0), NodeId(1), NodeId(2)]
}

/// The artefact path prefix the scenario's rights rule covers.
const ARTEFACT_ROOT: &str = "doc";

/// The scenario policy, constructed identically by the harness and the
/// invariant: members 0 and 1 may read `doc/*`; member 2 may not.
pub fn scenario_policy() -> RbacPolicy {
    let mut policy = RbacPolicy::new();
    policy.add_rule(RoleId(1), ARTEFACT_ROOT.into(), Rights::READ, Effect::Allow);
    policy.assign(Subject(0), RoleId(1));
    policy.assign(Subject(1), RoleId(1));
    policy
}

fn scenario_bus() -> EventBus {
    let mut bus = EventBus::new();
    bus.set_policy(scenario_policy());
    for member in bus_members() {
        bus.register(member, 0.0);
    }
    bus
}

fn edit(actor: NodeId) -> GcMsg<BusWire> {
    GcMsg::AppCmd(BusWire::new(CoopEvent::broadcast(
        actor,
        format!("{ARTEFACT_ROOT}/plan"),
        SimTime::ZERO,
        CoopKind::Activity(ActivityKind::Edit),
    )))
}

/// Builds the gating scenario: three bus replicas under the scenario
/// policy, with publications from node 0 (1 ms) and node 1 (2 ms) racing
/// over causal multicast. With `gated: false` every replica's rights
/// gate is disarmed — the seeded known-bad fixture the detector must
/// catch.
pub fn gating_sim(seed: u64, gated: bool) -> Sim<GcMsg<BusWire>> {
    let members = bus_members();
    let view = View::initial(GroupId(2), members.iter().copied());
    let mut sim = SimBuilder::new(seed).build();
    for &member in &members {
        let mut bus = scenario_bus();
        if !gated {
            bus.set_rights_gate(false);
        }
        sim.add_actor(member, BusActor::new(member, view.clone(), bus));
    }
    sim.inject(
        SimTime::from_millis(1),
        NodeId(0),
        NodeId(0),
        edit(NodeId(0)),
    );
    sim.inject(
        SimTime::from_millis(2),
        NodeId(1),
        NodeId(1),
        edit(NodeId(1)),
    );
    sim
}

/// A deeper gating scenario: four publications (two per entitled
/// publisher, alternating) race over causal multicast to three
/// replicas, so the bounded schedule space reaches the depth-10 branch
/// budget. Gated, the rights invariant must *pass* on every schedule;
/// `gated: false` is the deep known-bad variant.
pub fn gating_deep_sim(seed: u64, gated: bool) -> Sim<GcMsg<BusWire>> {
    let mut sim = gating_sim(seed, gated);
    sim.inject(
        SimTime::from_millis(3),
        NodeId(0),
        NodeId(0),
        edit(NodeId(0)),
    );
    sim.inject(
        SimTime::from_millis(4),
        NodeId(1),
        NodeId(1),
        edit(NodeId(1)),
    );
    sim
}

/// Canonical [`crate::explore::StateFingerprint`] for the gating
/// scenarios: every replica's surfaced deliveries in order (observer,
/// artefact, kind) — the state the rights invariant audits.
pub fn fingerprint(sim: &Sim<GcMsg<BusWire>>) -> u64 {
    let mut parts = Vec::new();
    for member in bus_members() {
        if let Some(actor) = sim.get::<BusActor>(ActorHandle::of(member)) {
            let deliveries: Vec<(u32, String, &'static str)> = actor
                .delivered()
                .iter()
                .map(|d| (d.observer.0, d.event.artefact.clone(), d.event.kind.label()))
                .collect();
            parts.push((member.0, deliveries));
        }
    }
    crate::explore::hash_of(&parts)
}

/// Quiescence invariant: every delivery surfaced at any replica passes
/// an independent recomputation of the rights check, and the workload
/// actually delivered something (an empty run would pass vacuously while
/// proving nothing).
pub struct RightsGated {
    members: Vec<NodeId>,
    policy: RbacPolicy,
}

impl RightsGated {
    /// The invariant instance for [`gating_sim`].
    pub fn for_gating_sim() -> Self {
        RightsGated {
            members: bus_members(),
            policy: scenario_policy(),
        }
    }
}

impl Invariant<GcMsg<BusWire>> for RightsGated {
    fn name(&self) -> &'static str {
        "awareness-gating"
    }

    fn check_quiescent(&mut self, sim: &Sim<GcMsg<BusWire>>) -> Result<(), String> {
        let mut surfaced = 0usize;
        for &member in &self.members {
            let actor: &BusActor = sim
                .get(ActorHandle::of(member))
                .ok_or_else(|| format!("bus replica {member} missing"))?;
            for delivery in actor.delivered() {
                surfaced += 1;
                let allowed = self
                    .policy
                    .check(
                        Subject(delivery.observer.0),
                        &ObjectPath::new(delivery.event.artefact.as_str()),
                        Rights::READ,
                    )
                    .allowed;
                if !allowed {
                    return Err(format!(
                        "node {member} surfaced {} on {} to observer {} \
                         which has no read rights on it",
                        delivery.event.kind.label(),
                        delivery.event.artefact,
                        delivery.observer
                    ));
                }
            }
        }
        if surfaced == 0 {
            return Err("no deliveries surfaced anywhere".to_owned());
        }
        Ok(())
    }
}
