//! Trader invariant: importer-cache coherence under shard churn — at
//! quiescence no importer cache entry disagrees with the owning shard's
//! store, and every offer sits on the shard the ring assigns it to.
//!
//! The harness reuses the production [`TraderActor`]/[`ImporterActor`]
//! pair and scripts the race the ROADMAP's "cache coherence under
//! churn" item describes: a [`TraderMsg::ShardChange`] removes the
//! shard owning a hot type while an importer lookup is in flight, so
//! the offer [`TraderMsg::Transfer`] and the lookup race to the new
//! owner. With `announce` disabled (fault injection via
//! [`TraderActor::set_rebalance_invalidations`]) the rebalance is
//! silent — no `Rebalanced` invalidation from either shard — and some
//! schedules leave a stale (empty) cached resolution — the explorer
//! must find one. With `announce` enabled every schedule must stay
//! coherent.

use std::collections::BTreeSet;

use odp_groupcomm::membership::{GroupId, View};
use odp_sim::net::NodeId;
use odp_sim::prelude::*;
use odp_trader::actors::{ImporterActor, LookupJob, TraderActor, TraderMsg};
use odp_trader::offer::{OfferId, ServiceOffer, ServiceType, SessionKind};
use odp_trader::select::{match_offers, SelectionPolicy};
use odp_trader::store::HashRing;
use odp_trader::QosSpec;

use crate::explore::Invariant;

/// First trader shard.
pub const T1: NodeId = NodeId(0);
/// Second trader shard.
pub const T2: NodeId = NodeId(1);
/// The importing client.
pub const IMP: NodeId = NodeId(10);
/// The exporting server (no actor; appears as a message source).
pub const EXP: NodeId = NodeId(20);

/// The hot service type the scenario churns.
pub fn hot_type() -> ServiceType {
    ServiceType::new("video/conference")
}

fn coherence_view() -> View {
    View::initial(GroupId(7), [T1, T2, IMP])
}

fn offer() -> ServiceOffer {
    let mut o = ServiceOffer::session(hot_type(), SessionKind::Conference, QosSpec::video(), EXP);
    o.id = OfferId(1);
    o
}

/// Builds the churn scenario: two shards, one offer for [`hot_type`],
/// an importer that caches it at 10 ms, a ring change at 100 ms that
/// removes the owning shard, and a second lookup at 100.5 ms that races
/// the offer's [`TraderMsg::Transfer`] to the surviving shard. When
/// `announce` is false the shards rebalance silently, multicasting no
/// invalidations at all (the injected coherence bug).
pub fn rebalance_sim(seed: u64, announce: bool) -> Sim<TraderMsg> {
    let ring = HashRing::new([T1, T2]);
    let owner = ring.node_for(&hot_type()).unwrap_or(T1); // ring is non-empty; fallback never taken
    let mut sim = SimBuilder::new(seed).build();
    for t in [T1, T2] {
        let mut trader =
            TraderActor::with_ring(t, coherence_view(), SelectionPolicy::FirstFit, ring.clone());
        trader.set_rebalance_invalidations(announce);
        sim.add_actor(t, trader);
    }
    let jobs = vec![
        LookupJob {
            at: SimDuration::from_millis(10),
            service_type: hot_type(),
            required: QosSpec::video(),
        },
        // 100.5 ms: after every node has seen the 100 ms ShardChange
        // but before the migrating Transfer (≥ 100.8 ms with LAN
        // latency) can reach the surviving shard — so the lookup and
        // the transfer are concurrently in flight and the explorer can
        // deliver them in either order.
        LookupJob {
            at: SimDuration::from_micros(100_500),
            service_type: hot_type(),
            required: QosSpec::video(),
        },
    ];
    sim.add_actor(
        IMP,
        ImporterActor::new(
            IMP,
            coherence_view(),
            SimDuration::from_secs(60),
            ring.clone(),
            jobs,
        ),
    );
    sim.inject(SimTime::ZERO, EXP, owner, TraderMsg::Export(offer()));
    let change = TraderMsg::ShardChange {
        added: vec![],
        removed: vec![owner],
    };
    for node in [T1, T2, IMP] {
        sim.inject(SimTime::from_millis(100), EXP, node, change.clone());
    }
    sim
}

/// Canonical [`crate::explore::StateFingerprint`] for the churn
/// scenario: each shard's ring and stored offers plus the importer's
/// cache contents — the state the coherence invariant audits.
pub fn fingerprint(sim: &Sim<TraderMsg>) -> u64 {
    let mut parts: Vec<String> = Vec::new();
    for t in [T1, T2] {
        if let Some(trader) = sim.get::<TraderActor>(ActorHandle::of(t)) {
            let offers: Vec<String> = trader
                .store()
                .iter()
                .map(|o| format!("{:?}/{:?}", o.id, o.service_type))
                .collect();
            parts.push(format!("{t}:{:?}:{offers:?}", trader.ring()));
        }
    }
    if let Some(importer) = sim.get::<ImporterActor>(ActorHandle::of(IMP)) {
        for (service_type, scope, cached) in importer.cache().entries() {
            let ids: Vec<OfferId> = cached.iter().map(|o| o.id).collect();
            parts.push(format!("imp:{service_type:?}:{scope:?}:{ids:?}"));
        }
    }
    crate::explore::hash_of(&parts)
}

/// Quiescence invariant: importer caches agree with the owning shards,
/// and every stored offer lives on the shard the ring assigns it to.
pub struct CacheCoherent {
    traders: Vec<NodeId>,
    importers: Vec<NodeId>,
    required: QosSpec,
}

impl CacheCoherent {
    /// Checks `importers`' caches against `traders`' stores, matching
    /// offers under the workload's `required` QoS.
    pub fn new(traders: Vec<NodeId>, importers: Vec<NodeId>, required: QosSpec) -> Self {
        CacheCoherent {
            traders,
            importers,
            required,
        }
    }

    /// The invariant instance for [`rebalance_sim`].
    pub fn for_rebalance_sim() -> Self {
        CacheCoherent::new(vec![T1, T2], vec![IMP], QosSpec::video())
    }

    fn owned_matching_ids(
        &self,
        sim: &Sim<TraderMsg>,
        owner: NodeId,
        service_type: &ServiceType,
    ) -> Result<BTreeSet<OfferId>, String> {
        let trader: &TraderActor = sim
            .get(ActorHandle::of(owner))
            .ok_or_else(|| format!("owning trader {owner} missing"))?;
        let of_type: Vec<ServiceOffer> = trader
            .store()
            .iter()
            .filter(|o| o.service_type == *service_type)
            .cloned()
            .collect();
        Ok(match_offers(&of_type, &self.required)
            .into_iter()
            .map(|m| m.offer.id)
            .collect())
    }
}

impl Invariant<TraderMsg> for CacheCoherent {
    fn name(&self) -> &'static str {
        "trader-cache-coherent"
    }

    fn check_quiescent(&mut self, sim: &Sim<TraderMsg>) -> Result<(), String> {
        let first = *self.traders.first().ok_or("no traders to check")?;
        let reference: &TraderActor = sim
            .get(ActorHandle::of(first))
            .ok_or("reference trader missing")?;
        let ring = reference.ring().clone();

        // Placement: every stored offer is on the shard the ring names.
        for &t in &self.traders {
            let trader: &TraderActor = sim.get(ActorHandle::of(t)).ok_or("trader missing")?;
            for o in trader.store().iter() {
                let owner = ring.node_for(&o.service_type);
                if owner != Some(t) {
                    return Err(format!(
                        "offer {:?} of {:?} stranded on {t} (ring says {owner:?})",
                        o.id, o.service_type
                    ));
                }
            }
        }

        // Coherence: every cached resolution equals what the owning
        // shard would resolve right now.
        for &imp in &self.importers {
            let importer: &ImporterActor =
                sim.get(ActorHandle::of(imp)).ok_or("importer missing")?;
            for (service_type, _scope, cached) in importer.cache().entries() {
                let cached_ids: BTreeSet<OfferId> = cached.iter().map(|o| o.id).collect();
                let Some(owner) = ring.node_for(service_type) else {
                    return Err(format!(
                        "importer {imp} caches {service_type:?} but the ring is empty"
                    ));
                };
                let fresh_ids = self.owned_matching_ids(sim, owner, service_type)?;
                if cached_ids != fresh_ids {
                    return Err(format!(
                        "importer {imp} cache for {service_type:?} is stale: \
                         cached {cached_ids:?}, owner {owner} has {fresh_ids:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}
