//! Invariants and harnesses for the workspace's protocol subsystems.
//!
//! Each submodule pairs a small simulation harness (actors wrapping the
//! protocol engine under test, with injectable workloads) with the
//! [`crate::explore::Invariant`]s that must hold across *every*
//! explored schedule, and a canonical
//! [`crate::explore::StateFingerprint`] function digesting the state
//! its invariants read (so the explorer can prune schedules that
//! converge to an already-expanded state):
//!
//! - [`locks`] — strict-2PL lock-table consistency and deadlock-victim
//!   liveness ([`odp_concurrency::twophase`]).
//! - [`groupcomm`] — vector-clock monotonicity and delivery-order
//!   agreement ([`odp_groupcomm::multicast`]).
//! - [`replication`] — OT/dOPT convergence: all replicas equal at
//!   quiescence ([`odp_concurrency::dopt`]).
//! - [`trader`] — importer-cache coherence: no stale entry survives
//!   withdraw/modify/rebalance ([`odp_trader`]).
//! - [`federation`] — federated import soundness: every resolution's
//!   narrowed scope, penalty and agreed contract withstand
//!   recomputation from the traversed links ([`odp_trader::plan`]).
//! - [`telemetry`] — span-log well-formedness: every causal span
//!   closes, parents open before children, DAGs are acyclic
//!   ([`odp_telemetry`]).
//! - [`awareness`] — cooperation-event rights gating: no schedule may
//!   deliver a `CoopEvent` to an observer lacking read rights on its
//!   artefact ([`odp_awareness::bus`]).
//! - [`transport`] — transport fidelity: the live transport's session
//!   layer shows no sequence gaps after reconnect replay and delivers a
//!   crashed origin's forwarded broadcasts exactly once
//!   ([`odp_net::session`]).
//! - [`placement`] — placement soundness: every migration decision the
//!   closed-loop controller takes withstands recomputation from its
//!   recorded inputs, epochs never overlap, state transfers exactly
//!   once, and no write lands inside a freeze window
//!   ([`odp_place`]).

pub mod awareness;
pub mod federation;
pub mod groupcomm;
pub mod locks;
pub mod placement;
pub mod replication;
pub mod telemetry;
pub mod trader;
pub mod transport;
