//! Group-communication invariants: vector clocks only grow, and
//! ordered multicast produces agreeing delivery sequences.
//!
//! The harness runs one [`GroupEngine`] per member as a bare actor
//! (message type `GcMsg<u64>`), with each member multicasting scripted
//! payloads at staggered times; the explorer permutes the in-flight
//! engine traffic.

use std::collections::BTreeMap;

use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::{GcMsg, GroupEngine, Ordering, Reliability, Step};
use odp_groupcomm::vclock::{Causality, VectorClock};
use odp_sim::net::NodeId;
use odp_sim::prelude::*;

use crate::explore::Invariant;

const TICK_TAG: u64 = 1;
const SEND_TAG0: u64 = 100;
const TICK_EVERY: SimDuration = SimDuration::from_millis(50);

/// One group member as a simulator actor.
pub struct Member {
    engine: GroupEngine<u64>,
    script: Vec<(SimDuration, u64)>,
    /// Deliveries in order: `(origin, payload)`.
    pub delivered: Vec<(NodeId, u64)>,
}

impl Member {
    /// A member of `view` multicasting each `(at, payload)` of `script`.
    pub fn new(
        me: NodeId,
        view: View,
        ordering: Ordering,
        script: Vec<(SimDuration, u64)>,
    ) -> Self {
        Member {
            engine: GroupEngine::new(me, view, ordering, Reliability::reliable()),
            script,
            delivered: Vec::new(),
        }
    }

    /// The engine (invariants read its vector clock).
    pub fn engine(&self) -> &GroupEngine<u64> {
        &self.engine
    }

    fn flush(step: Step<u64>, ctx: &mut Ctx<'_, GcMsg<u64>>) {
        for (to, msg) in step.outbound {
            ctx.send(to, msg);
        }
    }

    fn absorb(&mut self, step: Step<u64>, ctx: &mut Ctx<'_, GcMsg<u64>>) {
        for d in &step.delivered {
            self.delivered.push((d.id.origin, d.payload));
        }
        Self::flush(step, ctx);
    }
}

impl Actor<GcMsg<u64>> for Member {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GcMsg<u64>>) {
        ctx.set_timer(TICK_EVERY, TICK_TAG);
        for (i, (at, _)) in self.script.iter().enumerate() {
            ctx.set_timer(*at, SEND_TAG0 + i as u64);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, GcMsg<u64>>, from: NodeId, msg: GcMsg<u64>) {
        let step = self.engine.on_message(from, msg, ctx.now());
        self.absorb(step, ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GcMsg<u64>>, _timer: TimerId, tag: u64) {
        if tag == TICK_TAG {
            let step = self.engine.on_tick(ctx.now());
            Self::flush(step, ctx);
            ctx.set_timer(TICK_EVERY, TICK_TAG);
            return;
        }
        let ix = (tag - SEND_TAG0) as usize;
        if let Some((_, payload)) = self.script.get(ix).copied() {
            let step = self.engine.mcast(payload, ctx.now());
            self.absorb(step, ctx);
        }
    }
}

/// A three-member group where every member multicasts `per_member`
/// payloads (payload = `origin * 100 + k`, `k` ascending) at close,
/// interleaved times.
pub fn group_sim(seed: u64, ordering: Ordering, per_member: u64) -> Sim<GcMsg<u64>> {
    let members = [NodeId(0), NodeId(1), NodeId(2)];
    let view = View::initial(GroupId(1), members);
    let mut sim = SimBuilder::new(seed).build();
    for (m_ix, m) in members.iter().enumerate() {
        let script: Vec<(SimDuration, u64)> = (0..per_member)
            .map(|k| {
                (
                    SimDuration::from_millis(5 + k * 40 + m_ix as u64),
                    m.0 as u64 * 100 + k,
                )
            })
            .collect();
        sim.add_actor(*m, Member::new(*m, view.clone(), ordering, script));
    }
    sim
}

/// The member ids [`group_sim`] uses.
pub fn group_members() -> Vec<NodeId> {
    vec![NodeId(0), NodeId(1), NodeId(2)]
}

/// Canonical [`crate::explore::StateFingerprint`] for group scenarios:
/// each member's delivery log and vector clock (the clock advances on
/// every receive, so held-back traffic is reflected even before it
/// surfaces as a delivery).
pub fn fingerprint(sim: &Sim<GcMsg<u64>>) -> u64 {
    let mut parts = Vec::new();
    for m in group_members() {
        if let Some(member) = sim.get::<Member>(ActorHandle::of(m)) {
            let delivered: Vec<(u32, u64)> =
                member.delivered.iter().map(|&(o, p)| (o.0, p)).collect();
            parts.push((m.0, delivered, format!("{:?}", member.engine().clock())));
        }
    }
    crate::explore::hash_of(&parts)
}

/// Step invariant: each member's vector clock only ever grows
/// (pointwise) — time never runs backwards inside the causality layer.
pub struct VClockMonotone {
    members: Vec<NodeId>,
    last: BTreeMap<NodeId, VectorClock>,
}

impl VClockMonotone {
    /// Watches the given members.
    pub fn new(members: Vec<NodeId>) -> Self {
        VClockMonotone {
            members,
            last: BTreeMap::new(),
        }
    }
}

impl Invariant<GcMsg<u64>> for VClockMonotone {
    fn name(&self) -> &'static str {
        "vclock-monotone"
    }

    fn check_step(&mut self, sim: &Sim<GcMsg<u64>>) -> Result<(), String> {
        for &m in &self.members {
            let member: &Member = sim.get(ActorHandle::of(m)).ok_or("member missing")?;
            let clock = member.engine().clock().clone();
            if let Some(prev) = self.last.get(&m) {
                match prev.compare(&clock) {
                    Causality::Equal | Causality::Before => {}
                    other => {
                        return Err(format!(
                            "member {m}: clock regressed ({prev:?} → {clock:?}, {other:?})"
                        ));
                    }
                }
            }
            self.last.insert(m, clock);
        }
        Ok(())
    }
}

/// Per-origin FIFO: at every member, payloads from one origin arrive in
/// ascending order (the harness encodes the origin's send index in the
/// payload). Checked at each step; at quiescence every member must also
/// have delivered everything.
pub struct FifoDelivery {
    members: Vec<NodeId>,
    expected_total: usize,
}

impl FifoDelivery {
    /// For [`group_sim`] with `per_member` sends per member.
    pub fn new(members: Vec<NodeId>, per_member: u64) -> Self {
        let expected_total = members.len() * per_member as usize;
        FifoDelivery {
            members,
            expected_total,
        }
    }
}

impl Invariant<GcMsg<u64>> for FifoDelivery {
    fn name(&self) -> &'static str {
        "fifo-per-origin"
    }

    fn check_step(&mut self, sim: &Sim<GcMsg<u64>>) -> Result<(), String> {
        for &m in &self.members {
            let member: &Member = sim.get(ActorHandle::of(m)).ok_or("member missing")?;
            let mut last: BTreeMap<NodeId, u64> = BTreeMap::new();
            for &(origin, payload) in &member.delivered {
                if let Some(&prev) = last.get(&origin) {
                    if payload <= prev {
                        return Err(format!(
                            "member {m}: origin {origin} delivered {payload} after {prev}"
                        ));
                    }
                }
                last.insert(origin, payload);
            }
        }
        Ok(())
    }

    fn check_quiescent(&mut self, sim: &Sim<GcMsg<u64>>) -> Result<(), String> {
        self.check_step(sim)?;
        for &m in &self.members {
            let member: &Member = sim.get(ActorHandle::of(m)).ok_or("member missing")?;
            if member.delivered.len() != self.expected_total {
                return Err(format!(
                    "member {m}: delivered {} of {} messages",
                    member.delivered.len(),
                    self.expected_total
                ));
            }
        }
        Ok(())
    }
}

/// One member's delivery sequence, borrowed from its actor.
type MemberSeq<'s> = (NodeId, &'s [(NodeId, u64)]);

/// Delivery-order agreement for totally ordered multicast: at every
/// step the members' delivery sequences are prefix-compatible, and at
/// quiescence they are identical.
pub struct DeliveryAgreement {
    members: Vec<NodeId>,
}

impl DeliveryAgreement {
    /// Watches the given members.
    pub fn new(members: Vec<NodeId>) -> Self {
        DeliveryAgreement { members }
    }

    fn sequences<'s>(&self, sim: &'s Sim<GcMsg<u64>>) -> Result<Vec<MemberSeq<'s>>, String> {
        self.members
            .iter()
            .map(|&m| {
                let member: &Member = sim.get(ActorHandle::of(m)).ok_or("member missing")?;
                Ok((m, member.delivered.as_slice()))
            })
            .collect()
    }
}

impl Invariant<GcMsg<u64>> for DeliveryAgreement {
    fn name(&self) -> &'static str {
        "delivery-order-agreement"
    }

    fn check_step(&mut self, sim: &Sim<GcMsg<u64>>) -> Result<(), String> {
        let seqs = self.sequences(sim)?;
        for w in seqs.windows(2) {
            let (a, sa) = (w[0].0, w[0].1);
            let (b, sb) = (w[1].0, w[1].1);
            let n = sa.len().min(sb.len());
            if sa[..n] != sb[..n] {
                return Err(format!(
                    "members {a} and {b} disagree on the delivery prefix: {:?} vs {:?}",
                    &sa[..n],
                    &sb[..n]
                ));
            }
        }
        Ok(())
    }

    fn check_quiescent(&mut self, sim: &Sim<GcMsg<u64>>) -> Result<(), String> {
        self.check_step(sim)?;
        let seqs = self.sequences(sim)?;
        for w in seqs.windows(2) {
            if w[0].1.len() != w[1].1.len() {
                return Err(format!(
                    "members {} and {} delivered different counts ({} vs {})",
                    w[0].0,
                    w[1].0,
                    w[0].1.len(),
                    w[1].1.len()
                ));
            }
        }
        Ok(())
    }
}
