//! The `odp-check` command-line tool.
//!
//! ```text
//! odp-check lint [ROOT]          run the determinism lint pass
//! odp-check explore [--smoke|--deep]    run every invariant suite
//! odp-check explore <CHECK> [--smoke|--deep] [--json PATH] [--min-reduction X]
//! odp-check replay <CHECK> <TRACE>   re-run one schedule (seed:c0.c1...)
//! odp-check list                 list the invariant suites
//! ```
//!
//! Exits non-zero on any lint finding, invariant violation, or
//! `--min-reduction` regression. `--json` writes the per-check
//! exploration statistics (runs, prunes, reduction factor) as a
//! machine-readable artifact (`BENCH_check.json` in CI).

use std::process::ExitCode;

use odp_check::explore::{Budget, Counterexample, Explorer, Invariant, ReplayError, Report};
use odp_check::invariants::{
    awareness, federation, groupcomm, locks, placement, replication, telemetry, trader, transport,
};
use odp_check::lint;
use odp_groupcomm::multicast::Ordering;
use odp_sim::time::SimTime;

/// Which of the three stock budgets a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BudgetKind {
    Smoke,
    Default,
    Deep,
}

impl BudgetKind {
    fn label(self) -> &'static str {
        match self {
            BudgetKind::Smoke => "smoke",
            BudgetKind::Default => "default",
            BudgetKind::Deep => "deep",
        }
    }
}

/// The replay entry point of a registered check.
type ReplayFn = fn(u64, Budget, &[usize]) -> Result<Option<Counterexample>, ReplayError>;

/// One named invariant suite: a harness factory plus its invariants,
/// with a budget tuned to its schedule space.
struct Check {
    name: &'static str,
    about: &'static str,
    run: fn(u64, Budget) -> Report,
    replay: ReplayFn,
    budget: fn(BudgetKind) -> Budget,
}

fn plain_budget(kind: BudgetKind) -> Budget {
    match kind {
        BudgetKind::Smoke => Budget::smoke(),
        BudgetKind::Default => Budget::default(),
        BudgetKind::Deep => Budget::deep(),
    }
}

fn horizon_budget(kind: BudgetKind) -> Budget {
    plain_budget(kind).with_horizon(SimTime::from_secs(2))
}

fn locks_invs(n: usize) -> Vec<Box<dyn Invariant<locks::TxnHarnessMsg>>> {
    vec![
        Box::new(locks::LockTableConsistent),
        Box::new(locks::DeadlockResolved::new(n)),
    ]
}

fn run_locks(n: usize, seed: u64, budget: Budget) -> Report {
    Explorer::new(seed, budget).explore_hashed(
        |s| locks::cycle_sim(s, n),
        || locks_invs(n),
        locks::fingerprint,
    )
}

fn replay_locks(
    n: usize,
    seed: u64,
    budget: Budget,
    choices: &[usize],
) -> Result<Option<Counterexample>, ReplayError> {
    Explorer::new(seed, budget).replay(|s| locks::cycle_sim(s, n), || locks_invs(n), choices)
}

fn group_invs(ordering: Ordering) -> Vec<Box<dyn Invariant<odp_groupcomm::multicast::GcMsg<u64>>>> {
    let members = groupcomm::group_members();
    let mut invs: Vec<Box<dyn Invariant<_>>> =
        vec![Box::new(groupcomm::VClockMonotone::new(members.clone()))];
    match ordering {
        Ordering::Fifo => invs.push(Box::new(groupcomm::FifoDelivery::new(members, 2))),
        Ordering::Total => invs.push(Box::new(groupcomm::DeliveryAgreement::new(members))),
        Ordering::Causal | Ordering::Unordered => {}
    }
    invs
}

fn run_group(ordering: Ordering, seed: u64, budget: Budget) -> Report {
    Explorer::new(seed, budget).explore_hashed(
        |s| groupcomm::group_sim(s, ordering, 2),
        || group_invs(ordering),
        groupcomm::fingerprint,
    )
}

fn replay_group(
    ordering: Ordering,
    seed: u64,
    budget: Budget,
    choices: &[usize],
) -> Result<Option<Counterexample>, ReplayError> {
    Explorer::new(seed, budget).replay(
        |s| groupcomm::group_sim(s, ordering, 2),
        || group_invs(ordering),
        choices,
    )
}

fn dopt_invs(n: usize) -> Vec<Box<dyn Invariant<odp_concurrency::dopt::RemoteOp>>> {
    vec![Box::new(replication::Converged::new(
        replication::dopt_sites(n),
    ))]
}

fn trader_invs() -> Vec<Box<dyn Invariant<odp_trader::actors::TraderMsg>>> {
    vec![Box::new(trader::CacheCoherent::for_rebalance_sim())]
}

fn federation_invs() -> Vec<Box<dyn Invariant<federation::FedMsg>>> {
    vec![Box::new(federation::FederationSound)]
}

fn telemetry_invs() -> Vec<Box<dyn Invariant<odp_groupcomm::multicast::GcMsg<String>>>> {
    vec![Box::new(telemetry::TelemetrySpans)]
}

fn awareness_invs(
) -> Vec<Box<dyn Invariant<odp_groupcomm::multicast::GcMsg<odp_awareness::dist::BusWire>>>> {
    vec![Box::new(awareness::RightsGated::for_gating_sim())]
}

fn transport_invs() -> Vec<Box<dyn Invariant<transport::TransportMsg>>> {
    vec![Box::new(transport::TransportFidelity::for_transport_sim())]
}

fn placement_invs() -> Vec<Box<dyn Invariant<odp_place::wire::PlaceWire>>> {
    vec![Box::new(placement::PlacementSound::for_placement_sim())]
}

const CHECKS: &[Check] = &[
    Check {
        name: "locks-cycle-2",
        about: "strict 2PL: 2-txn lock cycle resolves, victim is youngest",
        run: |seed, b| run_locks(2, seed, b),
        replay: |seed, b, c| replay_locks(2, seed, b, c),
        budget: plain_budget,
    },
    Check {
        name: "locks-cycle-3",
        about: "strict 2PL: 3-txn lock cycle resolves, victim is youngest",
        run: |seed, b| run_locks(3, seed, b),
        replay: |seed, b, c| replay_locks(3, seed, b, c),
        budget: plain_budget,
    },
    Check {
        name: "group-fifo",
        about: "multicast: vclock monotone + per-origin FIFO delivery",
        run: |seed, b| run_group(Ordering::Fifo, seed, b),
        replay: |seed, b, c| replay_group(Ordering::Fifo, seed, b, c),
        budget: horizon_budget,
    },
    Check {
        name: "group-total",
        about: "multicast: vclock monotone + total-order delivery agreement",
        run: |seed, b| run_group(Ordering::Total, seed, b),
        replay: |seed, b, c| replay_group(Ordering::Total, seed, b, c),
        budget: horizon_budget,
    },
    Check {
        name: "dopt-pair",
        about: "dOPT: two concurrent replicas converge at quiescence",
        run: |seed, b| {
            Explorer::new(seed, b).explore_hashed(
                |s| replication::dopt_sim(s, 2),
                || dopt_invs(2),
                replication::fingerprint_for(replication::dopt_sites(2)),
            )
        },
        replay: |seed, b, c| {
            Explorer::new(seed, b).replay(|s| replication::dopt_sim(s, 2), || dopt_invs(2), c)
        },
        budget: plain_budget,
    },
    Check {
        name: "dopt",
        about: "dOPT: six concurrent edits across two replicas converge (deep DPOR space)",
        run: |seed, b| {
            Explorer::new(seed, b).explore_hashed(
                replication::dopt_deep_sim,
                || dopt_invs(2),
                replication::fingerprint_for(replication::dopt_sites(2)),
            )
        },
        replay: |seed, b, c| {
            Explorer::new(seed, b).replay(replication::dopt_deep_sim, || dopt_invs(2), c)
        },
        budget: plain_budget,
    },
    Check {
        name: "trader-rebalance",
        about: "trader: importer caches stay coherent across a ring change",
        run: |seed, b| {
            Explorer::new(seed, b).explore_hashed(
                |s| trader::rebalance_sim(s, true),
                trader_invs,
                trader::fingerprint,
            )
        },
        replay: |seed, b, c| {
            Explorer::new(seed, b).replay(|s| trader::rebalance_sim(s, true), trader_invs, c)
        },
        budget: horizon_budget,
    },
    Check {
        name: "trader-federation",
        about: "trader: federated imports are scope-sound and penalty-accounted",
        run: |seed, b| {
            Explorer::new(seed, b).explore_hashed(
                |s| federation::federation_sim(s, true),
                federation_invs,
                federation::fingerprint,
            )
        },
        replay: |seed, b, c| {
            Explorer::new(seed, b).replay(
                |s| federation::federation_sim(s, true),
                federation_invs,
                c,
            )
        },
        budget: plain_budget,
    },
    Check {
        name: "telemetry-spans",
        about: "telemetry: every span closes, parents precede children, DAGs acyclic",
        run: |seed, b| {
            Explorer::new(seed, b).explore_hashed(
                |s| telemetry::telemetry_sim(s, true),
                telemetry_invs,
                telemetry::fingerprint,
            )
        },
        replay: |seed, b, c| {
            Explorer::new(seed, b).replay(|s| telemetry::telemetry_sim(s, true), telemetry_invs, c)
        },
        budget: horizon_budget,
    },
    Check {
        name: "awareness-gating",
        about: "awareness: no event reaches an observer without rights on its artefact",
        run: |seed, b| {
            Explorer::new(seed, b).explore_hashed(
                |s| awareness::gating_sim(s, true),
                awareness_invs,
                awareness::fingerprint,
            )
        },
        replay: |seed, b, c| {
            Explorer::new(seed, b).replay(|s| awareness::gating_sim(s, true), awareness_invs, c)
        },
        budget: horizon_budget,
    },
    Check {
        name: "awareness-deep",
        about: "awareness: four racing publications stay rights-gated (deep DPOR space)",
        run: |seed, b| {
            Explorer::new(seed, b).explore_hashed(
                |s| awareness::gating_deep_sim(s, true),
                awareness_invs,
                awareness::fingerprint,
            )
        },
        replay: |seed, b, c| {
            Explorer::new(seed, b).replay(
                |s| awareness::gating_deep_sim(s, true),
                awareness_invs,
                c,
            )
        },
        budget: horizon_budget,
    },
    Check {
        name: "transport-fidelity",
        about: "net: no seq gaps after reconnect, forwarded broadcasts exactly-once",
        run: |seed, b| {
            Explorer::new(seed, b).explore_hashed(
                |s| transport::transport_sim(s, true),
                transport_invs,
                transport::fingerprint,
            )
        },
        replay: |seed, b, c| {
            Explorer::new(seed, b).replay(|s| transport::transport_sim(s, true), transport_invs, c)
        },
        budget: horizon_budget,
    },
    Check {
        name: "placement-soundness",
        about: "place: migration decisions replay from recorded inputs, transfers exactly-once",
        run: |seed, b| {
            Explorer::new(seed, b).explore_hashed(
                |s| placement::placement_sim(s, true),
                placement_invs,
                placement::fingerprint,
            )
        },
        replay: |seed, b, c| {
            Explorer::new(seed, b).replay(|s| placement::placement_sim(s, true), placement_invs, c)
        },
        budget: horizon_budget,
    },
];

const DEFAULT_SEED: u64 = 42;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  odp-check lint [ROOT]\n  odp-check explore [CHECK] [--smoke|--deep] [--seed N] \
         [--json PATH] [--min-reduction X]\n  \
         odp-check replay <CHECK> <TRACE>\n  odp-check list"
    );
    ExitCode::from(2)
}

fn cmd_lint(root_arg: Option<&str>) -> ExitCode {
    let start = match root_arg {
        Some(r) => std::path::PathBuf::from(r),
        None => match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("odp-check: cannot determine working directory: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let root = lint::workspace_root(&start).unwrap_or(start);
    match lint::run(&root, &lint::LintConfig::default()) {
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                println!("odp-check lint: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                eprintln!("odp-check lint: {} finding(s)", diags.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("odp-check lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn find_check(name: &str) -> Option<&'static Check> {
    CHECKS.iter().find(|c| c.name == name)
}

/// Minimal JSON string escaping for the stats artifact.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn stats_json(seed: u64, kind: BudgetKind, rows: &[(&'static str, Report)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"odp-check/explore-stats/v1\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"budget\": \"{}\",\n", kind.label()));
    out.push_str("  \"checks\": [\n");
    for (i, (name, report)) in rows.iter().enumerate() {
        let violation = match &report.violation {
            Some(cx) => format!("\"{}\"", json_escape(&cx.trace())),
            None => "null".to_owned(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"runs\": {}, \"events\": {}, \
             \"naive_bound\": {}, \"sleep_pruned\": {}, \"hash_pruned\": {}, \
             \"racing_pairs\": {}, \"reduction_factor\": {:.2}, \
             \"complete\": {}, \"violation\": {violation}}}{}\n",
            report.runs,
            report.events,
            report.stats.naive_bound,
            report.stats.sleep_pruned,
            report.stats.hash_pruned,
            report.stats.racing_pairs,
            report.stats.reduction_factor,
            report.complete,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn cmd_explore(
    which: Option<&str>,
    kind: BudgetKind,
    seed: u64,
    json: Option<&str>,
    min_reduction: Option<f64>,
) -> ExitCode {
    let selected: Vec<&Check> = match which {
        Some(name) => match find_check(name) {
            Some(c) => vec![c],
            None => {
                eprintln!("odp-check: unknown check `{name}` (try `odp-check list`)");
                return ExitCode::from(2);
            }
        },
        None => CHECKS.iter().collect(),
    };
    let mut failed = false;
    let mut rows: Vec<(&'static str, Report)> = Vec::new();
    for check in selected {
        let report = (check.run)(seed, (check.budget)(kind));
        let coverage = if report.complete {
            "complete"
        } else {
            "bounded"
        };
        let s = &report.stats;
        match &report.violation {
            Some(cx) => {
                failed = true;
                println!(
                    "FAIL {} — {} ({} runs, {} events)\n     {}",
                    check.name, check.about, report.runs, report.events, cx
                );
                println!(
                    "     replay: odp-check replay {} {}",
                    check.name,
                    cx.trace()
                );
            }
            None => {
                println!(
                    "ok   {} — {} ({} runs of ~{} naive, {} sleep- / {} hash-pruned, \
                     {} races, {:.1}x reduction, {} events, {coverage})",
                    check.name,
                    check.about,
                    report.runs,
                    s.naive_bound,
                    s.sleep_pruned,
                    s.hash_pruned,
                    s.racing_pairs,
                    s.reduction_factor,
                    report.events
                );
            }
        }
        if let Some(floor) = min_reduction {
            if report.stats.reduction_factor < floor {
                failed = true;
                println!(
                    "FAIL {} — reduction factor {:.2} regressed below the floor {floor:.2}",
                    check.name, report.stats.reduction_factor
                );
            }
        }
        rows.push((check.name, report));
    }
    if let Some(path) = json {
        let body = stats_json(seed, kind, &rows);
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("odp-check: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("stats written to {path}");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_replay(name: &str, trace: &str) -> ExitCode {
    let Some(check) = find_check(name) else {
        eprintln!("odp-check: unknown check `{name}` (try `odp-check list`)");
        return ExitCode::from(2);
    };
    let Some((seed, choices)) = Counterexample::parse_trace(trace) else {
        eprintln!("odp-check: malformed trace `{trace}` (expected seed:c0.c1...)");
        return ExitCode::from(2);
    };
    match (check.replay)(seed, (check.budget)(BudgetKind::Default), &choices) {
        Ok(Some(cx)) => {
            println!("reproduced: {cx}");
            ExitCode::FAILURE
        }
        Ok(None) => {
            println!("schedule {trace} runs clean for {name}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("odp-check: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut kind = BudgetKind::Default;
    let mut seed = DEFAULT_SEED;
    let mut json: Option<&str> = None;
    let mut min_reduction: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => kind = BudgetKind::Smoke,
            "--deep" => kind = BudgetKind::Deep,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--json" => match it.next() {
                Some(v) => json = Some(v.as_str()),
                None => return usage(),
            },
            "--min-reduction" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => min_reduction = Some(v),
                None => return usage(),
            },
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(),
            other => positional.push(other),
        }
    }
    match positional.as_slice() {
        ["lint"] => cmd_lint(None),
        ["lint", root] => cmd_lint(Some(root)),
        ["explore"] => cmd_explore(None, kind, seed, json, min_reduction),
        ["explore", name] => cmd_explore(Some(name), kind, seed, json, min_reduction),
        ["replay", name, trace] => cmd_replay(name, trace),
        ["list"] => {
            for c in CHECKS {
                println!("{:18} {}", c.name, c.about);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
