#![warn(missing_docs)]

//! # odp-check — correctness tooling for the CSCW/ODP workspace
//!
//! Two instruments, one goal: the workspace's determinism claim must be
//! *checkable*, not aspirational.
//!
//! **The lint pass** ([`lint`]) is a self-contained source analyzer
//! (token scanner; no rustc plugin, no network) enforcing three
//! project rules over every non-test crate source: no
//! `unwrap()`/`expect()` in protocol code, no wall-clock time or OS
//! randomness in sim-driven code, and no iteration over
//! `HashMap`/`HashSet` whose order could leak into messages. Findings
//! are suppressed per-site with `// odp-check: allow(<rule>)` comments,
//! and an allow that suppresses nothing is itself an error.
//!
//! **The schedule explorer** ([`explore`]) drives the simulator through
//! a bounded DFS over message-delivery permutations, checking
//! [`explore::Invariant`]s after every event and at quiescence.
//! Counterexamples are `(seed, choice-sequence)` pairs that replay
//! exactly. The [`invariants`] module wires invariants and harnesses
//! for the protocol subsystems: two-phase-locking consistency and
//! deadlock-victim liveness, group-communication ordering, OT/dOPT
//! convergence, and trader cache coherence under shard churn.
//!
//! Run both from the workspace root:
//!
//! ```text
//! cargo run -p odp-check -- lint
//! cargo run -p odp-check -- explore --smoke
//! cargo run -p odp-check -- replay <seed:c0.c1...>
//! ```

pub mod explore;
pub mod invariants;
pub mod lint;

pub use explore::{Budget, Counterexample, Explorer, Invariant, Report};
pub use lint::{Diagnostic, LintConfig};
