//! The interned binary span carrier and the span log.
//!
//! Telemetry spans used to ride the string trace as
//! `trace:span:parent:kind` hex payloads — two `String` allocations per
//! record, parsed back with a hand-rolled hex scanner. On instrumented
//! hot paths that was ~9.8% of E13's runtime. Here a span record is one
//! fixed-size push into a [`SpanLog`]: the ids travel as raw `u64`s in
//! a [`SpanCarrier`] and the kind string is interned once per distinct
//! kind into a [`KindId`].
//!
//! The carrier also has a standalone binary codec
//! ([`SpanCarrier::encode_into`] / [`SpanCarrier::decode_from`]) whose
//! byte layout matches the workspace wire convention (big-endian
//! fixed-width ints, `0`/`1` option tag), and whose decoder is total —
//! the hostile-bytes property suite pins that down.

use std::fmt;

/// Decode errors for the fabric's standalone codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// Fewer bytes than the value needs.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes present.
        have: usize,
    },
    /// An enum tag outside the defined range.
    BadTag {
        /// The offending tag byte.
        tag: u8,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Truncated { needed, have } => {
                write!(f, "truncated: needed {needed} bytes, have {have}")
            }
            FabricError::BadTag { tag } => write!(f, "bad tag byte {tag}"),
        }
    }
}

impl std::error::Error for FabricError {}

/// The binary identity of one span: what the hex string
/// `trace:span:parent` used to carry, as raw words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanCarrier {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id, unique within the trace.
    pub span_id: u64,
    /// The parent span id, `None` for roots.
    pub parent: Option<u64>,
}

impl SpanCarrier {
    /// A root carrier (no parent).
    pub fn root(trace_id: u64, span_id: u64) -> Self {
        SpanCarrier {
            trace_id,
            span_id,
            parent: None,
        }
    }

    /// A child carrier under `parent`.
    pub fn child_of(trace_id: u64, span_id: u64, parent: u64) -> Self {
        SpanCarrier {
            trace_id,
            span_id,
            parent: Some(parent),
        }
    }

    /// Appends the binary encoding: `trace_id` and `span_id` as
    /// big-endian `u64`s, then a `0`/`1` option tag and, if present,
    /// the parent id — the same layout the workspace wire codec uses
    /// for `(u64, u64, Option<u64>)`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.trace_id.to_be_bytes());
        out.extend_from_slice(&self.span_id.to_be_bytes());
        match self.parent {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&p.to_be_bytes());
            }
        }
    }

    /// Reads one carrier from the front of `bytes`, returning it and
    /// the bytes consumed. Total: truncated or hostile input yields a
    /// [`FabricError`], never a panic.
    pub fn decode_from(bytes: &[u8]) -> Result<(SpanCarrier, usize), FabricError> {
        fn word(bytes: &[u8], at: usize) -> Result<u64, FabricError> {
            let Some(slice) = bytes.get(at..at + 8) else {
                return Err(FabricError::Truncated {
                    needed: at + 8,
                    have: bytes.len(),
                });
            };
            let mut fixed = [0u8; 8];
            fixed.copy_from_slice(slice);
            Ok(u64::from_be_bytes(fixed))
        }
        let trace_id = word(bytes, 0)?;
        let span_id = word(bytes, 8)?;
        let Some(&tag) = bytes.get(16) else {
            return Err(FabricError::Truncated {
                needed: 17,
                have: bytes.len(),
            });
        };
        match tag {
            0 => Ok((
                SpanCarrier {
                    trace_id,
                    span_id,
                    parent: None,
                },
                17,
            )),
            1 => {
                let parent = word(bytes, 17)?;
                Ok((
                    SpanCarrier {
                        trace_id,
                        span_id,
                        parent: Some(parent),
                    },
                    25,
                ))
            }
            tag => Err(FabricError::BadTag { tag }),
        }
    }
}

/// An interned span-kind: index into a [`SpanLog`]'s kind table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KindId(pub u16);

/// One span operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOp {
    /// A span opened, with its interned kind.
    Open {
        /// The span identity.
        span: SpanCarrier,
        /// Which kind, resolvable via [`SpanLog::kind`].
        kind: KindId,
    },
    /// A span closed.
    Close {
        /// The trace the closing span belongs to.
        trace_id: u64,
        /// The closing span's id.
        span_id: u64,
    },
}

/// One timestamped span record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Event time in microseconds since the epoch of the owning run.
    pub time_us: u64,
    /// The recording node's raw id.
    pub node: u32,
    /// What happened.
    pub op: SpanOp,
}

/// The append-only binary span log: a kind-interning table plus a flat
/// vector of fixed-size [`SpanEvent`]s. Recording a span is one
/// (amortised) allocation-free push; the collector resolves kinds back
/// to strings after the run.
///
/// ```
/// use odp_fabric::span::{SpanCarrier, SpanLog, SpanOp};
///
/// let mut log = SpanLog::new();
/// let root = SpanCarrier::root(1, 10);
/// log.open(0, 0, root, "rpc.call");
/// log.close(250, 0, 1, 10);
/// assert_eq!(log.len(), 2);
/// let SpanOp::Open { kind, .. } = log.events()[0].op else { panic!() };
/// assert_eq!(log.kind(kind), "rpc.call");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanLog {
    kinds: Vec<String>,
    events: Vec<SpanEvent>,
}

impl SpanLog {
    /// An empty log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// Interns `kind`, returning the existing id when seen before. The
    /// table is scanned linearly — real workloads have a handful of
    /// distinct kinds, and first-use order keeps ids deterministic.
    /// Beyond `u16::MAX` distinct kinds new entries collapse onto the
    /// last id rather than growing unboundedly.
    pub fn intern(&mut self, kind: &str) -> KindId {
        if let Some(at) = self.kinds.iter().position(|k| k == kind) {
            return KindId(at as u16);
        }
        if self.kinds.len() > usize::from(u16::MAX) {
            return KindId(u16::MAX);
        }
        self.kinds.push(kind.to_owned());
        KindId((self.kinds.len() - 1) as u16)
    }

    /// Resolves an interned kind; `"?"` for an id this log never issued.
    pub fn kind(&self, id: KindId) -> &str {
        self.kinds
            .get(usize::from(id.0))
            .map_or("?", String::as_str)
    }

    /// Records a span open.
    pub fn open(&mut self, time_us: u64, node: u32, span: SpanCarrier, kind: &str) {
        let kind = self.intern(kind);
        self.events.push(SpanEvent {
            time_us,
            node,
            op: SpanOp::Open { span, kind },
        });
    }

    /// Records a span close.
    pub fn close(&mut self, time_us: u64, node: u32, trace_id: u64, span_id: u64) {
        self.events.push(SpanEvent {
            time_us,
            node,
            op: SpanOp::Close { trace_id, span_id },
        });
    }

    /// The events, in record order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// The interned kind table, in first-use order.
    pub fn kinds(&self) -> &[String] {
        &self.kinds
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all events and interned kinds.
    pub fn clear(&mut self) {
        self.kinds.clear();
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carrier_roundtrips_with_and_without_parent() {
        for carrier in [
            SpanCarrier::root(0xdead_beef, 1),
            SpanCarrier::child_of(7, u64::MAX, 3),
        ] {
            let mut buf = vec![0xAA]; // leading junk the caller already consumed
            let start = buf.len();
            carrier.encode_into(&mut buf);
            let (back, used) = SpanCarrier::decode_from(&buf[start..]).expect("decodes");
            assert_eq!(back, carrier);
            assert_eq!(used, buf.len() - start);
        }
    }

    #[test]
    fn truncated_and_hostile_bytes_error() {
        let mut buf = Vec::new();
        SpanCarrier::child_of(1, 2, 3).encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(SpanCarrier::decode_from(&buf[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = buf.clone();
        bad[16] = 9; // invalid option tag
        assert_eq!(
            SpanCarrier::decode_from(&bad),
            Err(FabricError::BadTag { tag: 9 })
        );
    }

    #[test]
    fn interning_is_first_use_ordered_and_stable() {
        let mut log = SpanLog::new();
        let a = log.intern("gc.mcast");
        let b = log.intern("gc.deliver");
        assert_eq!(log.intern("gc.mcast"), a);
        assert_ne!(a, b);
        assert_eq!(log.kind(a), "gc.mcast");
        assert_eq!(log.kind(KindId(999)), "?");
    }

    #[test]
    fn open_close_record_in_order() {
        let mut log = SpanLog::new();
        log.open(5, 2, SpanCarrier::root(1, 1), "k");
        log.close(9, 2, 1, 1);
        assert_eq!(log.len(), 2);
        assert!(matches!(
            log.events()[1].op,
            SpanOp::Close {
                trace_id: 1,
                span_id: 1
            }
        ));
        log.clear();
        assert!(log.is_empty());
        assert!(log.kinds().is_empty());
    }
}
