//! [`SortedVecMap`]: a deterministic map over a sorted vector.
//!
//! Several hot-path maps in the workspace are `BTreeMap` purely because
//! the protocol must iterate them in a deterministic order — retransmit
//! buffers walked every tick, observer registries walked every publish,
//! lookup caches walked by coherence checkers. These maps are small
//! (peers, observers, cached types: tens, not millions), live hot, and
//! are *iterated* far more often than they are restructured. A sorted
//! vector gives the same deterministic ascending iteration with one
//! contiguous allocation and branch-predictable binary-search lookups;
//! the trade is O(n) element moves on insert/remove, which is the
//! *wrong* trade for large churning maps — DESIGN.md §12 spells out
//! when each is sound.

use std::fmt;

/// A map stored as a vector of `(K, V)` pairs sorted by key.
///
/// API mirrors the `BTreeMap` subset the workspace's hot sites use, so
/// swapping a site between the two is a type change, not a rewrite.
/// Iteration is always ascending by key.
///
/// ```
/// use odp_fabric::SortedVecMap;
///
/// let mut m = SortedVecMap::new();
/// m.insert(3, "c");
/// m.insert(1, "a");
/// assert_eq!(m.insert(1, "A"), Some("a"));
/// let keys: Vec<i32> = m.keys().copied().collect();
/// assert_eq!(keys, vec![1, 3]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SortedVecMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for SortedVecMap<K, V> {
    fn default() -> Self {
        SortedVecMap {
            entries: Vec::new(),
        }
    }
}

impl<K: Ord, V> SortedVecMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        SortedVecMap::default()
    }

    fn position(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// Inserts, returning the previous value for the key if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.position(&key) {
            Ok(at) => Some(std::mem::replace(&mut self.entries[at].1, value)),
            Err(at) => {
                self.entries.insert(at, (key, value));
                None
            }
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.position(key).ok().map(|at| &self.entries[at].1)
    }

    /// Looks a key up mutably.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.position(key) {
            Ok(at) => Some(&mut self.entries[at].1),
            Err(_) => None,
        }
    }

    /// The value for `key`, inserting `V::default()` first if absent
    /// (the `entry(k).or_default()` idiom).
    pub fn get_mut_or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        let at = match self.position(&key) {
            Ok(at) => at,
            Err(at) => {
                self.entries.insert(at, (key, V::default()));
                at
            }
        };
        &mut self.entries[at].1
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.position(key) {
            Ok(at) => Some(self.entries.remove(at).1),
            Err(_) => None,
        }
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.position(key).is_ok()
    }

    /// Entries, ascending by key.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Entries with mutable values, ascending by key.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Keys, ascending.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values, in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Mutable values, in ascending key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }

    /// Keeps only entries the predicate accepts (ascending visit order).
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v)| keep(k, v));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The first (smallest-key) entry.
    pub fn first_key_value(&self) -> Option<(&K, &V)> {
        self.entries.first().map(|(k, v)| (k, v))
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for SortedVecMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = SortedVecMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a SortedVecMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (&'a K, &'a V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<K: Ord, V> IntoIterator for SortedVecMap<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for SortedVecMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(k, v)| (k, v)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_mirror_btreemap() {
        let mut sv: SortedVecMap<u32, String> = SortedVecMap::new();
        let mut bt: BTreeMap<u32, String> = BTreeMap::new();
        // A fixed churn script touching insert/overwrite/remove/lookup.
        let script = [(5u32, "e"), (1, "a"), (9, "i"), (5, "E"), (3, "c")];
        for (k, v) in script {
            assert_eq!(sv.insert(k, v.to_owned()), bt.insert(k, v.to_owned()));
        }
        assert_eq!(sv.remove(&9), bt.remove(&9));
        assert_eq!(sv.remove(&42), bt.remove(&42));
        assert_eq!(sv.get(&5), bt.get(&5));
        assert_eq!(sv.len(), bt.len());
        let sv_pairs: Vec<_> = sv.iter().map(|(k, v)| (*k, v.clone())).collect();
        let bt_pairs: Vec<_> = bt.iter().map(|(k, v)| (*k, v.clone())).collect();
        assert_eq!(sv_pairs, bt_pairs, "identical ascending iteration");
    }

    #[test]
    fn retain_and_iter_mut_visit_ascending() {
        let mut m: SortedVecMap<u32, u32> = (0..6u32).map(|i| (i, i * 10)).collect();
        let mut seen = Vec::new();
        m.retain(|k, v| {
            seen.push(*k);
            *v += 1;
            k % 2 == 0
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![0, 2, 4]);
        for (_, v) in m.iter_mut() {
            *v *= 2;
        }
        assert_eq!(m.get(&2), Some(&42));
    }

    #[test]
    fn get_mut_or_default_inserts_once() {
        let mut m: SortedVecMap<u32, Vec<u32>> = SortedVecMap::new();
        m.get_mut_or_default(7).push(1);
        m.get_mut_or_default(7).push(2);
        assert_eq!(m.get(&7), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
        assert_eq!(m.first_key_value(), Some((&7, &vec![1, 2])));
    }
}
