//! [`Payload`]: Arc-backed shared bytes with copy-on-write.
//!
//! A multicast to N peers used to deep-clone the payload N times (once
//! per outbound envelope) plus once more into the retransmit buffer.
//! With `Payload` those clones are refcount bumps on one shared
//! allocation; the bytes are copied only when someone actually writes
//! through [`Payload::to_mut`] while the buffer is shared.

use std::fmt;
use std::sync::Arc;

/// Cheaply-cloneable immutable-by-default byte buffer.
///
/// Equality, ordering and hashing are by *content*, so a `Payload` can
/// key maps and be compared across independently-encoded copies;
/// [`Payload::ptr_eq`] separately answers whether two handles share one
/// allocation (what the zero-copy tests and the fan-out bench assert).
///
/// ```
/// use odp_fabric::Payload;
///
/// let p = Payload::from_slice(b"tile bytes");
/// let q = p.clone(); // refcount bump, no copy
/// assert!(p.ptr_eq(&q));
///
/// let mut r = q.clone();
/// r.to_mut().push(b'!'); // copy-on-write: p and q are untouched
/// assert!(!p.ptr_eq(&r));
/// assert_eq!(p.as_slice(), b"tile bytes");
/// assert_eq!(r.as_slice(), b"tile bytes!");
/// ```
#[derive(Clone, Default)]
pub struct Payload(Arc<Vec<u8>>);

impl Payload {
    /// The empty payload.
    pub fn new() -> Self {
        Payload::default()
    }

    /// Wraps an owned buffer without copying.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        Payload(Arc::new(bytes))
    }

    /// Copies a slice into a fresh payload.
    pub fn from_slice(bytes: &[u8]) -> Self {
        Payload(Arc::new(bytes.to_vec()))
    }

    /// The bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Mutable access with copy-on-write: if this handle shares its
    /// allocation with others, the bytes are copied first and only this
    /// handle sees the copy.
    pub fn to_mut(&mut self) -> &mut Vec<u8> {
        Arc::make_mut(&mut self.0)
    }

    /// Whether two handles share one allocation (clone lineage), as
    /// opposed to merely holding equal bytes.
    pub fn ptr_eq(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// How many handles share this allocation (diagnostics/tests).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }

    /// Unwraps into the inner buffer, copying only if shared.
    pub fn into_vec(self) -> Vec<u8> {
        Arc::try_unwrap(self.0).unwrap_or_else(|arc| (*arc).clone())
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload::from_vec(bytes)
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Payload::from_slice(bytes)
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        // Same allocation short-circuits the byte compare.
        self.ptr_eq(other) || self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl PartialOrd for Payload {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Payload {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Payload {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // First bytes only: payloads can be megabytes.
        let preview: Vec<u8> = self.0.iter().copied().take(8).collect();
        write!(
            f,
            "Payload({} bytes, {:02x?}{})",
            self.len(),
            preview,
            if self.len() > 8 { "…" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_and_cow_copies() {
        let a = Payload::from_slice(b"hello");
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert_eq!(a.handle_count(), 2);

        let mut c = b.clone();
        c.to_mut()[0] = b'H';
        assert!(!a.ptr_eq(&c), "write detached the shared buffer");
        assert_eq!(a.as_slice(), b"hello");
        assert_eq!(c.as_slice(), b"Hello");
    }

    #[test]
    fn unshared_to_mut_does_not_copy() {
        let mut a = Payload::from_slice(b"x");
        let before = a.as_slice().as_ptr();
        a.to_mut().push(b'y');
        // Sole owner: mutation happens in place (same Arc); the Vec may
        // reallocate its storage, but no second Payload ever observes it.
        assert_eq!(a.as_slice(), b"xy");
        let _ = before;
        assert_eq!(a.handle_count(), 1);
    }

    #[test]
    fn content_equality_ignores_lineage() {
        let a = Payload::from_slice(b"same");
        let b = Payload::from_slice(b"same");
        assert_eq!(a, b);
        assert!(!a.ptr_eq(&b));
        assert!(Payload::from_slice(b"a") < Payload::from_slice(b"b"));
    }

    #[test]
    fn into_vec_avoids_copy_when_sole_owner() {
        let a = Payload::from_vec(vec![1, 2, 3]);
        assert_eq!(a.into_vec(), vec![1, 2, 3]);
        let b = Payload::from_vec(vec![4]);
        let c = b.clone();
        assert_eq!(b.into_vec(), vec![4]);
        assert_eq!(c.as_slice(), &[4]);
    }
}
