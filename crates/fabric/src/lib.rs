#![warn(missing_docs)]

//! # odp-fabric — the zero-copy message fabric
//!
//! The delivery hot path moves three kinds of data millions of times
//! per run: envelope payloads (multicast fan-out clones one payload per
//! peer), telemetry span records (two per instrumented hop), and small
//! ordered maps that exist only so iteration order is deterministic.
//! This crate provides the byte-oriented primitives every
//! envelope-carrying crate shares, and *nothing else* — it sits below
//! `odp-sim` in the dependency graph and deliberately depends on no
//! other workspace crate, which is why times are raw microsecond `u64`s
//! and nodes raw `u32`s here (the sim layer re-exports them with its
//! `SimTime`/`NodeId` vocabulary).
//!
//! Three pieces:
//!
//! - [`Payload`](bytes::Payload): cheaply-cloneable Arc-backed shared
//!   bytes with copy-on-write. Fan-out to N peers bumps a refcount N
//!   times instead of copying the body N times; the first writer to a
//!   shared buffer pays one copy.
//! - [`SpanCarrier`](span::SpanCarrier) + [`SpanLog`](span::SpanLog):
//!   the interned binary representation of telemetry span events,
//!   replacing the `trace:span:parent:kind` hex strings that cost two
//!   `String` allocations per span record. Kinds are interned to a
//!   small [`KindId`](span::KindId); one span record is a fixed-size
//!   push.
//! - [`SortedVecMap`](map::SortedVecMap): a binary-searched sorted
//!   vector with the `BTreeMap` API subset the hot sites use. Sound
//!   wherever the map is small-to-medium and iteration order (not
//!   asymptotic insert/remove) is what the BTreeMap was buying —
//!   retransmit buffers, observer registries, lookup caches.

pub mod bytes;
pub mod map;
pub mod span;

pub use bytes::Payload;
pub use map::SortedVecMap;
pub use span::{FabricError, KindId, SpanCarrier, SpanEvent, SpanLog, SpanOp};

/// Everything a consuming crate usually wants.
pub mod prelude {
    pub use crate::bytes::Payload;
    pub use crate::map::SortedVecMap;
    pub use crate::span::{KindId, SpanCarrier, SpanEvent, SpanLog, SpanOp};
}
