//! Property tests for the fabric primitives: the [`SpanCarrier`]
//! binary codec round-trips and is total over hostile bytes, the
//! [`Payload`] copy-on-write handle never lets a writer disturb other
//! handles, and [`SortedVecMap`] is observationally equivalent to
//! `BTreeMap` under arbitrary operation sequences.

use std::collections::BTreeMap;

use odp_fabric::{FabricError, Payload, SortedVecMap, SpanCarrier};
use proptest::prelude::*;

/// An arbitrary carrier, roots and children alike.
fn arb_carrier() -> impl Strategy<Value = SpanCarrier> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
        |(trace_id, span_id, parent, has_parent)| SpanCarrier {
            trace_id,
            span_id,
            parent: has_parent.then_some(parent),
        },
    )
}

/// One step of the map model test.
#[derive(Debug, Clone)]
enum MapOp {
    Insert(u8, u16),
    Remove(u8),
    GetOrDefault(u8, u16),
    RetainEven,
}

fn arb_map_op() -> impl Strategy<Value = MapOp> {
    (0u8..4, any::<u8>(), any::<u16>()).prop_map(|(tag, k, v)| match tag {
        0 => MapOp::Insert(k, v),
        1 => MapOp::Remove(k),
        2 => MapOp::GetOrDefault(k, v),
        _ => MapOp::RetainEven,
    })
}

proptest! {
    /// Every carrier round-trips through the binary codec, consuming
    /// exactly the bytes it produced — including with trailing junk
    /// after the encoding.
    #[test]
    fn carrier_roundtrips(carrier in arb_carrier(), junk in prop::collection::vec(any::<u8>(), 0..16)) {
        let mut buf = Vec::new();
        carrier.encode_into(&mut buf);
        let encoded_len = buf.len();
        buf.extend_from_slice(&junk);
        let (back, used) = SpanCarrier::decode_from(&buf).expect("decodes");
        prop_assert_eq!(back, carrier);
        prop_assert_eq!(used, encoded_len);
    }

    /// Every strict prefix of a valid encoding is a typed error.
    #[test]
    fn truncated_carriers_error_at_every_prefix(carrier in arb_carrier()) {
        let mut buf = Vec::new();
        carrier.encode_into(&mut buf);
        for cut in 0..buf.len() {
            prop_assert!(
                SpanCarrier::decode_from(&buf[..cut]).is_err(),
                "prefix of {} bytes decoded",
                cut
            );
        }
    }

    /// The decoder is total over arbitrary bytes, and anything it
    /// accepts re-encodes to exactly the consumed prefix (the codec has
    /// one canonical form).
    #[test]
    fn hostile_bytes_never_panic_and_accepts_are_canonical(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        match SpanCarrier::decode_from(&bytes) {
            Ok((carrier, used)) => {
                prop_assert!(used <= bytes.len());
                let mut re = Vec::new();
                carrier.encode_into(&mut re);
                prop_assert_eq!(re.as_slice(), &bytes[..used]);
            }
            Err(FabricError::Truncated { needed, have }) => {
                prop_assert!(have < needed);
                prop_assert_eq!(have, bytes.len());
            }
            Err(FabricError::BadTag { tag }) => {
                prop_assert_eq!(tag, bytes[16]);
                prop_assert!(tag > 1);
            }
        }
    }

    /// Cloning a payload shares the allocation; writing through one
    /// handle detaches it and never disturbs the others, regardless of
    /// the contents or the edit.
    #[test]
    fn payload_cow_isolates_writers(
        bytes in prop::collection::vec(any::<u8>(), 0..48),
        extra in any::<u8>(),
    ) {
        let original = Payload::from_vec(bytes.clone());
        let reader = original.clone();
        let mut writer = original.clone();
        prop_assert!(original.ptr_eq(&reader) && original.ptr_eq(&writer));
        prop_assert_eq!(original.handle_count(), 3);

        writer.to_mut().push(extra);
        prop_assert!(!original.ptr_eq(&writer), "write must detach");
        prop_assert!(original.ptr_eq(&reader), "readers keep sharing");
        prop_assert_eq!(original.as_slice(), bytes.as_slice());
        prop_assert_eq!(reader.as_slice(), bytes.as_slice());
        let mut expect = bytes.clone();
        expect.push(extra);
        prop_assert_eq!(writer.as_slice(), expect.as_slice());
        prop_assert_eq!(writer.into_vec(), expect);
    }

    /// Payload equality, ordering and hashing follow the bytes, not the
    /// allocation lineage.
    #[test]
    fn payload_compares_by_content(
        a in prop::collection::vec(any::<u8>(), 0..32),
        b in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let pa = Payload::from_slice(&a);
        let pb = Payload::from_slice(&b);
        prop_assert_eq!(pa == pb, a == b);
        prop_assert_eq!(pa.cmp(&pb), a.cmp(&b));
        prop_assert_eq!(pa.clone(), pa.clone());
    }

    /// A `SortedVecMap` driven by an arbitrary operation sequence holds
    /// exactly what a `BTreeMap` holds, in the same iteration order.
    #[test]
    fn sorted_vec_map_matches_btreemap(ops in prop::collection::vec(arb_map_op(), 0..64)) {
        let mut subject: SortedVecMap<u8, u16> = SortedVecMap::new();
        let mut model: BTreeMap<u8, u16> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(subject.insert(k, v), model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(subject.remove(&k), model.remove(&k));
                }
                MapOp::GetOrDefault(k, v) => {
                    let slot = subject.get_mut_or_default(k);
                    *slot = slot.wrapping_add(v);
                    let m = model.entry(k).or_default();
                    *m = m.wrapping_add(v);
                }
                MapOp::RetainEven => {
                    subject.retain(|k, _| k % 2 == 0);
                    model.retain(|k, _| k % 2 == 0);
                }
            }
            prop_assert_eq!(subject.len(), model.len());
        }
        let got: Vec<(u8, u16)> = subject.iter().map(|(&k, &v)| (k, v)).collect();
        let want: Vec<(u8, u16)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(
            subject.first_key_value().map(|(&k, &v)| (k, v)),
            model.first_key_value().map(|(&k, &v)| (k, v))
        );
        for k in 0..=u8::MAX {
            prop_assert_eq!(subject.get(&k), model.get(&k));
            prop_assert_eq!(subject.contains_key(&k), model.contains_key(&k));
        }
    }
}
