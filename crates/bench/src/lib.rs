#![warn(missing_docs)]

//! # cscw-bench — the benchmark harness
//!
//! One Criterion bench per derived experiment (`benches/experiments.rs`),
//! micro-benchmarks of the hot primitives (`benches/primitives.rs`), and
//! the `report` binary that regenerates every table for EXPERIMENTS.md:
//!
//! ```text
//! cargo run -p cscw-bench --bin report --release
//! cargo bench -p cscw-bench
//! ```

pub mod e13;

/// The default seed used by the report binary and benches, so published
/// numbers are reproducible.
pub const REPORT_SEED: u64 = 42;

/// Renders all experiment tables to a string (what `report` prints).
pub fn render_report() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for table in cscw_core::experiments::run_all(REPORT_SEED) {
        writeln!(out, "{table}").expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_renders_every_experiment() {
        let report = super::render_report();
        for id in ["[E1]", "[E4]", "[E8]", "[E12]"] {
            assert!(report.contains(id), "missing {id}");
        }
    }
}
