//! The E13 replicated-workspace workload, shared by the
//! `telemetry_report` and `fabric_deliver` binaries.
//!
//! E13's largest configuration: 8 replicas of a shared workspace over
//! the 15 ms WAN, each submitting 4 totally-ordered edits. The same
//! seeded sim is built with span telemetry either off (the baseline)
//! or on at every replica, so the two variants differ *only* in the
//! instrumentation — timing them against each other isolates the
//! telemetry overhead.

use odp_access::matrix::Subject;
use odp_access::rbac::{Effect, RoleId};
use odp_access::rights::Rights;

use cscw_core::replicated::{replica_actor, WsOp};
use cscw_core::workspace::{ObjectId, SharedWorkspace};

use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::GcMsg;
use odp_sim::net::{LinkSpec, Network, NodeId};
use odp_sim::prelude::{Sim, SimBuilder, Until};
use odp_sim::time::{SimDuration, SimTime};

/// E13's largest group size.
pub const REPLICAS: u32 = 8;

/// Concurrent edits submitted per replica.
pub const WRITES_EACH: u32 = 4;

fn configured_workspace(n: u32) -> SharedWorkspace {
    let mut ws = SharedWorkspace::new();
    ws.policy_mut()
        .add_rule(RoleId(1), "shared".into(), Rights::ALL, Effect::Allow);
    for i in 0..n {
        ws.policy_mut().assign(Subject(i), RoleId(1));
        ws.register_observer(NodeId(i), 0.0);
    }
    ws.create_artefact(ObjectId(1), "shared/1", "v0");
    ws
}

/// The E13 replicated-workspace sim, with span telemetry toggled on
/// every replica's group actor.
pub fn e13_sim(seed: u64, telemetry: bool) -> Sim<GcMsg<WsOp>> {
    let view = View::initial(GroupId(0), (0..REPLICAS).map(NodeId));
    let link = LinkSpec::wan(SimDuration::from_millis(15));
    let mut net = Network::new(link);
    net.set_default_link(link);
    let mut sim: Sim<GcMsg<WsOp>> = SimBuilder::new(seed).network(net).build();
    for i in 0..REPLICAS {
        let mut replica = replica_actor(NodeId(i), view.clone(), configured_workspace(REPLICAS));
        replica.set_telemetry(telemetry);
        sim.add_actor(NodeId(i), replica);
    }
    for i in 0..REPLICAS {
        for w in 0..WRITES_EACH {
            sim.inject(
                SimTime::from_millis(10 + w as u64 * 50),
                NodeId(i),
                NodeId(i),
                GcMsg::AppCmd(WsOp {
                    actor: i,
                    object: 1,
                    value: format!("edit-{i}-{w}"),
                }),
            );
        }
    }
    sim
}

/// Runs one variant once; returns the wall-clock nanoseconds of the
/// run and the finished sim (whose trace holds the spans when
/// `telemetry` is on).
pub fn run_once(seed: u64, telemetry: bool) -> (u128, Sim<GcMsg<WsOp>>) {
    let mut sim = e13_sim(seed, telemetry);
    let start = std::time::Instant::now(); // odp-check: allow(wallclock)
    sim.run(Until::For(SimDuration::from_secs(30)));
    (start.elapsed().as_nanos(), sim)
}

/// One interleaved overhead measurement: `iters` timed pairs
/// (telemetry off, telemetry on) with each variant's fastest run kept,
/// so frequency drift hits both variants equally and scheduler noise
/// is filtered by the min. Returns `(baseline_ns, instrumented_ns,
/// instrumented sim)` — the sim is the fastest instrumented run, ready
/// for span auditing.
pub fn measure_overhead(seed: u64, iters: u32) -> (u128, u128, Sim<GcMsg<WsOp>>) {
    // Warm-up round pages in code and allocator arenas.
    let (_, _) = run_once(seed, false);
    let (_, mut sim) = run_once(seed, true);
    let mut baseline_ns = u128::MAX;
    let mut instrumented_ns = u128::MAX;
    for _ in 0..iters {
        let (off_ns, _) = run_once(seed, false);
        baseline_ns = baseline_ns.min(off_ns);
        let (on_ns, on_sim) = run_once(seed, true);
        if on_ns < instrumented_ns {
            instrumented_ns = on_ns;
            sim = on_sim;
        }
    }
    (baseline_ns, instrumented_ns, sim)
}

/// The overhead percentage implied by a `(baseline, instrumented)`
/// pair.
pub fn overhead_pct(baseline_ns: u128, instrumented_ns: u128) -> f64 {
    if baseline_ns > 0 {
        (instrumented_ns as f64 - baseline_ns as f64) / baseline_ns as f64 * 100.0
    } else {
        f64::NAN
    }
}
