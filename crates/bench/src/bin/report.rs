//! Regenerates every table of the derived experiment suite (the
//! "evaluation section" of this reproduction) on the fixed report seed.

fn main() {
    println!(
        "cscw-odp derived experiment suite (seed {})",
        cscw_bench::REPORT_SEED
    );
    println!("================================================\n");
    print!("{}", cscw_bench::render_report());
}
