//! Campus-at-rush-hour scale bench for the calendar-queue DES core:
//! tens of thousands of scripted agents across federated domains all
//! hitting the infrastructure at once, and writes `BENCH_scale.json`.
//!
//! The workload models the paper's campus scenario at its least
//! charitable moment — start of the working day. Each of `DOMAINS`
//! federated domains hosts a trader, a shared-workspace service, and a
//! slice of the agent population. Every agent walks a pre-scheduled
//! agenda of minute-aligned slots (the whole day is enqueued at
//! arrival, so the scheduler carries the full rush in its pending set)
//! and each slot exercises the three cooperative actions the paper's
//! support environment must absorb at scale:
//!
//! - **awareness fan-out with presence leases** — publish presence to
//!   colleagues (one same-domain, one federated); every receipt
//!   cancels and re-arms the sender's lease timer, the classic
//!   failure-detector churn of an awareness service;
//! - **shared-workspace write with a pre-armed retry ladder** — append
//!   to the domain's active document with `RETRIES` retransmit timers
//!   scheduled up front; the ack cancels the whole ladder, so the
//!   scheduler reaps them as cancelled pops;
//! - **trader lookup** — resolve a service offer, every third slot,
//!   some federated to a remote domain.
//!
//! The cancel-heavy mix is deliberate: it drives the pending set to
//! millions of entries and makes the *scheduler* — not actor dispatch —
//! the bottleneck, which is exactly the regime the calendar queue
//! exists for.
//!
//! The bench climbs an agent-count ladder on the calendar queue,
//! reporting wall-clock events/sec and peak queue depth per rung, then
//! replays the acceptance rung on the pre-refactor engine
//! (`QueueKind::Legacy`: `BTreeMap` queue, map-indexed dispatch,
//! per-event allocation, string-keyed metrics) to report the speedup
//! ratio. Both runs are the *same* deterministic simulation — the
//! legacy replay is the recorded baseline the ratio is judged against,
//! and the bench asserts they processed identical event counts.
//!
//! Measured honestly: the calendar engine clears the rush at roughly
//! 1.5–2.5x the legacy engine's events/sec depending on the machine
//! (~1.8x on the reference box). The often-quoted order-of-magnitude
//! calendar-queue win presumes a baseline with O(n) or
//! pointer-chasing-heavy event sets; a `BTreeMap` keyed by `(time,
//! seq)` is already a cache-efficient B-tree, so at multi-million-event
//! depth both engines are memory-bound and the gap is set by DRAM
//! touches per event (~2 for the wheel vs ~6 for the tree), not by
//! asymptotics. DESIGN.md §10 carries the full component breakdown.
//!
//! ```text
//! cargo run -p cscw-bench --bin campus_rush_hour --release \
//!     [OUT.json] [--floor FLOOR.json] [--quick]
//! ```
//!
//! With `--floor`, the bench fails (exit 1) if the acceptance rung's
//! events/sec falls more than 20 % below the checked-in floor — the
//! CI regression gate. `--quick` runs only the acceptance rung.

use odp_sim::actor::{Actor, Ctx, TimerId};
use odp_sim::net::{LinkSpec, Network, NodeId};
use odp_sim::prelude::{ActorHandle, QueueKind, RunOutcome, Sim, SimBuilder, Until};
use odp_sim::time::SimDuration;

/// Federated domains on the campus.
const DOMAINS: u32 = 4;
/// Minute-aligned agenda slots each agent walks during the rush.
const AGENDA: u64 = 12;
/// Gap between agenda slots.
const SLOT_GAP_SECS: u64 = 60;
/// Presence fan-out per slot: one same-domain colleague, one federated.
const FANOUT: usize = 2;
/// Presence-lease timeout base (re-armed on every heartbeat received).
const LEASE_SECS: u64 = 150;
/// Retransmit timers pre-armed per workspace write; the ack cancels
/// them all. Sized so ladders from the whole rush stay pending at
/// once — the depth the scheduler must stay O(1) under.
const RETRIES: usize = 32;
/// Gap between rungs of one retry ladder.
const RETRY_GAP_SECS: u64 = 60;
/// A trader lookup fires every this-many agenda slots.
const LOOKUP_EVERY: u64 = 3;
/// Timer tag for presence-lease expiry.
const LEASE_TAG: u64 = u64::MAX;
/// Timer tag for a workspace-write retransmit slot.
const RETRY_TAG: u64 = u64::MAX - 1;
/// The agent-count ladder; the third rung is the acceptance rung.
const LADDER: [u32; 4] = [5_000, 10_000, 20_000, 40_000];
/// The rung the legacy baseline and the floor gate are judged at.
const ACCEPTANCE_AGENTS: u32 = 20_000;
/// Minimum calendar/legacy speedup the bench enforces. Measured
/// headroom on a dedicated core is ~1.8x (see DESIGN.md §10 for the
/// component breakdown and why the classic calendar-queue "order of
/// magnitude" does not apply against a B-tree baseline); the gate sits
/// below that so it trips on real regressions, not scheduler noise on
/// shared CI runners.
const MIN_RATIO: f64 = 1.2;

/// Wire protocol of the campus infrastructure.
#[derive(Debug, Clone)]
enum CampusMsg {
    /// Agent asks a trader to resolve a service offer.
    LookupReq { job: u32 },
    /// Trader resolution (hit or federated miss) back to the agent.
    LookupDone { job: u32 },
    /// Presence notification fanned out to colleagues.
    Presence { slot: u32 },
    /// Append to the domain's shared workspace.
    WsWrite { write_seq: u64, len: u32 },
    /// Workspace acknowledges the identified write.
    WsAck { write_seq: u64 },
}

/// Node-id layout: traders, then workspaces, then agents.
fn trader_of(domain: u32) -> NodeId {
    NodeId(domain)
}
fn workspace_of(domain: u32) -> NodeId {
    NodeId(DOMAINS + domain)
}
fn agent_node(i: u32) -> NodeId {
    NodeId(2 * DOMAINS + i)
}

/// The domain trader: resolves lookups immediately (the offer store is
/// warm at rush hour) and counts arrivals.
struct TraderDesk {
    resolved: u64,
}

impl Actor<CampusMsg> for TraderDesk {
    fn on_message(&mut self, ctx: &mut Ctx<'_, CampusMsg>, from: NodeId, msg: CampusMsg) {
        if let CampusMsg::LookupReq { job } = msg {
            self.resolved += 1;
            ctx.send(from, CampusMsg::LookupDone { job });
        }
    }
}

/// The domain's shared-workspace service: applies writes in arrival
/// order and acks each one.
struct Workspace {
    len: u64,
    writes: u64,
}

impl Actor<CampusMsg> for Workspace {
    fn on_message(&mut self, ctx: &mut Ctx<'_, CampusMsg>, from: NodeId, msg: CampusMsg) {
        if let CampusMsg::WsWrite { write_seq, len } = msg {
            self.len += u64::from(len);
            self.writes += 1;
            ctx.send(from, CampusMsg::WsAck { write_seq });
        }
    }
}

/// One scripted campus inhabitant.
struct AgentScript {
    index: u32,
    population: u32,
    slots_walked: u64,
    lookups_done: u64,
    acks: u64,
    presence_heard: u64,
    /// Leases fired without a renewing heartbeat — after the rush ends,
    /// exactly one per watched colleague.
    lease_timeouts: u64,
    /// Retransmit slots that fired before the ack — zero on a campus
    /// LAN.
    retries_fired: u64,
    writes_sent: u64,
    /// Active presence leases: `(colleague, armed timer)`.
    leases: Vec<(NodeId, TimerId)>,
    /// Pre-armed retry ladders by write sequence.
    ladders: Vec<(u64, Vec<TimerId>)>,
    /// XOR of every payload heard, so received fields are live state.
    checksum: u64,
}

impl AgentScript {
    fn domain(&self) -> u32 {
        self.index % DOMAINS
    }

    /// One same-domain colleague and one colleague in the next domain,
    /// so awareness traffic crosses the federation boundary too.
    fn peers(&self) -> [NodeId; FANOUT] {
        [
            agent_node((self.index + DOMAINS) % self.population),
            agent_node((self.index + 1) % self.population),
        ]
    }
}

impl Actor<CampusMsg> for AgentScript {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CampusMsg>) {
        // The whole agenda is enqueued at arrival — minute-aligned
        // slots shared by every agent, so the scheduler sees the rush
        // as it will happen: huge same-tick bursts over a deep horizon.
        for slot in 0..AGENDA {
            ctx.set_timer(SimDuration::from_secs(SLOT_GAP_SECS * (slot + 1)), slot);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, CampusMsg>, from: NodeId, msg: CampusMsg) {
        match msg {
            CampusMsg::LookupDone { job } => {
                self.lookups_done += 1;
                self.checksum ^= u64::from(job);
            }
            CampusMsg::WsAck { write_seq } => {
                self.acks += 1;
                // The write landed: reap the whole pre-armed ladder.
                if let Some(at) = self.ladders.iter().position(|(s, _)| *s == write_seq) {
                    let (_, ladder) = self.ladders.swap_remove(at);
                    for id in ladder {
                        ctx.cancel_timer(id);
                    }
                }
            }
            CampusMsg::Presence { slot } => {
                self.presence_heard += 1;
                self.checksum ^= u64::from(slot);
                // Failure-detector churn: every heartbeat cancels and
                // re-arms the sender's lease. Deadlines are rounded up
                // to the next whole second — coarse detector deadlines
                // keep expiries tick-aligned no matter how network
                // jitter scatters the heartbeat arrivals.
                let now_us = ctx.now().as_micros();
                let fire_us = (now_us + LEASE_SECS * 1_000_000).next_multiple_of(1_000_000);
                let id = ctx.set_timer(SimDuration::from_micros(fire_us - now_us), LEASE_TAG);
                if let Some(entry) = self.leases.iter_mut().find(|(peer, _)| *peer == from) {
                    ctx.cancel_timer(entry.1);
                    entry.1 = id;
                } else {
                    self.leases.push((from, id));
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, CampusMsg>, _timer: TimerId, tag: u64) {
        match tag {
            LEASE_TAG => self.lease_timeouts += 1,
            RETRY_TAG => self.retries_fired += 1,
            slot => {
                self.slots_walked += 1;
                let note = CampusMsg::Presence { slot: slot as u32 };
                for peer in self.peers() {
                    ctx.send(peer, note.clone());
                }
                let write_seq = u64::from(self.index) << 16 | slot;
                ctx.send_sized(
                    workspace_of(self.domain()),
                    CampusMsg::WsWrite {
                        write_seq,
                        len: 16 + self.index % 240,
                    },
                    512,
                );
                self.writes_sent += 1;
                // Pre-arm the retry ladder with per-rung backoff
                // jitter (decorrelated retries, the standard cure for
                // retry storms): the pending set holds millions of
                // scattered instants, the regime that separates the
                // queues.
                let ladder: Vec<TimerId> = (0..RETRIES)
                    .map(|j| {
                        let backoff = ctx.rng().jittered(
                            SimDuration::from_secs(RETRY_GAP_SECS * (j as u64 + 1)),
                            SimDuration::from_secs(3 * RETRY_GAP_SECS / 4),
                        );
                        ctx.set_timer(backoff, RETRY_TAG)
                    })
                    .collect();
                self.ladders.push((write_seq, ladder));
                if slot.is_multiple_of(LOOKUP_EVERY) {
                    // Every fourth lookup is federated to the next domain.
                    let domain = if slot.is_multiple_of(4 * LOOKUP_EVERY) {
                        (self.domain() + 1) % DOMAINS
                    } else {
                        self.domain()
                    };
                    ctx.send(
                        trader_of(domain),
                        CampusMsg::LookupReq {
                            job: self.index ^ slot as u32,
                        },
                    );
                }
            }
        }
    }
}

/// Builds the campus at the given population on the given queue.
fn campus(seed: u64, agents: u32, queue: QueueKind) -> Sim<CampusMsg> {
    // One campus LAN as the network default link: per-pair topology
    // would cost O(agents^2) link entries for identical specs.
    let mut net = Network::new(LinkSpec::lan());
    net.set_default_link(LinkSpec::lan());
    let mut sim: Sim<CampusMsg> = SimBuilder::new(seed)
        .network(net)
        .queue(queue)
        .telemetry(false)
        .max_events(200_000_000)
        .build();
    for d in 0..DOMAINS {
        sim.add_actor(trader_of(d), TraderDesk { resolved: 0 });
        sim.add_actor(workspace_of(d), Workspace { len: 0, writes: 0 });
    }
    for i in 0..agents {
        sim.add_actor(
            agent_node(i),
            AgentScript {
                index: i,
                population: agents,
                slots_walked: 0,
                lookups_done: 0,
                acks: 0,
                presence_heard: 0,
                lease_timeouts: 0,
                retries_fired: 0,
                writes_sent: 0,
                leases: Vec::new(),
                ladders: Vec::new(),
                checksum: 0,
            },
        );
    }
    sim
}

/// One timed rung: events/sec over the whole rush hour, the events
/// processed, peak queue depth, and the finished sim for auditing.
struct Rung {
    agents: u32,
    events: u64,
    wall_ns: u128,
    events_per_sec: f64,
    peak_pending: usize,
}

fn run_rung(seed: u64, agents: u32, queue: QueueKind) -> Rung {
    let mut sim = campus(seed, agents, queue);
    let start = std::time::Instant::now(); // odp-check: allow(wallclock)
    let outcome = sim.run(Until::Idle);
    let wall_ns = start.elapsed().as_nanos();
    assert_eq!(outcome, RunOutcome::Quiesced, "campus must drain");
    audit(&sim, agents);
    let events = sim.events_processed();
    Rung {
        agents,
        events,
        wall_ns,
        events_per_sec: events as f64 / (wall_ns as f64 / 1e9),
        peak_pending: sim.peak_pending(),
    }
}

/// Cross-checks the finished campus: every trader lookup was answered,
/// every workspace write acked with its retry ladder fully reaped,
/// and every presence lease eventually timed out exactly once per
/// watched colleague (LAN loss is zero, so the counts are exact).
fn audit(sim: &Sim<CampusMsg>, agents: u32) {
    let mut resolved = 0u64;
    let mut ws_writes = 0u64;
    for d in 0..DOMAINS {
        let t: &TraderDesk = sim.get(ActorHandle::of(trader_of(d))).expect("trader");
        resolved += t.resolved;
        let w: &Workspace = sim
            .get(ActorHandle::of(workspace_of(d)))
            .expect("workspace");
        ws_writes += w.writes;
    }
    let mut lookups_done = 0u64;
    let mut acks = 0u64;
    let mut timeouts = 0u64;
    for i in 0..agents {
        let a: &AgentScript = sim.get(ActorHandle::of(agent_node(i))).expect("agent");
        assert_eq!(a.slots_walked, AGENDA, "agent {i} missed agenda slots");
        assert_eq!(
            a.retries_fired, 0,
            "agent {i} saw a retry fire before its ack"
        );
        assert!(a.ladders.is_empty(), "agent {i} holds an unreaped ladder");
        lookups_done += a.lookups_done;
        acks += a.acks;
        timeouts += a.lease_timeouts;
    }
    assert_eq!(resolved, lookups_done, "unanswered trader lookups");
    assert_eq!(ws_writes, acks, "unacked workspace writes");
    assert_eq!(ws_writes, u64::from(agents) * AGENDA);
    let lookups_per_agent = (0..AGENDA)
        .filter(|s| s.is_multiple_of(LOOKUP_EVERY))
        .count() as u64;
    assert_eq!(resolved, u64::from(agents) * lookups_per_agent);
    // After the rush, the final lease per (watcher, colleague) pair
    // fires unrenewed: in-degree equals FANOUT for every agent.
    assert_eq!(timeouts, u64::from(agents) * FANOUT as u64);
}

/// Reads `{"events_per_sec_floor": N}` from the checked-in floor file
/// with a no-dependency scan.
fn read_floor(path: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("campus_rush_hour: cannot read floor {path}: {e}"));
    let key = "\"events_per_sec_floor\"";
    let at = text.find(key).expect("floor key missing") + key.len();
    let rest = text[at..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().expect("floor value unparsable")
}

fn main() {
    let mut out_path = "BENCH_scale.json".to_owned();
    let mut floor_path: Option<String> = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--floor" => floor_path = Some(args.next().expect("--floor needs a path")),
            "--quick" => quick = true,
            other => out_path = other.to_owned(),
        }
    }
    let seed = cscw_bench::REPORT_SEED;

    let ladder: Vec<u32> = if quick {
        vec![ACCEPTANCE_AGENTS]
    } else {
        LADDER.to_vec()
    };

    println!(
        "campus at rush hour (seed {seed}, {DOMAINS} domains, {AGENDA} agenda slots, \
         {RETRIES}-deep retry ladders):"
    );
    let mut rungs = Vec::new();
    for &agents in &ladder {
        let r = run_rung(seed, agents, QueueKind::Calendar);
        println!(
            "  {:>6} agents  {:>9} events  {:>7.1} ms  {:>12.0} events/sec  peak queue {}",
            r.agents,
            r.events,
            r.wall_ns as f64 / 1e6,
            r.events_per_sec,
            r.peak_pending,
        );
        rungs.push(r);
    }

    // The legacy baseline replay at the acceptance rung: the identical
    // deterministic run on the pre-refactor BTreeMap engine.
    let legacy = run_rung(seed, ACCEPTANCE_AGENTS, QueueKind::Legacy);
    let accepted = rungs
        .iter()
        .find(|r| r.agents == ACCEPTANCE_AGENTS)
        .expect("acceptance rung must be in the ladder");
    assert_eq!(
        legacy.events, accepted.events,
        "legacy and calendar runs diverged — determinism broken"
    );
    let ratio = accepted.events_per_sec / legacy.events_per_sec;
    println!(
        "  legacy baseline at {ACCEPTANCE_AGENTS} agents: {:>12.0} events/sec — calendar is {ratio:.1}x",
        legacy.events_per_sec,
    );
    if ratio < MIN_RATIO {
        eprintln!("campus_rush_hour: calendar/legacy ratio {ratio:.2} below required {MIN_RATIO}");
        std::process::exit(1);
    }

    // Max sustainable population: the largest rung that still clears
    // half the acceptance rung's throughput (i.e. scaling stays within
    // 2x of linear instead of collapsing).
    let max_sustainable = rungs
        .iter()
        .filter(|r| r.events_per_sec >= accepted.events_per_sec / 2.0)
        .map(|r| r.agents)
        .max()
        .unwrap_or(0);

    if let Some(fp) = &floor_path {
        let floor = read_floor(fp);
        if accepted.events_per_sec < floor * 0.8 {
            eprintln!(
                "campus_rush_hour: {:.0} events/sec regressed >20% below floor {floor:.0}",
                accepted.events_per_sec,
            );
            std::process::exit(1);
        }
        println!(
            "  floor check ok: {:.0} >= 0.8 * {floor:.0}",
            accepted.events_per_sec
        );
    }

    let rung_json: Vec<String> = rungs
        .iter()
        .map(|r| {
            format!(
                "{{\"agents\":{},\"events\":{},\"wall_ns\":{},\
                 \"events_per_sec\":{:.0},\"peak_pending\":{}}}",
                r.agents, r.events, r.wall_ns, r.events_per_sec, r.peak_pending,
            )
        })
        .collect();
    let json = format!(
        "{{\"workload\":\"campus-rush-hour\",\"seed\":{seed},\"domains\":{DOMAINS},\
         \"agenda_slots\":{AGENDA},\"retry_ladder\":{RETRIES},\"rungs\":[{}],\
         \"events_per_sec\":{:.0},\"peak_pending\":{},\
         \"legacy_events_per_sec\":{:.0},\"ratio_vs_legacy\":{ratio:.2},\
         \"max_sustainable_agents\":{max_sustainable}}}",
        rung_json.join(","),
        accepted.events_per_sec,
        accepted.peak_pending,
        legacy.events_per_sec,
    );
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("campus_rush_hour: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("  max sustainable population {max_sustainable} agents");
    println!("  wrote {out_path}");
}
