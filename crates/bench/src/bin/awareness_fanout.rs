//! Measures cooperation-event fan-out on the E13 workload and writes
//! `BENCH_awareness.json`.
//!
//! The workload is E13's largest configuration (8 replicas over the
//! 15 ms WAN, 4 broadcast edits each), published through [`BusActor`]
//! replicas twice on the report seed:
//!
//! - **direct** — an open bus (no policy, gate disarmed), which is by
//!   construction the pre-refactor direct-notice behaviour: every
//!   observer hears every event;
//! - **gated** — the rights-gated bus: six of the eight observers hold
//!   read rights on the shared artefact, two are suppressed with the
//!   `suppressed_by_rights` counter disclosed.
//!
//! Each variant is timed over several interleaved iterations and the
//! fastest run is kept, so the overhead figure reflects the rights
//! gate, not scheduler noise. A final instrumented gated run audits the
//! `aware.publish`/`aware.deliver` span DAG and the bench fails hard if
//! it is malformed.
//!
//! ```text
//! cargo run -p cscw-bench --bin awareness_fanout --release [OUT.json]
//! ```

use odp_access::matrix::Subject;
use odp_access::rbac::{Effect, RbacPolicy, RoleId};
use odp_access::rights::Rights;
use odp_awareness::bus::{CoopEvent, CoopKind, EventBus};
use odp_awareness::dist::{BusActor, BusWire};
use odp_awareness::events::ActivityKind;
use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::GcMsg;
use odp_sim::net::{LinkSpec, Network, NodeId};
use odp_sim::prelude::{ActorHandle, Sim, SimBuilder, Until};
use odp_sim::time::{SimDuration, SimTime};
use odp_telemetry::collector::Collector;
use odp_telemetry::report::json_string;

/// E13's largest group size.
const REPLICAS: u32 = 8;
/// Broadcast edits published per replica.
const WRITES_EACH: u32 = 4;
/// Observers holding read rights on the artefact (the first N nodes).
const READERS: u32 = 6;
/// The shared artefact every edit concerns.
const ARTEFACT: &str = "doc/plan";
/// Timed iterations per variant; the fastest is reported.
const ITERS: u32 = 30;

/// The scenario policy: nodes `0..READERS` may read `doc/*`.
fn reader_policy() -> RbacPolicy {
    let mut policy = RbacPolicy::new();
    policy.add_rule(RoleId(1), "doc".into(), Rights::READ, Effect::Allow);
    for i in 0..READERS {
        policy.assign(Subject(i), RoleId(1));
    }
    policy
}

fn replica_bus(gated: bool) -> EventBus {
    let mut bus = EventBus::new();
    if gated {
        bus.set_policy(reader_policy());
    }
    for i in 0..REPLICAS {
        bus.register(NodeId(i), 0.0);
    }
    bus
}

/// The E13-shaped fan-out sim: `REPLICAS` bus replicas over the 15 ms
/// WAN, each publishing `WRITES_EACH` broadcast edits.
fn fanout_sim(seed: u64, gated: bool, telemetry: bool) -> Sim<GcMsg<BusWire>> {
    let view = View::initial(GroupId(0), (0..REPLICAS).map(NodeId));
    let link = LinkSpec::wan(SimDuration::from_millis(15));
    let mut net = Network::new(link);
    net.set_default_link(link);
    let mut sim: Sim<GcMsg<BusWire>> = SimBuilder::new(seed).network(net).build();
    for i in 0..REPLICAS {
        let mut actor = BusActor::new(NodeId(i), view.clone(), replica_bus(gated));
        actor.set_telemetry(telemetry);
        sim.add_actor(NodeId(i), actor);
    }
    for i in 0..REPLICAS {
        for w in 0..WRITES_EACH {
            let at = SimTime::from_millis(10 + w as u64 * 50);
            sim.inject(
                at,
                NodeId(i),
                NodeId(i),
                GcMsg::AppCmd(BusWire::new(CoopEvent::broadcast(
                    NodeId(i),
                    ARTEFACT,
                    at,
                    CoopKind::Activity(ActivityKind::Edit),
                ))),
            );
        }
    }
    sim
}

/// Runs one variant once; returns the wall-clock nanoseconds of
/// `run_for` and the finished sim.
fn run_once(seed: u64, gated: bool, telemetry: bool) -> (u128, Sim<GcMsg<BusWire>>) {
    let mut sim = fanout_sim(seed, gated, telemetry);
    let start = std::time::Instant::now(); // odp-check: allow(wallclock)
    sim.run(Until::For(SimDuration::from_secs(30)));
    (start.elapsed().as_nanos(), sim)
}

/// Deliveries surfaced across all replicas, and the total publications
/// the rights gate suppressed.
fn fanout_counts(sim: &Sim<GcMsg<BusWire>>) -> (u64, u64) {
    let mut delivered = 0u64;
    let mut suppressed = 0u64;
    for i in 0..REPLICAS {
        let actor: &BusActor = sim
            .get(ActorHandle::of(NodeId(i)))
            .expect("bus replica exists");
        delivered += actor.delivered().len() as u64;
        suppressed += actor.bus().suppressed_by_rights();
    }
    (delivered, suppressed)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_awareness.json".to_owned());
    let seed = cscw_bench::REPORT_SEED;

    // Warm-up round, then interleave the variants so frequency drift
    // hits both equally; keep each variant's fastest run.
    let (_, direct_sim) = run_once(seed, false, false);
    let (_, gated_sim) = run_once(seed, true, false);
    let mut direct_ns = u128::MAX;
    let mut gated_ns = u128::MAX;
    for _ in 0..ITERS {
        let (off_ns, _) = run_once(seed, false, false);
        direct_ns = direct_ns.min(off_ns);
        let (on_ns, _) = run_once(seed, true, false);
        gated_ns = gated_ns.min(on_ns);
    }
    let (direct_deliveries, direct_suppressed) = fanout_counts(&direct_sim);
    let (gated_deliveries, gated_suppressed) = fanout_counts(&gated_sim);

    // One instrumented gated run: the aware.publish/aware.deliver span
    // DAG must be well-formed, with one publish root per publication
    // and one deliver leaf per surfaced grant.
    let (_, audited) = run_once(seed, true, true);
    let collector = Collector::from_trace(audited.trace());
    if let Err(e) = collector.well_formed() {
        eprintln!("awareness_fanout: span audit failed: {e}");
        std::process::exit(1);
    }
    let (mut publish_spans, mut deliver_spans) = (0u64, 0u64);
    for (_, dag) in collector.traces() {
        for span in dag.spans() {
            match span.kind.as_str() {
                "aware.publish" => publish_spans += 1,
                "aware.deliver" => deliver_spans += 1,
                _ => {}
            }
        }
    }
    let publications = u64::from(REPLICAS * WRITES_EACH);
    if publish_spans != publications || deliver_spans != gated_deliveries {
        eprintln!(
            "awareness_fanout: span census disagrees with the bus: \
             {publish_spans}/{publications} publish, \
             {deliver_spans}/{gated_deliveries} deliver"
        );
        std::process::exit(1);
    }

    let overhead_pct = if direct_ns > 0 {
        (gated_ns as f64 - direct_ns as f64) / direct_ns as f64 * 100.0
    } else {
        f64::NAN
    };

    let json = format!(
        "{{\"workload\":{},\"replicas\":{REPLICAS},\"writes_each\":{WRITES_EACH},\
         \"readers\":{READERS},\"iters\":{ITERS},\"publications\":{publications},\
         \"direct_ns\":{direct_ns},\"gated_ns\":{gated_ns},\
         \"overhead_pct\":{overhead_pct:.3},\
         \"direct_deliveries\":{direct_deliveries},\
         \"direct_suppressed\":{direct_suppressed},\
         \"gated_deliveries\":{gated_deliveries},\
         \"suppressed_by_rights\":{gated_suppressed},\
         \"publish_spans\":{publish_spans},\"deliver_spans\":{deliver_spans}}}",
        json_string("e13-awareness-fanout"),
    );
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("awareness_fanout: cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    println!("awareness fan-out on E13 (seed {seed}, best of {ITERS}):");
    println!("  direct  {direct_ns:>12} ns  {direct_deliveries} deliveries");
    println!(
        "  gated   {gated_ns:>12} ns  {gated_deliveries} deliveries, \
         {gated_suppressed} suppressed by rights"
    );
    println!("  gate overhead {overhead_pct:>8.3} %");
    println!("  wrote {out_path}");
}
