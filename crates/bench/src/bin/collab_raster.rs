//! Runs the `collab_raster` placement workload with the controller's
//! policy loop off and on, and writes `BENCH_placement.json`.
//!
//! Both arms execute the identical two-phase schedule on the report
//! seed: island-A editors pan the canvas over the LAN, then the view
//! changes and island-B editors repeat the panning across the WAN.
//! The measured quantity is the virtual-time critical-path latency of
//! every phase-2 tile access (root spans of kind
//! `tile.access.c*` opened at or after the phase boundary). With the
//! controller off, every phase-2 access pays a WAN round trip forever;
//! with it on, the telemetry loop should notice the access locus
//! moved, migrate the hot tiles to island B, and cut the tail of
//! phase 2 down to LAN round trips.
//!
//! The process exits non-zero — failing the CI gate — if the
//! controller-on arm migrated nothing, if its mean critical path is
//! not at least [`MIN_IMPROVEMENT`]× shorter than the baseline's, or
//! if either arm's span log fails the telemetry audit.
//!
//! ```text
//! cargo run -p cscw-bench --bin collab_raster --release [OUT.json]
//! ```

use odp_net::sim_host::SimHost;
use odp_place::controller::{PlacementActor, ACCESS_KIND_PREFIX};
use odp_place::scenario::{collab_raster, RasterConfig, RasterScenario};
use odp_sim::sim::{ActorHandle, Until};
use odp_telemetry::collector::Collector;
use odp_telemetry::report::json_string;

/// The controller-on arm must shorten the mean phase-2 critical path
/// by at least this factor. The workload's WAN round trip is ~40× the
/// LAN one and a healthy controller converts most of phase 2 to LAN
/// trips (~2.8× on the report seed, pre-migration WAN accesses
/// included); a controller that migrates late, thrashes, or freezes
/// writers for too long falls under the bound.
const MIN_IMPROVEMENT: f64 = 1.5;

/// One arm's measured outcome.
struct Arm {
    /// Phase-2 critical-path latencies, microseconds, sorted.
    lat_us: Vec<u64>,
    /// Committed migrations.
    migrations: usize,
    /// Migration decisions taken (committed or aborted).
    decisions: usize,
    /// Writes refused (and retried) during freeze windows.
    refused: u64,
    /// Editor ops skipped by the one-outstanding-per-tile rule.
    skipped: u64,
}

impl Arm {
    fn mean_us(&self) -> f64 {
        if self.lat_us.is_empty() {
            return f64::NAN;
        }
        self.lat_us.iter().sum::<u64>() as f64 / self.lat_us.len() as f64
    }

    fn p95_us(&self) -> u64 {
        if self.lat_us.is_empty() {
            return 0;
        }
        let idx = (self.lat_us.len() * 95).div_ceil(100).saturating_sub(1);
        self.lat_us[idx.min(self.lat_us.len() - 1)]
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"samples\":{},\"mean_us\":{:.1},\"p95_us\":{},\"migrations\":{},\
             \"decisions\":{},\"writes_refused\":{},\"ops_skipped\":{}}}",
            self.lat_us.len(),
            self.mean_us(),
            self.p95_us(),
            self.migrations,
            self.decisions,
            self.refused,
            self.skipped,
        )
    }
}

fn bench_config(controller_on: bool) -> RasterConfig {
    RasterConfig {
        seed: cscw_bench::REPORT_SEED,
        controller_on,
        // Longer phases than the scenario default: the controller
        // needs a few telemetry rounds plus the transfers themselves
        // before phase 2 goes local, and the benchmark should measure
        // the steady state it buys, not just the switchover.
        phase_ops: 160,
        ..RasterConfig::default()
    }
}

/// Runs one arm to quiescence and extracts its metrics.
fn run_arm(controller_on: bool) -> Arm {
    let cfg = bench_config(controller_on);
    let (mut sim, sc) = collab_raster(&cfg);
    sim.run(Until::Idle);
    if sim.trace().dropped() > 0 {
        eprintln!("collab_raster: trace ring overflowed; metrics would lie");
        std::process::exit(1);
    }

    let collector = Collector::from_trace(sim.trace());
    if let Err(e) = collector.well_formed() {
        eprintln!("collab_raster: span audit failed (controller_on={controller_on}): {e}");
        std::process::exit(1);
    }

    let mut lat_us = Vec::new();
    for (_, dag) in collector.traces() {
        let path = dag.critical_path();
        let (Some(root), Some(tail)) = (path.first(), path.last()) else {
            continue;
        };
        if !root.kind.starts_with(ACCESS_KIND_PREFIX) || root.opened < sc.phase2_start {
            continue;
        }
        let closed = tail.closed.unwrap_or(root.opened);
        lat_us.push(closed.saturating_since(root.opened).as_micros());
    }
    lat_us.sort_unstable();

    let ctl = sim
        .get::<SimHost<PlacementActor>>(ActorHandle::of(sc.controller))
        .expect("controller actor")
        .inner();
    let (refused, skipped) = editor_totals(&sim, &sc);
    Arm {
        lat_us,
        migrations: ctl.migrations().len(),
        decisions: ctl.decisions().len(),
        refused,
        skipped,
    }
}

fn editor_totals(
    sim: &odp_sim::sim::Sim<odp_place::wire::PlaceWire>,
    sc: &RasterScenario,
) -> (u64, u64) {
    let mut refused = 0;
    let mut skipped = 0;
    for &e in sc.editors_a.iter().chain(&sc.editors_b) {
        let ed = sim
            .get::<SimHost<odp_place::scenario::EditorActor>>(ActorHandle::of(e))
            .expect("editor actor")
            .inner();
        refused += ed.refusals();
        skipped += ed.skipped();
    }
    (refused, skipped)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_placement.json".to_owned());
    let cfg = bench_config(true);

    let off = run_arm(false);
    let on = run_arm(true);

    if off.migrations != 0 {
        eprintln!("collab_raster: baseline arm migrated — arms are not comparable");
        std::process::exit(1);
    }
    if on.migrations == 0 {
        eprintln!("collab_raster: controller-on arm committed no migrations");
        std::process::exit(1);
    }
    if off.lat_us.is_empty() || on.lat_us.is_empty() {
        eprintln!("collab_raster: an arm produced no phase-2 access spans");
        std::process::exit(1);
    }

    let improvement = off.mean_us() / on.mean_us();
    let json = format!(
        "{{\"workload\":{},\"seed\":{},\"tiles\":{},\"editors_per_island\":{},\
         \"phase_ops\":{},\"wan_ms\":{},\"off\":{},\"on\":{},\
         \"improvement_ratio\":{improvement:.3},\"min_improvement_ratio\":{MIN_IMPROVEMENT}}}",
        json_string("collab-raster"),
        cfg.seed,
        cfg.tiles,
        cfg.editors_per_island,
        cfg.phase_ops,
        cfg.wan.as_millis(),
        off.to_json(),
        on.to_json(),
    );
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("collab_raster: cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    println!(
        "phase-2 critical paths on collab-raster (seed {}):",
        cfg.seed
    );
    println!(
        "  controller off  mean {:>10.1} us  p95 {:>8} us  ({} accesses)",
        off.mean_us(),
        off.p95_us(),
        off.lat_us.len()
    );
    println!(
        "  controller on   mean {:>10.1} us  p95 {:>8} us  ({} accesses, {} migrations, {} refused writes)",
        on.mean_us(),
        on.p95_us(),
        on.lat_us.len(),
        on.migrations,
        on.refused
    );
    println!("  improvement     {improvement:>10.2} x  (gate: >= {MIN_IMPROVEMENT})");
    println!("  wrote {out_path}");

    if improvement.is_nan() || improvement < MIN_IMPROVEMENT {
        eprintln!("collab_raster: improvement {improvement:.3}x below the {MIN_IMPROVEMENT}x gate");
        std::process::exit(1);
    }
}
