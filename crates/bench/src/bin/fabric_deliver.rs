//! Delivery hot-path bench for the `odp-fabric` envelope layer, and
//! the CI gate on its two acceptance numbers: writes
//! `BENCH_fabric.json`.
//!
//! Two measurements, one per claim the fabric makes:
//!
//! - **ns/delivery fan-out microbench** — a 32-member group under
//!   FIFO/best-effort multicast where the sender multicasts 4 KiB
//!   payloads and every peer engine processes the wire message. The
//!   same loop runs over `GroupEngine<Vec<u8>>` (the pre-fabric typed
//!   baseline, where each per-peer envelope clone deep-copies the
//!   payload) and over `GroupEngine<Payload>` (where a clone is a
//!   reference-count bump). Both variants must deliver identical
//!   counts and byte checksums — a built-in differential — and the
//!   fabric figure is gated against the checked-in floor.
//!
//! - **E13 telemetry overhead** — the shared [`cscw_bench::e13`]
//!   workload, timed instrumented-vs-baseline. The binary `SpanCarrier`
//!   replaced the old `trace:span:parent:kind` hex-string span
//!   payloads, which is what brought this from ~9.8 % at the seed to
//!   under 2 %. Single measurements of a ~2 ms workload are noisy
//!   (observed spread is a few points either way), so the gate takes
//!   the *minimum* over several interleaved best-of rounds — upward
//!   noise cannot produce a false pass on the minimum, only mask a
//!   real regression behind even more noise, and a real regression
//!   (like reverting to string spans) shifts every round.
//!
//! ```text
//! cargo run -p cscw-bench --bin fabric_deliver --release \
//!     [OUT.json] [--floor FLOOR.json]
//! ```
//!
//! With `--floor`, the bench fails (exit 1) if the fabric ns/delivery
//! rises more than 50 % above the checked-in floor — generous headroom
//! for shared CI runners; the typed baseline runs ~4x slower, so the
//! gate still trips well before the zero-copy win is lost. The
//! telemetry gate (overhead < 2 %) is always on.

use odp_fabric::Payload;
use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::{GroupEngine, Ordering, Reliability};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;

use cscw_bench::e13;

/// Group size of the fan-out microbench (1 sender + 31 peers).
const GROUP: u32 = 32;
/// Payload size per multicast — large enough that a deep copy is
/// visible against the envelope bookkeeping.
const PAYLOAD_BYTES: usize = 4096;
/// Multicasts per timed round.
const MCASTS: u64 = 1000;
/// Timed rounds per variant, interleaved; the fastest is reported.
const ROUNDS: u32 = 7;
/// Interleaved E13 iterations per overhead round.
const E13_ITERS: u32 = 20;
/// Overhead rounds; the minimum across rounds is gated.
const E13_ROUNDS: u32 = 5;
/// The telemetry overhead ceiling, in percent.
const MAX_OVERHEAD_PCT: f64 = 2.0;
/// How far above the checked-in floor the fabric ns/delivery may
/// drift before the gate trips.
const FLOOR_HEADROOM: f64 = 1.5;

/// One timed fan-out round: total wall nanoseconds, deliveries
/// observed, and a byte checksum proving the variants saw the same
/// payloads.
struct FanoutRun {
    wall_ns: u128,
    deliveries: u64,
    checksum: u64,
}

/// Runs `MCASTS` multicasts from node 0 through a full set of peer
/// engines, timing the mcast fan-out plus every peer's `on_message`.
/// `bytes` projects a payload back to its bytes so the checksum (and
/// thus the loop) stays live under optimization.
fn fanout_round<P: Clone>(make: &dyn Fn(u64) -> P, bytes: &dyn Fn(&P) -> &[u8]) -> FanoutRun {
    let nodes: Vec<NodeId> = (0..GROUP).map(NodeId).collect();
    let view = View::initial(GroupId(0), nodes.iter().copied());
    let mut sender = GroupEngine::new(
        NodeId(0),
        view.clone(),
        Ordering::Fifo,
        Reliability::BestEffort,
    );
    let mut receivers: Vec<GroupEngine<P>> = (1..GROUP)
        .map(|n| {
            GroupEngine::new(
                NodeId(n),
                view.clone(),
                Ordering::Fifo,
                Reliability::BestEffort,
            )
        })
        .collect();
    // Payloads are built outside the timed loop: construction cost is
    // identical across variants; the loop times fan-out and delivery.
    let mut payloads: Vec<P> = (0..MCASTS).map(make).collect();
    payloads.reverse();

    let mut deliveries = 0u64;
    let mut checksum = 0u64;
    let now = SimTime::ZERO;
    let start = std::time::Instant::now(); // odp-check: allow(wallclock)
    while let Some(payload) = payloads.pop() {
        let step = sender.mcast(payload, now);
        for d in &step.delivered {
            deliveries += 1;
            let b = bytes(&d.payload);
            checksum = checksum
                .wrapping_mul(31)
                .wrapping_add(u64::from(b[0]) ^ b.len() as u64);
        }
        for (to, msg) in step.outbound {
            let got = receivers[to.0 as usize - 1].on_message(NodeId(0), msg, now);
            for d in &got.delivered {
                deliveries += 1;
                let b = bytes(&d.payload);
                checksum = checksum
                    .wrapping_mul(31)
                    .wrapping_add(u64::from(b[0]) ^ b.len() as u64);
            }
        }
    }
    FanoutRun {
        wall_ns: start.elapsed().as_nanos(),
        deliveries,
        checksum,
    }
}

/// A deterministic 4 KiB payload for multicast `i`.
fn payload_bytes(i: u64) -> Vec<u8> {
    let mut v = vec![(i % 251) as u8; PAYLOAD_BYTES];
    v[..8].copy_from_slice(&i.to_be_bytes());
    v
}

/// Best-of-`ROUNDS` ns/delivery for both variants, interleaved so
/// frequency drift hits them equally. Returns `(typed, fabric)` runs.
fn fanout_best() -> (FanoutRun, FanoutRun) {
    let typed_round = || fanout_round::<Vec<u8>>(&payload_bytes, &|p| p.as_slice());
    let fabric_round =
        || fanout_round::<Payload>(&|i| Payload::from_vec(payload_bytes(i)), &|p| p.as_slice());
    // Warm-up pages in both code paths.
    let mut typed = typed_round();
    let mut fabric = fabric_round();
    for _ in 0..ROUNDS {
        let t = typed_round();
        assert_eq!(t.deliveries, typed.deliveries);
        assert_eq!(t.checksum, typed.checksum);
        if t.wall_ns < typed.wall_ns {
            typed = t;
        }
        let f = fabric_round();
        assert_eq!(f.deliveries, fabric.deliveries);
        assert_eq!(f.checksum, fabric.checksum);
        if f.wall_ns < fabric.wall_ns {
            fabric = f;
        }
    }
    (typed, fabric)
}

/// Reads `{"ns_per_delivery_floor": N}` from the checked-in floor file
/// with a no-dependency scan.
fn read_floor(path: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("fabric_deliver: cannot read floor {path}: {e}"));
    let key = "\"ns_per_delivery_floor\"";
    let at = text.find(key).expect("floor key missing") + key.len();
    let rest = text[at..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().expect("floor value unparsable")
}

fn main() {
    let mut out_path = "BENCH_fabric.json".to_owned();
    let mut floor_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--floor" => floor_path = Some(args.next().expect("--floor needs a path")),
            other => out_path = other.to_owned(),
        }
    }
    let seed = cscw_bench::REPORT_SEED;

    // --- ns/delivery fan-out differential ---------------------------------
    let (typed, fabric) = fanout_best();
    assert_eq!(
        typed.deliveries, fabric.deliveries,
        "typed and fabric fan-outs must deliver identically"
    );
    assert_eq!(
        typed.checksum, fabric.checksum,
        "typed and fabric fan-outs must deliver the same bytes"
    );
    assert_eq!(typed.deliveries, MCASTS * u64::from(GROUP));
    let typed_ns = typed.wall_ns as f64 / typed.deliveries as f64;
    let fabric_ns = fabric.wall_ns as f64 / fabric.deliveries as f64;
    let speedup = typed_ns / fabric_ns;
    println!(
        "fan-out over {GROUP} members, {PAYLOAD_BYTES} B payloads, {MCASTS} mcasts \
         (best of {ROUNDS}):"
    );
    println!("  typed  GroupEngine<Vec<u8>>  {typed_ns:>8.1} ns/delivery");
    println!("  fabric GroupEngine<Payload>  {fabric_ns:>8.1} ns/delivery  ({speedup:.2}x)");

    // --- E13 telemetry overhead, min over rounds --------------------------
    let mut e13_rounds: Vec<f64> = Vec::new();
    let mut best = f64::INFINITY;
    let mut best_pair = (0u128, 0u128);
    for _ in 0..E13_ROUNDS {
        let (base, instr, _) = e13::measure_overhead(seed, E13_ITERS);
        let pct = e13::overhead_pct(base, instr);
        if pct < best {
            best = pct;
            best_pair = (base, instr);
        }
        e13_rounds.push(pct);
    }
    let rounds_str: Vec<String> = e13_rounds.iter().map(|p| format!("{p:.3}")).collect();
    println!(
        "telemetry overhead on E13 (seed {seed}, min of {E13_ROUNDS} rounds x best-of-{E13_ITERS}):"
    );
    println!("  rounds   [{} ] %", rounds_str.join(", "));
    println!("  overhead {best:>7.3} %  (gate < {MAX_OVERHEAD_PCT} %)");

    // --- gates -------------------------------------------------------------
    let mut failed = false;
    if best >= MAX_OVERHEAD_PCT || best.is_nan() {
        eprintln!(
            "fabric_deliver: E13 telemetry overhead {best:.3}% breaches the \
             {MAX_OVERHEAD_PCT}% ceiling"
        );
        failed = true;
    }
    if let Some(fp) = &floor_path {
        let floor = read_floor(fp);
        if fabric_ns > floor * FLOOR_HEADROOM {
            eprintln!(
                "fabric_deliver: {fabric_ns:.1} ns/delivery regressed >{:.0}% above \
                 floor {floor:.1}",
                (FLOOR_HEADROOM - 1.0) * 100.0
            );
            failed = true;
        } else {
            println!("  floor check ok: {fabric_ns:.1} <= {FLOOR_HEADROOM} * {floor:.1}");
        }
    }

    let json = format!(
        "{{\"workload\":\"fabric-deliver\",\"seed\":{seed},\"group\":{GROUP},\
         \"payload_bytes\":{PAYLOAD_BYTES},\"mcasts\":{MCASTS},\"rounds\":{ROUNDS},\
         \"deliveries\":{},\"typed_ns_per_delivery\":{typed_ns:.1},\
         \"fabric_ns_per_delivery\":{fabric_ns:.1},\"speedup\":{speedup:.2},\
         \"e13_overhead_pct\":{best:.3},\"e13_rounds\":[{}],\
         \"e13_baseline_ns\":{},\"e13_instrumented_ns\":{}}}",
        typed.deliveries,
        rounds_str.join(","),
        best_pair.0,
        best_pair.1,
    );
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("fabric_deliver: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("  wrote {out_path}");
    if failed {
        std::process::exit(1);
    }
}
