//! Measures the telemetry subsystem's overhead on the E13
//! replicated-workspace workload and writes `BENCH_telemetry.json`.
//!
//! The workload is E13's largest configuration (8 replicas over the
//! 15 ms WAN, 4 totally-ordered edits each) run twice on the report
//! seed: once with span telemetry off (the seeded baseline) and once
//! with every replica's `set_telemetry(true)`. Each variant is timed
//! over several iterations and the fastest run is kept, so the
//! overhead figure reflects the instrumentation, not scheduler noise.
//! The instrumented run's trace is then assembled into a
//! [`Collector`], audited, and aggregated into the machine-readable
//! [`TelemetryReport`] embedded in the JSON.
//!
//! The workload itself lives in [`cscw_bench::e13`], shared with the
//! `fabric_deliver` bench that gates the overhead in CI.
//!
//! ```text
//! cargo run -p cscw-bench --bin telemetry_report --release [OUT.json]
//! ```

use cscw_bench::e13::{self, REPLICAS, WRITES_EACH};
use odp_telemetry::collector::Collector;
use odp_telemetry::report::{json_string, TelemetryReport};

/// Timed iterations per variant; the fastest is reported. The
/// workload simulates in ~2 ms, so a generous iteration count (plus
/// interleaving the two variants) is what keeps scheduler noise out
/// of the overhead figure.
const ITERS: u32 = 30;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_telemetry.json".to_owned());
    let seed = cscw_bench::REPORT_SEED;

    let (baseline_ns, instrumented_ns, sim) = e13::measure_overhead(seed, ITERS);

    let collector = Collector::from_trace(sim.trace());
    if let Err(e) = collector.well_formed() {
        eprintln!("telemetry_report: span audit failed: {e}");
        std::process::exit(1);
    }
    let report = TelemetryReport::from_collector(seed, &collector, sim.trace().dropped());

    let overhead_pct = e13::overhead_pct(baseline_ns, instrumented_ns);

    let json = format!(
        "{{\"workload\":{},\"replicas\":{REPLICAS},\"writes_each\":{WRITES_EACH},\
         \"iters\":{ITERS},\"baseline_ns\":{baseline_ns},\
         \"instrumented_ns\":{instrumented_ns},\"overhead_pct\":{overhead_pct:.3},\
         \"report\":{}}}",
        json_string("e13-replicated-workspace"),
        report.to_json(),
    );
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("telemetry_report: cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    println!("telemetry overhead on E13 (seed {seed}, best of {ITERS}):");
    println!("  baseline     {:>12} ns", baseline_ns);
    println!("  instrumented {:>12} ns", instrumented_ns);
    println!(
        "  overhead     {overhead_pct:>11.3} %  ({} spans, {} traces, {} unclosed)",
        report.spans, report.traces, report.unclosed
    );
    println!("  wrote {out_path}");
}
