//! Measures the telemetry subsystem's overhead on the E13
//! replicated-workspace workload and writes `BENCH_telemetry.json`.
//!
//! The workload is E13's largest configuration (8 replicas over the
//! 15 ms WAN, 4 totally-ordered edits each) run twice on the report
//! seed: once with span telemetry off (the seeded baseline) and once
//! with every replica's `set_telemetry(true)`. Each variant is timed
//! over several iterations and the fastest run is kept, so the
//! overhead figure reflects the instrumentation, not scheduler noise.
//! The instrumented run's trace is then assembled into a
//! [`Collector`], audited, and aggregated into the machine-readable
//! [`TelemetryReport`] embedded in the JSON.
//!
//! ```text
//! cargo run -p cscw-bench --bin telemetry_report --release [OUT.json]
//! ```

use odp_access::matrix::Subject;
use odp_access::rbac::{Effect, RoleId};
use odp_access::rights::Rights;

use cscw_core::replicated::{replica_actor, WsOp};
use cscw_core::workspace::{ObjectId, SharedWorkspace};

use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::GcMsg;
use odp_sim::net::{LinkSpec, Network, NodeId};
use odp_sim::prelude::{Sim, SimBuilder, Until};
use odp_sim::time::{SimDuration, SimTime};
use odp_telemetry::collector::Collector;
use odp_telemetry::report::{json_string, TelemetryReport};

/// E13's largest group size.
const REPLICAS: u32 = 8;
/// Concurrent edits submitted per replica.
const WRITES_EACH: u32 = 4;
/// Timed iterations per variant; the fastest is reported. The
/// workload simulates in ~2 ms, so a generous iteration count (plus
/// interleaving the two variants) is what keeps scheduler noise out
/// of the overhead figure.
const ITERS: u32 = 30;

fn configured_workspace(n: u32) -> SharedWorkspace {
    let mut ws = SharedWorkspace::new();
    ws.policy_mut()
        .add_rule(RoleId(1), "shared".into(), Rights::ALL, Effect::Allow);
    for i in 0..n {
        ws.policy_mut().assign(Subject(i), RoleId(1));
        ws.register_observer(NodeId(i), 0.0);
    }
    ws.create_artefact(ObjectId(1), "shared/1", "v0");
    ws
}

/// The E13 replicated-workspace sim, with span telemetry toggled on
/// every replica's group actor.
fn e13_sim(seed: u64, telemetry: bool) -> Sim<GcMsg<WsOp>> {
    let view = View::initial(GroupId(0), (0..REPLICAS).map(NodeId));
    let link = LinkSpec::wan(SimDuration::from_millis(15));
    let mut net = Network::new(link);
    net.set_default_link(link);
    let mut sim: Sim<GcMsg<WsOp>> = SimBuilder::new(seed).network(net).build();
    for i in 0..REPLICAS {
        let mut replica = replica_actor(NodeId(i), view.clone(), configured_workspace(REPLICAS));
        replica.set_telemetry(telemetry);
        sim.add_actor(NodeId(i), replica);
    }
    for i in 0..REPLICAS {
        for w in 0..WRITES_EACH {
            sim.inject(
                SimTime::from_millis(10 + w as u64 * 50),
                NodeId(i),
                NodeId(i),
                GcMsg::AppCmd(WsOp {
                    actor: i,
                    object: 1,
                    value: format!("edit-{i}-{w}"),
                }),
            );
        }
    }
    sim
}

/// Runs one variant once; returns the wall-clock nanoseconds of
/// `run_for` and the finished sim.
fn run_once(seed: u64, telemetry: bool) -> (u128, Sim<GcMsg<WsOp>>) {
    let mut sim = e13_sim(seed, telemetry);
    let start = std::time::Instant::now(); // odp-check: allow(wallclock)
    sim.run(Until::For(SimDuration::from_secs(30)));
    (start.elapsed().as_nanos(), sim)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_telemetry.json".to_owned());
    let seed = cscw_bench::REPORT_SEED;

    // Warm-up round (page in code and allocator arenas), then
    // interleave the variants so frequency drift hits both equally;
    // keep each variant's fastest run.
    let (_, _) = run_once(seed, false);
    let (_, mut sim) = run_once(seed, true);
    let mut baseline_ns = u128::MAX;
    let mut instrumented_ns = u128::MAX;
    for _ in 0..ITERS {
        let (off_ns, _) = run_once(seed, false);
        baseline_ns = baseline_ns.min(off_ns);
        let (on_ns, on_sim) = run_once(seed, true);
        if on_ns < instrumented_ns {
            instrumented_ns = on_ns;
            sim = on_sim;
        }
    }

    let collector = Collector::from_trace(sim.trace());
    if let Err(e) = collector.well_formed() {
        eprintln!("telemetry_report: span audit failed: {e}");
        std::process::exit(1);
    }
    let report = TelemetryReport::from_collector(seed, &collector, sim.trace().dropped());

    let overhead_pct = if baseline_ns > 0 {
        (instrumented_ns as f64 - baseline_ns as f64) / baseline_ns as f64 * 100.0
    } else {
        f64::NAN
    };

    let json = format!(
        "{{\"workload\":{},\"replicas\":{REPLICAS},\"writes_each\":{WRITES_EACH},\
         \"iters\":{ITERS},\"baseline_ns\":{baseline_ns},\
         \"instrumented_ns\":{instrumented_ns},\"overhead_pct\":{overhead_pct:.3},\
         \"report\":{}}}",
        json_string("e13-replicated-workspace"),
        report.to_json(),
    );
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("telemetry_report: cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    println!("telemetry overhead on E13 (seed {seed}, best of {ITERS}):");
    println!("  baseline     {:>12} ns", baseline_ns);
    println!("  instrumented {:>12} ns", instrumented_ns);
    println!(
        "  overhead     {overhead_pct:>11.3} %  ({} spans, {} traces, {} unclosed)",
        report.spans, report.traces, report.unclosed
    );
    println!("  wrote {out_path}");
}
