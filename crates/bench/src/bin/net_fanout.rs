//! Measures the awareness fan-out workload on both `odp-net` backends
//! and writes `BENCH_net.json`.
//!
//! The same fleet of [`BusActor`] replicas runs twice:
//!
//! - **sim** — the deterministic simulator over the E13 15 ms WAN; the
//!   figure is the wall-clock cost of executing the whole scenario to
//!   quiescence (fastest of several runs);
//! - **tcp** — real loopback sockets via [`TcpNode`]; the figure is
//!   the *convergence window*, first `aware.publish` to last
//!   `aware.deliver` across the fleet (node clocks all start at spawn,
//!   so cross-node skew is bounded by spawn spread), fastest of
//!   several runs.
//!
//! The two numbers measure different things — a simulated WAN executed
//! as fast as the CPU allows versus real frames crossing real sockets —
//! so both are reported raw, never as a ratio. The bench *audits* that
//! both backends converge to the identical delivered census and that
//! the TCP sessions saw no sequence gaps, and fails hard otherwise.
//!
//! ```text
//! cargo run -p cscw-bench --bin net_fanout --release [OUT.json]
//! ```

use std::collections::BTreeMap;
use std::net::SocketAddr;

use odp_awareness::bus::{CoopEvent, CoopKind, EventBus};
use odp_awareness::dist::{BusActor, BusWire};
use odp_awareness::events::ActivityKind;
use odp_fabric::SpanOp;
use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::GcMsg;
use odp_net::tcp::{TcpConfig, TcpHandle, TcpNode};
use odp_sim::net::{LinkSpec, Network, NodeId};
use odp_sim::prelude::{ActorHandle, Sim, SimBuilder, Until};
use odp_sim::time::{SimDuration, SimTime};

/// Fleet size (kept below E13's 8 so the TCP mesh — one socket pair
/// per node pair — stays cheap on CI runners).
const NODES: u32 = 4;
/// Broadcast edits published per replica.
const WRITES_EACH: u32 = 4;
/// The shared artefact every edit concerns.
const ARTEFACT: &str = "doc/plan";
/// Timed sim iterations; the fastest is reported.
const SIM_ITERS: u32 = 20;
/// Timed TCP iterations; the fastest is reported.
const TCP_ITERS: u32 = 3;

fn view() -> View {
    View::initial(GroupId(0), (0..NODES).map(NodeId))
}

fn open_bus() -> EventBus {
    let mut bus = EventBus::new();
    for i in 0..NODES {
        bus.register(NodeId(i), 0.0);
    }
    bus
}

fn edit(publisher: u32, write: u32) -> BusWire {
    BusWire::new(CoopEvent::broadcast(
        NodeId(publisher),
        ARTEFACT,
        SimTime::from_millis(u64::from(write)),
        CoopKind::Activity(ActivityKind::Edit),
    ))
}

/// Every replica must surface exactly the other replicas' writes.
fn expected_deliveries() -> u64 {
    u64::from(NODES) * u64::from(NODES - 1) * u64::from(WRITES_EACH)
}

// ------------------------------------------------------------------- sim

/// Runs the sim variant once; returns wall ns and total deliveries.
fn run_sim_once(seed: u64) -> (u128, u64) {
    let link = LinkSpec::wan(SimDuration::from_millis(15));
    let mut net = Network::new(link);
    net.set_default_link(link);
    let mut sim: Sim<GcMsg<BusWire>> = SimBuilder::new(seed).network(net).build();
    for i in 0..NODES {
        sim.add_actor(NodeId(i), BusActor::new(NodeId(i), view(), open_bus()));
    }
    for i in 0..NODES {
        for w in 0..WRITES_EACH {
            sim.inject(
                SimTime::from_millis(10 + u64::from(w) * 50),
                NodeId(i),
                NodeId(i),
                GcMsg::AppCmd(edit(i, w)),
            );
        }
    }
    let start = std::time::Instant::now(); // odp-check: allow(wallclock)
    sim.run(Until::For(SimDuration::from_secs(30)));
    let ns = start.elapsed().as_nanos();
    let delivered: u64 = (0..NODES)
        .map(|i| {
            let actor: &BusActor = sim.get(ActorHandle::of(NodeId(i))).expect("replica exists");
            actor.delivered().len() as u64
        })
        .sum();
    (ns, delivered)
}

// ------------------------------------------------------------------- tcp

/// Runs the TCP variant once; returns the convergence window in ns,
/// total deliveries, and total sequence gaps.
fn run_tcp_once(seed: u64) -> (u128, u64, u64) {
    let mut nodes: Vec<TcpNode> = (0..NODES)
        .map(|i| {
            let cfg = TcpConfig {
                seed,
                ..TcpConfig::default()
            };
            TcpNode::bind(NodeId(i), cfg).unwrap_or_else(|e| {
                eprintln!("net_fanout: cannot bind loopback node {i}: {e}");
                std::process::exit(1);
            })
        })
        .collect();
    let addrs: BTreeMap<NodeId, SocketAddr> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            (
                NodeId(i as u32),
                n.local_addr().unwrap_or_else(|e| {
                    eprintln!("net_fanout: no local addr: {e}");
                    std::process::exit(1);
                }),
            )
        })
        .collect();
    for node in &mut nodes {
        node.set_peers(addrs.clone());
    }
    let handles: Vec<TcpHandle<BusActor, GcMsg<BusWire>>> = nodes
        .into_iter()
        .enumerate()
        .map(|(i, node)| {
            let mut actor = BusActor::new(NodeId(i as u32), view(), open_bus());
            actor.set_telemetry(true); // deliver spans carry the timestamps
            node.spawn(actor)
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(250)); // mesh up
    for (i, handle) in handles.iter().enumerate() {
        for w in 0..WRITES_EACH {
            handle.inject(NodeId(i as u32), GcMsg::AppCmd(edit(i as u32, w)));
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(1200)); // converge
    let mut first_publish = u64::MAX;
    let mut last_deliver = 0u64;
    let mut delivered = 0u64;
    let mut gaps = 0u64;
    for handle in handles {
        let (actor, report) = match handle.stop() {
            Ok(fin) => fin,
            Err(e) => {
                eprintln!("net_fanout: node failed to stop: {e}");
                std::process::exit(1);
            }
        };
        delivered += actor.delivered().len() as u64;
        gaps += report.stats.gaps;
        let log = report.trace.spans();
        for event in log.events() {
            let SpanOp::Open { kind, .. } = event.op else {
                continue;
            };
            match log.kind(kind) {
                "aware.publish" => first_publish = first_publish.min(event.time_us),
                "aware.deliver" => last_deliver = last_deliver.max(event.time_us),
                _ => {}
            }
        }
    }
    let window_ns = if first_publish == u64::MAX || last_deliver <= first_publish {
        0
    } else {
        u128::from(last_deliver - first_publish) * 1_000
    };
    (window_ns, delivered, gaps)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_net.json".to_owned());
    let seed = cscw_bench::REPORT_SEED;
    let expected = expected_deliveries();

    // Sim: warm-up, then fastest-of.
    let (_, sim_delivered) = run_sim_once(seed);
    let mut sim_ns = u128::MAX;
    for _ in 0..SIM_ITERS {
        sim_ns = sim_ns.min(run_sim_once(seed).0);
    }

    // TCP loopback: fastest convergence window; every run must both
    // converge and stay gap-free.
    let mut tcp_ns = u128::MAX;
    let mut tcp_delivered = 0u64;
    for _ in 0..TCP_ITERS {
        let (window_ns, delivered, gaps) = run_tcp_once(seed);
        if delivered != expected || gaps != 0 || window_ns == 0 {
            eprintln!(
                "net_fanout: tcp run did not converge cleanly: \
                 {delivered}/{expected} deliveries, {gaps} gaps, {window_ns} ns window"
            );
            std::process::exit(1);
        }
        tcp_ns = tcp_ns.min(window_ns);
        tcp_delivered = delivered;
    }
    if sim_delivered != expected {
        eprintln!("net_fanout: sim delivered {sim_delivered}, expected {expected}");
        std::process::exit(1);
    }

    let tcp_throughput = tcp_delivered as f64 / (tcp_ns as f64 / 1e9);
    let json = format!(
        "{{\"workload\":{},\"nodes\":{NODES},\"writes_each\":{WRITES_EACH},\
         \"expected_deliveries\":{expected},\
         \"sim_iters\":{SIM_ITERS},\"tcp_iters\":{TCP_ITERS},\
         \"sim_scenario_ns\":{sim_ns},\"sim_deliveries\":{sim_delivered},\
         \"tcp_convergence_ns\":{tcp_ns},\"tcp_deliveries\":{tcp_delivered},\
         \"tcp_msgs_per_sec\":{tcp_throughput:.1},\"tcp_gaps\":0}}",
        odp_telemetry::report::json_string("e13-net-fanout"),
    );
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("net_fanout: cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    println!("awareness fan-out across backends (seed {seed}):");
    println!(
        "  sim   {sim_ns:>12} ns scenario      {sim_delivered} deliveries (best of {SIM_ITERS})"
    );
    println!(
        "  tcp   {tcp_ns:>12} ns convergence   {tcp_delivered} deliveries, \
         {tcp_throughput:.0} msg/s (best of {TCP_ITERS})"
    );
    println!("  wrote {out_path}");
}
