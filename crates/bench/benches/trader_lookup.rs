//! Trader lookup latency: cold imports against the sharded store, hits
//! in the importer-side TTL cache, the sharded fan-out a federation hop
//! adds, and the planner-vs-flood economics on a campus-style topology.
//! The cold/cached gap is the whole argument for the importer cache;
//! the planner/flood pair shows scope pruning cutting the cross-domain
//! lookups a federated import sends.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odp_access::rights::Rights;
use odp_sim::net::{LinkQos, NodeId};
use odp_sim::time::{SimDuration, SimTime};
use odp_streams::qos::QosSpec;
use odp_trader::cache::LookupCache;
use odp_trader::federation::{DomainId, Federation};
use odp_trader::offer::{ServiceOffer, ServiceType, SessionKind};
use odp_trader::plan::ImportRequest;
use odp_trader::store::ShardedStore;

const OFFERS_PER_DOMAIN: u32 = 64;

fn populated_store(shards: &[NodeId], hosts_from: u32) -> ShardedStore {
    let mut store = ShardedStore::new(shards.iter().copied());
    for i in 0..OFFERS_PER_DOMAIN {
        store
            .export(ServiceOffer::session(
                ServiceType::new(format!("conference/room-{i}")),
                SessionKind::Conference,
                QosSpec::video(),
                NodeId(hosts_from + i),
            ))
            .expect("shards exist");
    }
    store
}

fn federation_with_link() -> Federation {
    let mut federation = Federation::new();
    federation.add_domain(
        DomainId(0),
        populated_store(&[NodeId(100), NodeId(101)], 1_000),
    );
    federation.add_domain(
        DomainId(1),
        populated_store(&[NodeId(200), NodeId(201)], 2_000),
    );
    federation.link(DomainId(0), DomainId(1), "conference/", Rights::READ);
    federation
}

fn room(i: u32) -> ImportRequest {
    ImportRequest::for_type(ServiceType::new(format!("conference/room-{i}")))
        .qos(QosSpec::video())
        .rights(Rights::READ)
}

/// The campus topology the federation planner integration suite also
/// uses: a hub linked to four gateway domains under disjoint scope
/// prefixes, each gateway linked (scope "") to two leaf domains. Only
/// the `conference/` arm reaches the populated leaf, so scope pruning
/// saves the other three arms' cross-domain lookups.
fn campus_federation() -> Federation {
    let hub = DomainId(0);
    let mut fed = Federation::new();
    fed.add_domain(hub, ShardedStore::new([NodeId(1)]));
    let penalty = |ms| LinkQos::new(SimDuration::from_millis(ms), SimDuration::ZERO, 0.0);
    for (i, scope) in ["audio/", "video/", "workspace/", "conference/"]
        .iter()
        .enumerate()
    {
        let gw = DomainId(10 + i as u32);
        fed.add_domain(gw, ShardedStore::new([NodeId(100 + i as u32)]));
        fed.link_via(hub, gw, *scope, Rights::READ, penalty(10));
        for leaf_n in 0..2u32 {
            let leaf = DomainId(20 + 2 * i as u32 + leaf_n);
            let store = if *scope == "conference/" && leaf_n == 1 {
                populated_store(&[NodeId(200 + 2 * i as u32 + leaf_n)], 3_000)
            } else {
                ShardedStore::new([NodeId(200 + 2 * i as u32 + leaf_n)])
            };
            fed.add_domain(leaf, store);
            fed.link_via(gw, leaf, "", Rights::READ, penalty(5 + leaf_n as u64));
        }
    }
    fed
}

fn bench_trader_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("trader_lookup");

    // Cold: every lookup runs the full import path — ring hash, shard
    // scan, QoS negotiation, selection.
    group.bench_function("cold_local", |b| {
        let mut federation = federation_with_link();
        let wanted: Vec<ImportRequest> = (0..OFFERS_PER_DOMAIN)
            .map(|i| room(i).max_hops(1))
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            let request = &wanted[i % wanted.len()];
            i += 1;
            black_box(
                federation
                    .resolve(DomainId(0), black_box(request), None)
                    .expect("offer exists"),
            )
        })
    });

    // Cached: the importer-side TTL cache answers without touching the
    // trader at all.
    group.bench_function("cached", |b| {
        let mut federation = federation_with_link();
        let st = ServiceType::new("conference/room-7");
        let mut cache = LookupCache::new(SimDuration::from_secs(60));
        let resolved = federation
            .domain_mut(DomainId(0))
            .unwrap()
            .offers_of_type(&st);
        cache.put(st.clone(), resolved, SimTime::ZERO);
        b.iter(|| {
            black_box(
                cache
                    .get(black_box(&st), SimTime::ZERO)
                    .expect("warm entry"),
            )
        })
    });

    // Fan-out: the type only exists one federation hop away, so the
    // import visits the local domain, misses, and crosses the link.
    group.bench_function("federated_one_hop", |b| {
        let mut federation = Federation::new();
        federation.add_domain(DomainId(0), ShardedStore::new([NodeId(100), NodeId(101)]));
        federation.add_domain(
            DomainId(1),
            populated_store(&[NodeId(200), NodeId(201)], 2_000),
        );
        federation.link(DomainId(0), DomainId(1), "conference/", Rights::READ);
        let request = room(7).max_hops(2);
        b.iter(|| {
            black_box(
                federation
                    .resolve(DomainId(0), black_box(&request), None)
                    .expect("remote offer exists"),
            )
        })
    });

    // Planner vs flood on the campus topology: identical resolutions,
    // but scope pruning at the hub never consults the three arms whose
    // narrowed scope cannot admit a conference type.
    let mut campus = campus_federation();
    let planned = campus
        .resolve(DomainId(0), &room(7), None)
        .expect("campus offer exists");
    let flooded = campus
        .resolve(DomainId(0), &room(7).narrowing(false), None)
        .expect("campus offer exists");
    assert_eq!(planned.matched.offer, flooded.matched.offer);
    assert!(planned.domains_queried < flooded.domains_queried);
    eprintln!(
        "trader_lookup/campus: planner queries {} remote domain(s), flood queries {} \
         (scope pruning saves {} cross-domain lookups per import)",
        planned.domains_queried,
        flooded.domains_queried,
        flooded.domains_queried - planned.domains_queried
    );

    group.bench_function("campus_planned", |b| {
        let mut federation = campus_federation();
        let request = room(7);
        b.iter(|| {
            black_box(
                federation
                    .resolve(DomainId(0), black_box(&request), None)
                    .expect("campus offer exists"),
            )
        })
    });

    group.bench_function("campus_flooded", |b| {
        let mut federation = campus_federation();
        let request = room(7).narrowing(false);
        b.iter(|| {
            black_box(
                federation
                    .resolve(DomainId(0), black_box(&request), None)
                    .expect("campus offer exists"),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_trader_lookup);
criterion_main!(benches);
