//! Trader lookup latency: cold imports against the sharded store, hits
//! in the importer-side TTL cache, and the sharded fan-out a federation
//! hop adds. The cold/cached gap is the whole argument for the
//! importer cache; the fan-out row bounds what federation costs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odp_access::rights::Rights;
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use odp_streams::qos::QosSpec;
use odp_trader::cache::LookupCache;
use odp_trader::federation::{DomainId, Federation};
use odp_trader::offer::{ServiceOffer, ServiceType, SessionKind};
use odp_trader::select::SelectionPolicy;
use odp_trader::store::ShardedStore;

const OFFERS_PER_DOMAIN: u32 = 64;

fn populated_store(shards: &[NodeId], hosts_from: u32) -> ShardedStore {
    let mut store = ShardedStore::new(shards.iter().copied());
    for i in 0..OFFERS_PER_DOMAIN {
        store
            .export(ServiceOffer::session(
                ServiceType::new(format!("conference/room-{i}")),
                SessionKind::Conference,
                QosSpec::video(),
                NodeId(hosts_from + i),
            ))
            .expect("shards exist");
    }
    store
}

fn federation_with_link() -> Federation {
    let mut federation = Federation::new();
    federation.add_domain(
        DomainId(0),
        populated_store(&[NodeId(100), NodeId(101)], 1_000),
    );
    federation.add_domain(
        DomainId(1),
        populated_store(&[NodeId(200), NodeId(201)], 2_000),
    );
    federation.link(DomainId(0), DomainId(1), "conference/", Rights::READ);
    federation
}

fn bench_trader_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("trader_lookup");

    // Cold: every lookup runs the full import path — ring hash, shard
    // scan, QoS negotiation, selection.
    group.bench_function("cold_local", |b| {
        let mut federation = federation_with_link();
        let wanted: Vec<ServiceType> = (0..OFFERS_PER_DOMAIN)
            .map(|i| ServiceType::new(format!("conference/room-{i}")))
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            let st = &wanted[i % wanted.len()];
            i += 1;
            black_box(
                federation
                    .import(
                        DomainId(0),
                        Rights::READ,
                        black_box(st),
                        &QosSpec::video(),
                        SelectionPolicy::FirstFit,
                        1,
                        None,
                    )
                    .expect("offer exists"),
            )
        })
    });

    // Cached: the importer-side TTL cache answers without touching the
    // trader at all.
    group.bench_function("cached", |b| {
        let mut federation = federation_with_link();
        let st = ServiceType::new("conference/room-7");
        let mut cache = LookupCache::new(SimDuration::from_secs(60));
        let resolved = federation
            .domain_mut(DomainId(0))
            .unwrap()
            .offers_of_type(&st);
        cache.put(st.clone(), resolved, SimTime::ZERO);
        b.iter(|| {
            black_box(
                cache
                    .get(black_box(&st), SimTime::ZERO)
                    .expect("warm entry"),
            )
        })
    });

    // Fan-out: the type only exists one federation hop away, so the
    // import visits the local domain, misses, and crosses the link.
    group.bench_function("federated_one_hop", |b| {
        let mut federation = Federation::new();
        federation.add_domain(DomainId(0), ShardedStore::new([NodeId(100), NodeId(101)]));
        federation.add_domain(
            DomainId(1),
            populated_store(&[NodeId(200), NodeId(201)], 2_000),
        );
        federation.link(DomainId(0), DomainId(1), "conference/", Rights::READ);
        let st = ServiceType::new("conference/room-7");
        b.iter(|| {
            black_box(
                federation
                    .import(
                        DomainId(0),
                        Rights::READ,
                        black_box(&st),
                        &QosSpec::video(),
                        SelectionPolicy::FirstFit,
                        2,
                        None,
                    )
                    .expect("remote offer exists"),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_trader_lookup);
criterion_main!(benches);
