//! Micro-benchmarks of the middleware's hot primitives: OT transforms,
//! vector-clock operations, lock-table requests, RBAC checks, QoS
//! negotiation, and the simulator's event loop.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odp_access::delegation::DelegationRegistry;
use odp_access::matrix::{Protected, Subject};
use odp_access::rbac::{Effect, ObjectPath, RbacPolicy, RoleId};
use odp_access::rights::Rights;
use odp_awareness::bus::EventBus;
use odp_concurrency::locks::{ClientId, LockMode, LockScheme, LockTable, ResourceId};
use odp_concurrency::ot::{transform_pair, CharOp, TieBreak};
use odp_groupcomm::vclock::VectorClock;
use odp_sim::net::NodeId;
use odp_sim::prelude::*;
use odp_streams::qos::{negotiate, QosSpec};

fn bench_ot_transform(c: &mut Criterion) {
    c.bench_function("ot_transform_pair", |b| {
        let a = CharOp::Insert { pos: 5, ch: 'x' };
        let d = CharOp::Delete { pos: 3 };
        b.iter(|| black_box(transform_pair(black_box(a), black_box(d), TieBreak::OpWins)))
    });
}

fn bench_vclock(c: &mut Criterion) {
    c.bench_function("vclock_compare_16", |b| {
        let mut x = VectorClock::new();
        let mut y = VectorClock::new();
        for i in 0..16 {
            x.tick(NodeId(i));
            y.tick(NodeId(i));
            if i % 3 == 0 {
                y.tick(NodeId(i));
            }
        }
        b.iter(|| black_box(x.compare(black_box(&y))))
    });
}

fn bench_lock_table(c: &mut Criterion) {
    c.bench_function("lock_request_release", |b| {
        let mut table = LockTable::new(LockScheme::Hard);
        let mut bus = EventBus::new();
        bus.register(NodeId(0), 0.0);
        let mut i = 0u64;
        b.iter(|| {
            let r = ResourceId(i % 64);
            table.request_via(&mut bus, ClientId(0), r, LockMode::Exclusive, SimTime::ZERO);
            table
                .release_via(&mut bus, ClientId(0), r, SimTime::ZERO)
                .expect("held");
            i += 1;
        })
    });
}

fn bench_rbac_check(c: &mut Criterion) {
    c.bench_function("rbac_check_deep_path", |b| {
        let mut policy = RbacPolicy::new();
        for r in 0..8u32 {
            policy.add_rule(
                RoleId(r),
                ObjectPath::new(format!("project/area{r}")),
                Rights::READ | Rights::WRITE,
                Effect::Allow,
            );
        }
        policy.add_rule(
            RoleId(0),
            "project/area0/frozen".into(),
            Rights::WRITE,
            Effect::Deny,
        );
        policy.assign(Subject(1), RoleId(0));
        policy.assign(Subject(1), RoleId(3));
        let path = ObjectPath::new("project/area0/frozen/para3/line14");
        b.iter(|| black_box(policy.check(Subject(1), black_box(&path), Rights::WRITE)))
    });
}

fn bench_qos_negotiate(c: &mut Criterion) {
    c.bench_function("qos_negotiate_degrading", |b| {
        let offer = QosSpec::mobile_video();
        let want = QosSpec::video();
        b.iter(|| black_box(negotiate(black_box(&offer), black_box(&want))))
    });
}

fn bench_delegation_chain(c: &mut Criterion) {
    c.bench_function("delegation_authorised_depth_8", |b| {
        let mut reg = DelegationRegistry::new();
        let mut grant = reg.issue_root(Subject(0), Protected(1), Rights::ALL);
        for i in 1..8u32 {
            grant = reg
                .delegate(grant, Subject(i), Rights::READ | Rights::GRANT)
                .expect("valid delegation");
        }
        b.iter(|| black_box(reg.authorised(Subject(7), Protected(1), Rights::READ)))
    });
}

fn bench_routed_procedure(c: &mut Criterion) {
    use odp_workflow::routes::{Next, RouteStep, RoutedProcedure, StepId};
    use odp_workflow::speechact::Party;
    use std::collections::BTreeMap;
    c.bench_function("routed_procedure_loop_cycle", |b| {
        b.iter(|| {
            let steps = vec![
                RouteStep {
                    id: StepId(0),
                    role: Party(1),
                    description: "draft".into(),
                    routes: BTreeMap::from([("done".to_owned(), Next::Step(StepId(1)))]),
                },
                RouteStep {
                    id: StepId(1),
                    role: Party(2),
                    description: "review".into(),
                    routes: BTreeMap::from([
                        ("ok".to_owned(), Next::Done),
                        ("redo".to_owned(), Next::Step(StepId(0))),
                    ]),
                },
            ];
            let mut p = RoutedProcedure::new(steps, StepId(0)).expect("valid");
            p.perform(Party(1), "done").expect("turn");
            p.perform(Party(2), "redo").expect("turn");
            p.perform(Party(1), "done").expect("turn");
            p.perform(Party(2), "ok").expect("turn");
            black_box(p.is_done())
        })
    });
}

fn bench_sim_event_loop(c: &mut Criterion) {
    struct Echo {
        peer: NodeId,
        left: u32,
    }
    impl Actor<u32> for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.send(self.peer, 0);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, _m: u32) {
            if self.left > 0 {
                self.left -= 1;
                ctx.send(from, 0);
            }
        }
    }
    c.bench_function("sim_10k_message_roundtrips", |b| {
        b.iter(|| {
            let mut net = Network::new(LinkSpec::ideal());
            net.set_default_link(LinkSpec::ideal());
            let mut sim = SimBuilder::new(1).network(net).build();
            sim.add_actor(
                NodeId(0),
                Echo {
                    peer: NodeId(1),
                    left: 10_000,
                },
            );
            sim.add_actor(
                NodeId(1),
                Echo {
                    peer: NodeId(0),
                    left: 10_000,
                },
            );
            sim.run(Until::Idle);
            black_box(sim.events_processed())
        })
    });
}

criterion_group!(
    primitives,
    bench_ot_transform,
    bench_vclock,
    bench_lock_table,
    bench_rbac_check,
    bench_qos_negotiate,
    bench_delegation_chain,
    bench_routed_procedure,
    bench_sim_event_loop,
);
criterion_main!(primitives);
