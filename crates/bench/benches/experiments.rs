//! One Criterion bench per derived experiment: regenerates each
//! table/figure of the evaluation and measures how long the regeneration
//! takes (useful for tracking simulator performance regressions).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cscw_core::experiments as exp;

fn bench_e1_space_time_matrix(c: &mut Criterion) {
    c.bench_function("e1_space_time_matrix", |b| {
        b.iter(|| black_box(exp::sessions::e1_space_time_matrix(black_box(42))))
    });
}

fn bench_e2_walls_vs_awareness(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_walls_vs_awareness");
    g.sample_size(10);
    g.bench_function("full", |b| {
        b.iter(|| black_box(exp::concurrency::e2_walls_vs_awareness(black_box(42))))
    });
    g.finish();
}

fn bench_e3_response_notification(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_response_notification");
    g.sample_size(10);
    g.bench_function("full", |b| {
        b.iter(|| black_box(exp::concurrency::e3_response_notification(black_box(42))))
    });
    g.finish();
}

fn bench_e4_lock_granularity(c: &mut Criterion) {
    c.bench_function("e4_lock_granularity", |b| {
        b.iter(|| black_box(exp::concurrency::e4_lock_granularity(black_box(42))))
    });
}

fn bench_e5_access_control(c: &mut Criterion) {
    c.bench_function("e5_access_control", |b| {
        b.iter(|| black_box(exp::access::e5_access_control(black_box(42))))
    });
}

fn bench_e6_qos_streams(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_qos_streams");
    g.sample_size(10);
    g.bench_function("full", |b| {
        b.iter(|| black_box(exp::media::e6_qos_streams(black_box(42))))
    });
    g.finish();
}

fn bench_e7_media_sync(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_media_sync");
    g.sample_size(10);
    g.bench_function("full", |b| {
        b.iter(|| black_box(exp::media::e7_media_sync(black_box(42))))
    });
    g.finish();
}

fn bench_e8_group_comm(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_group_comm");
    g.sample_size(10);
    g.bench_function("full", |b| {
        b.iter(|| black_box(exp::groups::e8_group_comm(black_box(42))))
    });
    g.finish();
}

fn bench_e9_placement(c: &mut Criterion) {
    c.bench_function("e9_placement", |b| {
        b.iter(|| black_box(exp::placement::e9_placement(black_box(42))))
    });
}

fn bench_e10_mobility(c: &mut Criterion) {
    c.bench_function("e10_mobility", |b| {
        b.iter(|| black_box(exp::mobility::e10_mobility(black_box(42))))
    });
}

fn bench_e11_prescriptiveness(c: &mut Criterion) {
    c.bench_function("e11_prescriptiveness", |b| {
        b.iter(|| black_box(exp::workflow::e11_prescriptiveness()))
    });
}

fn bench_e13_replicated_workspace(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_replicated_workspace");
    g.sample_size(10);
    g.bench_function("full", |b| {
        b.iter(|| black_box(exp::replication::e13_replicated_workspace(black_box(42))))
    });
    g.finish();
}

fn bench_e12_transitions(c: &mut Criterion) {
    c.bench_function("e12_transitions", |b| {
        b.iter(|| black_box(exp::sessions::e12_transitions(black_box(42))))
    });
}

criterion_group!(
    experiments,
    bench_e1_space_time_matrix,
    bench_e2_walls_vs_awareness,
    bench_e3_response_notification,
    bench_e4_lock_granularity,
    bench_e5_access_control,
    bench_e6_qos_streams,
    bench_e7_media_sync,
    bench_e8_group_comm,
    bench_e9_placement,
    bench_e10_mobility,
    bench_e11_prescriptiveness,
    bench_e12_transitions,
    bench_e13_replicated_workspace,
);
criterion_main!(experiments);
