//! Property tests: delivery-ordering guarantees hold under randomised
//! network conditions (latency, jitter, loss) and workloads.

use odp_groupcomm::actors::{GroupActor, GroupApp};
use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::{Delivery, GcMsg, Ordering, Reliability};
use odp_groupcomm::vclock::{Causality, VectorClock};
use odp_net::ctx::NetCtx;
use odp_sim::prelude::*;
use proptest::prelude::*;

#[derive(Default)]
struct Collector {
    delivered: Vec<(u32, u32)>, // (origin, k)
}

impl GroupApp<(u32, u32)> for Collector {
    fn on_deliver(&mut self, _ctx: &mut dyn NetCtx<GcMsg<(u32, u32)>>, d: Delivery<(u32, u32)>) {
        self.delivered.push(d.payload);
    }
}

/// Runs `n` members, each multicasting `k` messages at staggered times,
/// over a link with the given loss, and returns each member's delivery
/// sequence.
fn run(
    seed: u64,
    n: u32,
    k: u32,
    ordering: Ordering,
    loss: f64,
    reliability: Reliability,
) -> Vec<Vec<(u32, u32)>> {
    let view = View::initial(GroupId(0), (0..n).map(NodeId));
    let mut net = Network::new(LinkSpec {
        loss,
        ..LinkSpec::lan()
    });
    net.set_default_link(LinkSpec {
        loss,
        ..LinkSpec::lan()
    });
    let mut sim = SimBuilder::new(seed).network(net).build();
    sim.trace_mut().disable();
    for i in 0..n {
        let mut actor = GroupActor::new(
            NodeId(i),
            view.clone(),
            ordering,
            reliability,
            Collector::default(),
        );
        actor.set_tick_interval(SimDuration::from_millis(25));
        sim.add_actor(NodeId(i), actor);
    }
    for i in 0..n {
        for j in 0..k {
            sim.inject(
                SimTime::from_micros((j as u64) * 700 + (i as u64) * 131),
                NodeId(i),
                NodeId(i),
                GcMsg::AppCmd((i, j)),
            );
        }
    }
    sim.run(Until::For(SimDuration::from_secs(60)));
    (0..n)
        .map(|i| {
            let a: &GroupActor<(u32, u32), Collector> =
                sim.get(ActorHandle::of(NodeId(i))).unwrap();
            a.app().delivered.clone()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// FIFO: per-origin order is preserved at every member, and with
    /// reliability every message arrives exactly once despite loss.
    #[test]
    fn fifo_preserves_per_origin_order(seed in any::<u64>(), n in 2u32..5, k in 1u32..8) {
        let seqs = run(seed, n, k, Ordering::Fifo, 0.15, Reliability::reliable());
        for member in &seqs {
            prop_assert_eq!(member.len() as u32, n * k, "every message delivered once");
            for origin in 0..n {
                let ks: Vec<u32> = member.iter().filter(|(o, _)| *o == origin).map(|&(_, j)| j).collect();
                let mut sorted = ks.clone();
                sorted.sort_unstable();
                prop_assert_eq!(ks, sorted, "per-origin FIFO violated");
            }
        }
    }

    /// Total order: all members deliver the identical global sequence.
    #[test]
    fn total_order_agreement(seed in any::<u64>(), n in 2u32..5, k in 1u32..8) {
        let seqs = run(seed, n, k, Ordering::Total, 0.0, Reliability::BestEffort);
        for member in &seqs[1..] {
            prop_assert_eq!(member, &seqs[0], "total order differs between members");
        }
        prop_assert_eq!(seqs[0].len() as u32, n * k);
    }

    /// Causal order: if message (i, a) causally precedes (j, b) — which is
    /// guaranteed when the same origin sent a before b — every member
    /// delivers them in that order; and all messages arrive exactly once
    /// on a lossless network.
    #[test]
    fn causal_subsumes_fifo(seed in any::<u64>(), n in 2u32..5, k in 1u32..8) {
        let seqs = run(seed, n, k, Ordering::Causal, 0.0, Reliability::BestEffort);
        for member in &seqs {
            prop_assert_eq!(member.len() as u32, n * k);
            for origin in 0..n {
                let ks: Vec<u32> = member.iter().filter(|(o, _)| *o == origin).map(|&(_, j)| j).collect();
                let mut sorted = ks.clone();
                sorted.sort_unstable();
                prop_assert_eq!(ks, sorted, "causal order must include per-origin order");
            }
        }
    }

    /// Vector clock laws: compare() is antisymmetric and merge() is the
    /// least upper bound.
    #[test]
    fn vclock_partial_order_laws(
        ticks_a in prop::collection::vec(0u32..4, 1..6),
        ticks_b in prop::collection::vec(0u32..4, 1..6),
    ) {
        let mut a = VectorClock::new();
        for &n in &ticks_a { a.tick(NodeId(n)); }
        let mut b = VectorClock::new();
        for &n in &ticks_b { b.tick(NodeId(n)); }
        match a.compare(&b) {
            Causality::Before => prop_assert_eq!(b.compare(&a), Causality::After),
            Causality::After => prop_assert_eq!(b.compare(&a), Causality::Before),
            Causality::Equal => prop_assert_eq!(b.compare(&a), Causality::Equal),
            Causality::Concurrent => prop_assert_eq!(b.compare(&a), Causality::Concurrent),
        }
        let mut m = a.clone();
        m.merge(&b);
        prop_assert!(a.dominated_by(&m));
        prop_assert!(b.dominated_by(&m));
    }
}
