//! Property tests: every [`GcMsg`] envelope — with arbitrary vector
//! clocks, spans, views and payloads — survives a trip through the
//! `odp-net` framing, and corrupt bytes always come back as a typed
//! error rather than a panic.

use odp_groupcomm::membership::{GroupId, View, ViewId};
use odp_groupcomm::multicast::{DataMsg, GcMsg, MsgId};
use odp_groupcomm::vclock::VectorClock;
use odp_net::wire::{decode_frame, encode_frame, WireCodec, WireReader, MAX_FRAME};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use odp_telemetry::span::SpanContext;
use proptest::prelude::*;

fn arb_vclock() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec((any::<u32>(), 1u64..1000), 0..8).prop_map(|entries| {
        VectorClock::from_entries(entries.into_iter().map(|(n, c)| (NodeId(n), c)))
    })
}

fn arb_span() -> impl Strategy<Value = Option<SpanContext>> {
    (
        any::<bool>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(present, trace_id, span_id, parent, has_parent)| {
            present.then_some(SpanContext {
                trace_id,
                span_id,
                parent: has_parent.then_some(parent),
            })
        })
}

fn arb_view() -> impl Strategy<Value = View> {
    (
        any::<u32>(),
        any::<u64>(),
        prop::collection::btree_set(any::<u32>(), 0..10),
    )
        .prop_map(|(group, id, members)| {
            let mut view = View::initial(GroupId(group), members.into_iter().map(NodeId));
            view.id = ViewId(id);
            view
        })
}

fn arb_msg_id() -> impl Strategy<Value = MsgId> {
    (any::<u32>(), any::<u64>()).prop_map(|(origin, seq)| MsgId {
        origin: NodeId(origin),
        seq,
    })
}

/// One arbitrary envelope per call, cycling through all eight `GcMsg`
/// variants so every shape is exercised in every run.
fn arb_gcmsg() -> impl Strategy<Value = GcMsg<String>> {
    (
        0u8..8,
        (arb_msg_id(), arb_msg_id(), arb_vclock(), arb_view()),
        arb_span(),
        (any::<u64>(), any::<bool>(), any::<u64>()),
        "[a-zA-Z0-9 /.:-]{0,48}",
    )
        .prop_map(
            |(tag, (id, id2, vclock, view), span, (call, some_at, at), payload)| match tag {
                0 => GcMsg::Data(DataMsg {
                    id,
                    group: view.group,
                    vclock: Some(vclock),
                    span,
                    payload,
                }),
                1 => GcMsg::Data(DataMsg {
                    id,
                    group: view.group,
                    vclock: None,
                    span: None,
                    payload,
                }),
                2 => GcMsg::Ack { id },
                3 => GcMsg::SeqRequest { id },
                4 => GcMsg::SeqAssign {
                    assign_id: id2,
                    id,
                    total: call,
                },
                5 => GcMsg::RpcRequest {
                    call,
                    execute_at: some_at.then_some(SimTime::from_micros(at)),
                    span,
                    payload,
                },
                6 => GcMsg::RpcReply {
                    call,
                    span,
                    payload,
                },
                _ => {
                    if some_at {
                        GcMsg::AppCmd(payload)
                    } else {
                        GcMsg::InstallView(view)
                    }
                }
            },
        )
}

proptest! {
    /// Every `GcMsg` envelope round-trips bit-exactly through the
    /// length-prefixed framing used by the live transport.
    #[test]
    fn every_envelope_roundtrips(msg in arb_gcmsg()) {
        let bytes = encode_frame(&msg, MAX_FRAME).expect("encodes");
        let (back, used): (GcMsg<String>, usize) =
            decode_frame(&bytes, MAX_FRAME).expect("decodes");
        prop_assert_eq!(back, msg);
        prop_assert_eq!(used, bytes.len());
    }

    /// Vector clocks stay canonical across the wire: entries decode to
    /// the same counters, zero entries never reappear.
    #[test]
    fn vclock_stays_canonical(vc in arb_vclock()) {
        let mut buf = Vec::new();
        vc.encode(&mut buf);
        let back = WireReader::new(&buf).finish::<VectorClock>().expect("decodes");
        prop_assert_eq!(&back, &vc);
        prop_assert!(back.iter().all(|(_, c)| c > 0));
    }

    /// Truncating a valid envelope at any byte boundary is a typed
    /// error, never a panic and never a silent partial decode.
    #[test]
    fn truncation_never_panics(msg in arb_gcmsg()) {
        let mut body = Vec::new();
        msg.encode(&mut body);
        for cut in 0..body.len() {
            prop_assert!(
                WireReader::new(&body[..cut]).finish::<GcMsg<String>>().is_err(),
                "prefix of {} bytes decoded", cut
            );
        }
    }

    /// Arbitrary bytes fed to the envelope decoder always produce a
    /// value or a typed error.
    #[test]
    fn hostile_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..160)) {
        let _ = WireReader::new(&bytes).finish::<GcMsg<String>>();
        let _ = decode_frame::<GcMsg<String>>(&bytes, MAX_FRAME);
    }
}
