//! Backend-parametrised membership suite: one crash/rejoin scenario,
//! one set of invariants, two transports.
//!
//! The scenario: three group members multicast an epoch of messages;
//! one member crashes; the survivors install a shrunk view and keep
//! multicasting; the crashed member rejoins under a restored view and
//! a final epoch flows to everyone. The *harness* (scenario constants
//! plus [`verify`]) is shared — each backend only supplies its own way
//! of crashing a node (sim: network disconnect; TCP: stopping the
//! process and rebinding a fresh one on the same id).

use std::collections::BTreeMap;

use odp_groupcomm::actors::{GroupActor, GroupApp};
use odp_groupcomm::membership::{GroupId, View, ViewId};
use odp_groupcomm::multicast::{Delivery, GcMsg, Ordering, Reliability};
use odp_net::ctx::NetCtx;
use odp_net::tcp::{TcpConfig, TcpNode};
use odp_sim::net::{Connectivity, NodeId};
use odp_sim::prelude::*;

// ---------------------------------------------------------------- shared

/// Node 0 is the crasher: the *smallest* id, so its dialer threads can
/// re-establish every TCP connection after rejoin without the
/// survivors needing to re-learn addresses.
const CRASHER: NodeId = NodeId(0);
const MEMBERS: [NodeId; 3] = [NodeId(0), NodeId(1), NodeId(2)];
const SURVIVORS: [NodeId; 2] = [NodeId(1), NodeId(2)];
const GROUP: GroupId = GroupId(0);

fn full_view() -> View {
    View::initial(GROUP, MEMBERS)
}

fn survivor_view() -> View {
    let mut v = View::initial(GROUP, SURVIVORS);
    v.id = ViewId(1);
    v
}

fn restored_view() -> View {
    let mut v = View::initial(GROUP, MEMBERS);
    v.id = ViewId(2);
    v
}

/// Records delivered payloads in arrival order.
#[derive(Default)]
struct Recorder {
    delivered: Vec<String>,
}

impl GroupApp<String> for Recorder {
    fn on_deliver(&mut self, _ctx: &mut dyn NetCtx<GcMsg<String>>, d: Delivery<String>) {
        self.delivered.push(d.payload);
    }
}

/// A member starting from `view`. Unordered delivery: a rejoining
/// member's vector clock misses the epochs it was away for, so causal
/// (or FIFO) hold-back would block post-rejoin traffic until a state
/// transfer — a protocol this suite deliberately leaves out to keep
/// the membership/transport mechanics observable on both backends.
fn member_with(me: NodeId, view: View) -> GroupActor<String, Recorder> {
    let mut actor = GroupActor::new(
        me,
        view,
        Ordering::Unordered,
        Reliability::BestEffort,
        Recorder::default(),
    );
    actor.set_tick_interval(SimDuration::from_millis(25));
    actor
}

fn member(me: NodeId) -> GroupActor<String, Recorder> {
    member_with(me, full_view())
}

/// The shared invariants, independent of backend.
///
/// `survivors` holds each survivor's full delivery log;
/// `crasher_incarnations` holds the crasher's log per process
/// incarnation (the sim backend has one, the TCP backend two).
fn verify(survivors: &BTreeMap<NodeId, Vec<String>>, crasher_incarnations: &[Vec<String>]) {
    let epoch_a = ["a0", "a1", "a2"];
    let epoch_b = ["b1", "b2"];
    let epoch_c = ["c0", "c1", "c2"];
    for (&node, log) in survivors {
        // Survivors see every message of every epoch exactly once.
        for msg in epoch_a.iter().chain(&epoch_b).chain(&epoch_c) {
            let copies = log.iter().filter(|m| m.as_str() == *msg).count();
            assert_eq!(copies, 1, "{node} delivered {msg} {copies} times: {log:?}");
        }
        assert_eq!(log.len(), 8, "{node} delivered extras: {log:?}");
        // Per-origin FIFO survives the membership churn: a survivor's
        // own epochs arrive in order, and the crasher's pre-crash and
        // post-rejoin messages stay ordered.
        for origin in 0..3u32 {
            let a = log.iter().position(|m| *m == format!("a{origin}"));
            let c = log.iter().position(|m| *m == format!("c{origin}"));
            assert!(a < c, "{node} reordered origin {origin}: {log:?}");
        }
    }
    // The crasher was outside the group for all of epoch B, in every
    // incarnation.
    for (i, log) in crasher_incarnations.iter().enumerate() {
        for msg in &epoch_b {
            assert!(
                !log.iter().any(|m| m == msg),
                "crasher incarnation {i} saw {msg}: {log:?}"
            );
        }
        // Exactly-once within each incarnation.
        for msg in log {
            let copies = log.iter().filter(|m| m == &msg).count();
            assert_eq!(
                copies, 1,
                "crasher incarnation {i} saw {msg} twice: {log:?}"
            );
        }
    }
    let all_crasher: Vec<&String> = crasher_incarnations.iter().flatten().collect();
    assert!(
        all_crasher.iter().any(|m| *m == "a0"),
        "crasher never saw its own pre-crash multicast: {all_crasher:?}"
    );
    for msg in &epoch_c {
        let copies = all_crasher.iter().filter(|m| m.as_str() == *msg).count();
        assert_eq!(copies, 1, "crasher saw {msg} {copies} times after rejoin");
    }
}

fn cmd(s: &str) -> GcMsg<String> {
    GcMsg::AppCmd(s.to_owned())
}

// ------------------------------------------------------------------- sim

/// Sim backend: the crash is a network disconnect, the membership
/// service's verdicts arrive as scripted [`GcMsg::InstallView`]s, and
/// the whole run is deterministic under the seed.
#[test]
fn crash_and_rejoin_on_the_sim_backend() {
    for seed in [7u64, 99, 0xBEEF] {
        let mut net = Network::new(LinkSpec::lan());
        net.set_default_link(LinkSpec::lan());
        let mut sim = SimBuilder::new(seed).network(net).build();
        for id in MEMBERS {
            sim.add_actor(id, member(id));
        }
        let ms = SimTime::from_millis;
        // Epoch A: everyone multicasts.
        for (i, id) in MEMBERS.iter().enumerate() {
            sim.inject(ms(10), *id, *id, cmd(&format!("a{i}")));
        }
        // Crash: node 0 drops off the network; the membership service
        // installs the survivor view.
        sim.schedule_net_change(ms(300), |net| {
            net.set_connectivity(CRASHER, Connectivity::Disconnected);
        });
        for id in SURVIVORS {
            sim.inject(ms(400), id, id, GcMsg::InstallView(survivor_view()));
        }
        // Epoch B: survivors only.
        sim.inject(ms(500), NodeId(1), NodeId(1), cmd("b1"));
        sim.inject(ms(510), NodeId(2), NodeId(2), cmd("b2"));
        // Rejoin: connectivity restored, full view reinstalled.
        sim.schedule_net_change(ms(800), |net| {
            net.set_connectivity(CRASHER, Connectivity::Full);
        });
        for id in MEMBERS {
            sim.inject(ms(850), id, id, GcMsg::InstallView(restored_view()));
        }
        // Epoch C: everyone again.
        for (i, id) in MEMBERS.iter().enumerate() {
            sim.inject(ms(900), *id, *id, cmd(&format!("c{i}")));
        }
        sim.run(Until::For(SimDuration::from_secs(5)));

        let mut survivors = BTreeMap::new();
        for id in SURVIVORS {
            let actor = sim
                .get::<GroupActor<String, Recorder>>(ActorHandle::of(id))
                .expect("survivor actor");
            survivors.insert(id, actor.app().delivered.clone());
        }
        let crasher = sim
            .get::<GroupActor<String, Recorder>>(ActorHandle::of(CRASHER))
            .expect("crasher actor");
        verify(&survivors, &[crasher.app().delivered.clone()]);
    }
}

// ------------------------------------------------------------------- tcp

fn settle(ms: u64) {
    std::thread::sleep(std::time::Duration::from_millis(ms));
}

/// TCP backend: the crash is a real process stop (sockets drop, the
/// survivors' failure detectors fire) and the rejoin is a fresh
/// `TcpNode` bound under the same id — whose fresh session must pick
/// up the survivors' sequence expectations without gaps.
#[test]
fn crash_and_rejoin_on_the_tcp_backend() {
    let cfg = TcpConfig::default();
    let mut nodes: Vec<TcpNode> = MEMBERS
        .iter()
        .map(|&id| TcpNode::bind(id, cfg.clone()).expect("bind"))
        .collect();
    let addrs: BTreeMap<NodeId, std::net::SocketAddr> = MEMBERS
        .iter()
        .zip(&nodes)
        .map(|(&id, n)| (id, n.local_addr().expect("addr")))
        .collect();
    for node in &mut nodes {
        node.set_peers(addrs.clone());
    }
    let mut handles: BTreeMap<NodeId, _> = MEMBERS
        .iter()
        .zip(nodes)
        .map(|(&id, node)| (id, node.spawn(member(id))))
        .collect();
    settle(300); // all connections up
    for (i, id) in MEMBERS.iter().enumerate() {
        handles[id].inject(*id, cmd(&format!("a{i}")));
    }
    settle(400);
    // Crash node 0: its sockets drop; survivors' heartbeat deadline
    // declares it dead.
    let (crashed_actor, crashed_report) = handles
        .remove(&CRASHER)
        .expect("crasher handle")
        .stop()
        .expect("stop");
    settle(300);
    for id in SURVIVORS {
        handles[&id].inject(id, GcMsg::InstallView(survivor_view()));
    }
    settle(100);
    handles[&NodeId(1)].inject(NodeId(1), cmd("b1"));
    handles[&NodeId(2)].inject(NodeId(2), cmd("b2"));
    settle(400);
    // Rejoin: a fresh process under the same id dials the survivors
    // (their addresses never changed) and adopts their seq
    // expectations from the reconnect hellos.
    let mut reborn = TcpNode::bind(CRASHER, cfg.clone()).expect("rebind");
    reborn.set_peers(addrs.clone());
    let mut rejoined = member_with(CRASHER, restored_view());
    // The readmitting membership service tells the fresh incarnation
    // where its multicast sequence must resume (it sent one message,
    // `a0`, before crashing) so no message id is ever reused.
    rejoined.engine_mut().resume_seq_from(1);
    for id in SURVIVORS {
        handles[&id].inject(id, GcMsg::InstallView(restored_view()));
    }
    handles.insert(CRASHER, reborn.spawn(rejoined));
    settle(500); // reconnect + replay
    for (i, id) in MEMBERS.iter().enumerate() {
        handles[id].inject(*id, cmd(&format!("c{i}")));
    }
    settle(800);

    let mut survivors = BTreeMap::new();
    let mut reports = vec![crashed_report];
    let mut crasher_logs = vec![crashed_actor.app().delivered.clone()];
    for (id, handle) in std::mem::take(&mut handles) {
        let (actor, report) = handle.stop().expect("stop");
        if id == CRASHER {
            crasher_logs.push(actor.app().delivered.clone());
        } else {
            survivors.insert(id, actor.app().delivered.clone());
        }
        reports.push(report);
    }
    for report in &reports {
        assert_eq!(report.stats.gaps, 0, "sequence gap: {:?}", report.stats);
        assert_eq!(
            report.stats.evicted, 0,
            "evicted frames: {:?}",
            report.stats
        );
    }
    // On TCP the rejoined incarnation legitimately re-receives the
    // epoch-A frames still buffered on the survivors' links (reconnect
    // replay is state restoration for a fresh process) — `verify`'s
    // per-incarnation exactly-once and epoch-B absence still hold.
    verify(&survivors, &crasher_logs);
}
