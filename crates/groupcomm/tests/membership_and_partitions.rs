//! Integration: reliable multicast across a network partition, and live
//! view changes on running group actors.

use odp_groupcomm::actors::{GroupActor, GroupApp};
use odp_groupcomm::membership::{GroupId, Membership, View};
use odp_groupcomm::multicast::{Delivery, GcMsg, Ordering, Reliability};
use odp_net::ctx::NetCtx;
use odp_sim::prelude::*;
use std::collections::HashSet;

#[derive(Default)]
struct Collector {
    got: Vec<String>,
}

impl GroupApp<String> for Collector {
    fn on_deliver(&mut self, ctx: &mut dyn NetCtx<GcMsg<String>>, d: Delivery<String>) {
        self.got.push(d.payload.clone());
        ctx.trace("delivered", d.payload);
    }
}

fn build(n: u32, seed: u64, reliability: Reliability) -> (Sim<GcMsg<String>>, View) {
    let view = View::initial(GroupId(0), (0..n).map(NodeId));
    let mut net = Network::new(LinkSpec::lan());
    net.set_default_link(LinkSpec::lan());
    let mut sim = SimBuilder::new(seed).network(net).build();
    for i in 0..n {
        let mut a = GroupActor::new(
            NodeId(i),
            view.clone(),
            Ordering::Fifo,
            reliability,
            Collector::default(),
        );
        a.set_tick_interval(SimDuration::from_millis(50));
        sim.add_actor(NodeId(i), a);
    }
    (sim, view)
}

/// Messages multicast while the group is partitioned reach the other
/// side once the partition heals, thanks to retransmission.
#[test]
fn reliable_multicast_survives_a_partition() {
    let patient = Reliability::Reliable {
        retransmit_after: SimDuration::from_millis(200),
        max_retries: 100,
    };
    let (mut sim, _) = build(4, 3, patient);
    // Partition {0,1} from {2,3} between t=1s and t=6s.
    sim.schedule_net_change(SimTime::from_secs(1), |net| {
        let a: HashSet<NodeId> = [NodeId(0), NodeId(1)].into();
        let b: HashSet<NodeId> = [NodeId(2), NodeId(3)].into();
        net.partition(vec![a, b]);
    });
    sim.schedule_net_change(SimTime::from_secs(6), |net| net.heal());
    // Node 0 multicasts during the partition.
    for k in 0..5u32 {
        sim.inject(
            SimTime::from_millis(2_000 + k as u64 * 100),
            NodeId(0),
            NodeId(0),
            GcMsg::AppCmd(format!("during-partition-{k}")),
        );
    }
    // Run until just before healing: the far side has nothing.
    sim.run(Until::At(SimTime::from_millis(5_900)));
    let far: &GroupActor<String, Collector> = sim.get(ActorHandle::of(NodeId(2))).expect("actor");
    assert!(
        far.app().got.is_empty(),
        "partitioned node must not have the messages yet"
    );
    let near: &GroupActor<String, Collector> = sim.get(ActorHandle::of(NodeId(1))).expect("actor");
    assert_eq!(
        near.app().got.len(),
        5,
        "same-side node received everything"
    );
    // After healing, retransmission delivers everything, in FIFO order.
    sim.run(Until::For(SimDuration::from_secs(60)));
    for i in [2u32, 3] {
        let a: &GroupActor<String, Collector> = sim.get(ActorHandle::of(NodeId(i))).expect("actor");
        let expect: Vec<String> = (0..5).map(|k| format!("during-partition-{k}")).collect();
        assert_eq!(a.app().got, expect, "node {i} caught up in order");
    }
}

/// Best-effort multicast loses partition-era messages permanently — the
/// contrast that justifies the reliable mode.
#[test]
fn best_effort_multicast_loses_partition_messages() {
    let (mut sim, _) = build(4, 3, Reliability::BestEffort);
    sim.schedule_net_change(SimTime::from_secs(1), |net| {
        let a: HashSet<NodeId> = [NodeId(0), NodeId(1)].into();
        let b: HashSet<NodeId> = [NodeId(2), NodeId(3)].into();
        net.partition(vec![a, b]);
    });
    sim.schedule_net_change(SimTime::from_secs(6), |net| net.heal());
    for k in 0..5u32 {
        sim.inject(
            SimTime::from_millis(2_000 + k as u64 * 100),
            NodeId(0),
            NodeId(0),
            GcMsg::AppCmd(format!("m{k}")),
        );
    }
    sim.run(Until::For(SimDuration::from_secs(60)));
    let far: &GroupActor<String, Collector> = sim.get(ActorHandle::of(NodeId(2))).expect("actor");
    assert!(
        far.app().got.is_empty(),
        "best effort never recovers the loss"
    );
}

/// A view change installed on live actors: the departed member stops
/// receiving, and hold-back state referring to it is discarded.
#[test]
fn live_view_change_reconfigures_the_group() {
    let (mut sim, view0) = build(3, 7, Reliability::BestEffort);
    let mut membership = Membership::new();
    membership.create(GroupId(0), view0.members.iter().copied());
    // First message reaches everyone.
    sim.inject(
        SimTime::from_millis(100),
        NodeId(0),
        NodeId(0),
        GcMsg::AppCmd("before".into()),
    );
    sim.run(Until::At(SimTime::from_millis(500)));
    // Node 2 leaves: install the new view on the remaining members.
    let view1 = membership.leave(GroupId(0), NodeId(2)).expect("member");
    for i in [0u32, 1] {
        sim.inject(
            SimTime::from_millis(600),
            NodeId(i),
            NodeId(i),
            GcMsg::InstallView(view1.clone()),
        );
    }
    sim.inject(
        SimTime::from_millis(800),
        NodeId(0),
        NodeId(0),
        GcMsg::AppCmd("after".into()),
    );
    sim.run(Until::For(SimDuration::from_secs(5)));
    let stayer: &GroupActor<String, Collector> =
        sim.get(ActorHandle::of(NodeId(1))).expect("actor");
    assert_eq!(
        stayer.app().got,
        vec!["before".to_owned(), "after".to_owned()]
    );
    let leaver: &GroupActor<String, Collector> =
        sim.get(ActorHandle::of(NodeId(2))).expect("actor");
    assert_eq!(
        leaver.app().got,
        vec!["before".to_owned()],
        "no traffic after leaving"
    );
    assert_eq!(sim.trace().with_label("gc.view_installed").count(), 2);
}
