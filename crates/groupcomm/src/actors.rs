//! Transport adapters: host a [`GroupEngine`] and an [`RpcEngine`] on
//! any `odp_net` backend, delegating application behaviour to a
//! [`GroupApp`].
//!
//! The actors are written once against the backend-neutral
//! [`NetCtx`] capability trait. A [`GroupActor`] is both an
//! `odp_sim::actor::Actor` (the sim backend hands its `Ctx` straight
//! through, so seeded runs are byte-for-byte identical to the
//! pre-`odp-net` adapters) and an `odp_net::TransportActor` (the TCP
//! backend drives the same handlers over real sockets).

use std::any::Any;
use std::collections::BTreeMap;

use odp_net::actor::TransportActor;
use odp_net::ctx::NetCtx;
use odp_sim::actor::{Actor, Ctx, TimerId};
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use odp_telemetry::span::SpanContext;

use crate::multicast::{Delivery, GcMsg, GroupEngine, Step};
use crate::rpc::{CallOutcome, Quorum, RpcEngine};

/// Timer tags used by [`GroupActor`].
const TICK: u64 = 1;
const EXEC_BASE: u64 = 1_000;

/// Application behaviour plugged into a [`GroupActor`].
///
/// All methods have defaults so simple applications implement only what
/// they need. Callbacks receive the backend-neutral
/// [`NetCtx`] handle, so one app implementation runs on the
/// deterministic simulator and on the TCP transport unchanged.
pub trait GroupApp<P>: 'static {
    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>) {
        let _ = ctx;
    }

    /// A locally injected command ([`GcMsg::AppCmd`]) arrived. Return
    /// `Some(payload)` to multicast it to the group.
    fn on_command(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>, cmd: P) -> Option<P> {
        let _ = ctx;
        Some(cmd)
    }

    /// A group message was delivered in order.
    fn on_deliver(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>, delivery: Delivery<P>);

    /// An RPC request arrived. Return `Some(reply)` to answer it. If the
    /// request carries `execute_at`, [`GroupApp::on_execute`] fires then.
    fn on_rpc(
        &mut self,
        ctx: &mut dyn NetCtx<GcMsg<P>>,
        from: NodeId,
        call: u64,
        payload: &P,
    ) -> Option<P> {
        let _ = (ctx, from, call, payload);
        None
    }

    /// A group-invocation action reached its agreed execution instant.
    fn on_execute(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>, call: u64, payload: P) {
        let _ = (ctx, call, payload);
    }

    /// One of this node's outgoing RPC calls finished.
    fn on_rpc_outcome(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>, outcome: CallOutcome<P>) {
        let _ = (ctx, outcome);
    }
}

/// An actor hosting a group member: multicast engine + RPC engine + app.
///
/// # Examples
///
/// ```
/// use odp_groupcomm::actors::{GroupActor, GroupApp};
/// use odp_groupcomm::membership::{GroupId, View};
/// use odp_groupcomm::multicast::{Delivery, GcMsg, Ordering, Reliability};
/// use odp_net::ctx::NetCtx;
/// use odp_sim::prelude::*;
///
/// struct Counter { seen: u32 }
/// impl GroupApp<String> for Counter {
///     fn on_deliver(&mut self, ctx: &mut dyn NetCtx<GcMsg<String>>, d: Delivery<String>) {
///         self.seen += 1;
///         ctx.trace("delivered", d.payload);
///     }
/// }
///
/// let view = View::initial(GroupId(0), [NodeId(0), NodeId(1)]);
/// let mut sim = SimBuilder::new(1).build();
/// for id in [NodeId(0), NodeId(1)] {
///     sim.add_actor(id, GroupActor::new(
///         id, view.clone(), Ordering::Causal, Reliability::BestEffort, Counter { seen: 0 },
///     ));
/// }
/// sim.inject(SimTime::ZERO, NodeId(0), NodeId(0), GcMsg::AppCmd("hi".into()));
/// sim.run(Until::Idle);
/// assert_eq!(sim.trace().with_label("delivered").count(), 2);
/// ```
pub struct GroupActor<P, A> {
    engine: GroupEngine<P>,
    rpc: RpcEngine<P>,
    app: A,
    tick_every: SimDuration,
    pending_exec: BTreeMap<u64, (u64, P)>, // timer tag -> (call, payload)
    next_exec_tag: u64,
    telemetry: bool,
    open_calls: BTreeMap<u64, SpanContext>, // call id -> rpc.call root span
}

impl<P: Clone + 'static, A: GroupApp<P>> GroupActor<P, A> {
    /// Creates a group actor for `me` with the given protocol parameters.
    pub fn new(
        me: NodeId,
        view: crate::membership::View,
        ordering: crate::multicast::Ordering,
        reliability: Reliability,
        app: A,
    ) -> Self {
        GroupActor {
            engine: GroupEngine::new(me, view, ordering, reliability),
            rpc: RpcEngine::new(me),
            app,
            tick_every: SimDuration::from_millis(50),
            pending_exec: BTreeMap::new(),
            next_exec_tag: EXEC_BASE,
            telemetry: false,
            open_calls: BTreeMap::new(),
        }
    }

    /// Adjusts the maintenance tick period (default 50 ms).
    pub fn set_tick_interval(&mut self, every: SimDuration) {
        self.tick_every = every;
    }

    /// Enables causal span telemetry: multicasts and RPCs mint
    /// [`SpanContext`]s from this actor's deterministic rng and record
    /// `tel.open`/`tel.close` trace events. Off by default — minting
    /// draws from the actor's rng stream, so enabling it perturbs runs
    /// that share the seed with an uninstrumented baseline.
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
    }

    /// Whether span telemetry is enabled.
    pub fn telemetry(&self) -> bool {
        self.telemetry
    }

    /// Borrows the hosted application (post-run inspection).
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutably borrows the hosted application.
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Borrows the multicast engine.
    pub fn engine(&self) -> &GroupEngine<P> {
        &self.engine
    }

    /// Mutably borrows the multicast engine (e.g. to
    /// [`GroupEngine::resume_seq_from`] when re-hosting a member that
    /// crashed in a previous process incarnation).
    pub fn engine_mut(&mut self) -> &mut GroupEngine<P> {
        &mut self.engine
    }

    /// Starts a group RPC to all current peers.
    ///
    /// Intended for use from [`GroupApp`] callbacks via
    /// [`GroupActor::app_mut`] access patterns in tests; during a run,
    /// issue RPCs by injecting app commands and calling this from
    /// [`GroupApp::on_command`] — see `invoke_rpc_now`.
    pub fn rpc_engine_mut(&mut self) -> &mut RpcEngine<P> {
        &mut self.rpc
    }

    fn apply_step(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>, step: Step<P>) {
        for (to, msg) in step.outbound {
            ctx.send(to, msg);
        }
        for delivery in step.delivered {
            ctx.metrics().incr("gc.delivered");
            if self.telemetry {
                if let Some(parent) = delivery.span {
                    // Each delivery is an instantaneous child span: the
                    // gap back to the root open is the delivery latency.
                    let child = parent.child(ctx.rng());
                    ctx.span_open(child.carrier(), "gc.deliver");
                    ctx.span_close(child.carrier());
                }
            }
            self.app.on_deliver(ctx, delivery);
        }
    }
}

/// Convenience wrapper: a [`GroupActor`] plus helpers to issue RPCs from
/// the workload side by injecting [`GcMsg::AppCmd`] values that the app
/// translates.
pub struct RpcConfig {
    /// Reply deadline.
    pub timeout: SimDuration,
    /// Completion policy.
    pub quorum: Quorum,
    /// Optional agreed execution instant for group invocation.
    pub execute_at: Option<SimTime>,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            timeout: SimDuration::from_millis(500),
            quorum: Quorum::All,
            execute_at: None,
        }
    }
}

use crate::multicast::Reliability;

impl<P: Clone + 'static, A: GroupApp<P>> GroupActor<P, A> {
    /// Issues an RPC to all peers immediately (to be called from app
    /// callbacks executed inside this actor's dispatch).
    pub fn invoke_rpc_now(
        &mut self,
        ctx: &mut dyn NetCtx<GcMsg<P>>,
        payload: P,
        config: RpcConfig,
    ) -> u64 {
        let targets = self.engine.view().peers(self.engine.me());
        let span = if self.telemetry {
            let root = SpanContext::root(ctx.rng());
            ctx.span_open(root.carrier(), "rpc.call");
            Some(root)
        } else {
            None
        };
        let (call, outbound) = self.rpc.invoke_spanned(
            targets,
            payload,
            config.execute_at,
            ctx.now(),
            config.timeout,
            config.quorum,
            span,
        );
        if let Some(root) = span {
            self.open_calls.insert(call, root);
        }
        for (to, msg) in outbound {
            ctx.send(to, msg);
        }
        call
    }

    /// Closes the `rpc.call` root span of a finished call, if telemetry
    /// opened one.
    fn close_call_span(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>, call: u64) {
        if let Some(root) = self.open_calls.remove(&call) {
            ctx.span_close(root.carrier());
        }
    }
}

impl<P: Clone + Any, A: GroupApp<P>> GroupActor<P, A> {
    fn handle_start(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>) {
        ctx.set_timer(self.tick_every, TICK);
        self.app.on_start(ctx);
    }

    fn handle_message(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>, from: NodeId, msg: GcMsg<P>) {
        match msg {
            GcMsg::AppCmd(cmd) => {
                if let Some(payload) = self.app.on_command(ctx, cmd) {
                    let span = if self.telemetry {
                        // The mcast root closes at issue time; deliveries
                        // hang their children off it as they land.
                        let root = SpanContext::root(ctx.rng());
                        ctx.span_open(root.carrier(), "gc.mcast");
                        ctx.span_close(root.carrier());
                        Some(root)
                    } else {
                        None
                    };
                    let step = self.engine.mcast_spanned(payload, ctx.now(), span);
                    ctx.metrics().incr("gc.mcast");
                    self.apply_step(ctx, step);
                }
            }
            GcMsg::RpcRequest {
                call,
                execute_at,
                span,
                payload,
            } => {
                if let Some(reply) = self.app.on_rpc(ctx, from, call, &payload) {
                    let serve = match span.filter(|_| self.telemetry) {
                        Some(parent) => {
                            let serve = parent.child(ctx.rng());
                            ctx.span_open(serve.carrier(), "rpc.serve");
                            ctx.span_close(serve.carrier());
                            Some(serve)
                        }
                        None => None,
                    };
                    ctx.send(
                        from,
                        GcMsg::RpcReply {
                            call,
                            span: serve,
                            payload: reply,
                        },
                    );
                }
                if let Some(at) = execute_at {
                    let delay = at.saturating_since(ctx.now());
                    let tag = self.next_exec_tag;
                    self.next_exec_tag += 1;
                    self.pending_exec.insert(tag, (call, payload));
                    ctx.set_timer(delay, tag);
                }
            }
            GcMsg::RpcReply {
                call,
                span,
                payload,
            } => {
                if let Some(parent) = span.filter(|_| self.telemetry) {
                    let reply = parent.child(ctx.rng());
                    ctx.span_open(reply.carrier(), "rpc.reply");
                    ctx.span_close(reply.carrier());
                }
                if let Some(outcome) = self.rpc.on_reply(call, from, payload, ctx.now()) {
                    self.close_call_span(ctx, outcome.call);
                    self.app.on_rpc_outcome(ctx, outcome);
                }
            }
            GcMsg::InstallView(view) => {
                // View installs are rare membership events, not
                // per-delivery traffic.
                // odp-check: allow(hot-path-alloc)
                ctx.trace("gc.view_installed", format!("v{}", view.id.0));
                self.engine.install_view(view);
            }
            other => {
                let step = self.engine.on_message(from, other, ctx.now());
                self.apply_step(ctx, step);
            }
        }
    }

    fn handle_timer(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>, tag: u64) {
        if tag == TICK {
            let step = self.engine.on_tick(ctx.now());
            if !step.outbound.is_empty() {
                ctx.metrics()
                    .add("gc.retransmissions", step.outbound.len() as u64);
            }
            self.apply_step(ctx, step);
            for outcome in self.rpc.on_tick(ctx.now()) {
                self.close_call_span(ctx, outcome.call);
                self.app.on_rpc_outcome(ctx, outcome);
            }
            ctx.set_timer(self.tick_every, TICK);
        } else if let Some((call, payload)) = self.pending_exec.remove(&tag) {
            ctx.trace("rpc.executed", call.to_string());
            self.app.on_execute(ctx, call, payload);
        }
    }
}

/// Sim backend: a `&mut Ctx` unsize-coerces to `&mut dyn NetCtx`, whose
/// impl forwards every method 1:1, so hosting through this adapter is
/// byte-for-byte identical to the pre-`odp-net` direct impl.
impl<P: Clone + Any, A: GroupApp<P>> Actor<GcMsg<P>> for GroupActor<P, A> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GcMsg<P>>) {
        self.handle_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, GcMsg<P>>, from: NodeId, msg: GcMsg<P>) {
        self.handle_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GcMsg<P>>, _timer: TimerId, tag: u64) {
        self.handle_timer(ctx, tag);
    }
}

/// Real-transport backends (e.g. `odp_net::tcp::TcpNode`) drive the same
/// handlers; peer up/down events are left to the application layer's
/// view-change protocol ([`GcMsg::InstallView`]).
impl<P: Clone + Any, A: GroupApp<P>> TransportActor<GcMsg<P>> for GroupActor<P, A> {
    fn on_start(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>) {
        self.handle_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>, from: NodeId, msg: GcMsg<P>) {
        self.handle_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx<GcMsg<P>>, _timer: TimerId, tag: u64) {
        self.handle_timer(ctx, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::{GroupId, View};
    use crate::multicast::Ordering;
    use odp_sim::prelude::*;
    use odp_telemetry::span::{CLOSE, OPEN};

    #[derive(Default)]
    struct Recorder {
        delivered: Vec<String>,
        outcomes: Vec<(u64, usize)>,
        executed_at: Vec<SimTime>,
    }

    impl GroupApp<String> for Recorder {
        fn on_deliver(&mut self, ctx: &mut dyn NetCtx<GcMsg<String>>, d: Delivery<String>) {
            self.delivered.push(d.payload.clone());
            ctx.trace("app.deliver", d.payload);
        }
        fn on_rpc(
            &mut self,
            _ctx: &mut dyn NetCtx<GcMsg<String>>,
            _from: NodeId,
            _call: u64,
            payload: &String,
        ) -> Option<String> {
            Some(format!("re:{payload}"))
        }
        fn on_execute(
            &mut self,
            ctx: &mut dyn NetCtx<GcMsg<String>>,
            _call: u64,
            _payload: String,
        ) {
            self.executed_at.push(ctx.now());
        }
        fn on_rpc_outcome(&mut self, _ctx: &mut dyn NetCtx<GcMsg<String>>, o: CallOutcome<String>) {
            self.outcomes.push((o.call, o.replies.len()));
        }
    }

    fn build(n: u32, ordering: Ordering) -> Sim<GcMsg<String>> {
        let view = View::initial(GroupId(0), (0..n).map(NodeId));
        let mut sim = SimBuilder::new(11).build();
        for i in 0..n {
            sim.add_actor(
                NodeId(i),
                GroupActor::new(
                    NodeId(i),
                    view.clone(),
                    ordering,
                    Reliability::BestEffort,
                    Recorder::default(),
                ),
            );
        }
        sim
    }

    #[test]
    fn total_order_agrees_across_members_under_load() {
        let mut sim = build(4, Ordering::Total);
        // Every member multicasts 5 commands at overlapping times.
        for i in 0..4u32 {
            for k in 0..5u32 {
                sim.inject(
                    SimTime::from_micros((k * 137 + i * 13) as u64),
                    NodeId(i),
                    NodeId(i),
                    GcMsg::AppCmd(format!("m{i}-{k}")),
                );
            }
        }
        sim.run(Until::For(SimDuration::from_secs(5)));
        let reference: Vec<String> = {
            let a: &GroupActor<String, Recorder> = sim.get(ActorHandle::of(NodeId(0))).unwrap();
            a.app().delivered.clone()
        };
        assert_eq!(reference.len(), 20, "all 20 messages delivered");
        for i in 1..4u32 {
            let a: &GroupActor<String, Recorder> = sim.get(ActorHandle::of(NodeId(i))).unwrap();
            assert_eq!(a.app().delivered, reference, "member {i} order differs");
        }
    }

    #[test]
    fn reliable_fifo_survives_a_lossy_link() {
        let view = View::initial(GroupId(0), [NodeId(0), NodeId(1)]);
        let mut net = Network::new(LinkSpec {
            loss: 0.3,
            ..LinkSpec::lan()
        });
        net.set_default_link(LinkSpec {
            loss: 0.3,
            ..LinkSpec::lan()
        });
        let mut sim = SimBuilder::new(5).network(net).build();
        for id in [NodeId(0), NodeId(1)] {
            let mut actor = GroupActor::new(
                id,
                view.clone(),
                Ordering::Fifo,
                Reliability::reliable(),
                Recorder::default(),
            );
            actor.set_tick_interval(SimDuration::from_millis(20));
            sim.add_actor(id, actor);
        }
        for k in 0..20u32 {
            sim.inject(
                SimTime::from_millis(k as u64),
                NodeId(0),
                NodeId(0),
                GcMsg::AppCmd(format!("m{k}")),
            );
        }
        sim.run(Until::For(SimDuration::from_secs(30)));
        let b: &GroupActor<String, Recorder> = sim.get(ActorHandle::of(NodeId(1))).unwrap();
        let expect: Vec<String> = (0..20).map(|k| format!("m{k}")).collect();
        assert_eq!(b.app().delivered, expect, "in order despite 30% loss");
    }

    #[test]
    fn rpc_round_trip_with_outcome() {
        struct Caller(Recorder);
        impl GroupApp<String> for Caller {
            fn on_deliver(&mut self, ctx: &mut dyn NetCtx<GcMsg<String>>, d: Delivery<String>) {
                self.0.on_deliver(ctx, d);
            }
            fn on_rpc(
                &mut self,
                ctx: &mut dyn NetCtx<GcMsg<String>>,
                from: NodeId,
                call: u64,
                payload: &String,
            ) -> Option<String> {
                self.0.on_rpc(ctx, from, call, payload)
            }
            fn on_rpc_outcome(
                &mut self,
                ctx: &mut dyn NetCtx<GcMsg<String>>,
                o: CallOutcome<String>,
            ) {
                ctx.trace("rpc.done", o.replies.len().to_string());
                self.0.on_rpc_outcome(ctx, o);
            }
        }
        // Build sim manually so we can drive the RPC from inside a command.
        let view = View::initial(GroupId(0), [NodeId(0), NodeId(1), NodeId(2)]);
        let mut sim: Sim<GcMsg<String>> = SimBuilder::new(2).build();
        // Node 0 issues the call at start via a custom actor.
        struct CallOnStart {
            inner: GroupActor<String, Caller>,
        }
        impl Actor<GcMsg<String>> for CallOnStart {
            fn on_start(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>) {
                Actor::on_start(&mut self.inner, ctx);
                self.inner
                    .invoke_rpc_now(ctx, "ping".to_owned(), RpcConfig::default());
            }
            fn on_message(
                &mut self,
                ctx: &mut Ctx<'_, GcMsg<String>>,
                from: NodeId,
                m: GcMsg<String>,
            ) {
                Actor::on_message(&mut self.inner, ctx, from, m);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>, t: TimerId, tag: u64) {
                Actor::on_timer(&mut self.inner, ctx, t, tag);
            }
        }
        sim.add_actor(
            NodeId(0),
            CallOnStart {
                inner: GroupActor::new(
                    NodeId(0),
                    view.clone(),
                    Ordering::Unordered,
                    Reliability::BestEffort,
                    Caller(Recorder::default()),
                ),
            },
        );
        for i in 1..3u32 {
            sim.add_actor(
                NodeId(i),
                GroupActor::new(
                    NodeId(i),
                    view.clone(),
                    Ordering::Unordered,
                    Reliability::BestEffort,
                    Caller(Recorder::default()),
                ),
            );
        }
        sim.run(Until::For(SimDuration::from_secs(2)));
        assert_eq!(sim.trace().with_label("rpc.done").count(), 1);
        let caller: &CallOnStart = sim.get(ActorHandle::of(NodeId(0))).unwrap();
        assert_eq!(caller.inner.app().0.outcomes, vec![(0, 2)]);
    }

    #[test]
    fn telemetry_spans_form_a_well_formed_rpc_chain() {
        use odp_telemetry::collector::Collector;

        struct CallOnStart {
            inner: GroupActor<String, Recorder>,
        }
        impl Actor<GcMsg<String>> for CallOnStart {
            fn on_start(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>) {
                Actor::on_start(&mut self.inner, ctx);
                self.inner
                    .invoke_rpc_now(ctx, "ping".to_owned(), RpcConfig::default());
            }
            fn on_message(
                &mut self,
                ctx: &mut Ctx<'_, GcMsg<String>>,
                from: NodeId,
                m: GcMsg<String>,
            ) {
                Actor::on_message(&mut self.inner, ctx, from, m);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>, t: TimerId, tag: u64) {
                Actor::on_timer(&mut self.inner, ctx, t, tag);
            }
        }
        let view = View::initial(GroupId(0), [NodeId(0), NodeId(1), NodeId(2)]);
        let mut sim: Sim<GcMsg<String>> = SimBuilder::new(17).build();
        let mut caller = GroupActor::new(
            NodeId(0),
            view.clone(),
            Ordering::Unordered,
            Reliability::BestEffort,
            Recorder::default(),
        );
        caller.set_telemetry(true);
        sim.add_actor(NodeId(0), CallOnStart { inner: caller });
        for i in 1..3u32 {
            let mut member = GroupActor::new(
                NodeId(i),
                view.clone(),
                Ordering::Unordered,
                Reliability::BestEffort,
                Recorder::default(),
            );
            member.set_telemetry(true);
            sim.add_actor(NodeId(i), member);
        }
        sim.run(Until::For(SimDuration::from_secs(2)));

        let collector = Collector::from_trace(sim.trace());
        collector
            .well_formed()
            .expect("all spans closed and causal");
        assert_eq!(collector.len(), 1, "one rpc call, one causal trace");
        let (_, dag) = collector.traces().next().unwrap();
        // rpc.call root + 2 serves + 2 replies.
        assert_eq!(dag.len(), 5);
        let path: Vec<_> = dag.critical_path().iter().map(|s| s.kind.clone()).collect();
        assert_eq!(path, ["rpc.call", "rpc.serve", "rpc.reply"]);
    }

    #[test]
    fn telemetry_spans_cover_multicast_deliveries() {
        use odp_telemetry::collector::Collector;

        let view = View::initial(GroupId(0), (0..3).map(NodeId));
        let mut sim: Sim<GcMsg<String>> = SimBuilder::new(23).build();
        for i in 0..3u32 {
            let mut member = GroupActor::new(
                NodeId(i),
                view.clone(),
                Ordering::Total,
                Reliability::BestEffort,
                Recorder::default(),
            );
            member.set_telemetry(true);
            sim.add_actor(NodeId(i), member);
        }
        sim.inject(
            SimTime::ZERO,
            NodeId(1),
            NodeId(1),
            GcMsg::AppCmd("note".to_owned()),
        );
        sim.run(Until::For(SimDuration::from_secs(2)));

        let collector = Collector::from_trace(sim.trace());
        collector.well_formed().expect("mcast spans well-formed");
        assert_eq!(collector.len(), 1);
        let (_, dag) = collector.traces().next().unwrap();
        // One gc.mcast root plus a gc.deliver child per member (total
        // ordering delivers at all 3 members, sender included).
        let delivers = dag.spans().filter(|s| s.kind == "gc.deliver").count();
        assert_eq!(delivers, 3);
        assert_eq!(dag.len(), 4);
    }

    #[test]
    fn telemetry_off_emits_no_span_events() {
        let mut sim = build(3, Ordering::Fifo);
        sim.inject(
            SimTime::ZERO,
            NodeId(0),
            NodeId(0),
            GcMsg::AppCmd("quiet".to_owned()),
        );
        sim.run(Until::For(SimDuration::from_secs(1)));
        assert_eq!(sim.trace().with_label(OPEN).count(), 0);
        assert_eq!(sim.trace().with_label(CLOSE).count(), 0);
        assert!(sim.trace().spans().is_empty());
    }

    #[test]
    fn group_invocation_executes_simultaneously() {
        let view = View::initial(GroupId(0), [NodeId(0), NodeId(1), NodeId(2)]);
        let mut sim: Sim<GcMsg<String>> = SimBuilder::new(3).build();
        struct StartCameras {
            inner: GroupActor<String, Recorder>,
        }
        impl Actor<GcMsg<String>> for StartCameras {
            fn on_start(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>) {
                Actor::on_start(&mut self.inner, ctx);
                self.inner.invoke_rpc_now(
                    ctx,
                    "camera-on".to_owned(),
                    RpcConfig {
                        execute_at: Some(SimTime::from_millis(100)),
                        ..RpcConfig::default()
                    },
                );
            }
            fn on_message(
                &mut self,
                ctx: &mut Ctx<'_, GcMsg<String>>,
                from: NodeId,
                m: GcMsg<String>,
            ) {
                Actor::on_message(&mut self.inner, ctx, from, m);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>, t: TimerId, tag: u64) {
                Actor::on_timer(&mut self.inner, ctx, t, tag);
            }
        }
        sim.add_actor(
            NodeId(0),
            StartCameras {
                inner: GroupActor::new(
                    NodeId(0),
                    view.clone(),
                    Ordering::Unordered,
                    Reliability::BestEffort,
                    Recorder::default(),
                ),
            },
        );
        for i in 1..3u32 {
            sim.add_actor(
                NodeId(i),
                GroupActor::new(
                    NodeId(i),
                    view.clone(),
                    Ordering::Unordered,
                    Reliability::BestEffort,
                    Recorder::default(),
                ),
            );
        }
        sim.run(Until::For(SimDuration::from_secs(1)));
        // Both responders executed exactly at the agreed instant.
        for i in 1..3u32 {
            let a: &GroupActor<String, Recorder> = sim.get(ActorHandle::of(NodeId(i))).unwrap();
            assert_eq!(a.app().executed_at, vec![SimTime::from_millis(100)]);
        }
    }
}
