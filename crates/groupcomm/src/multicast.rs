//! The multicast protocol engine: reliability and delivery orderings.
//!
//! The engine is *sans-IO*: it consumes inputs (`mcast`, `on_message`,
//! `on_tick`) and returns a [`Step`] of messages to transmit and payloads
//! to deliver. This keeps the protocol unit-testable without a simulator
//! and lets upper layers (streams, shared workspaces) embed it directly.
//! [`crate::actors::GroupActor`] adapts an engine onto an
//! [`odp_sim::actor::Actor`].
//!
//! Supported orderings (paper §4.2.2 iv: "multicast transport protocols
//! are necessary to enable group communication"):
//!
//! - [`Ordering::Unordered`] — deliver on arrival;
//! - [`Ordering::Fifo`] — per-sender order via sequence numbers;
//! - [`Ordering::Causal`] — vector-clock delivery condition;
//! - [`Ordering::Total`] — a sequencer (the view leader) assigns a global
//!   sequence; everyone delivers in that sequence.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

use odp_fabric::SortedVecMap;
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use odp_telemetry::span::{Carrier, SpanContext};
use serde::{Deserialize, Serialize};

use crate::membership::{GroupId, View};
use crate::vclock::VectorClock;

/// Uniquely identifies a multicast message: origin plus per-origin
/// sequence number (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId {
    /// Sending node.
    pub origin: NodeId,
    /// Per-origin sequence number, starting at 1.
    pub seq: u64,
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// Delivery ordering disciplines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Ordering {
    /// Deliver on arrival.
    #[default]
    Unordered,
    /// Per-sender FIFO.
    Fifo,
    /// Causal order (vector clocks).
    Causal,
    /// Total order via a sequencer.
    Total,
}

/// Reliability disciplines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reliability {
    /// Fire and forget.
    BestEffort,
    /// Positive acks with retransmission until acked (or retries exhausted).
    Reliable {
        /// How long to wait for an ack before retransmitting.
        retransmit_after: SimDuration,
        /// Give up after this many retransmissions per receiver.
        max_retries: u32,
    },
}

impl Reliability {
    /// A reasonable reliable default: 200 ms retransmit, 10 retries.
    pub fn reliable() -> Self {
        Reliability::Reliable {
            retransmit_after: SimDuration::from_millis(200),
            max_retries: 10,
        }
    }
}

/// A data message on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct DataMsg<P> {
    /// Unique id (also carries the FIFO sequence as `id.seq`).
    pub id: MsgId,
    /// Destination group.
    pub group: GroupId,
    /// Causal timestamp (present only under [`Ordering::Causal`]).
    pub vclock: Option<VectorClock>,
    /// Piggybacked telemetry span (see `odp_telemetry`).
    pub span: Option<SpanContext>,
    /// Application payload.
    pub payload: P,
}

impl<P> Carrier for DataMsg<P> {
    fn span(&self) -> Option<SpanContext> {
        self.span
    }

    fn set_span(&mut self, span: Option<SpanContext>) {
        self.span = span;
    }
}

/// Wire messages exchanged by group members.
#[derive(Debug, Clone, PartialEq)]
pub enum GcMsg<P> {
    /// Application data.
    Data(DataMsg<P>),
    /// Positive acknowledgement of `Data` or `SeqAssign`.
    Ack {
        /// The acknowledged message id.
        id: MsgId,
    },
    /// Ask the sequencer to order `id` (total ordering only).
    SeqRequest {
        /// The message to order.
        id: MsgId,
    },
    /// Sequencer's ordering decision (total ordering only).
    SeqAssign {
        /// Identifies the assignment itself for ack/retransmit purposes.
        assign_id: MsgId,
        /// The message being ordered.
        id: MsgId,
        /// Its position in the total order (1-based).
        total: u64,
    },
    /// A group RPC request (see [`crate::rpc`]).
    RpcRequest {
        /// Correlation id, unique per caller.
        call: u64,
        /// Optional agreed execution instant (group invocation).
        execute_at: Option<SimTime>,
        /// Piggybacked telemetry span (the caller's `rpc.call` root).
        span: Option<SpanContext>,
        /// Application payload.
        payload: P,
    },
    /// A group RPC reply.
    RpcReply {
        /// Correlation id from the request.
        call: u64,
        /// Piggybacked telemetry span (the responder's `rpc.serve`).
        span: Option<SpanContext>,
        /// Application payload.
        payload: P,
    },
    /// A locally injected application command (never sent between nodes);
    /// workload generators use it to script member behaviour via
    /// [`odp_sim::sim::Sim::inject`]. The engine ignores it; actor
    /// adapters interpret it.
    AppCmd(P),
    /// A membership change: install this view (sent by a membership
    /// service, or injected by a harness). Handled by actor adapters.
    InstallView(crate::membership::View),
}

impl<P> Carrier for GcMsg<P> {
    fn span(&self) -> Option<SpanContext> {
        match self {
            GcMsg::Data(d) => d.span,
            GcMsg::RpcRequest { span, .. } | GcMsg::RpcReply { span, .. } => *span,
            _ => None,
        }
    }

    fn set_span(&mut self, new: Option<SpanContext>) {
        match self {
            GcMsg::Data(d) => d.span = new,
            GcMsg::RpcRequest { span, .. } | GcMsg::RpcReply { span, .. } => *span = new,
            _ => {}
        }
    }
}

/// A payload delivered to the application, with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery<P> {
    /// The message id.
    pub id: MsgId,
    /// The telemetry span the message carried, if any (the sender's
    /// `gc.mcast` root; receivers mint `gc.deliver` children from it).
    pub span: Option<SpanContext>,
    /// The application payload.
    pub payload: P,
}

/// The output of one engine step: messages to put on the wire and
/// payloads now deliverable to the application, in delivery order.
#[derive(Debug)]
pub struct Step<P> {
    /// `(destination, message)` pairs to transmit.
    pub outbound: Vec<(NodeId, GcMsg<P>)>,
    /// Payloads to hand to the application, in order.
    pub delivered: Vec<Delivery<P>>,
}

impl<P> Step<P> {
    fn empty() -> Self {
        Step {
            outbound: Vec::new(),
            delivered: Vec::new(),
        }
    }

    fn merge(&mut self, mut other: Step<P>) {
        self.outbound.append(&mut other.outbound);
        self.delivered.append(&mut other.delivered);
    }
}

struct RelOut<P> {
    msg: GcMsg<P>,
    pending: BTreeSet<NodeId>,
    last_sent: SimTime,
    retries: u32,
}

/// The per-member multicast engine.
///
/// # Examples
///
/// ```
/// use odp_groupcomm::membership::{GroupId, View};
/// use odp_groupcomm::multicast::{GroupEngine, Ordering, Reliability};
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let view = View::initial(GroupId(0), [NodeId(0), NodeId(1)]);
/// let mut a = GroupEngine::new(NodeId(0), view.clone(), Ordering::Fifo, Reliability::BestEffort);
/// let mut b = GroupEngine::new(NodeId(1), view, Ordering::Fifo, Reliability::BestEffort);
///
/// let step = a.mcast("hello", SimTime::ZERO);
/// assert_eq!(step.delivered.len(), 1, "self-delivery is immediate");
/// let (to, msg) = step.outbound.into_iter().next().unwrap();
/// assert_eq!(to, NodeId(1));
/// let got = b.on_message(NodeId(0), msg, SimTime::ZERO);
/// assert_eq!(got.delivered[0].payload, "hello");
/// ```
pub struct GroupEngine<P> {
    me: NodeId,
    view: View,
    ordering: Ordering,
    reliability: Reliability,
    next_seq: u64,
    // Dedup of data/assign messages already processed.
    seen: HashSet<MsgId>,
    // Reliable retransmission state. A sorted vec, not a BTreeMap: the
    // set is small (unacked window), iterated every tick in key order,
    // and contiguous storage keeps the retransmit scan cache-friendly.
    rel_out: SortedVecMap<MsgId, RelOut<P>>,
    // FIFO: next expected per-origin seq and hold-back queue.
    fifo_expected: BTreeMap<NodeId, u64>,
    fifo_holdback: BTreeMap<(NodeId, u64), DataMsg<P>>,
    // Causal: local clock and hold-back.
    vclock: VectorClock,
    causal_holdback: Vec<DataMsg<P>>,
    // Total ordering state.
    total_next_deliver: u64,
    total_assignments: BTreeMap<u64, MsgId>,
    total_waiting: HashMap<MsgId, DataMsg<P>>,
    // Sequencer-only state.
    seq_next_assign: u64,
    seq_assign_counter: u64,
    seq_already_assigned: HashSet<MsgId>,
}

impl<P: Clone> GroupEngine<P> {
    /// Creates an engine for member `me` of the given view.
    pub fn new(me: NodeId, view: View, ordering: Ordering, reliability: Reliability) -> Self {
        debug_assert!(view.contains(me), "engine owner must be in the view");
        GroupEngine {
            me,
            view,
            ordering,
            reliability,
            next_seq: 0,
            seen: HashSet::new(),
            rel_out: SortedVecMap::new(),
            fifo_expected: BTreeMap::new(),
            fifo_holdback: BTreeMap::new(),
            vclock: VectorClock::new(),
            causal_holdback: Vec::new(),
            total_next_deliver: 1,
            total_assignments: BTreeMap::new(),
            total_waiting: HashMap::new(),
            seq_next_assign: 1,
            seq_assign_counter: 0,
            seq_already_assigned: HashSet::new(),
        }
    }

    /// This member's node id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// This member's vector clock (ticked per causal delivery; checkers
    /// assert it only ever grows).
    pub fn clock(&self) -> &VectorClock {
        &self.vclock
    }

    /// The ordering discipline.
    pub fn ordering(&self) -> Ordering {
        self.ordering
    }

    /// The node acting as sequencer under total ordering.
    pub fn sequencer(&self) -> Option<NodeId> {
        self.view.leader()
    }

    /// Installs a new view; hold-back state for departed members is
    /// dropped. (A full virtual-synchrony flush is out of scope; callers
    /// should quiesce traffic around view changes.)
    pub fn install_view(&mut self, view: View) {
        self.fifo_holdback
            .retain(|(origin, _), _| view.contains(*origin));
        self.causal_holdback.retain(|m| view.contains(m.id.origin));
        self.view = view;
    }

    /// Fast-forwards this member's own multicast sequence to at least
    /// `seq`. A member rejoining after a crash must resume *above*
    /// anything it multicast in a previous incarnation — message ids
    /// are `(origin, seq)` pairs, and a reused id is silently dropped
    /// by every peer's duplicate filter. The resume point comes from
    /// whoever readmits the member (in these tests, the scripted
    /// membership service; in a full system, persisted state or the
    /// view-change protocol).
    pub fn resume_seq_from(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// Multicasts `payload` to the group. Returns wire messages and any
    /// immediately deliverable payloads (self-delivery is immediate except
    /// under total ordering, where even the sender waits for the
    /// sequencer).
    pub fn mcast(&mut self, payload: P, now: SimTime) -> Step<P> {
        self.mcast_spanned(payload, now, None)
    }

    /// Like [`GroupEngine::mcast`], but piggybacks a telemetry span on
    /// the data message so deliveries can be stitched into the sender's
    /// causal trace.
    pub fn mcast_spanned(
        &mut self,
        payload: P,
        now: SimTime,
        span: Option<SpanContext>,
    ) -> Step<P> {
        self.next_seq += 1;
        let id = MsgId {
            origin: self.me,
            seq: self.next_seq,
        };
        let vclock = if self.ordering == Ordering::Causal {
            self.vclock.tick(self.me);
            Some(self.vclock.clone())
        } else {
            None
        };
        let data = DataMsg {
            id,
            group: self.view.group,
            vclock,
            span,
            payload,
        };
        let mut step = Step::empty();
        // Put it on the wire to every peer: build the envelope once and
        // clone handles from it (with a byte payload a clone is a
        // reference-count bump, not a copy of the data).
        let peers = self.view.peers(self.me);
        match self.reliability {
            Reliability::BestEffort => {
                if let Some((last, rest)) = peers.split_last() {
                    let wire = GcMsg::Data(data.clone());
                    for peer in rest {
                        step.outbound.push((*peer, wire.clone()));
                    }
                    step.outbound.push((*last, wire));
                }
            }
            Reliability::Reliable { .. } => {
                let wire = GcMsg::Data(data.clone());
                for peer in &peers {
                    step.outbound.push((*peer, wire.clone()));
                }
                // The retransmit buffer takes the envelope itself — no
                // extra deep clone of the payload.
                self.rel_out.insert(
                    id,
                    RelOut {
                        msg: wire,
                        pending: peers.iter().copied().collect(),
                        last_sent: now,
                        retries: 0,
                    },
                );
            }
        }
        self.seen.insert(id);
        match self.ordering {
            Ordering::Total => {
                // Hold even our own message until sequenced.
                self.total_waiting.insert(id, data);
                if let Some(seq_node) = self.sequencer() {
                    if seq_node == self.me {
                        step.merge(self.sequence_msg(id, now));
                    } else {
                        step.outbound.push((seq_node, GcMsg::SeqRequest { id }));
                    }
                }
                step.merge(self.try_deliver_total());
            }
            Ordering::Fifo => {
                // Track our own FIFO counter so symmetry holds.
                self.fifo_expected.insert(self.me, id.seq + 1);
                step.delivered.push(Delivery {
                    id,
                    span: data.span,
                    payload: data.payload,
                });
            }
            Ordering::Causal | Ordering::Unordered => {
                step.delivered.push(Delivery {
                    id,
                    span: data.span,
                    payload: data.payload,
                });
            }
        }
        step
    }

    /// Handles an incoming wire message.
    pub fn on_message(&mut self, from: NodeId, msg: GcMsg<P>, now: SimTime) -> Step<P> {
        match msg {
            GcMsg::Data(data) => self.on_data(from, data, now),
            GcMsg::Ack { id } => {
                if let Some(out) = self.rel_out.get_mut(&id) {
                    out.pending.remove(&from);
                    if out.pending.is_empty() {
                        self.rel_out.remove(&id);
                    }
                }
                Step::empty()
            }
            GcMsg::SeqRequest { id } => {
                if self.sequencer() == Some(self.me) {
                    self.sequence_msg(id, now)
                } else {
                    Step::empty()
                }
            }
            GcMsg::SeqAssign {
                assign_id,
                id,
                total,
            } => {
                let mut step = Step::empty();
                if self.is_reliable() {
                    step.outbound.push((from, GcMsg::Ack { id: assign_id }));
                }
                if self.seen.insert(assign_id) {
                    self.total_assignments.insert(total, id);
                    step.merge(self.try_deliver_total());
                }
                step
            }
            // RPC traffic is handled by the RPC engine; app commands and
            // view changes by the actor adapter.
            GcMsg::RpcRequest { .. }
            | GcMsg::RpcReply { .. }
            | GcMsg::AppCmd(_)
            | GcMsg::InstallView(_) => Step::empty(),
        }
    }

    fn is_reliable(&self) -> bool {
        matches!(self.reliability, Reliability::Reliable { .. })
    }

    fn on_data(&mut self, from: NodeId, data: DataMsg<P>, _now: SimTime) -> Step<P> {
        let mut step = Step::empty();
        if self.is_reliable() {
            step.outbound.push((from, GcMsg::Ack { id: data.id }));
        }
        if !self.seen.insert(data.id) {
            return step; // duplicate (retransmission)
        }
        match self.ordering {
            Ordering::Unordered => {
                step.delivered.push(Delivery {
                    id: data.id,
                    span: data.span,
                    payload: data.payload,
                });
            }
            Ordering::Fifo => {
                self.fifo_holdback
                    .insert((data.id.origin, data.id.seq), data);
                step.merge(self.try_deliver_fifo());
            }
            Ordering::Causal => {
                self.causal_holdback.push(data);
                step.merge(self.try_deliver_causal());
            }
            Ordering::Total => {
                self.total_waiting.insert(data.id, data);
                step.merge(self.try_deliver_total());
            }
        }
        step
    }

    /// Periodic maintenance: retransmits unacked reliable messages.
    pub fn on_tick(&mut self, now: SimTime) -> Step<P> {
        let Reliability::Reliable {
            retransmit_after,
            max_retries,
        } = self.reliability
        else {
            return Step::empty();
        };
        let mut step = Step::empty();
        let mut give_up = Vec::new();
        for (id, out) in self.rel_out.iter_mut() {
            if now.saturating_since(out.last_sent) >= retransmit_after {
                if out.retries >= max_retries {
                    give_up.push(*id);
                    continue;
                }
                out.retries += 1;
                out.last_sent = now;
                for peer in &out.pending {
                    // Retransmitting the stored envelope to each
                    // still-pending peer is the protocol; under
                    // `GcMsg<Payload>` this clone is a handle bump.
                    // odp-check: allow(hot-path-alloc)
                    step.outbound.push((*peer, out.msg.clone()));
                }
            }
        }
        for id in give_up {
            self.rel_out.remove(&id);
        }
        step
    }

    /// Number of reliable messages still awaiting acks.
    pub fn unacked(&self) -> usize {
        self.rel_out.len()
    }

    /// Number of messages parked in hold-back queues.
    pub fn held_back(&self) -> usize {
        self.fifo_holdback.len() + self.causal_holdback.len() + self.total_waiting.len()
    }

    fn sequence_msg(&mut self, id: MsgId, now: SimTime) -> Step<P> {
        let mut step = Step::empty();
        if !self.seq_already_assigned.insert(id) {
            return step; // duplicate SeqRequest
        }
        let total = self.seq_next_assign;
        self.seq_next_assign += 1;
        self.seq_assign_counter += 1;
        let assign_id = MsgId {
            origin: self.me,
            // Assignment ids live in a separate space from data ids; offset
            // far above any realistic data sequence to avoid collision.
            seq: u64::MAX / 2 + self.seq_assign_counter,
        };
        let assign = GcMsg::SeqAssign {
            assign_id,
            id,
            total,
        };
        let peers = self.view.peers(self.me);
        for peer in &peers {
            step.outbound.push((*peer, assign.clone()));
        }
        if self.is_reliable() {
            self.rel_out.insert(
                assign_id,
                RelOut {
                    msg: assign,
                    pending: peers.into_iter().collect(),
                    last_sent: now,
                    retries: 0,
                },
            );
        }
        // Apply locally.
        self.seen.insert(assign_id);
        self.total_assignments.insert(total, id);
        step.merge(self.try_deliver_total());
        step
    }

    fn try_deliver_fifo(&mut self) -> Step<P> {
        let mut step = Step::empty();
        loop {
            let mut delivered_any = false;
            let keys: Vec<(NodeId, u64)> = self.fifo_holdback.keys().copied().collect();
            for (origin, seq) in keys {
                let expected = self.fifo_expected.entry(origin).or_insert(1);
                if seq == *expected {
                    let Some(data) = self.fifo_holdback.remove(&(origin, seq)) else {
                        continue;
                    };
                    *expected += 1;
                    step.delivered.push(Delivery {
                        id: data.id,
                        span: data.span,
                        payload: data.payload,
                    });
                    delivered_any = true;
                }
            }
            if !delivered_any {
                break;
            }
        }
        step
    }

    fn try_deliver_causal(&mut self) -> Step<P> {
        let mut step = Step::empty();
        loop {
            // Causal senders always stamp a clock; a clockless message
            // (a peer in the wrong mode) is simply never deliverable.
            let idx = self.causal_holdback.iter().position(|m| {
                m.vclock
                    .as_ref()
                    .is_some_and(|clock| self.vclock.deliverable(clock, m.id.origin))
            });
            let Some(idx) = idx else { break };
            let data = self.causal_holdback.remove(idx);
            self.vclock.tick(data.id.origin);
            step.delivered.push(Delivery {
                id: data.id,
                span: data.span,
                payload: data.payload,
            });
        }
        step
    }

    fn try_deliver_total(&mut self) -> Step<P> {
        let mut step = Step::empty();
        while let Some(&id) = self.total_assignments.get(&self.total_next_deliver) {
            let Some(data) = self.total_waiting.remove(&id) else {
                break; // assignment known but data not yet arrived
            };
            self.total_assignments.remove(&self.total_next_deliver);
            self.total_next_deliver += 1;
            step.delivered.push(Delivery {
                id: data.id,
                span: data.span,
                payload: data.payload,
            });
        }
        step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(n: u32) -> View {
        View::initial(GroupId(0), (0..n).map(NodeId))
    }

    fn engines(n: u32, ord: Ordering, rel: Reliability) -> Vec<GroupEngine<&'static str>> {
        (0..n)
            .map(|i| GroupEngine::new(NodeId(i), view(n), ord, rel))
            .collect()
    }

    /// Delivers every outbound message immediately (in-order network).
    fn pump(engines: &mut [GroupEngine<&'static str>], mut step: Step<&'static str>, from: NodeId) {
        let mut queue: Vec<(NodeId, NodeId, GcMsg<&'static str>)> = step
            .outbound
            .drain(..)
            .map(|(to, m)| (from, to, m))
            .collect();
        while let Some((src, dst, msg)) = queue.pop() {
            let s = engines[dst.0 as usize].on_message(src, msg, SimTime::ZERO);
            for (to, m) in s.outbound {
                queue.push((dst, to, m));
            }
        }
    }

    #[test]
    fn unordered_delivers_everything_once() {
        let mut es = engines(3, Ordering::Unordered, Reliability::BestEffort);
        let step = es[0].mcast("x", SimTime::ZERO);
        assert_eq!(step.delivered.len(), 1);
        assert_eq!(step.outbound.len(), 2);
        for (to, msg) in step.outbound {
            let got = es[to.0 as usize].on_message(NodeId(0), msg, SimTime::ZERO);
            assert_eq!(got.delivered.len(), 1);
        }
    }

    #[test]
    fn fifo_holds_back_out_of_order_messages() {
        let mut es = engines(2, Ordering::Fifo, Reliability::BestEffort);
        let s1 = es[0].mcast("first", SimTime::ZERO);
        let s2 = es[0].mcast("second", SimTime::ZERO);
        let m1 = s1.outbound.into_iter().next().unwrap().1;
        let m2 = s2.outbound.into_iter().next().unwrap().1;
        // Deliver out of order.
        let got2 = es[1].on_message(NodeId(0), m2, SimTime::ZERO);
        assert!(got2.delivered.is_empty(), "second held back");
        assert_eq!(es[1].held_back(), 1);
        let got1 = es[1].on_message(NodeId(0), m1, SimTime::ZERO);
        let texts: Vec<_> = got1.delivered.iter().map(|d| d.payload).collect();
        assert_eq!(texts, vec!["first", "second"]);
        assert_eq!(es[1].held_back(), 0);
    }

    #[test]
    fn causal_respects_happens_before_across_senders() {
        let mut es = engines(3, Ordering::Causal, Reliability::BestEffort);
        // Node 0 multicasts A.
        let sa = es[0].mcast("A", SimTime::ZERO);
        let a_msgs: Vec<_> = sa.outbound;
        // Node 1 receives A, then multicasts B (so B causally follows A).
        let a_to_1 = a_msgs
            .iter()
            .find(|(to, _)| *to == NodeId(1))
            .unwrap()
            .1
            .clone();
        es[1].on_message(NodeId(0), a_to_1, SimTime::ZERO);
        let sb = es[1].mcast("B", SimTime::ZERO);
        let b_to_2 = sb
            .outbound
            .iter()
            .find(|(to, _)| *to == NodeId(2))
            .unwrap()
            .1
            .clone();
        // Node 2 receives B *before* A: must hold B back.
        let got_b = es[2].on_message(NodeId(1), b_to_2, SimTime::ZERO);
        assert!(got_b.delivered.is_empty(), "B must wait for A");
        let a_to_2 = a_msgs
            .iter()
            .find(|(to, _)| *to == NodeId(2))
            .unwrap()
            .1
            .clone();
        let got_a = es[2].on_message(NodeId(0), a_to_2, SimTime::ZERO);
        let texts: Vec<_> = got_a.delivered.iter().map(|d| d.payload).collect();
        assert_eq!(texts, vec!["A", "B"]);
    }

    #[test]
    fn total_order_is_identical_everywhere() {
        let mut es = engines(3, Ordering::Total, Reliability::BestEffort);
        // Nodes 1 and 2 multicast concurrently.
        let s1 = es[1].mcast("from1", SimTime::ZERO);
        let s2 = es[2].mcast("from2", SimTime::ZERO);
        pump(&mut es, s1, NodeId(1));
        pump(&mut es, s2, NodeId(2));
        // All members (including senders) should have delivered both in the
        // same order. We can't see deliveries from pump; instead check no
        // hold-back remains and sequencer assigned 2.
        for e in &es {
            assert_eq!(e.held_back(), 0, "member {} still holding", e.me());
        }
        assert_eq!(es[0].seq_next_assign, 3);
    }

    #[test]
    fn total_order_sender_waits_for_sequencer() {
        let mut es = engines(2, Ordering::Total, Reliability::BestEffort);
        // Node 1 (not the sequencer) multicasts: no self-delivery yet.
        let s = es[1].mcast("x", SimTime::ZERO);
        assert!(s.delivered.is_empty());
        assert_eq!(es[1].held_back(), 1);
        pump(&mut es, s, NodeId(1));
        assert_eq!(es[1].held_back(), 0);
    }

    #[test]
    fn reliable_mode_acks_and_stops_retransmitting() {
        let rel = Reliability::Reliable {
            retransmit_after: SimDuration::from_millis(10),
            max_retries: 3,
        };
        let mut es = engines(2, Ordering::Unordered, rel);
        let step = es[0].mcast("x", SimTime::ZERO);
        assert_eq!(es[0].unacked(), 1);
        let (_, data) = step.outbound.into_iter().next().unwrap();
        let got = es[1].on_message(NodeId(0), data, SimTime::ZERO);
        // Receiver acks.
        let (ack_to, ack) = got.outbound.into_iter().next().unwrap();
        assert_eq!(ack_to, NodeId(0));
        es[0].on_message(NodeId(1), ack, SimTime::ZERO);
        assert_eq!(es[0].unacked(), 0);
        // No retransmissions afterwards.
        let tick = es[0].on_tick(SimTime::from_millis(100));
        assert!(tick.outbound.is_empty());
    }

    #[test]
    fn reliable_mode_retransmits_until_acked() {
        let rel = Reliability::Reliable {
            retransmit_after: SimDuration::from_millis(10),
            max_retries: 3,
        };
        let mut es = engines(2, Ordering::Unordered, rel);
        let _ = es[0].mcast("x", SimTime::ZERO);
        let t1 = es[0].on_tick(SimTime::from_millis(11));
        assert_eq!(t1.outbound.len(), 1, "one retransmission");
        // Duplicate deliveries are suppressed at the receiver.
        let (_, m) = t1.outbound.into_iter().next().unwrap();
        let first = es[1].on_message(NodeId(0), m.clone(), SimTime::ZERO);
        assert_eq!(first.delivered.len(), 1);
        let dup = es[1].on_message(NodeId(0), m, SimTime::ZERO);
        assert!(dup.delivered.is_empty(), "duplicate suppressed");
    }

    #[test]
    fn reliable_mode_gives_up_after_max_retries() {
        let rel = Reliability::Reliable {
            retransmit_after: SimDuration::from_millis(10),
            max_retries: 2,
        };
        let mut es = engines(2, Ordering::Unordered, rel);
        let _ = es[0].mcast("x", SimTime::ZERO);
        assert_eq!(es[0].on_tick(SimTime::from_millis(11)).outbound.len(), 1);
        assert_eq!(es[0].on_tick(SimTime::from_millis(22)).outbound.len(), 1);
        // Third tick: retries exhausted, message dropped from rel state.
        assert!(es[0].on_tick(SimTime::from_millis(33)).outbound.is_empty());
        assert_eq!(es[0].unacked(), 0);
    }

    #[test]
    fn payload_fanout_shares_one_buffer() {
        use odp_fabric::Payload;
        let view = View::initial(GroupId(0), (0..5).map(NodeId));
        let mut e: GroupEngine<Payload> = GroupEngine::new(
            NodeId(0),
            view,
            Ordering::Unordered,
            Reliability::reliable(),
        );
        let payload = Payload::from_slice(b"one big frame, many receivers");
        let step = e.mcast(payload.clone(), SimTime::ZERO);
        assert_eq!(step.outbound.len(), 4);
        for (_, msg) in &step.outbound {
            let GcMsg::Data(d) = msg else {
                panic!("expected data")
            };
            assert!(d.payload.ptr_eq(&payload), "fan-out must not deep-copy");
        }
        assert!(step.delivered[0].payload.ptr_eq(&payload));
        // Retransmissions clone handles out of the stored envelope too.
        let tick = e.on_tick(SimTime::from_millis(500));
        assert_eq!(tick.outbound.len(), 4);
        for (_, msg) in &tick.outbound {
            let GcMsg::Data(d) = msg else {
                panic!("expected data")
            };
            assert!(d.payload.ptr_eq(&payload), "retransmit must not deep-copy");
        }
    }

    #[test]
    fn install_view_drops_holdback_of_departed_members() {
        let mut es = engines(3, Ordering::Fifo, Reliability::BestEffort);
        // Node 0 sends seq 1 and 2; node 2 receives only seq 2 (held back).
        let s1 = es[0].mcast("one", SimTime::ZERO);
        let s2 = es[0].mcast("two", SimTime::ZERO);
        drop(s1);
        let m2 = s2
            .outbound
            .iter()
            .find(|(to, _)| *to == NodeId(2))
            .unwrap()
            .1
            .clone();
        es[2].on_message(NodeId(0), m2, SimTime::ZERO);
        assert_eq!(es[2].held_back(), 1);
        // Node 0 leaves; the stuck message is discarded.
        let new_view = View::initial(GroupId(0), [NodeId(1), NodeId(2)]);
        es[2].install_view(new_view);
        assert_eq!(es[2].held_back(), 0);
    }
}
