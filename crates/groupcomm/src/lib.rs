#![warn(missing_docs)]

//! # odp-groupcomm — group communication for CSCW middleware
//!
//! Implements the group support the paper (§4.2.2 iv) demands of ODP:
//! group membership with views, reliable multicast under four delivery
//! orderings (unordered, FIFO, causal, total), and group RPC with
//! deadlines, quorums and simultaneous group invocation.
//!
//! The protocol logic is *sans-IO* ([`multicast::GroupEngine`],
//! [`rpc::RpcEngine`]): pure state machines returning messages to send and
//! payloads to deliver. [`actors::GroupActor`] hosts them on the
//! [`odp_sim`] substrate.
//!
//! ```
//! use odp_groupcomm::membership::{GroupId, Membership};
//! use odp_sim::net::NodeId;
//!
//! let mut m = Membership::new();
//! let view = m.create(GroupId(7), [NodeId(0), NodeId(1), NodeId(2)]);
//! assert_eq!(view.leader(), Some(NodeId(0)));
//! ```

pub mod actors;
pub mod membership;
pub mod multicast;
pub mod rpc;
pub mod vclock;
pub mod wire;

pub use actors::{GroupActor, GroupApp, RpcConfig};
pub use membership::{GroupId, Membership, MembershipError, View, ViewId};
pub use multicast::{DataMsg, Delivery, GcMsg, GroupEngine, MsgId, Ordering, Reliability, Step};
pub use rpc::{CallOutcome, CallStatus, Quorum, RpcEngine};
pub use vclock::{Causality, VectorClock};
pub use wire::{from_fabric, to_fabric};
