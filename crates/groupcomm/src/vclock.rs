//! Vector clocks for causal ordering of group messages.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use odp_sim::net::NodeId;
use serde::{Deserialize, Serialize};

/// The causal relationship between two vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Causality {
    /// The clocks are identical.
    Equal,
    /// Left happened strictly before right.
    Before,
    /// Left happened strictly after right.
    After,
    /// Neither dominates: the events are concurrent.
    Concurrent,
}

/// A vector clock: per-node event counters with pointwise ordering.
///
/// # Examples
///
/// ```
/// use odp_groupcomm::vclock::{Causality, VectorClock};
/// use odp_sim::net::NodeId;
///
/// let mut a = VectorClock::new();
/// a.tick(NodeId(0));
/// let mut b = a.clone();
/// b.tick(NodeId(1));
/// assert_eq!(a.compare(&b), Causality::Before);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VectorClock {
    entries: BTreeMap<NodeId, u64>,
}

impl VectorClock {
    /// Creates an empty clock (all entries implicitly zero).
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// Reads the counter for `node` (zero if absent).
    pub fn get(&self, node: NodeId) -> u64 {
        self.entries.get(&node).copied().unwrap_or(0)
    }

    /// Increments the counter for `node` and returns the new value.
    pub fn tick(&mut self, node: NodeId) -> u64 {
        let e = self.entries.entry(node).or_insert(0);
        *e += 1;
        *e
    }

    /// Pointwise maximum with `other` (the merge on message receipt).
    pub fn merge(&mut self, other: &VectorClock) {
        for (&node, &count) in &other.entries {
            let e = self.entries.entry(node).or_insert(0);
            *e = (*e).max(count);
        }
    }

    /// Compares two clocks under the pointwise partial order.
    pub fn compare(&self, other: &VectorClock) -> Causality {
        let mut less = false;
        let mut greater = false;
        let nodes: std::collections::BTreeSet<NodeId> = self
            .entries
            .keys()
            .chain(other.entries.keys())
            .copied()
            .collect();
        for node in nodes {
            match self.get(node).cmp(&other.get(node)) {
                Ordering::Less => less = true,
                Ordering::Greater => greater = true,
                Ordering::Equal => {}
            }
        }
        match (less, greater) {
            (false, false) => Causality::Equal,
            (true, false) => Causality::Before,
            (false, true) => Causality::After,
            (true, true) => Causality::Concurrent,
        }
    }

    /// True if `self` happened before or equals `other`.
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        matches!(self.compare(other), Causality::Before | Causality::Equal)
    }

    /// The causal-delivery condition: a message stamped `msg` from `sender`
    /// is deliverable at a process whose clock is `self` iff it is the next
    /// event from `sender` (`msg[sender] == self[sender] + 1`) and the
    /// sender had seen nothing the receiver has not
    /// (`msg[k] <= self[k]` for all `k != sender`).
    pub fn deliverable(&self, msg: &VectorClock, sender: NodeId) -> bool {
        if msg.get(sender) != self.get(sender) + 1 {
            return false;
        }
        msg.entries
            .iter()
            .all(|(&node, &count)| node == sender || count <= self.get(node))
    }

    /// Iterates `(node, count)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.entries.iter().map(|(&n, &c)| (n, c))
    }

    /// Rebuilds a clock from explicit `(node, count)` entries (wire
    /// decoding); zero counts are dropped so the representation stays
    /// canonical.
    pub fn from_entries(entries: impl IntoIterator<Item = (NodeId, u64)>) -> Self {
        VectorClock {
            entries: entries.into_iter().filter(|&(_, c)| c != 0).collect(),
        }
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if every entry is zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (node, count)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{node}:{count}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clocks_are_equal() {
        assert_eq!(
            VectorClock::new().compare(&VectorClock::new()),
            Causality::Equal
        );
    }

    #[test]
    fn tick_orders_events() {
        let mut a = VectorClock::new();
        a.tick(NodeId(0));
        let mut b = a.clone();
        b.tick(NodeId(0));
        assert_eq!(a.compare(&b), Causality::Before);
        assert_eq!(b.compare(&a), Causality::After);
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
    }

    #[test]
    fn concurrent_events_detected() {
        let mut a = VectorClock::new();
        a.tick(NodeId(0));
        let mut b = VectorClock::new();
        b.tick(NodeId(1));
        assert_eq!(a.compare(&b), Causality::Concurrent);
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.tick(NodeId(0));
        a.tick(NodeId(0));
        let mut b = VectorClock::new();
        b.tick(NodeId(1));
        a.merge(&b);
        assert_eq!(a.get(NodeId(0)), 2);
        assert_eq!(a.get(NodeId(1)), 1);
        assert!(b.dominated_by(&a));
    }

    #[test]
    fn delivery_condition_requires_next_from_sender() {
        // Receiver has seen 1 event from node 0.
        let mut local = VectorClock::new();
        local.tick(NodeId(0));
        // Message stamped as node 0's second event.
        let mut msg = local.clone();
        msg.tick(NodeId(0));
        assert!(local.deliverable(&msg, NodeId(0)));
        // A gap (third event) is not deliverable yet.
        let mut gap = msg.clone();
        gap.tick(NodeId(0));
        assert!(!local.deliverable(&gap, NodeId(0)));
    }

    #[test]
    fn delivery_condition_requires_causal_context() {
        // Node 1 sends a message after having seen node 0's event, but the
        // receiver has not seen node 0's event yet.
        let mut sender = VectorClock::new();
        sender.tick(NodeId(0)); // saw node 0's event
        sender.tick(NodeId(1)); // its own send
        let local = VectorClock::new();
        assert!(!local.deliverable(&sender, NodeId(1)));
        // After seeing node 0's event it becomes deliverable.
        let mut local2 = VectorClock::new();
        local2.tick(NodeId(0));
        assert!(local2.deliverable(&sender, NodeId(1)));
    }

    #[test]
    fn display_is_compact() {
        let mut a = VectorClock::new();
        a.tick(NodeId(2));
        a.tick(NodeId(0));
        assert_eq!(a.to_string(), "[n0:1,n2:1]");
    }
}
