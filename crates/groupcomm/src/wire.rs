//! Wire codecs for the group-communication envelope: every [`GcMsg`]
//! variant (and the types it carries) round-trips through `odp-net`'s
//! length-prefixed framing, so group actors run over real transports.
//!
//! All decoders are total: corrupt input yields a typed
//! [`NetError`], never a panic. Impls live here (not in `odp-net`)
//! per the orphan rule.

use odp_fabric::Payload;
use odp_net::error::NetError;
use odp_net::wire::{payload_as, payload_of, WireCodec, WireReader};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use odp_telemetry::span::SpanContext;

use crate::membership::{GroupId, View, ViewId};
use crate::multicast::{DataMsg, GcMsg, MsgId};
use crate::vclock::VectorClock;

impl WireCodec for GroupId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(GroupId(u32::decode(r)?))
    }
}

impl WireCodec for ViewId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(ViewId(u64::decode(r)?))
    }
}

impl WireCodec for View {
    fn encode(&self, out: &mut Vec<u8>) {
        self.group.encode(out);
        self.id.encode(out);
        self.members.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(View {
            group: GroupId::decode(r)?,
            id: ViewId::decode(r)?,
            members: WireCodec::decode(r)?,
        })
    }
}

impl WireCodec for MsgId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.origin.encode(out);
        self.seq.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(MsgId {
            origin: NodeId::decode(r)?,
            seq: u64::decode(r)?,
        })
    }
}

impl WireCodec for VectorClock {
    fn encode(&self, out: &mut Vec<u8>) {
        let entries: Vec<(NodeId, u64)> = self.iter().collect();
        entries.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let entries: Vec<(NodeId, u64)> = WireCodec::decode(r)?;
        Ok(VectorClock::from_entries(entries))
    }
}

impl<P: WireCodec> WireCodec for DataMsg<P> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.group.encode(out);
        self.vclock.encode(out);
        self.span.encode(out);
        self.payload.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(DataMsg {
            id: MsgId::decode(r)?,
            group: GroupId::decode(r)?,
            vclock: Option::<VectorClock>::decode(r)?,
            span: Option::<SpanContext>::decode(r)?,
            payload: P::decode(r)?,
        })
    }
}

impl<P: WireCodec> WireCodec for GcMsg<P> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GcMsg::Data(d) => {
                0u8.encode(out);
                d.encode(out);
            }
            GcMsg::Ack { id } => {
                1u8.encode(out);
                id.encode(out);
            }
            GcMsg::SeqRequest { id } => {
                2u8.encode(out);
                id.encode(out);
            }
            GcMsg::SeqAssign {
                assign_id,
                id,
                total,
            } => {
                3u8.encode(out);
                assign_id.encode(out);
                id.encode(out);
                total.encode(out);
            }
            GcMsg::RpcRequest {
                call,
                execute_at,
                span,
                payload,
            } => {
                4u8.encode(out);
                call.encode(out);
                execute_at.encode(out);
                span.encode(out);
                payload.encode(out);
            }
            GcMsg::RpcReply {
                call,
                span,
                payload,
            } => {
                5u8.encode(out);
                call.encode(out);
                span.encode(out);
                payload.encode(out);
            }
            GcMsg::AppCmd(p) => {
                6u8.encode(out);
                p.encode(out);
            }
            GcMsg::InstallView(v) => {
                7u8.encode(out);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match u8::decode(r)? {
            0 => Ok(GcMsg::Data(DataMsg::decode(r)?)),
            1 => Ok(GcMsg::Ack {
                id: MsgId::decode(r)?,
            }),
            2 => Ok(GcMsg::SeqRequest {
                id: MsgId::decode(r)?,
            }),
            3 => Ok(GcMsg::SeqAssign {
                assign_id: MsgId::decode(r)?,
                id: MsgId::decode(r)?,
                total: u64::decode(r)?,
            }),
            4 => Ok(GcMsg::RpcRequest {
                call: u64::decode(r)?,
                execute_at: Option::<SimTime>::decode(r)?,
                span: Option::<SpanContext>::decode(r)?,
                payload: P::decode(r)?,
            }),
            5 => Ok(GcMsg::RpcReply {
                call: u64::decode(r)?,
                span: Option::<SpanContext>::decode(r)?,
                payload: P::decode(r)?,
            }),
            6 => Ok(GcMsg::AppCmd(P::decode(r)?)),
            7 => Ok(GcMsg::InstallView(View::decode(r)?)),
            tag => Err(NetError::BadTag {
                what: "GcMsg",
                tag: tag as u32,
            }),
        }
    }
}

/// Re-envelopes a typed message onto the byte fabric: each payload is
/// replaced by its own wire encoding wrapped in a cheaply-cloneable
/// [`Payload`]. Because the payload is the *trailing* field of every
/// payload-carrying variant (`Data`, `RpcRequest`, `RpcReply`,
/// `AppCmd`) and [`Payload`] encodes verbatim,
/// `encode(to_fabric(&m))` is byte-identical to `encode(&m)` — group
/// engines can run on `GcMsg<Payload>` (fan-out clones become
/// reference-count bumps) without changing a single wire frame.
pub fn to_fabric<P: WireCodec>(msg: &GcMsg<P>) -> GcMsg<Payload> {
    match msg {
        GcMsg::Data(d) => GcMsg::Data(DataMsg {
            id: d.id,
            group: d.group,
            vclock: d.vclock.clone(),
            span: d.span,
            payload: payload_of(&d.payload),
        }),
        GcMsg::Ack { id } => GcMsg::Ack { id: *id },
        GcMsg::SeqRequest { id } => GcMsg::SeqRequest { id: *id },
        GcMsg::SeqAssign {
            assign_id,
            id,
            total,
        } => GcMsg::SeqAssign {
            assign_id: *assign_id,
            id: *id,
            total: *total,
        },
        GcMsg::RpcRequest {
            call,
            execute_at,
            span,
            payload,
        } => GcMsg::RpcRequest {
            call: *call,
            execute_at: *execute_at,
            span: *span,
            payload: payload_of(payload),
        },
        GcMsg::RpcReply {
            call,
            span,
            payload,
        } => GcMsg::RpcReply {
            call: *call,
            span: *span,
            payload: payload_of(payload),
        },
        GcMsg::AppCmd(p) => GcMsg::AppCmd(payload_of(p)),
        GcMsg::InstallView(v) => GcMsg::InstallView(v.clone()),
    }
}

/// Inverse of [`to_fabric`]: decodes each byte payload back into `P`.
///
/// # Errors
///
/// Any [`NetError`] from decoding a payload that is not a valid `P`
/// encoding (including trailing garbage).
pub fn from_fabric<P: WireCodec>(msg: &GcMsg<Payload>) -> Result<GcMsg<P>, NetError> {
    Ok(match msg {
        GcMsg::Data(d) => GcMsg::Data(DataMsg {
            id: d.id,
            group: d.group,
            vclock: d.vclock.clone(),
            span: d.span,
            payload: payload_as(&d.payload)?,
        }),
        GcMsg::Ack { id } => GcMsg::Ack { id: *id },
        GcMsg::SeqRequest { id } => GcMsg::SeqRequest { id: *id },
        GcMsg::SeqAssign {
            assign_id,
            id,
            total,
        } => GcMsg::SeqAssign {
            assign_id: *assign_id,
            id: *id,
            total: *total,
        },
        GcMsg::RpcRequest {
            call,
            execute_at,
            span,
            payload,
        } => GcMsg::RpcRequest {
            call: *call,
            execute_at: *execute_at,
            span: *span,
            payload: payload_as(payload)?,
        },
        GcMsg::RpcReply {
            call,
            span,
            payload,
        } => GcMsg::RpcReply {
            call: *call,
            span: *span,
            payload: payload_as(payload)?,
        },
        GcMsg::AppCmd(p) => GcMsg::AppCmd(payload_as(p)?),
        GcMsg::InstallView(v) => GcMsg::InstallView(v.clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(value: &T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let back: T = WireReader::new(&buf).finish().expect("decodes");
        assert_eq!(&back, value);
    }

    #[test]
    fn vector_clock_roundtrips_and_stays_canonical() {
        let mut vc = VectorClock::new();
        vc.tick(NodeId(3));
        vc.tick(NodeId(3));
        vc.tick(NodeId(7));
        roundtrip(&vc);
        // Zero entries are dropped on decode, keeping equality exact.
        let rebuilt = VectorClock::from_entries([(NodeId(1), 0), (NodeId(2), 5)]);
        assert_eq!(rebuilt.get(NodeId(1)), 0);
        assert_eq!(rebuilt.len(), 1);
    }

    fn sample_msgs() -> Vec<GcMsg<String>> {
        let id = MsgId {
            origin: NodeId(2),
            seq: 9,
        };
        let mut vc = VectorClock::new();
        vc.tick(NodeId(0));
        let span = SpanContext::root_with(0xaa, 0xbb);
        vec![
            GcMsg::Data(DataMsg {
                id,
                group: GroupId(1),
                vclock: Some(vc),
                span: Some(span),
                payload: "hello".to_owned(),
            }),
            GcMsg::Ack { id },
            GcMsg::SeqRequest { id },
            GcMsg::SeqAssign {
                assign_id: MsgId {
                    origin: NodeId(0),
                    seq: 1,
                },
                id,
                total: 17,
            },
            GcMsg::RpcRequest {
                call: 4,
                execute_at: Some(SimTime::from_millis(250)),
                span: None,
                payload: "req".to_owned(),
            },
            GcMsg::RpcReply {
                call: 4,
                span: Some(span.child_with(0xcc)),
                payload: "rep".to_owned(),
            },
            GcMsg::AppCmd("cmd".to_owned()),
            GcMsg::InstallView(View::initial(GroupId(3), [NodeId(0), NodeId(4)])),
        ]
    }

    #[test]
    fn every_gcmsg_variant_roundtrips() {
        for msg in &sample_msgs() {
            roundtrip(msg);
        }
    }

    #[test]
    fn fabric_reenveloping_is_byte_identical() {
        for msg in &sample_msgs() {
            let fabric = to_fabric(msg);
            let mut typed_bytes = Vec::new();
            msg.encode(&mut typed_bytes);
            let mut fabric_bytes = Vec::new();
            fabric.encode(&mut fabric_bytes);
            assert_eq!(typed_bytes, fabric_bytes, "frames diverge for {msg:?}");
            let back: GcMsg<String> = from_fabric(&fabric).expect("payloads decode");
            assert_eq!(&back, msg);
        }
    }

    #[test]
    fn from_fabric_rejects_garbage_payloads() {
        let msg: GcMsg<Payload> = GcMsg::AppCmd(Payload::from_slice(&[0xff])); // not a String encoding
        assert!(from_fabric::<String>(&msg).is_err());
    }

    #[test]
    fn unknown_tag_is_a_typed_error() {
        let mut buf = Vec::new();
        99u8.encode(&mut buf);
        let got: Result<GcMsg<String>, NetError> = WireReader::new(&buf).finish();
        assert_eq!(
            got,
            Err(NetError::BadTag {
                what: "GcMsg",
                tag: 99
            })
        );
    }
}
