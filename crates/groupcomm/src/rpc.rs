//! Group RPC: invoke an operation on every member of a group and collect
//! replies under a deadline and a quorum policy.
//!
//! The paper (§4.2.2 iv) notes "there is also a requirement to support
//! group invocation, for example if a group of cameras are to be started
//! simultaneously in a conference", and that "group RPC protocols are
//! required which provide bounded real-time performance". The engine here
//! supports both: plain collect-replies invocations, and *group
//! invocations* carrying an agreed future execution instant so all members
//! act simultaneously (skew is then bounded by clock agreement, which in
//! the simulator is exact).

use std::collections::BTreeMap;
use std::fmt;

use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use odp_telemetry::span::SpanContext;

use crate::multicast::GcMsg;

/// How many replies complete a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quorum {
    /// Every target must reply.
    All,
    /// Strictly more than half of the targets.
    Majority,
    /// The first reply completes the call.
    First,
    /// At least `n` replies.
    AtLeast(usize),
}

impl Quorum {
    /// The number of replies needed for `targets` targets.
    pub fn required(self, targets: usize) -> usize {
        match self {
            Quorum::All => targets,
            Quorum::Majority => targets / 2 + 1,
            Quorum::First => 1.min(targets),
            Quorum::AtLeast(n) => n.min(targets),
        }
    }
}

/// Why a call finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallStatus {
    /// The quorum was met.
    Completed,
    /// The deadline passed first.
    TimedOut,
}

/// The result of a finished group call.
#[derive(Debug, Clone)]
pub struct CallOutcome<P> {
    /// Correlation id.
    pub call: u64,
    /// Completed or timed out.
    pub status: CallStatus,
    /// Replies gathered (keyed by responder), possibly short of quorum on
    /// timeout.
    pub replies: BTreeMap<NodeId, P>,
    /// When the call started.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
}

impl<P> CallOutcome<P> {
    /// Elapsed call duration.
    pub fn elapsed(&self) -> SimDuration {
        self.finished.saturating_since(self.started)
    }
}

/// Error returned for operations on unknown calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownCall(pub u64);

impl fmt::Display for UnknownCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown rpc call {}", self.0)
    }
}

impl std::error::Error for UnknownCall {}

struct PendingCall<P> {
    targets: Vec<NodeId>,
    required: usize,
    replies: BTreeMap<NodeId, P>,
    started: SimTime,
    deadline: SimTime,
}

/// The caller-side group RPC engine (sans-IO, like
/// [`crate::multicast::GroupEngine`]).
///
/// # Examples
///
/// ```
/// use odp_groupcomm::rpc::{Quorum, RpcEngine};
/// use odp_sim::net::NodeId;
/// use odp_sim::time::{SimDuration, SimTime};
///
/// let mut rpc: RpcEngine<&str> = RpcEngine::new(NodeId(0));
/// let (call, out) = rpc.invoke(
///     vec![NodeId(1), NodeId(2)], "start-camera", None,
///     SimTime::ZERO, SimDuration::from_millis(100), Quorum::All,
/// );
/// assert_eq!(out.len(), 2);
/// assert!(rpc.on_reply(call, NodeId(1), "ok", SimTime::from_millis(10)).is_none());
/// let done = rpc.on_reply(call, NodeId(2), "ok", SimTime::from_millis(12)).unwrap();
/// assert_eq!(done.replies.len(), 2);
/// ```
pub struct RpcEngine<P> {
    me: NodeId,
    next_call: u64,
    pending: BTreeMap<u64, PendingCall<P>>,
}

impl<P: Clone> RpcEngine<P> {
    /// Creates an engine for caller `me`.
    pub fn new(me: NodeId) -> Self {
        RpcEngine {
            me,
            next_call: 0,
            pending: BTreeMap::new(),
        }
    }

    /// The caller's node id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Starts a call to `targets`. Returns the call id and the request
    /// messages to transmit. `execute_at` turns the call into a *group
    /// invocation*: responders should perform the action exactly then.
    pub fn invoke(
        &mut self,
        targets: Vec<NodeId>,
        payload: P,
        execute_at: Option<SimTime>,
        now: SimTime,
        timeout: SimDuration,
        quorum: Quorum,
    ) -> (u64, Vec<(NodeId, GcMsg<P>)>) {
        self.invoke_spanned(targets, payload, execute_at, now, timeout, quorum, None)
    }

    /// Like [`RpcEngine::invoke`], but piggybacks a telemetry span (the
    /// caller's `rpc.call` root) on every request so responders can
    /// parent their serve spans under it.
    #[allow(clippy::too_many_arguments)]
    pub fn invoke_spanned(
        &mut self,
        targets: Vec<NodeId>,
        payload: P,
        execute_at: Option<SimTime>,
        now: SimTime,
        timeout: SimDuration,
        quorum: Quorum,
        span: Option<SpanContext>,
    ) -> (u64, Vec<(NodeId, GcMsg<P>)>) {
        let call = self.next_call;
        self.next_call += 1;
        let required = quorum.required(targets.len());
        let outbound = targets
            .iter()
            .map(|&t| {
                (
                    t,
                    GcMsg::RpcRequest {
                        call,
                        execute_at,
                        span,
                        payload: payload.clone(),
                    },
                )
            })
            .collect();
        self.pending.insert(
            call,
            PendingCall {
                targets,
                required,
                replies: BTreeMap::new(),
                started: now,
                deadline: now + timeout,
            },
        );
        (call, outbound)
    }

    /// Feeds one reply. Returns the outcome when the quorum is met, or a
    /// timed-out outcome if the reply arrived past the deadline (bounded
    /// real-time semantics: a late answer is a wrong answer).
    pub fn on_reply(
        &mut self,
        call: u64,
        from: NodeId,
        payload: P,
        now: SimTime,
    ) -> Option<CallOutcome<P>> {
        // Take the call out; it goes back in only while still waiting.
        let mut pending = self.pending.remove(&call)?;
        if !pending.targets.contains(&from) {
            self.pending.insert(call, pending);
            return None; // stray reply
        }
        if now >= pending.deadline {
            return Some(CallOutcome {
                call,
                status: CallStatus::TimedOut,
                replies: pending.replies,
                started: pending.started,
                finished: now,
            });
        }
        pending.replies.insert(from, payload);
        if pending.replies.len() >= pending.required {
            Some(CallOutcome {
                call,
                status: CallStatus::Completed,
                replies: pending.replies,
                started: pending.started,
                finished: now,
            })
        } else {
            self.pending.insert(call, pending);
            None
        }
    }

    /// Expires calls whose deadline has passed; returns their (timed-out)
    /// outcomes.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<CallOutcome<P>> {
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| now >= p.deadline)
            .map(|(&c, _)| c)
            .collect();
        expired
            .into_iter()
            .filter_map(|call| {
                let p = self.pending.remove(&call)?;
                Some(CallOutcome {
                    call,
                    status: CallStatus::TimedOut,
                    replies: p.replies,
                    started: p.started,
                    finished: now,
                })
            })
            .collect()
    }

    /// The earliest pending deadline (to drive timer scheduling).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.values().map(|p| p.deadline).min()
    }

    /// Number of in-flight calls.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn quorum_arithmetic() {
        assert_eq!(Quorum::All.required(5), 5);
        assert_eq!(Quorum::Majority.required(5), 3);
        assert_eq!(Quorum::Majority.required(4), 3);
        assert_eq!(Quorum::First.required(5), 1);
        assert_eq!(Quorum::First.required(0), 0);
        assert_eq!(Quorum::AtLeast(3).required(5), 3);
        assert_eq!(Quorum::AtLeast(9).required(5), 5);
    }

    #[test]
    fn majority_completes_early() {
        let mut rpc: RpcEngine<&str> = RpcEngine::new(NodeId(0));
        let (call, out) = rpc.invoke(
            vec![NodeId(1), NodeId(2), NodeId(3)],
            "q",
            None,
            t(0),
            SimDuration::from_millis(100),
            Quorum::Majority,
        );
        assert_eq!(out.len(), 3);
        assert!(rpc.on_reply(call, NodeId(1), "a", t(5)).is_none());
        let done = rpc.on_reply(call, NodeId(3), "b", t(7)).unwrap();
        assert_eq!(done.status, CallStatus::Completed);
        assert_eq!(done.replies.len(), 2);
        assert_eq!(done.elapsed(), SimDuration::from_millis(7));
        assert_eq!(rpc.in_flight(), 0);
        // A late reply to a finished call is ignored.
        assert!(rpc.on_reply(call, NodeId(2), "c", t(9)).is_none());
    }

    #[test]
    fn deadline_times_out_with_partial_replies() {
        let mut rpc: RpcEngine<&str> = RpcEngine::new(NodeId(0));
        let (call, _) = rpc.invoke(
            vec![NodeId(1), NodeId(2)],
            "q",
            None,
            t(0),
            SimDuration::from_millis(50),
            Quorum::All,
        );
        rpc.on_reply(call, NodeId(1), "a", t(10));
        assert_eq!(rpc.next_deadline(), Some(t(50)));
        let expired = rpc.on_tick(t(50));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].status, CallStatus::TimedOut);
        assert_eq!(expired[0].replies.len(), 1);
    }

    #[test]
    fn stray_replies_are_ignored() {
        let mut rpc: RpcEngine<&str> = RpcEngine::new(NodeId(0));
        let (call, _) = rpc.invoke(
            vec![NodeId(1)],
            "q",
            None,
            t(0),
            SimDuration::from_millis(50),
            Quorum::All,
        );
        assert!(rpc
            .on_reply(call, NodeId(9), "not-a-target", t(1))
            .is_none());
        assert!(rpc.on_reply(99, NodeId(1), "unknown-call", t(1)).is_none());
        assert_eq!(rpc.in_flight(), 1);
    }

    #[test]
    fn group_invocation_carries_execute_at() {
        let mut rpc: RpcEngine<&str> = RpcEngine::new(NodeId(0));
        let when = t(500);
        let (_, out) = rpc.invoke(
            vec![NodeId(1)],
            "start",
            Some(when),
            t(0),
            SimDuration::from_millis(50),
            Quorum::All,
        );
        match &out[0].1 {
            GcMsg::RpcRequest { execute_at, .. } => assert_eq!(*execute_at, Some(when)),
            other => panic!("unexpected message {other:?}"),
        }
    }
}
