//! Group membership: named groups, views, and view changes.
//!
//! The paper (§4.2.2 iv) calls for group support in the computational
//! viewpoint. We model a group as a sequence of *views* — numbered
//! snapshots of the membership — in the style of view-synchronous systems:
//! every join or leave produces a new view, and protocol engines are
//! (re-)configured by installing views.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use odp_sim::net::NodeId;
use serde::{Deserialize, Serialize};

/// Names a process group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Numbers successive views of one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ViewId(pub u64);

/// One snapshot of a group's membership.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    /// The group this view belongs to.
    pub group: GroupId,
    /// Monotonically increasing view number.
    pub id: ViewId,
    /// The members, in ascending node order.
    pub members: BTreeSet<NodeId>,
}

impl View {
    /// Creates the initial view (id 0) of a group.
    pub fn initial(group: GroupId, members: impl IntoIterator<Item = NodeId>) -> Self {
        View {
            group,
            id: ViewId(0),
            members: members.into_iter().collect(),
        }
    }

    /// True if `node` is a member of this view.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Members other than `me`, in ascending order.
    pub fn peers(&self, me: NodeId) -> Vec<NodeId> {
        self.members.iter().copied().filter(|&n| n != me).collect()
    }

    /// The lowest-numbered member; used as the default sequencer / RPC
    /// coordinator. `None` for an empty view.
    pub fn leader(&self) -> Option<NodeId> {
        self.members.iter().next().copied()
    }

    /// Membership delta from `self` to `newer`: `(joined, departed)`,
    /// each in ascending node order. Lets view consumers (placement
    /// controllers, awareness buses) react to churn without replaying
    /// the whole membership history.
    pub fn diff(&self, newer: &View) -> (Vec<NodeId>, Vec<NodeId>) {
        let joined = newer
            .members
            .iter()
            .copied()
            .filter(|n| !self.members.contains(n))
            .collect();
        let departed = self
            .members
            .iter()
            .copied()
            .filter(|n| !newer.members.contains(n))
            .collect();
        (joined, departed)
    }
}

/// Errors from membership operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipError {
    /// The group does not exist.
    UnknownGroup(GroupId),
    /// The node is already a member.
    AlreadyMember(NodeId),
    /// The node is not a member.
    NotMember(NodeId),
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembershipError::UnknownGroup(g) => write!(f, "unknown group {g}"),
            MembershipError::AlreadyMember(n) => write!(f, "{n} is already a member"),
            MembershipError::NotMember(n) => write!(f, "{n} is not a member"),
        }
    }
}

impl std::error::Error for MembershipError {}

/// A registry of groups and their current views.
///
/// # Examples
///
/// ```
/// use odp_groupcomm::membership::{GroupId, Membership};
/// use odp_sim::net::NodeId;
///
/// let mut m = Membership::new();
/// let g = m.create(GroupId(1), [NodeId(0), NodeId(1)]);
/// assert_eq!(g.size(), 2);
/// let v = m.join(GroupId(1), NodeId(2))?;
/// assert_eq!(v.id.0, 1);
/// assert!(v.contains(NodeId(2)));
/// # Ok::<(), odp_groupcomm::membership::MembershipError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Membership {
    groups: BTreeMap<GroupId, View>,
}

impl Membership {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Membership::default()
    }

    /// Creates (or replaces) a group with an initial membership and
    /// returns its initial view.
    pub fn create(&mut self, group: GroupId, members: impl IntoIterator<Item = NodeId>) -> View {
        let view = View::initial(group, members);
        self.groups.insert(group, view.clone());
        view
    }

    /// The current view of `group`.
    ///
    /// # Errors
    ///
    /// Returns [`MembershipError::UnknownGroup`] if the group was never
    /// created.
    pub fn view(&self, group: GroupId) -> Result<&View, MembershipError> {
        self.groups
            .get(&group)
            .ok_or(MembershipError::UnknownGroup(group))
    }

    /// Adds `node`, producing and returning the next view.
    ///
    /// # Errors
    ///
    /// Returns an error if the group is unknown or the node is already a
    /// member.
    pub fn join(&mut self, group: GroupId, node: NodeId) -> Result<View, MembershipError> {
        let view = self
            .groups
            .get_mut(&group)
            .ok_or(MembershipError::UnknownGroup(group))?;
        if !view.members.insert(node) {
            return Err(MembershipError::AlreadyMember(node));
        }
        view.id = ViewId(view.id.0 + 1);
        Ok(view.clone())
    }

    /// Removes `node`, producing and returning the next view.
    ///
    /// # Errors
    ///
    /// Returns an error if the group is unknown or the node is not a
    /// member.
    pub fn leave(&mut self, group: GroupId, node: NodeId) -> Result<View, MembershipError> {
        let view = self
            .groups
            .get_mut(&group)
            .ok_or(MembershipError::UnknownGroup(group))?;
        if !view.members.remove(&node) {
            return Err(MembershipError::NotMember(node));
        }
        view.id = ViewId(view.id.0 + 1);
        Ok(view.clone())
    }

    /// All known group ids in ascending order.
    pub fn group_ids(&self) -> Vec<GroupId> {
        self.groups.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn create_and_query() {
        let mut m = Membership::new();
        m.create(GroupId(1), nodes(&[3, 1, 2]));
        let v = m.view(GroupId(1)).unwrap();
        assert_eq!(v.id, ViewId(0));
        assert_eq!(v.size(), 3);
        assert_eq!(v.leader(), Some(NodeId(1)));
        assert_eq!(v.peers(NodeId(2)), nodes(&[1, 3]));
    }

    #[test]
    fn view_diff_reports_churn_in_order() {
        let old = View::initial(GroupId(1), nodes(&[1, 2, 3]));
        let new = View {
            group: GroupId(1),
            id: ViewId(1),
            members: nodes(&[2, 4, 5]).into_iter().collect(),
        };
        let (joined, departed) = old.diff(&new);
        assert_eq!(joined, nodes(&[4, 5]));
        assert_eq!(departed, nodes(&[1, 3]));
        let (none_joined, none_departed) = old.diff(&old);
        assert!(none_joined.is_empty() && none_departed.is_empty());
    }

    #[test]
    fn join_and_leave_advance_the_view() {
        let mut m = Membership::new();
        m.create(GroupId(1), nodes(&[0]));
        let v1 = m.join(GroupId(1), NodeId(1)).unwrap();
        assert_eq!(v1.id, ViewId(1));
        let v2 = m.leave(GroupId(1), NodeId(0)).unwrap();
        assert_eq!(v2.id, ViewId(2));
        assert_eq!(v2.leader(), Some(NodeId(1)));
    }

    #[test]
    fn join_twice_is_an_error() {
        let mut m = Membership::new();
        m.create(GroupId(1), nodes(&[0]));
        assert_eq!(
            m.join(GroupId(1), NodeId(0)),
            Err(MembershipError::AlreadyMember(NodeId(0)))
        );
    }

    #[test]
    fn leave_nonmember_is_an_error() {
        let mut m = Membership::new();
        m.create(GroupId(1), nodes(&[0]));
        assert_eq!(
            m.leave(GroupId(1), NodeId(5)),
            Err(MembershipError::NotMember(NodeId(5)))
        );
    }

    #[test]
    fn unknown_group_is_an_error() {
        let m = Membership::new();
        assert_eq!(
            m.view(GroupId(9)).unwrap_err(),
            MembershipError::UnknownGroup(GroupId(9))
        );
    }

    #[test]
    fn empty_view_has_no_leader() {
        let v = View::initial(GroupId(0), []);
        assert_eq!(v.leader(), None);
        assert_eq!(v.size(), 0);
    }
}
