//! Property tests for placement policies and migration.

use odp_mgmt::placement::{place, PlacementPolicy, UsagePattern};
use odp_sim::net::NodeId;
use odp_sim::time::SimDuration;
use proptest::prelude::*;

/// A deterministic pseudo-random but symmetric latency function derived
/// from the node ids.
fn latency(a: NodeId, b: NodeId) -> SimDuration {
    if a == b {
        return SimDuration::ZERO;
    }
    let (lo, hi) = (a.0.min(b.0) as u64, a.0.max(b.0) as u64);
    SimDuration::from_millis(1 + (lo * 7 + hi * 13) % 50)
}

fn mean_cost(usage: &UsagePattern, node: NodeId) -> f64 {
    let total = usage.total().max(1) as f64;
    usage
        .iter()
        .map(|(site, count)| latency(site, node).as_micros() as f64 * count as f64)
        .sum::<f64>()
        / total
}

fn max_cost(usage: &UsagePattern, node: NodeId) -> f64 {
    usage
        .iter()
        .filter(|&(_, c)| c > 0)
        .map(|(site, _)| latency(site, node).as_micros() as f64)
        .fold(0.0, f64::max)
}

proptest! {
    /// GroupMean picks a candidate achieving the minimum weighted mean
    /// (verified by brute force), and GroupMinMax the minimum worst-case.
    #[test]
    fn policies_are_brute_force_optimal(
        accesses in prop::collection::vec((0u32..6, 1u64..50), 1..12),
        n_candidates in 1u32..6,
    ) {
        let mut usage = UsagePattern::new();
        for &(site, count) in &accesses {
            usage.record(NodeId(site), count);
        }
        let candidates: Vec<NodeId> = (0..n_candidates).map(NodeId).collect();
        let mean_pick = place(PlacementPolicy::GroupMean, &usage, &candidates, NodeId(0), &latency);
        let best_mean = candidates.iter().map(|&c| mean_cost(&usage, c)).fold(f64::INFINITY, f64::min);
        prop_assert!((mean_cost(&usage, mean_pick.node) - best_mean).abs() < 1e-9);

        let minmax_pick = place(PlacementPolicy::GroupMinMax, &usage, &candidates, NodeId(0), &latency);
        let best_max = candidates.iter().map(|&c| max_cost(&usage, c)).fold(f64::INFINITY, f64::min);
        prop_assert!((max_cost(&usage, minmax_pick.node) - best_max).abs() < 1e-9);
    }

    /// StaticHome always stays home, whatever the usage.
    #[test]
    fn static_home_is_usage_blind(
        accesses in prop::collection::vec((0u32..6, 1u64..50), 0..12),
        home in 0u32..6,
    ) {
        let mut usage = UsagePattern::new();
        for &(site, count) in &accesses {
            usage.record(NodeId(site), count);
        }
        let candidates: Vec<NodeId> = (0..6).map(NodeId).collect();
        let pick = place(PlacementPolicy::StaticHome, &usage, &candidates, NodeId(home), &latency);
        prop_assert_eq!(pick.node, NodeId(home));
    }

    /// Aging halves counts and never resurrects cleared sites.
    #[test]
    fn aging_is_monotone(
        accesses in prop::collection::vec((0u32..6, 1u64..100), 1..12),
        ages in 1usize..8,
    ) {
        let mut usage = UsagePattern::new();
        for &(site, count) in &accesses {
            usage.record(NodeId(site), count);
        }
        let mut totals = vec![usage.total()];
        for _ in 0..ages {
            usage.age();
            totals.push(usage.total());
        }
        for w in totals.windows(2) {
            prop_assert!(w[1] <= w[0], "aging never grows usage");
        }
        // Enough aging drives everything to zero.
        for _ in 0..64 {
            usage.age();
        }
        prop_assert_eq!(usage.total(), 0);
        prop_assert!(usage.sites().is_empty());
    }

    /// The decay curve is exact floor-halving: any count reaches zero in
    /// precisely `floor(log2(n)) + 1` agings — in particular a count of
    /// 1 decays to 0 in one step rather than sticking forever.
    #[test]
    fn decay_curve_is_floor_halving(count in 1u64..1_000_000) {
        let mut usage = UsagePattern::new();
        usage.record(NodeId(0), count);
        let mut expected = count;
        let mut steps = 0u32;
        while usage.count(NodeId(0)) > 0 {
            usage.age();
            expected /= 2;
            steps += 1;
            prop_assert_eq!(usage.count(NodeId(0)), expected);
            prop_assert!(steps <= 64, "decay must terminate");
        }
        prop_assert_eq!(steps, 64 - count.leading_zeros());
        prop_assert!(usage.sites().is_empty(), "site dropped at zero");
    }
}
