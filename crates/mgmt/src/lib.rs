#![warn(missing_docs)]

//! # odp-mgmt — group-aware management for ODP
//!
//! Implements the paper's management requirement (§4.2.1): node, capsule
//! and cluster management with **group-aware placement policies**.
//!
//! - [`model`] — nodes ⊃ capsules ⊃ clusters ⊃ managed objects;
//! - [`placement`] — usage patterns and the three policies of experiment
//!   E9 (static-home baseline, group-mean, group-minmax);
//! - [`migration`] — usage-driven cluster re-location with hysteresis and
//!   a bytes-over-bandwidth transfer-cost model.
//!
//! ```
//! use odp_mgmt::placement::{place, PlacementPolicy, UsagePattern};
//! use odp_sim::net::NodeId;
//! use odp_sim::time::SimDuration;
//!
//! let mut usage = UsagePattern::new();
//! usage.record(NodeId(2), 50);
//! let latency = |a: NodeId, b: NodeId| {
//!     SimDuration::from_millis(10 * (a.0 as i64 - b.0 as i64).unsigned_abs())
//! };
//! let p = place(
//!     PlacementPolicy::GroupMean, &usage,
//!     &[NodeId(0), NodeId(1), NodeId(2)], NodeId(0), &latency,
//! );
//! assert_eq!(p.node, NodeId(2));
//! ```

pub mod migration;
pub mod model;
pub mod placement;

pub use migration::{MigrationEvent, MigrationManager};
pub use model::{CapsuleId, ClusterId, EngRegistry, ManagedObjectId, MgmtError};
pub use placement::{place, Placement, PlacementPolicy, UsagePattern};
