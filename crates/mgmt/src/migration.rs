//! Cluster migration driven by observed usage: the "subsequent
//! re-location" half of the paper's management requirement.
//!
//! The [`MigrationManager`] watches per-cluster [`UsagePattern`]s,
//! re-evaluates the placement policy periodically, and migrates a cluster
//! when the predicted improvement beats a hysteresis threshold (to avoid
//! thrashing on noisy workloads). Migration cost is modelled as the
//! cluster's bytes over the inter-node bandwidth.

use std::collections::BTreeMap;

use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};

use crate::model::{ClusterId, EngRegistry, MgmtError};
use crate::placement::{place, Placement, PlacementPolicy, UsagePattern};

/// A migration the policy recommends but that has not yet happened.
///
/// Produced by [`MigrationManager::plan`]; a live controller streams the
/// cluster's state to `to` and only then calls
/// [`MigrationManager::commit`], so a failed transfer leaves the
/// registry untouched (the cluster simply stays at `from`).
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationPlan {
    /// The cluster to move.
    pub cluster: ClusterId,
    /// Its current node.
    pub from: NodeId,
    /// The recommended new home.
    pub to: NodeId,
    /// Bytes that must travel (cluster size at planning time).
    pub bytes: usize,
    /// Predicted cost at `from` under the scoring policy (us).
    pub cost_before_us: f64,
    /// Predicted cost at `to` under the scoring policy (us).
    pub cost_after_us: f64,
}

/// One completed migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationEvent {
    /// The cluster moved.
    pub cluster: ClusterId,
    /// Where from.
    pub from: NodeId,
    /// Where to.
    pub to: NodeId,
    /// When the decision was taken.
    pub at: SimTime,
    /// Transfer time (cluster bytes over bandwidth).
    pub transfer: SimDuration,
    /// Predicted cost before (us).
    pub cost_before_us: f64,
    /// Predicted cost after (us).
    pub cost_after_us: f64,
}

/// Watches usage and migrates clusters.
///
/// # Examples
///
/// ```
/// use odp_mgmt::migration::MigrationManager;
/// use odp_mgmt::placement::PlacementPolicy;
///
/// let mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.2, 1_000_000);
/// assert_eq!(mgr.events().len(), 0);
/// ```
#[derive(Debug)]
pub struct MigrationManager {
    policy: PlacementPolicy,
    /// Migrate only if the new cost is at least this fraction lower.
    hysteresis: f64,
    /// Inter-node transfer bandwidth in bytes/s (migration cost model).
    bytes_per_sec: u64,
    usage: BTreeMap<ClusterId, UsagePattern>,
    homes: BTreeMap<ClusterId, NodeId>,
    events: Vec<MigrationEvent>,
}

impl MigrationManager {
    /// Creates a manager using `policy`, requiring a relative improvement
    /// of `hysteresis` (e.g. `0.2` = 20%) before moving anything.
    pub fn new(policy: PlacementPolicy, hysteresis: f64, bytes_per_sec: u64) -> Self {
        MigrationManager {
            policy,
            hysteresis: hysteresis.max(0.0),
            bytes_per_sec: bytes_per_sec.max(1),
            usage: BTreeMap::new(),
            homes: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Declares a cluster's creator node (home).
    pub fn set_home(&mut self, cluster: ClusterId, home: NodeId) {
        self.homes.insert(cluster, home);
    }

    /// Records accesses to a cluster from a site.
    ///
    /// `n` need not be a raw count: a latency-aware controller records
    /// the *observed microseconds the site spent waiting* so the mean
    /// policy minimises observed (not modelled) group latency.
    pub fn record_access(&mut self, cluster: ClusterId, site: NodeId, n: u64) {
        self.usage.entry(cluster).or_default().record(site, n);
    }

    /// Forgets every count recorded from `site`, across all clusters.
    /// Called on session-membership churn so a departed editor stops
    /// anchoring placement.
    pub fn forget_site(&mut self, site: NodeId) {
        for pattern in self.usage.values_mut() {
            pattern.forget(site);
        }
        self.usage.retain(|_, p| p.total() > 0);
    }

    /// The observed pattern for a cluster.
    pub fn usage(&self, cluster: ClusterId) -> Option<&UsagePattern> {
        self.usage.get(&cluster)
    }

    /// Ages every pattern (call periodically so old behaviour fades).
    pub fn age_usage(&mut self) {
        for pattern in self.usage.values_mut() {
            pattern.age();
        }
    }

    /// Completed migrations.
    pub fn events(&self) -> &[MigrationEvent] {
        &self.events
    }

    /// Re-evaluates one cluster without touching the registry: returns
    /// the recommended move, or `None` if the cluster should stay put.
    ///
    /// The decision is fully deterministic. Candidates are scored by
    /// [`place`], whose tie-break prefers the home node and then the
    /// lowest node id; the hysteresis gate itself breaks the remaining
    /// tie *against* moving — a candidate whose predicted cost equals
    /// the hysteresis-discounted current cost exactly
    /// (`cost_after == current * (1 - hysteresis)`) does **not**
    /// trigger a migration. Equal evidence therefore always yields the
    /// status quo, so replays and DPOR re-executions cannot diverge on
    /// boundary workloads.
    ///
    /// # Errors
    ///
    /// Propagates registry errors (unknown cluster, no capsule on the
    /// target node).
    pub fn plan(
        &mut self,
        cluster: ClusterId,
        registry: &EngRegistry,
        latency: &dyn Fn(NodeId, NodeId) -> SimDuration,
    ) -> Result<Option<MigrationPlan>, MgmtError> {
        let objects = registry.cluster_objects(cluster);
        let current = match objects.first() {
            Some(&obj) => registry.node_of(obj)?,
            None => return Ok(None), // empty cluster: nothing to move
        };
        let usage = self.usage.entry(cluster).or_default();
        let home = self.homes.get(&cluster).copied().unwrap_or(current);
        let candidates = registry.candidate_nodes();
        let Placement {
            node: target,
            cost_us: cost_after,
        } = place(self.policy, usage, &candidates, home, latency);
        if target == current {
            return Ok(None);
        }
        // Cost at the current node under the same scoring.
        let current_cost = place(self.policy, usage, &[current], home, latency).cost_us;
        if current_cost <= 0.0 || cost_after >= current_cost * (1.0 - self.hysteresis) {
            return Ok(None); // not worth the move (ties keep the status quo)
        }
        Ok(Some(MigrationPlan {
            cluster,
            from: current,
            to: target,
            bytes: registry.cluster_bytes(cluster),
            cost_before_us: current_cost,
            cost_after_us: cost_after,
        }))
    }

    /// Executes a previously returned [`MigrationPlan`]: moves the
    /// cluster in `registry`, records the [`MigrationEvent`] and
    /// returns it. Call only after the state transfer has actually
    /// succeeded; an aborted transfer simply drops the plan.
    ///
    /// # Errors
    ///
    /// Propagates registry errors (unknown cluster, no capsule on the
    /// target node).
    pub fn commit(
        &mut self,
        plan: &MigrationPlan,
        registry: &mut EngRegistry,
        now: SimTime,
    ) -> Result<MigrationEvent, MgmtError> {
        registry.migrate_cluster(plan.cluster, plan.to)?;
        let transfer = SimDuration::from_micros(
            (plan.bytes as u128 * 1_000_000 / self.bytes_per_sec as u128).min(u64::MAX as u128)
                as u64,
        );
        let event = MigrationEvent {
            cluster: plan.cluster,
            from: plan.from,
            to: plan.to,
            at: now,
            transfer,
            cost_before_us: plan.cost_before_us,
            cost_after_us: plan.cost_after_us,
        };
        self.events.push(event.clone());
        Ok(event)
    }

    /// Re-evaluates one cluster; migrates it in `registry` if the policy
    /// finds a sufficiently better node. Returns the event if it moved.
    ///
    /// Equivalent to [`plan`](Self::plan) immediately followed by
    /// [`commit`](Self::commit) — the offline path, where the transfer
    /// is assumed instantaneous and infallible.
    ///
    /// # Errors
    ///
    /// Propagates registry errors (unknown cluster, no capsule on the
    /// target node).
    pub fn evaluate(
        &mut self,
        cluster: ClusterId,
        registry: &mut EngRegistry,
        latency: &dyn Fn(NodeId, NodeId) -> SimDuration,
        now: SimTime,
    ) -> Result<Option<MigrationEvent>, MgmtError> {
        match self.plan(cluster, registry, latency)? {
            Some(plan) => self.commit(&plan, registry, now).map(Some),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ManagedObjectId;

    fn line_latency(a: NodeId, b: NodeId) -> SimDuration {
        SimDuration::from_millis(10 * (a.0 as i64 - b.0 as i64).unsigned_abs())
    }

    fn setup() -> (EngRegistry, ClusterId) {
        let mut reg = EngRegistry::new();
        for n in 0..3 {
            reg.create_capsule(NodeId(n));
        }
        let cap0 = crate::model::CapsuleId(0);
        let cluster = reg.create_cluster(cap0).unwrap();
        reg.create_object(ManagedObjectId(1), cluster, 1_000_000)
            .unwrap();
        (reg, cluster)
    }

    #[test]
    fn usage_shift_triggers_migration() {
        let (mut reg, cluster) = setup();
        let mut mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.2, 1_000_000);
        mgr.set_home(cluster, NodeId(0));
        mgr.record_access(cluster, NodeId(2), 100);
        let event = mgr
            .evaluate(cluster, &mut reg, &line_latency, SimTime::from_secs(1))
            .unwrap()
            .expect("should migrate");
        assert_eq!(event.from, NodeId(0));
        assert_eq!(event.to, NodeId(2));
        assert_eq!(event.transfer, SimDuration::from_secs(1), "1MB at 1MB/s");
        assert!(event.cost_after_us < event.cost_before_us);
        assert_eq!(reg.node_of(ManagedObjectId(1)).unwrap(), NodeId(2));
    }

    #[test]
    fn hysteresis_prevents_marginal_moves() {
        let (mut reg, cluster) = setup();
        // Require a 60% improvement.
        let mut mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.6, 1_000_000);
        mgr.set_home(cluster, NodeId(0));
        // Slightly more accesses from node 1 than node 0: mean cost at 1
        // is lower but not 60% lower.
        mgr.record_access(cluster, NodeId(0), 40);
        mgr.record_access(cluster, NodeId(1), 60);
        let event = mgr
            .evaluate(cluster, &mut reg, &line_latency, SimTime::ZERO)
            .unwrap();
        assert!(event.is_none(), "{event:?}");
    }

    #[test]
    fn stable_usage_does_not_thrash() {
        let (mut reg, cluster) = setup();
        let mut mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.2, 1_000_000);
        mgr.set_home(cluster, NodeId(0));
        mgr.record_access(cluster, NodeId(2), 100);
        mgr.evaluate(cluster, &mut reg, &line_latency, SimTime::ZERO)
            .unwrap();
        // Same usage again: already at the optimum, no further event.
        let again = mgr
            .evaluate(cluster, &mut reg, &line_latency, SimTime::ZERO)
            .unwrap();
        assert!(again.is_none());
        assert_eq!(mgr.events().len(), 1);
    }

    #[test]
    fn empty_cluster_is_ignored() {
        let mut reg = EngRegistry::new();
        let cap = reg.create_capsule(NodeId(0));
        let cluster = reg.create_cluster(cap).unwrap();
        let mut mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.2, 1_000);
        assert!(mgr
            .evaluate(cluster, &mut reg, &line_latency, SimTime::ZERO)
            .unwrap()
            .is_none());
    }

    #[test]
    fn plan_does_not_touch_the_registry() {
        let (mut reg, cluster) = setup();
        let mut mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.2, 1_000_000);
        mgr.set_home(cluster, NodeId(0));
        mgr.record_access(cluster, NodeId(2), 100);
        let plan = mgr
            .plan(cluster, &reg, &line_latency)
            .unwrap()
            .expect("recommends a move");
        assert_eq!((plan.from, plan.to), (NodeId(0), NodeId(2)));
        assert_eq!(plan.bytes, 1_000_000);
        // Nothing moved and no event recorded until commit.
        assert_eq!(reg.node_of(ManagedObjectId(1)).unwrap(), NodeId(0));
        assert!(mgr.events().is_empty());
        let event = mgr.commit(&plan, &mut reg, SimTime::from_secs(2)).unwrap();
        assert_eq!(reg.node_of(ManagedObjectId(1)).unwrap(), NodeId(2));
        assert_eq!(event.transfer, SimDuration::from_secs(1), "1MB at 1MB/s");
        assert_eq!(mgr.events().len(), 1);
    }

    #[test]
    fn equal_cost_tie_keeps_the_status_quo() {
        // Zero hysteresis and a usage pattern that scores nodes 0 and 2
        // identically: the boundary condition (cost_after == current)
        // must deterministically not migrate.
        let (mut reg, cluster) = setup();
        let mut mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.0, 1_000_000);
        // Home is node 1 but the cluster currently sits at node 0, so
        // place's own tie-break (prefer home) recommends a *different*
        // node at *exactly equal* cost: symmetric accesses make every
        // node score (0+20)/2 = (10+10)/2 = 10 ms.
        mgr.set_home(cluster, NodeId(1));
        mgr.record_access(cluster, NodeId(0), 1);
        mgr.record_access(cluster, NodeId(2), 1);
        // cost_after == current_cost: the >= hysteresis gate must keep
        // the status quo (the old strict > let equal evidence thrash).
        for _ in 0..3 {
            assert!(mgr
                .evaluate(cluster, &mut reg, &line_latency, SimTime::ZERO)
                .unwrap()
                .is_none());
        }
        assert!(mgr.events().is_empty());
    }

    #[test]
    fn forget_site_unanchors_a_departed_editor() {
        let (mut reg, cluster) = setup();
        let mut mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.2, 1_000_000);
        mgr.set_home(cluster, NodeId(0));
        mgr.record_access(cluster, NodeId(0), 100);
        mgr.record_access(cluster, NodeId(2), 60);
        // With site 0 dominant the cluster stays at 0 …
        assert!(mgr.plan(cluster, &reg, &line_latency).unwrap().is_none());
        // … but once site 0 leaves the session, the remaining usage is
        // all at site 2 and the plan follows it.
        mgr.forget_site(NodeId(0));
        let plan = mgr
            .plan(cluster, &reg, &line_latency)
            .unwrap()
            .expect("follows the surviving site");
        assert_eq!(plan.to, NodeId(2));
        let _ = &mut reg;
    }

    #[test]
    fn minmax_policy_balances_two_sites() {
        let (mut reg, cluster) = setup();
        let mut mgr = MigrationManager::new(PlacementPolicy::GroupMinMax, 0.2, 1_000_000);
        mgr.set_home(cluster, NodeId(0));
        mgr.record_access(cluster, NodeId(0), 100);
        mgr.record_access(cluster, NodeId(2), 1);
        let event = mgr
            .evaluate(cluster, &mut reg, &line_latency, SimTime::ZERO)
            .unwrap()
            .expect("moves to the middle");
        assert_eq!(event.to, NodeId(1));
    }
}
