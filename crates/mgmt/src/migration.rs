//! Cluster migration driven by observed usage: the "subsequent
//! re-location" half of the paper's management requirement.
//!
//! The [`MigrationManager`] watches per-cluster [`UsagePattern`]s,
//! re-evaluates the placement policy periodically, and migrates a cluster
//! when the predicted improvement beats a hysteresis threshold (to avoid
//! thrashing on noisy workloads). Migration cost is modelled as the
//! cluster's bytes over the inter-node bandwidth.

use std::collections::BTreeMap;

use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};

use crate::model::{ClusterId, EngRegistry, MgmtError};
use crate::placement::{place, Placement, PlacementPolicy, UsagePattern};

/// One completed migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationEvent {
    /// The cluster moved.
    pub cluster: ClusterId,
    /// Where from.
    pub from: NodeId,
    /// Where to.
    pub to: NodeId,
    /// When the decision was taken.
    pub at: SimTime,
    /// Transfer time (cluster bytes over bandwidth).
    pub transfer: SimDuration,
    /// Predicted cost before (us).
    pub cost_before_us: f64,
    /// Predicted cost after (us).
    pub cost_after_us: f64,
}

/// Watches usage and migrates clusters.
///
/// # Examples
///
/// ```
/// use odp_mgmt::migration::MigrationManager;
/// use odp_mgmt::placement::PlacementPolicy;
///
/// let mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.2, 1_000_000);
/// assert_eq!(mgr.events().len(), 0);
/// ```
#[derive(Debug)]
pub struct MigrationManager {
    policy: PlacementPolicy,
    /// Migrate only if the new cost is at least this fraction lower.
    hysteresis: f64,
    /// Inter-node transfer bandwidth in bytes/s (migration cost model).
    bytes_per_sec: u64,
    usage: BTreeMap<ClusterId, UsagePattern>,
    homes: BTreeMap<ClusterId, NodeId>,
    events: Vec<MigrationEvent>,
}

impl MigrationManager {
    /// Creates a manager using `policy`, requiring a relative improvement
    /// of `hysteresis` (e.g. `0.2` = 20%) before moving anything.
    pub fn new(policy: PlacementPolicy, hysteresis: f64, bytes_per_sec: u64) -> Self {
        MigrationManager {
            policy,
            hysteresis: hysteresis.max(0.0),
            bytes_per_sec: bytes_per_sec.max(1),
            usage: BTreeMap::new(),
            homes: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Declares a cluster's creator node (home).
    pub fn set_home(&mut self, cluster: ClusterId, home: NodeId) {
        self.homes.insert(cluster, home);
    }

    /// Records accesses to a cluster from a site.
    pub fn record_access(&mut self, cluster: ClusterId, site: NodeId, n: u64) {
        self.usage.entry(cluster).or_default().record(site, n);
    }

    /// The observed pattern for a cluster.
    pub fn usage(&self, cluster: ClusterId) -> Option<&UsagePattern> {
        self.usage.get(&cluster)
    }

    /// Ages every pattern (call periodically so old behaviour fades).
    pub fn age_usage(&mut self) {
        for pattern in self.usage.values_mut() {
            pattern.age();
        }
    }

    /// Completed migrations.
    pub fn events(&self) -> &[MigrationEvent] {
        &self.events
    }

    /// Re-evaluates one cluster; migrates it in `registry` if the policy
    /// finds a sufficiently better node. Returns the event if it moved.
    ///
    /// # Errors
    ///
    /// Propagates registry errors (unknown cluster, no capsule on the
    /// target node).
    pub fn evaluate(
        &mut self,
        cluster: ClusterId,
        registry: &mut EngRegistry,
        latency: &dyn Fn(NodeId, NodeId) -> SimDuration,
        now: SimTime,
    ) -> Result<Option<MigrationEvent>, MgmtError> {
        let objects = registry.cluster_objects(cluster);
        let current = match objects.first() {
            Some(&obj) => registry.node_of(obj)?,
            None => return Ok(None), // empty cluster: nothing to move
        };
        let usage = self.usage.entry(cluster).or_default();
        let home = self.homes.get(&cluster).copied().unwrap_or(current);
        let candidates = registry.candidate_nodes();
        let Placement {
            node: target,
            cost_us: cost_after,
        } = place(self.policy, usage, &candidates, home, latency);
        if target == current {
            return Ok(None);
        }
        // Cost at the current node under the same scoring.
        let current_cost = place(self.policy, usage, &[current], home, latency).cost_us;
        if current_cost <= 0.0 || cost_after > current_cost * (1.0 - self.hysteresis) {
            return Ok(None); // not worth the move
        }
        registry.migrate_cluster(cluster, target)?;
        let bytes = registry.cluster_bytes(cluster);
        let transfer = SimDuration::from_micros(
            (bytes as u128 * 1_000_000 / self.bytes_per_sec as u128).min(u64::MAX as u128) as u64,
        );
        let event = MigrationEvent {
            cluster,
            from: current,
            to: target,
            at: now,
            transfer,
            cost_before_us: current_cost,
            cost_after_us: cost_after,
        };
        self.events.push(event.clone());
        Ok(Some(event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ManagedObjectId;

    fn line_latency(a: NodeId, b: NodeId) -> SimDuration {
        SimDuration::from_millis(10 * (a.0 as i64 - b.0 as i64).unsigned_abs())
    }

    fn setup() -> (EngRegistry, ClusterId) {
        let mut reg = EngRegistry::new();
        for n in 0..3 {
            reg.create_capsule(NodeId(n));
        }
        let cap0 = crate::model::CapsuleId(0);
        let cluster = reg.create_cluster(cap0).unwrap();
        reg.create_object(ManagedObjectId(1), cluster, 1_000_000)
            .unwrap();
        (reg, cluster)
    }

    #[test]
    fn usage_shift_triggers_migration() {
        let (mut reg, cluster) = setup();
        let mut mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.2, 1_000_000);
        mgr.set_home(cluster, NodeId(0));
        mgr.record_access(cluster, NodeId(2), 100);
        let event = mgr
            .evaluate(cluster, &mut reg, &line_latency, SimTime::from_secs(1))
            .unwrap()
            .expect("should migrate");
        assert_eq!(event.from, NodeId(0));
        assert_eq!(event.to, NodeId(2));
        assert_eq!(event.transfer, SimDuration::from_secs(1), "1MB at 1MB/s");
        assert!(event.cost_after_us < event.cost_before_us);
        assert_eq!(reg.node_of(ManagedObjectId(1)).unwrap(), NodeId(2));
    }

    #[test]
    fn hysteresis_prevents_marginal_moves() {
        let (mut reg, cluster) = setup();
        // Require a 60% improvement.
        let mut mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.6, 1_000_000);
        mgr.set_home(cluster, NodeId(0));
        // Slightly more accesses from node 1 than node 0: mean cost at 1
        // is lower but not 60% lower.
        mgr.record_access(cluster, NodeId(0), 40);
        mgr.record_access(cluster, NodeId(1), 60);
        let event = mgr
            .evaluate(cluster, &mut reg, &line_latency, SimTime::ZERO)
            .unwrap();
        assert!(event.is_none(), "{event:?}");
    }

    #[test]
    fn stable_usage_does_not_thrash() {
        let (mut reg, cluster) = setup();
        let mut mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.2, 1_000_000);
        mgr.set_home(cluster, NodeId(0));
        mgr.record_access(cluster, NodeId(2), 100);
        mgr.evaluate(cluster, &mut reg, &line_latency, SimTime::ZERO)
            .unwrap();
        // Same usage again: already at the optimum, no further event.
        let again = mgr
            .evaluate(cluster, &mut reg, &line_latency, SimTime::ZERO)
            .unwrap();
        assert!(again.is_none());
        assert_eq!(mgr.events().len(), 1);
    }

    #[test]
    fn empty_cluster_is_ignored() {
        let mut reg = EngRegistry::new();
        let cap = reg.create_capsule(NodeId(0));
        let cluster = reg.create_cluster(cap).unwrap();
        let mut mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.2, 1_000);
        assert!(mgr
            .evaluate(cluster, &mut reg, &line_latency, SimTime::ZERO)
            .unwrap()
            .is_none());
    }

    #[test]
    fn minmax_policy_balances_two_sites() {
        let (mut reg, cluster) = setup();
        let mut mgr = MigrationManager::new(PlacementPolicy::GroupMinMax, 0.2, 1_000_000);
        mgr.set_home(cluster, NodeId(0));
        mgr.record_access(cluster, NodeId(0), 100);
        mgr.record_access(cluster, NodeId(2), 1);
        let event = mgr
            .evaluate(cluster, &mut reg, &line_latency, SimTime::ZERO)
            .unwrap()
            .expect("moves to the middle");
        assert_eq!(event.to, NodeId(1));
    }
}
