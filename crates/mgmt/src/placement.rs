//! Placement policies: where to put shared objects.
//!
//! §4.2.1 "Management": *"The most important issues identified to date are
//! that of the initial placement of objects (node management) and their
//! subsequent re-location (cluster management). ... objects are likely to
//! be shared by a group of users at geographically dispersed sites with
//! each site requiring similar real-time response. ... management
//! functions must be aware of the pattern of use of objects emanating
//! from groups. In more general terms, **group aware policies** are
//! required."*
//!
//! Policies score candidate nodes from a [`UsagePattern`] (per-site
//! access counts) and a latency function. The naive baseline ignores the
//! group; the group-aware policies minimise mean or worst-case weighted
//! latency across the group.

use std::collections::BTreeMap;

use odp_sim::net::NodeId;
use odp_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-site access counts for one object or cluster.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UsagePattern {
    counts: BTreeMap<NodeId, u64>,
}

impl UsagePattern {
    /// Creates an empty pattern.
    pub fn new() -> Self {
        UsagePattern::default()
    }

    /// Records `n` accesses from `site`.
    pub fn record(&mut self, site: NodeId, n: u64) {
        *self.counts.entry(site).or_insert(0) += n;
    }

    /// Accesses from `site`.
    pub fn count(&self, site: NodeId) -> u64 {
        self.counts.get(&site).copied().unwrap_or(0)
    }

    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Sites with any accesses, ascending.
    pub fn sites(&self) -> Vec<NodeId> {
        self.counts.keys().copied().collect()
    }

    /// Iterates `(site, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.counts.iter().map(|(&n, &c)| (n, c))
    }

    /// Forgets everything (sliding-window reset).
    pub fn clear(&mut self) {
        self.counts.clear();
    }

    /// Forgets one site's accesses (e.g. an editor leaving the session).
    pub fn forget(&mut self, site: NodeId) {
        self.counts.remove(&site);
    }

    /// Halves every count (exponential aging for shifting workloads).
    ///
    /// Integer halving floors, so a count of 1 decays to 0 and the site
    /// is dropped from the pattern — any finite count reaches zero
    /// within `⌈log2(n)⌉ + 1` agings and a silent workload eventually
    /// yields an empty pattern. The regression tests pin this curve.
    pub fn age(&mut self) {
        for c in self.counts.values_mut() {
            *c /= 2;
        }
        self.counts.retain(|_, c| *c > 0);
    }
}

/// A placement decision: the chosen node and its score (lower is better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Where to put the object/cluster.
    pub node: NodeId,
    /// The policy's cost for that node, in microseconds.
    pub cost_us: f64,
}

/// How candidates are scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Ignore the group: keep the object at its creator's node.
    /// (The naive baseline of E9.)
    StaticHome,
    /// Minimise the access-weighted **mean** latency across the group.
    GroupMean,
    /// Minimise the **worst** per-site latency among sites that access
    /// the object ("each site requiring similar real-time response").
    GroupMinMax,
}

/// Picks a node for an object under `policy`.
///
/// `home` is the creator's node (used by [`PlacementPolicy::StaticHome`]
/// and as the tie-breaker). `latency(a, b)` must return the one-way
/// latency between nodes.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn place(
    policy: PlacementPolicy,
    usage: &UsagePattern,
    candidates: &[NodeId],
    home: NodeId,
    latency: &dyn Fn(NodeId, NodeId) -> SimDuration,
) -> Placement {
    assert!(!candidates.is_empty(), "no candidate nodes");
    match policy {
        PlacementPolicy::StaticHome => Placement {
            node: home,
            cost_us: score_mean(usage, home, latency),
        },
        PlacementPolicy::GroupMean => best_by(candidates, home, |n| score_mean(usage, n, latency)),
        PlacementPolicy::GroupMinMax => best_by(candidates, home, |n| score_max(usage, n, latency)),
    }
}

fn best_by(candidates: &[NodeId], home: NodeId, score: impl Fn(NodeId) -> f64) -> Placement {
    let mut best: Option<Placement> = None;
    for &node in candidates {
        let cost_us = score(node);
        let better = match best {
            None => true,
            Some(b) => {
                cost_us < b.cost_us
                    // Deterministic tie-break: prefer home, then lower id.
                    || (cost_us == b.cost_us && (node == home || (b.node != home && node < b.node)))
            }
        };
        if better {
            best = Some(Placement { node, cost_us });
        }
    }
    // `place` asserts candidates is non-empty (documented panic contract).
    // odp-check: allow(unwrap)
    best.expect("candidates non-empty")
}

fn score_mean(
    usage: &UsagePattern,
    node: NodeId,
    latency: &dyn Fn(NodeId, NodeId) -> SimDuration,
) -> f64 {
    let total = usage.total();
    if total == 0 {
        return 0.0;
    }
    usage
        .iter()
        .map(|(site, count)| latency(site, node).as_micros() as f64 * count as f64)
        .sum::<f64>()
        / total as f64
}

fn score_max(
    usage: &UsagePattern,
    node: NodeId,
    latency: &dyn Fn(NodeId, NodeId) -> SimDuration,
) -> f64 {
    usage
        .iter()
        .filter(|&(_, count)| count > 0)
        .map(|(site, _)| latency(site, node).as_micros() as f64)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three sites in a line: 0 --10ms-- 1 --10ms-- 2 (so 0<->2 is 20ms).
    fn line_latency(a: NodeId, b: NodeId) -> SimDuration {
        let d = (a.0 as i64 - b.0 as i64).unsigned_abs();
        SimDuration::from_millis(10 * d)
    }

    fn nodes() -> Vec<NodeId> {
        vec![NodeId(0), NodeId(1), NodeId(2)]
    }

    #[test]
    fn static_home_never_moves() {
        let mut usage = UsagePattern::new();
        usage.record(NodeId(2), 1_000); // everyone is at site 2
        let p = place(
            PlacementPolicy::StaticHome,
            &usage,
            &nodes(),
            NodeId(0),
            &line_latency,
        );
        assert_eq!(p.node, NodeId(0), "baseline ignores usage");
        assert_eq!(p.cost_us, 20_000.0);
    }

    #[test]
    fn group_mean_follows_the_weight() {
        let mut usage = UsagePattern::new();
        usage.record(NodeId(0), 1);
        usage.record(NodeId(2), 10);
        let p = place(
            PlacementPolicy::GroupMean,
            &usage,
            &nodes(),
            NodeId(0),
            &line_latency,
        );
        assert_eq!(p.node, NodeId(2), "mass of accesses is at 2");
    }

    #[test]
    fn group_minmax_centres_between_extremes() {
        let mut usage = UsagePattern::new();
        usage.record(NodeId(0), 100);
        usage.record(NodeId(2), 1); // tiny, but minmax cares about worst
        let p = place(
            PlacementPolicy::GroupMinMax,
            &usage,
            &nodes(),
            NodeId(0),
            &line_latency,
        );
        assert_eq!(p.node, NodeId(1), "middle bounds the worst case");
        assert_eq!(p.cost_us, 10_000.0);
        // Mean policy would sit at 0 instead.
        let mean = place(
            PlacementPolicy::GroupMean,
            &usage,
            &nodes(),
            NodeId(0),
            &line_latency,
        );
        assert_eq!(mean.node, NodeId(0));
    }

    #[test]
    fn empty_usage_stays_home_under_any_policy() {
        let usage = UsagePattern::new();
        for policy in [
            PlacementPolicy::StaticHome,
            PlacementPolicy::GroupMean,
            PlacementPolicy::GroupMinMax,
        ] {
            let p = place(policy, &usage, &nodes(), NodeId(1), &line_latency);
            assert_eq!(p.node, NodeId(1), "{policy:?}");
        }
    }

    #[test]
    fn usage_aging_halves_counts() {
        let mut usage = UsagePattern::new();
        usage.record(NodeId(0), 5);
        usage.record(NodeId(1), 1);
        usage.age();
        assert_eq!(usage.count(NodeId(0)), 2);
        assert_eq!(usage.count(NodeId(1)), 0);
        assert_eq!(usage.sites(), vec![NodeId(0)]);
    }

    #[test]
    fn usage_decay_curve_reaches_zero() {
        // Pin the whole decay curve: floor-halving takes 100 through
        // 50, 25, 12, 6, 3, 1 and then to 0 — a count of 1 must not
        // stick forever.
        let mut usage = UsagePattern::new();
        usage.record(NodeId(7), 100);
        let mut curve = Vec::new();
        while usage.total() > 0 {
            usage.age();
            curve.push(usage.count(NodeId(7)));
        }
        assert_eq!(curve, vec![50, 25, 12, 6, 3, 1, 0]);
        assert!(usage.sites().is_empty(), "silent site fully forgotten");
    }

    #[test]
    fn usage_forget_drops_one_site_only() {
        let mut usage = UsagePattern::new();
        usage.record(NodeId(0), 3);
        usage.record(NodeId(1), 4);
        usage.forget(NodeId(0));
        assert_eq!(usage.count(NodeId(0)), 0);
        assert_eq!(usage.count(NodeId(1)), 4);
        assert_eq!(usage.sites(), vec![NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "no candidate nodes")]
    fn empty_candidates_panic() {
        let usage = UsagePattern::new();
        place(
            PlacementPolicy::GroupMean,
            &usage,
            &[],
            NodeId(0),
            &line_latency,
        );
    }
}
