//! The ODP engineering structure the paper names (§4.2.1 "Management"):
//! nodes host capsules, capsules hold clusters, clusters group objects
//! that are placed and migrated as a unit.

use std::collections::BTreeMap;
use std::fmt;

use odp_sim::net::NodeId;
use serde::{Deserialize, Serialize};

/// Names a capsule (an address space on a node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CapsuleId(pub u32);

/// Names a cluster (the unit of placement and migration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterId(pub u32);

/// Names a managed object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ManagedObjectId(pub u64);

impl fmt::Display for ManagedObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mo{}", self.0)
    }
}

/// Errors from the engineering registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MgmtError {
    /// Unknown capsule.
    UnknownCapsule(CapsuleId),
    /// Unknown cluster.
    UnknownCluster(ClusterId),
    /// Unknown object.
    UnknownObject(ManagedObjectId),
    /// The target node hosts no capsule.
    NoCapsuleOnNode(NodeId),
}

impl fmt::Display for MgmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MgmtError::UnknownCapsule(c) => write!(f, "unknown capsule {}", c.0),
            MgmtError::UnknownCluster(c) => write!(f, "unknown cluster {}", c.0),
            MgmtError::UnknownObject(o) => write!(f, "unknown object {o}"),
            MgmtError::NoCapsuleOnNode(n) => write!(f, "no capsule on node {n}"),
        }
    }
}

impl std::error::Error for MgmtError {}

/// The engineering-viewpoint registry: where everything lives.
///
/// # Examples
///
/// ```
/// use odp_mgmt::model::{EngRegistry, ManagedObjectId};
/// use odp_sim::net::NodeId;
///
/// let mut reg = EngRegistry::new();
/// let capsule = reg.create_capsule(NodeId(0));
/// let cluster = reg.create_cluster(capsule)?;
/// reg.create_object(ManagedObjectId(1), cluster, 4_096)?;
/// assert_eq!(reg.node_of(ManagedObjectId(1))?, NodeId(0));
/// # Ok::<(), odp_mgmt::model::MgmtError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngRegistry {
    capsules: BTreeMap<CapsuleId, NodeId>,
    clusters: BTreeMap<ClusterId, CapsuleId>,
    objects: BTreeMap<ManagedObjectId, (ClusterId, usize)>,
    next_capsule: u32,
    next_cluster: u32,
}

impl EngRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        EngRegistry::default()
    }

    /// Creates a capsule on `node`.
    pub fn create_capsule(&mut self, node: NodeId) -> CapsuleId {
        let id = CapsuleId(self.next_capsule);
        self.next_capsule += 1;
        self.capsules.insert(id, node);
        id
    }

    /// Creates a cluster inside `capsule`.
    ///
    /// # Errors
    ///
    /// [`MgmtError::UnknownCapsule`] if the capsule does not exist.
    pub fn create_cluster(&mut self, capsule: CapsuleId) -> Result<ClusterId, MgmtError> {
        if !self.capsules.contains_key(&capsule) {
            return Err(MgmtError::UnknownCapsule(capsule));
        }
        let id = ClusterId(self.next_cluster);
        self.next_cluster += 1;
        self.clusters.insert(id, capsule);
        Ok(id)
    }

    /// Registers an object of `size_bytes` in `cluster`.
    ///
    /// # Errors
    ///
    /// [`MgmtError::UnknownCluster`] if the cluster does not exist.
    pub fn create_object(
        &mut self,
        id: ManagedObjectId,
        cluster: ClusterId,
        size_bytes: usize,
    ) -> Result<(), MgmtError> {
        if !self.clusters.contains_key(&cluster) {
            return Err(MgmtError::UnknownCluster(cluster));
        }
        self.objects.insert(id, (cluster, size_bytes));
        Ok(())
    }

    /// The node an object currently lives on.
    ///
    /// # Errors
    ///
    /// Fails if the object (or its chain) is unknown.
    pub fn node_of(&self, id: ManagedObjectId) -> Result<NodeId, MgmtError> {
        let (cluster, _) = self.objects.get(&id).ok_or(MgmtError::UnknownObject(id))?;
        let capsule = self
            .clusters
            .get(cluster)
            .ok_or(MgmtError::UnknownCluster(*cluster))?;
        self.capsules
            .get(capsule)
            .copied()
            .ok_or(MgmtError::UnknownCapsule(*capsule))
    }

    /// The cluster an object belongs to.
    ///
    /// # Errors
    ///
    /// [`MgmtError::UnknownObject`] if unknown.
    pub fn cluster_of(&self, id: ManagedObjectId) -> Result<ClusterId, MgmtError> {
        Ok(self.objects.get(&id).ok_or(MgmtError::UnknownObject(id))?.0)
    }

    /// Total bytes in a cluster (migration payload).
    pub fn cluster_bytes(&self, cluster: ClusterId) -> usize {
        self.objects
            .values()
            .filter(|(c, _)| *c == cluster)
            .map(|(_, b)| b)
            .sum()
    }

    /// Objects in a cluster.
    pub fn cluster_objects(&self, cluster: ClusterId) -> Vec<ManagedObjectId> {
        self.objects
            .iter()
            .filter(|(_, (c, _))| *c == cluster)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Moves a cluster to (the first capsule on) `node`.
    ///
    /// # Errors
    ///
    /// Fails for unknown clusters or nodes without capsules.
    pub fn migrate_cluster(&mut self, cluster: ClusterId, node: NodeId) -> Result<(), MgmtError> {
        if !self.clusters.contains_key(&cluster) {
            return Err(MgmtError::UnknownCluster(cluster));
        }
        let capsule = self
            .capsules
            .iter()
            .find(|(_, &n)| n == node)
            .map(|(&c, _)| c)
            .ok_or(MgmtError::NoCapsuleOnNode(node))?;
        self.clusters.insert(cluster, capsule);
        Ok(())
    }

    /// All nodes with capsules (candidate placement targets), ascending.
    pub fn candidate_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.capsules.values().copied().collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_chain_and_resolve() {
        let mut reg = EngRegistry::new();
        let cap = reg.create_capsule(NodeId(3));
        let clu = reg.create_cluster(cap).unwrap();
        reg.create_object(ManagedObjectId(1), clu, 100).unwrap();
        assert_eq!(reg.node_of(ManagedObjectId(1)).unwrap(), NodeId(3));
        assert_eq!(reg.cluster_of(ManagedObjectId(1)).unwrap(), clu);
    }

    #[test]
    fn unknown_links_error() {
        let mut reg = EngRegistry::new();
        assert!(reg.create_cluster(CapsuleId(9)).is_err());
        let cap = reg.create_capsule(NodeId(0));
        let _ = cap;
        assert!(reg
            .create_object(ManagedObjectId(1), ClusterId(9), 1)
            .is_err());
        assert!(reg.node_of(ManagedObjectId(1)).is_err());
    }

    #[test]
    fn cluster_accounting() {
        let mut reg = EngRegistry::new();
        let cap = reg.create_capsule(NodeId(0));
        let clu = reg.create_cluster(cap).unwrap();
        reg.create_object(ManagedObjectId(1), clu, 100).unwrap();
        reg.create_object(ManagedObjectId(2), clu, 250).unwrap();
        assert_eq!(reg.cluster_bytes(clu), 350);
        assert_eq!(reg.cluster_objects(clu).len(), 2);
    }

    #[test]
    fn migration_moves_the_whole_cluster() {
        let mut reg = EngRegistry::new();
        let cap_a = reg.create_capsule(NodeId(0));
        let _cap_b = reg.create_capsule(NodeId(1));
        let clu = reg.create_cluster(cap_a).unwrap();
        reg.create_object(ManagedObjectId(1), clu, 10).unwrap();
        reg.create_object(ManagedObjectId(2), clu, 10).unwrap();
        reg.migrate_cluster(clu, NodeId(1)).unwrap();
        assert_eq!(reg.node_of(ManagedObjectId(1)).unwrap(), NodeId(1));
        assert_eq!(reg.node_of(ManagedObjectId(2)).unwrap(), NodeId(1));
        assert_eq!(
            reg.migrate_cluster(clu, NodeId(9)).unwrap_err(),
            MgmtError::NoCapsuleOnNode(NodeId(9))
        );
    }

    #[test]
    fn candidate_nodes_deduplicate() {
        let mut reg = EngRegistry::new();
        reg.create_capsule(NodeId(1));
        reg.create_capsule(NodeId(1));
        reg.create_capsule(NodeId(0));
        assert_eq!(reg.candidate_nodes(), vec![NodeId(0), NodeId(1)]);
    }
}
