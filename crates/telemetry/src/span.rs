//! Deterministic causal spans.
//!
//! A [`SpanContext`] names one unit of causally-related work: a group
//! RPC, one member's service of it, a trader import, a media frame in
//! flight. Contexts are minted from the simulation's seeded
//! [`DetRng`] — never from a wallclock or an OS entropy source — so a
//! run's entire span graph is a pure function of its seed.
//!
//! Spans travel two ways:
//!
//! - **on the wire**, piggybacked on protocol envelopes through the
//!   [`Carrier`] trait, so causality survives multicast fan-out,
//!   federation hops and stream binding;
//! - **into the run record**, as ordinary [`odp_sim::trace::Trace`]
//!   events labelled [`OPEN`] / [`CLOSE`] with a compact textual
//!   payload, so no new channel between actors and harness is needed.
//!   A [`crate::collector::Collector`] parses them back afterwards.

use serde::{Deserialize, Serialize};

use odp_fabric::SpanCarrier;
use odp_sim::rng::DetRng;

/// Trace-event label marking a span opening. Payload format:
/// `trace:span:parent:kind` with ids in fixed-width hex and `-` for a
/// root's absent parent (see [`SpanContext::open_data`]).
pub const OPEN: &str = "tel.open";

/// Trace-event label marking a span closing. Payload format:
/// `trace:span` (see [`SpanContext::close_data`]).
pub const CLOSE: &str = "tel.close";

/// The identity of one span within a causal trace.
///
/// `trace_id` groups every span descending from one root; `span_id` is
/// unique within the run; `parent` is the causally preceding span's id
/// (`None` for a root).
///
/// # Examples
///
/// ```
/// use odp_sim::rng::DetRng;
/// use odp_telemetry::span::SpanContext;
///
/// let mut rng = DetRng::seed_from(7);
/// let root = SpanContext::root(&mut rng);
/// let child = root.child(&mut rng);
/// assert_eq!(child.trace_id, root.trace_id);
/// assert_eq!(child.parent, Some(root.span_id));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpanContext {
    /// Groups all spans of one causal trace.
    pub trace_id: u64,
    /// This span's unique id.
    pub span_id: u64,
    /// The parent span's id, if any.
    pub parent: Option<u64>,
}

impl SpanContext {
    /// Mints a fresh root span from the deterministic generator.
    pub fn root(rng: &mut DetRng) -> Self {
        SpanContext {
            trace_id: rng.next_u64(),
            span_id: rng.next_u64(),
            parent: None,
        }
    }

    /// Mints a child of `self` from the deterministic generator.
    pub fn child(&self, rng: &mut DetRng) -> Self {
        SpanContext {
            trace_id: self.trace_id,
            span_id: rng.next_u64(),
            parent: Some(self.span_id),
        }
    }

    /// Builds a root span from explicit ids (for counter-based minting
    /// where no rng is in scope, e.g. session engines).
    pub fn root_with(trace_id: u64, span_id: u64) -> Self {
        SpanContext {
            trace_id,
            span_id,
            parent: None,
        }
    }

    /// Builds a child of `self` from an explicit id.
    pub fn child_with(&self, span_id: u64) -> Self {
        SpanContext {
            trace_id: self.trace_id,
            span_id,
            parent: Some(self.span_id),
        }
    }

    /// Renders the [`OPEN`] payload: `trace:span:parent:kind`, ids as
    /// fixed-width hex, `-` for an absent parent. `kind` is a stable
    /// dotted name such as `rpc.call`; it must not contain `:`.
    ///
    /// Hand-rolled hex (no `format!` machinery): this runs twice per
    /// minted span on instrumented message paths, and the rendering
    /// cost is the bulk of the telemetry overhead the bench reports.
    pub fn open_data(&self, kind: &str) -> String {
        debug_assert!(!kind.contains(':'), "span kind {kind:?} contains ':'");
        let mut out = String::with_capacity(3 * 17 + 1 + kind.len());
        push_hex16(&mut out, self.trace_id);
        out.push(':');
        push_hex16(&mut out, self.span_id);
        out.push(':');
        match self.parent {
            Some(p) => push_hex16(&mut out, p),
            None => out.push('-'),
        }
        out.push(':');
        out.push_str(kind);
        out
    }

    /// Renders the [`CLOSE`] payload: `trace:span` in fixed-width hex.
    pub fn close_data(&self) -> String {
        let mut out = String::with_capacity(2 * 17);
        push_hex16(&mut out, self.trace_id);
        out.push(':');
        push_hex16(&mut out, self.span_id);
        out
    }

    /// Parses an [`OPEN`] payload back into a context and its kind.
    pub fn parse_open(data: &str) -> Option<(SpanContext, &str)> {
        let mut parts = data.splitn(4, ':');
        let trace_id = u64::from_str_radix(parts.next()?, 16).ok()?;
        let span_id = u64::from_str_radix(parts.next()?, 16).ok()?;
        let parent = match parts.next()? {
            "-" => None,
            p => Some(u64::from_str_radix(p, 16).ok()?),
        };
        let kind = parts.next()?;
        Some((
            SpanContext {
                trace_id,
                span_id,
                parent,
            },
            kind,
        ))
    }

    /// Parses a [`CLOSE`] payload back into `(trace_id, span_id)`.
    pub fn parse_close(data: &str) -> Option<(u64, u64)> {
        let mut parts = data.splitn(2, ':');
        let trace_id = u64::from_str_radix(parts.next()?, 16).ok()?;
        let span_id = u64::from_str_radix(parts.next()?, 16).ok()?;
        Some((trace_id, span_id))
    }

    /// The fabric-layer view of this context, for recording into a
    /// host's binary [`odp_fabric::SpanLog`] or piggybacking on a
    /// byte-oriented envelope. Same three fields, no telemetry deps.
    pub fn carrier(&self) -> SpanCarrier {
        SpanCarrier {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent: self.parent,
        }
    }
}

impl From<SpanContext> for SpanCarrier {
    fn from(ctx: SpanContext) -> SpanCarrier {
        ctx.carrier()
    }
}

impl From<SpanCarrier> for SpanContext {
    fn from(c: SpanCarrier) -> SpanContext {
        SpanContext {
            trace_id: c.trace_id,
            span_id: c.span_id,
            parent: c.parent,
        }
    }
}

/// Appends `v` as exactly 16 lowercase hex digits.
fn push_hex16(out: &mut String, v: u64) {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut buf = [0u8; 16];
    for (i, b) in buf.iter_mut().enumerate() {
        *b = DIGITS[((v >> ((15 - i) * 4)) & 0xf) as usize];
    }
    // Every byte is ASCII hex, so the slice is valid UTF-8.
    out.push_str(std::str::from_utf8(&buf).unwrap_or("????????????????"));
}

/// A protocol envelope that can piggyback a span context.
///
/// Implemented by `odp_groupcomm`'s multicast/RPC envelopes,
/// `odp_trader`'s lookup messages and `odp_streams`' frames; anything
/// that forwards or transforms a carrier should propagate its span so
/// the collector can stitch the hop into the causal DAG.
pub trait Carrier {
    /// The span riding on this envelope, if any.
    fn span(&self) -> Option<SpanContext>;
    /// Attaches (or clears) the riding span.
    fn set_span(&mut self, span: Option<SpanContext>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minting_is_deterministic_per_seed() {
        let mut a = DetRng::seed_from(42);
        let mut b = DetRng::seed_from(42);
        let ra = SpanContext::root(&mut a);
        let rb = SpanContext::root(&mut b);
        assert_eq!(ra, rb);
        assert_eq!(ra.child(&mut a), rb.child(&mut b));
    }

    #[test]
    fn open_payload_round_trips() {
        let mut rng = DetRng::seed_from(1);
        let root = SpanContext::root(&mut rng);
        let child = root.child(&mut rng);
        for (ctx, kind) in [(root, "rpc.call"), (child, "rpc.serve")] {
            let data = ctx.open_data(kind);
            let (parsed, parsed_kind) = SpanContext::parse_open(&data).expect("parses");
            assert_eq!(parsed, ctx);
            assert_eq!(parsed_kind, kind);
        }
    }

    #[test]
    fn close_payload_round_trips() {
        let ctx = SpanContext::root_with(0xdead_beef, 7);
        assert_eq!(
            SpanContext::parse_close(&ctx.close_data()),
            Some((0xdead_beef, 7))
        );
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(SpanContext::parse_open("").is_none());
        assert!(SpanContext::parse_open("zz:1:-:k").is_none());
        assert!(SpanContext::parse_open("1:2:3").is_none());
        assert!(SpanContext::parse_close("only-one-part").is_none());
    }

    #[test]
    fn explicit_ctors_link_parent() {
        let root = SpanContext::root_with(9, 1);
        let child = root.child_with(2);
        assert_eq!(child.trace_id, 9);
        assert_eq!(child.parent, Some(1));
    }
}
