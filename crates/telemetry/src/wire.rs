//! Wire-codec impl for [`SpanContext`], so spans piggybacked on
//! protocol messages survive a trip through a real transport.
//!
//! Lives here (not in `odp-net`) because the orphan rule requires the
//! impl in the crate owning either the trait or the type.

use odp_net::error::NetError;
use odp_net::wire::{WireCodec, WireReader};

use crate::span::SpanContext;

impl WireCodec for SpanContext {
    fn encode(&self, out: &mut Vec<u8>) {
        self.trace_id.encode(out);
        self.span_id.encode(out);
        self.parent.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(SpanContext {
            trace_id: u64::decode(r)?,
            span_id: u64::decode(r)?,
            parent: Option::<u64>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_context_roundtrips() {
        for ctx in [
            SpanContext::root_with(0xfeed, 0xbeef),
            SpanContext::root_with(1, 2).child_with(3),
        ] {
            let mut buf = Vec::new();
            ctx.encode(&mut buf);
            assert_eq!(WireReader::new(&buf).finish::<SpanContext>(), Ok(ctx));
        }
    }
}
