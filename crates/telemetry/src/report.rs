//! Machine-readable run reports.
//!
//! A [`TelemetryReport`] aggregates a [`Collector`] into per-subsystem
//! counters and latency percentiles, and renders itself as JSON so
//! bench runs can emit `BENCH_telemetry.json` trajectory rows. The
//! rendering is hand-rolled over `BTreeMap`s (the workspace vendors no
//! JSON serializer) and therefore byte-deterministic for a given run.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use odp_sim::metrics::Summary;

use crate::collector::Collector;

/// Counters and latency summaries for one subsystem (the span-kind
/// prefix before the first `.`: `rpc`, `gc`, `trader`, `stream`,
/// `session`, ...).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SubsystemReport {
    /// Spans observed per kind.
    pub counters: BTreeMap<String, u64>,
    /// Latency distribution per kind (close time relative to the
    /// trace's root open).
    pub latency: BTreeMap<String, Summary>,
}

/// The whole run's telemetry, aggregated per subsystem.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// The run's seed, for reproduction.
    pub seed: u64,
    /// Number of distinct causal traces.
    pub traces: u64,
    /// Total spans across all traces.
    pub spans: u64,
    /// Spans opened but never closed (0 for a well-formed run).
    pub unclosed: u64,
    /// Trace events evicted by the sim's ring buffer before the
    /// collector saw them (0 when the trace is unbounded).
    pub dropped_trace_events: u64,
    /// Per-subsystem aggregates, keyed by subsystem name.
    pub subsystems: BTreeMap<String, SubsystemReport>,
}

fn subsystem_of(kind: &str) -> &str {
    kind.split('.').next().unwrap_or(kind)
}

impl TelemetryReport {
    /// Aggregates a collector into a report. `dropped_trace_events`
    /// comes from [`odp_sim::trace::Trace::dropped`] so a bounded run
    /// discloses its own blind spot.
    pub fn from_collector(seed: u64, collector: &Collector, dropped_trace_events: u64) -> Self {
        let mut subsystems: BTreeMap<String, SubsystemReport> = BTreeMap::new();
        for (_, dag) in collector.traces() {
            for s in dag.spans() {
                let sub = subsystems
                    .entry(subsystem_of(&s.kind).to_owned())
                    .or_default();
                *sub.counters.entry(s.kind.clone()).or_insert(0) += 1;
            }
        }
        for (kind, hist) in &mut collector.kind_histograms() {
            let sub = subsystems.entry(subsystem_of(kind).to_owned()).or_default();
            sub.latency.insert(kind.clone(), hist.summary());
        }
        TelemetryReport {
            seed,
            traces: collector.len() as u64,
            spans: collector.span_count() as u64,
            unclosed: collector.unclosed() as u64,
            dropped_trace_events,
            subsystems,
        }
    }

    /// Renders the report as a deterministic JSON object. Keys are
    /// emitted in `BTreeMap` order; durations are integral microsecond
    /// fields (`*_us`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        push_field(&mut out, "seed", &self.seed.to_string(), true);
        push_field(&mut out, "traces", &self.traces.to_string(), false);
        push_field(&mut out, "spans", &self.spans.to_string(), false);
        push_field(&mut out, "unclosed", &self.unclosed.to_string(), false);
        push_field(
            &mut out,
            "dropped_trace_events",
            &self.dropped_trace_events.to_string(),
            false,
        );
        out.push_str(",\"subsystems\":{");
        for (i, (name, sub)) in self.subsystems.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{{\"counters\":{{", json_string(name)));
            for (j, (kind, n)) in sub.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_string(kind), n));
            }
            out.push_str("},\"latency\":{");
            for (j, (kind, s)) in sub.latency.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_string(kind), summary_json(s)));
            }
            out.push_str("}}");
        }
        out.push_str("}}");
        out
    }
}

fn push_field(out: &mut String, name: &str, value: &str, first: bool) {
    if !first {
        out.push(',');
    }
    out.push_str(&format!("{}:{}", json_string(name), value));
}

/// Escapes a string into a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"count\":{},\"mean_us\":{},\"min_us\":{},\"p50_us\":{},\"p95_us\":{},\
         \"p99_us\":{},\"max_us\":{},\"stddev_us\":{:.3}}}",
        s.count,
        s.mean.as_micros(),
        s.min.as_micros(),
        s.p50.as_micros(),
        s.p95.as_micros(),
        s.p99.as_micros(),
        s.max.as_micros(),
        s.stddev_micros,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanContext;
    use odp_sim::net::NodeId;
    use odp_sim::time::SimTime;

    fn sample_collector() -> Collector {
        let root = SpanContext::root_with(1, 1);
        let child = root.child_with(2);
        let mut c = Collector::new();
        c.ingest_open(SimTime::ZERO, NodeId(0), root, "rpc.call");
        c.ingest_open(SimTime::from_millis(2), NodeId(1), child, "gc.deliver");
        c.ingest_close(SimTime::from_millis(2), 1, 2);
        c.ingest_close(SimTime::from_millis(5), 1, 1);
        c
    }

    #[test]
    fn aggregates_by_subsystem_prefix() {
        let r = TelemetryReport::from_collector(42, &sample_collector(), 0);
        assert_eq!(r.traces, 1);
        assert_eq!(r.spans, 2);
        assert_eq!(r.unclosed, 0);
        assert_eq!(r.subsystems.len(), 2);
        assert_eq!(r.subsystems["rpc"].counters["rpc.call"], 1);
        assert_eq!(r.subsystems["gc"].counters["gc.deliver"], 1);
        assert_eq!(r.subsystems["rpc"].latency["rpc.call"].count, 1);
    }

    #[test]
    fn json_is_deterministic_and_balanced() {
        let r = TelemetryReport::from_collector(42, &sample_collector(), 3);
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "unbalanced braces in {a}"
        );
        assert!(a.contains("\"seed\":42"));
        assert!(a.contains("\"dropped_trace_events\":3"));
        assert!(a.contains("\"rpc.call\":{\"count\":1"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
