#![warn(missing_docs)]

//! # odp-telemetry — causal span tracing and run reports
//!
//! The paper demands *end-to-end monitoring* of QoS (the continuous
//! media requirement: negotiate, monitor, re-negotiate) and management
//! driven by observed access patterns (§4.2.1). This crate supplies the
//! observability layer those demands imply, on top of the deterministic
//! simulator:
//!
//! - [`span`] — [`SpanContext`] identities minted from the sim's seeded
//!   RNG (no wallclock anywhere), a compact textual wire format layered
//!   on [`odp_sim::trace::Trace`] events, and the [`Carrier`] trait by
//!   which protocol envelopes piggyback spans across hops;
//! - [`collector`] — the [`Collector`] assembling spans into per-trace
//!   causal DAGs, with well-formedness audits and critical-path
//!   extraction (the longest virtual-time chain — for a quorum group
//!   RPC, the slowest member's reply chain);
//! - [`report`] — the serde-modelled [`TelemetryReport`] aggregating
//!   counters and latency percentiles per subsystem, rendered as
//!   deterministic JSON for `BENCH_telemetry.json` rows.
//!
//! Everything is deterministic: span ids derive from forked [`DetRng`]
//! streams, timestamps are virtual, and report JSON serializes
//! `BTreeMap`s — two runs with one seed produce identical bytes.
//!
//! ```
//! use odp_sim::net::NodeId;
//! use odp_sim::rng::DetRng;
//! use odp_sim::time::SimTime;
//! use odp_telemetry::prelude::*;
//!
//! let mut rng = DetRng::seed_from(42);
//! let call = SpanContext::root(&mut rng);
//! let serve = call.child(&mut rng);
//!
//! let mut c = Collector::new();
//! c.ingest_open(SimTime::ZERO, NodeId(0), call, "rpc.call");
//! c.ingest_open(SimTime::from_millis(3), NodeId(1), serve, "rpc.serve");
//! // The reply lands at 8 ms, closing the serve span and the call
//! // span at the same instant; the tie breaks toward the deeper span.
//! c.ingest_close(SimTime::from_millis(8), serve.trace_id, serve.span_id);
//! c.ingest_close(SimTime::from_millis(8), call.trace_id, call.span_id);
//!
//! let dag = c.trace(call.trace_id).unwrap();
//! assert!(dag.well_formed().is_ok());
//! let path: Vec<_> = dag.critical_path().iter().map(|s| s.kind.clone()).collect();
//! assert_eq!(path, ["rpc.call", "rpc.serve"]);
//! ```
//!
//! [`DetRng`]: odp_sim::rng::DetRng

pub mod collector;
pub mod report;
pub mod span;
pub mod wire;

pub use collector::{Collector, SpanRecord, TraceDag};
pub use report::{SubsystemReport, TelemetryReport};
pub use span::{Carrier, SpanContext, CLOSE, OPEN};

/// Everything an instrumented subsystem typically needs.
pub mod prelude {
    pub use crate::collector::{Collector, SpanRecord, TraceDag};
    pub use crate::report::{SubsystemReport, TelemetryReport};
    pub use crate::span::{Carrier, SpanContext, CLOSE, OPEN};
}
