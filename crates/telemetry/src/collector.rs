//! Assembling span events into per-trace causal DAGs.
//!
//! The [`Collector`] consumes a finished run's
//! [`odp_sim::trace::Trace`] (or individual open/close observations)
//! and groups spans by `trace_id` into [`TraceDag`]s. Each DAG can be
//! audited for well-formedness — every span closed, every parent opened
//! no later than its child, no parent cycles — and mined for its
//! *critical path*: the root-to-leaf causal chain ending at the span
//! that closed last in virtual time, which for a quorum group RPC is
//! exactly the slowest member's reply chain.

use std::collections::BTreeMap;

use odp_fabric::SpanOp;
use odp_sim::metrics::Histogram;
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use odp_sim::trace::Trace;

use crate::span::{SpanContext, CLOSE, OPEN};

/// One observed span: identity, kind, where it ran and when it was
/// open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's identity within its trace.
    pub ctx: SpanContext,
    /// Stable dotted kind, e.g. `rpc.serve`.
    pub kind: String,
    /// The node that opened the span.
    pub node: NodeId,
    /// Virtual time the span opened.
    pub opened: SimTime,
    /// Virtual time the span closed (`None` while still open — a
    /// well-formed finished trace has no such spans).
    pub closed: Option<SimTime>,
}

/// The causal DAG of one trace: every span sharing a `trace_id`,
/// keyed by `span_id`.
#[derive(Debug, Clone, Default)]
pub struct TraceDag {
    spans: BTreeMap<u64, SpanRecord>,
}

impl TraceDag {
    /// All spans in `span_id` order.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.values()
    }

    /// Number of spans in the trace.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if the trace holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Looks up one span by id.
    pub fn get(&self, span_id: u64) -> Option<&SpanRecord> {
        self.spans.get(&span_id)
    }

    /// The earliest root open time (falls back to the earliest open of
    /// any span when no root was captured).
    pub fn root_open(&self) -> Option<SimTime> {
        self.spans
            .values()
            .filter(|s| s.ctx.parent.is_none())
            .map(|s| s.opened)
            .min()
            .or_else(|| self.spans.values().map(|s| s.opened).min())
    }

    /// Causal depth of a span: 0 for a root, parent depth + 1
    /// otherwise. Walks at most `len()` links so a corrupted cyclic
    /// chain terminates.
    pub fn depth(&self, span_id: u64) -> usize {
        let mut depth = 0;
        let mut cur = self.spans.get(&span_id);
        while let Some(s) = cur {
            match s.ctx.parent {
                Some(p) if depth < self.spans.len() => {
                    depth += 1;
                    cur = self.spans.get(&p);
                }
                _ => break,
            }
        }
        depth
    }

    /// Audits the DAG: every span closed, every referenced parent
    /// present and opened no later than its child, and the parent
    /// relation acyclic.
    pub fn well_formed(&self) -> Result<(), String> {
        for s in self.spans.values() {
            if s.closed.is_none() {
                return Err(format!(
                    "span {:016x}/{:016x} ({}) opened at {} but never closed",
                    s.ctx.trace_id, s.ctx.span_id, s.kind, s.opened
                ));
            }
            if let Some(p) = s.ctx.parent {
                let parent = self.spans.get(&p).ok_or_else(|| {
                    format!(
                        "span {:016x}/{:016x} ({}) references missing parent {:016x}",
                        s.ctx.trace_id, s.ctx.span_id, s.kind, p
                    )
                })?;
                if parent.opened > s.opened {
                    return Err(format!(
                        "parent {} ({}) opens at {} after child {} ({}) at {}",
                        parent.ctx.span_id,
                        parent.kind,
                        parent.opened,
                        s.ctx.span_id,
                        s.kind,
                        s.opened
                    ));
                }
            }
        }
        // Cycle check: a root must be reachable within len() hops.
        for &id in self.spans.keys() {
            let mut cur = id;
            let mut hops = 0;
            while let Some(p) = self.spans.get(&cur).and_then(|s| s.ctx.parent) {
                hops += 1;
                if hops > self.spans.len() {
                    return Err(format!(
                        "parent chain from span {id:016x} cycles (no root within {} hops)",
                        self.spans.len()
                    ));
                }
                cur = p;
            }
        }
        Ok(())
    }

    /// Extracts the critical path: the parent chain (root first) of the
    /// span that closed last in virtual time, breaking close-time ties
    /// toward the causally *deeper* span — the end of a quorum RPC
    /// closes the root and the slowest reply at the same instant, and
    /// the reply chain is the interesting one.
    pub fn critical_path(&self) -> Vec<&SpanRecord> {
        let Some(tail) = self.spans.values().max_by_key(|s| {
            (
                s.closed.unwrap_or(s.opened),
                self.depth(s.ctx.span_id),
                // Last tie-break keeps the choice deterministic across
                // equally-deep simultaneous closers.
                std::cmp::Reverse(s.ctx.span_id),
            )
        }) else {
            return Vec::new();
        };
        let mut path = Vec::new();
        let mut cur = Some(tail);
        while let Some(s) = cur {
            path.push(s);
            if path.len() > self.spans.len() {
                break; // corrupted cycle; well_formed() reports it
            }
            cur = s.ctx.parent.and_then(|p| self.spans.get(&p));
        }
        path.reverse();
        path
    }
}

/// Collects open/close observations into per-trace DAGs.
///
/// # Examples
///
/// ```
/// use odp_sim::net::NodeId;
/// use odp_sim::rng::DetRng;
/// use odp_sim::time::SimTime;
/// use odp_telemetry::collector::Collector;
/// use odp_telemetry::span::SpanContext;
///
/// let mut rng = DetRng::seed_from(3);
/// let root = SpanContext::root(&mut rng);
/// let mut c = Collector::new();
/// c.ingest_open(SimTime::ZERO, NodeId(0), root, "rpc.call");
/// c.ingest_close(SimTime::from_millis(4), root.trace_id, root.span_id);
/// let dag = c.trace(root.trace_id).unwrap();
/// assert!(dag.well_formed().is_ok());
/// assert_eq!(dag.critical_path().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Collector {
    traces: BTreeMap<u64, TraceDag>,
    errors: Vec<String>,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Builds a collector from a finished run's trace by parsing every
    /// [`OPEN`] / [`CLOSE`] string event, then replaying the binary
    /// [`odp_fabric::SpanLog`] riding on the trace. Instrumented code
    /// records through one channel or the other (legacy string payloads
    /// vs the allocation-free span log), never both for one span, so
    /// ingesting the streams back-to-back cannot double-open.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut c = Collector::new();
        for e in trace.events() {
            if e.label == OPEN {
                match SpanContext::parse_open(&e.data) {
                    Some((ctx, kind)) => c.ingest_open(e.time, e.node, ctx, kind),
                    None => c
                        .errors
                        .push(format!("malformed open payload {:?}", e.data)),
                }
            } else if e.label == CLOSE {
                match SpanContext::parse_close(&e.data) {
                    Some((trace_id, span_id)) => c.ingest_close(e.time, trace_id, span_id),
                    None => c
                        .errors
                        .push(format!("malformed close payload {:?}", e.data)),
                }
            }
        }
        let log = trace.spans();
        for e in log.events() {
            let time = SimTime::from_micros(e.time_us);
            match e.op {
                SpanOp::Open { span, kind } => {
                    c.ingest_open(time, NodeId(e.node), span.into(), log.kind(kind));
                }
                SpanOp::Close { trace_id, span_id } => {
                    c.ingest_close(time, trace_id, span_id);
                }
            }
        }
        c
    }

    /// Records a span opening.
    pub fn ingest_open(&mut self, time: SimTime, node: NodeId, ctx: SpanContext, kind: &str) {
        let dag = self.traces.entry(ctx.trace_id).or_default();
        if dag.spans.contains_key(&ctx.span_id) {
            self.errors.push(format!(
                "span {:016x}/{:016x} opened twice",
                ctx.trace_id, ctx.span_id
            ));
            return;
        }
        dag.spans.insert(
            ctx.span_id,
            SpanRecord {
                ctx,
                kind: kind.to_owned(),
                node,
                opened: time,
                closed: None,
            },
        );
    }

    /// Records a span closing.
    pub fn ingest_close(&mut self, time: SimTime, trace_id: u64, span_id: u64) {
        match self
            .traces
            .get_mut(&trace_id)
            .and_then(|d| d.spans.get_mut(&span_id))
        {
            Some(s) if s.closed.is_none() => s.closed = Some(time),
            Some(_) => self
                .errors
                .push(format!("span {trace_id:016x}/{span_id:016x} closed twice")),
            None => self.errors.push(format!(
                "close for unknown span {trace_id:016x}/{span_id:016x}"
            )),
        }
    }

    /// All traces in `trace_id` order.
    pub fn traces(&self) -> impl Iterator<Item = (u64, &TraceDag)> {
        self.traces.iter().map(|(&id, d)| (id, d))
    }

    /// One trace's DAG, if observed.
    pub fn trace(&self, trace_id: u64) -> Option<&TraceDag> {
        self.traces.get(&trace_id)
    }

    /// Number of distinct traces observed.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total spans across all traces.
    pub fn span_count(&self) -> usize {
        self.traces.values().map(TraceDag::len).sum()
    }

    /// Spans that were opened but never closed, across all traces.
    pub fn unclosed(&self) -> usize {
        self.traces
            .values()
            .flat_map(|d| d.spans.values())
            .filter(|s| s.closed.is_none())
            .count()
    }

    /// Ingestion-level problems (malformed payloads, double opens,
    /// orphan closes). Structural problems live in
    /// [`TraceDag::well_formed`].
    pub fn errors(&self) -> &[String] {
        &self.errors
    }

    /// Audits every trace plus ingestion errors.
    pub fn well_formed(&self) -> Result<(), String> {
        if let Some(e) = self.errors.first() {
            return Err(e.clone());
        }
        for dag in self.traces.values() {
            dag.well_formed()?;
        }
        Ok(())
    }

    /// Per-span-kind latency histograms: each closed span contributes
    /// its close time minus its trace's root open — i.e. how deep into
    /// the causal exchange that step completed. This turns, e.g., every
    /// `gc.deliver` close into an end-to-end delivery latency sample.
    pub fn kind_histograms(&self) -> BTreeMap<String, Histogram> {
        let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
        for dag in self.traces.values() {
            let Some(start) = dag.root_open() else {
                continue;
            };
            for s in dag.spans.values() {
                if let Some(closed) = s.closed {
                    if closed >= start {
                        hists
                            .entry(s.kind.clone())
                            .or_default()
                            .record(closed - start);
                    }
                }
            }
        }
        hists
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_sim::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn chain() -> (Collector, u64) {
        // root(call) -> serve -> reply, the canonical RPC shape.
        let root = SpanContext::root_with(1, 10);
        let serve = root.child_with(20);
        let reply = serve.child_with(30);
        let mut c = Collector::new();
        c.ingest_open(t(0), NodeId(0), root, "rpc.call");
        c.ingest_open(t(5), NodeId(1), serve, "rpc.serve");
        c.ingest_close(t(6), 1, 20);
        c.ingest_open(t(11), NodeId(0), reply, "rpc.reply");
        c.ingest_close(t(11), 1, 30);
        c.ingest_close(t(11), 1, 10);
        (c, 1)
    }

    #[test]
    fn well_formed_chain_passes() {
        let (c, id) = chain();
        assert!(c.well_formed().is_ok());
        assert_eq!(c.trace(id).unwrap().len(), 3);
        assert_eq!(c.unclosed(), 0);
    }

    #[test]
    fn critical_path_prefers_deeper_span_on_tie() {
        let (c, id) = chain();
        // Root and reply both close at t=11; the reply chain (depth 2)
        // must win the tie.
        let kinds: Vec<_> = c
            .trace(id)
            .unwrap()
            .critical_path()
            .iter()
            .map(|s| s.kind.as_str())
            .collect();
        assert_eq!(kinds, ["rpc.call", "rpc.serve", "rpc.reply"]);
    }

    #[test]
    fn unclosed_span_fails_the_audit() {
        let mut c = Collector::new();
        c.ingest_open(t(0), NodeId(0), SpanContext::root_with(2, 1), "probe");
        assert_eq!(c.unclosed(), 1);
        let err = c.well_formed().unwrap_err();
        assert!(err.contains("never closed"), "{err}");
    }

    #[test]
    fn missing_parent_fails_the_audit() {
        let mut c = Collector::new();
        let orphan = SpanContext {
            trace_id: 3,
            span_id: 5,
            parent: Some(99),
        };
        c.ingest_open(t(1), NodeId(0), orphan, "x");
        c.ingest_close(t(2), 3, 5);
        let err = c.well_formed().unwrap_err();
        assert!(err.contains("missing parent"), "{err}");
    }

    #[test]
    fn parent_opening_after_child_fails_the_audit() {
        let mut c = Collector::new();
        let root = SpanContext::root_with(4, 1);
        let child = root.child_with(2);
        c.ingest_open(t(9), NodeId(0), child, "early");
        c.ingest_open(t(10), NodeId(0), root, "late-root");
        c.ingest_close(t(11), 4, 1);
        c.ingest_close(t(11), 4, 2);
        let err = c.well_formed().unwrap_err();
        assert!(err.contains("after child"), "{err}");
    }

    #[test]
    fn parent_cycle_fails_the_audit() {
        let mut c = Collector::new();
        let a = SpanContext {
            trace_id: 5,
            span_id: 1,
            parent: Some(2),
        };
        let b = SpanContext {
            trace_id: 5,
            span_id: 2,
            parent: Some(1),
        };
        c.ingest_open(t(0), NodeId(0), a, "a");
        c.ingest_open(t(0), NodeId(0), b, "b");
        c.ingest_close(t(1), 5, 1);
        c.ingest_close(t(1), 5, 2);
        let err = c.well_formed().unwrap_err();
        assert!(err.contains("cycles"), "{err}");
    }

    #[test]
    fn orphan_close_and_double_open_are_errors() {
        let mut c = Collector::new();
        c.ingest_close(t(0), 7, 7);
        let root = SpanContext::root_with(8, 1);
        c.ingest_open(t(0), NodeId(0), root, "k");
        c.ingest_open(t(1), NodeId(0), root, "k");
        assert_eq!(c.errors().len(), 2);
        assert!(c.well_formed().is_err());
    }

    #[test]
    fn from_trace_ingests_the_binary_span_log() {
        let root = SpanContext::root_with(11, 1);
        let child = root.child_with(2);
        let mut tr = Trace::new();
        tr.span_open(t(0), NodeId(0), root.carrier(), "rpc.call");
        tr.span_open(t(3), NodeId(1), child.carrier(), "rpc.serve");
        tr.span_close(t(4), NodeId(1), child.carrier());
        tr.span_close(t(8), NodeId(0), root.carrier());
        let c = Collector::from_trace(&tr);
        assert!(c.well_formed().is_ok());
        assert_eq!(c.span_count(), 2);
        let hists = c.kind_histograms();
        assert_eq!(
            hists.get("rpc.serve").map(|h| h.mean()),
            Some(SimDuration::from_millis(4))
        );
    }

    #[test]
    fn from_trace_merges_string_and_binary_streams() {
        // Distinct traces through each channel coexist in one collector.
        let legacy = SpanContext::root_with(20, 1);
        let fabric = SpanContext::root_with(21, 1);
        let mut tr = Trace::new();
        tr.record(t(0), NodeId(0), OPEN, legacy.open_data("old.way"));
        tr.record(t(2), NodeId(0), CLOSE, legacy.close_data());
        tr.span_open(t(1), NodeId(1), fabric.carrier(), "new.way");
        tr.span_close(t(3), NodeId(1), fabric.carrier());
        let c = Collector::from_trace(&tr);
        assert!(c.well_formed().is_ok());
        assert_eq!(c.len(), 2);
        assert_eq!(c.span_count(), 2);
    }

    #[test]
    fn from_trace_round_trips_through_payloads() {
        let root = SpanContext::root_with(9, 1);
        let child = root.child_with(2);
        let mut tr = Trace::new();
        tr.record(t(0), NodeId(0), OPEN, root.open_data("rpc.call"));
        tr.record(t(3), NodeId(1), OPEN, child.open_data("rpc.serve"));
        tr.record(t(4), NodeId(1), CLOSE, child.close_data());
        tr.record(t(8), NodeId(0), CLOSE, root.close_data());
        let c = Collector::from_trace(&tr);
        assert!(c.well_formed().is_ok());
        assert_eq!(c.span_count(), 2);
        let hists = c.kind_histograms();
        assert_eq!(
            hists.get("rpc.serve").map(|h| h.mean()),
            Some(SimDuration::from_millis(4))
        );
        assert_eq!(
            hists.get("rpc.call").map(|h| h.mean()),
            Some(SimDuration::from_millis(8))
        );
    }
}
