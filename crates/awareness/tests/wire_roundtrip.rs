//! Property tests: every [`BusWire`] envelope — all sixteen
//! [`CoopKind`] variants, both audiences, arbitrary grant lists —
//! survives the `odp-net` framing bit-exactly, and corrupt bytes
//! always yield a typed error instead of a panic.

use odp_awareness::bus::{Audience, CoopEvent, CoopKind, CoopMode};
use odp_awareness::dist::BusWire;
use odp_awareness::events::ActivityKind;
use odp_net::wire::{decode_frame, encode_frame, WireCodec, WireReader, MAX_FRAME};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = CoopKind> {
    (
        0u8..16,
        any::<u32>(),
        any::<bool>(),
        any::<u64>(),
        "[a-z /:-]{0,24}",
        "[a-z ]{0,16}",
    )
        .prop_map(|(tag, node, flag, seq, text, text2)| {
            let mode = if flag {
                CoopMode::Exclusive
            } else {
                CoopMode::Shared
            };
            let activity = match node % 6 {
                0 => ActivityKind::Edit,
                1 => ActivityKind::View,
                2 => ActivityKind::Enter,
                3 => ActivityKind::Leave,
                4 => ActivityKind::Gesture,
                _ => ActivityKind::Move,
            };
            match tag {
                0 => CoopKind::Activity(activity),
                1 => CoopKind::LockGranted { mode },
                2 => CoopKind::LockTickled { by: NodeId(node) },
                3 => CoopKind::LockRevoked { to: NodeId(node) },
                4 => CoopKind::LockConflict { with: NodeId(node) },
                5 => CoopKind::LockAccess {
                    by: NodeId(node),
                    mode,
                },
                6 => CoopKind::GroupAccess { mode },
                7 => CoopKind::FloorGranted,
                8 => CoopKind::FloorPreempted,
                9 => CoopKind::FloorIdle,
                10 => CoopKind::RemoteOp {
                    site: NodeId(node),
                    seq,
                },
                11 => CoopKind::AccessChanged {
                    granted: flag,
                    rights: text2,
                },
                12 => CoopKind::ReintegrationConflict { applied: flag },
                13 => CoopKind::SessionSwitched {
                    from: text,
                    to: text2,
                },
                14 => CoopKind::ServiceInvalidated { reason: text },
                _ => CoopKind::ClusterMigrated {
                    from: NodeId(node),
                    to: NodeId(node ^ 1),
                },
            }
        })
}

fn arb_wire() -> impl Strategy<Value = BusWire> {
    (
        arb_kind(),
        (any::<u32>(), any::<u64>(), any::<bool>(), any::<u32>()),
        "[a-z0-9/]{0,24}",
        prop::collection::vec((any::<u32>(), 0.0f64..1.0), 0..8),
    )
        .prop_map(
            |(kind, (actor, at, everyone, direct), artefact, grants)| BusWire {
                event: CoopEvent {
                    actor: NodeId(actor),
                    artefact,
                    at: SimTime::from_micros(at),
                    audience: if everyone {
                        Audience::Everyone
                    } else {
                        Audience::Direct(NodeId(direct))
                    },
                    kind,
                },
                grants: grants.into_iter().map(|(n, w)| (NodeId(n), w)).collect(),
            },
        )
}

proptest! {
    /// Every bus envelope — any kind, audience and grant list —
    /// round-trips bit-exactly through the live transport's framing.
    #[test]
    fn every_envelope_roundtrips(wire in arb_wire()) {
        let bytes = encode_frame(&wire, MAX_FRAME).expect("encodes");
        let (back, used): (BusWire, usize) =
            decode_frame(&bytes, MAX_FRAME).expect("decodes");
        prop_assert_eq!(back, wire);
        prop_assert_eq!(used, bytes.len());
    }

    /// Grant weights survive by bit pattern, not by approximate value.
    #[test]
    fn grant_weights_are_bit_exact(bits in prop::collection::vec(any::<u64>(), 0..6)) {
        let grants: Vec<(NodeId, f64)> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| (NodeId(i as u32), f64::from_bits(b)))
            .collect();
        let mut buf = Vec::new();
        grants.encode(&mut buf);
        let back = WireReader::new(&buf)
            .finish::<Vec<(NodeId, f64)>>()
            .expect("decodes");
        prop_assert_eq!(back.len(), grants.len());
        for (got, want) in back.iter().zip(&grants) {
            prop_assert_eq!(got.0, want.0);
            prop_assert_eq!(got.1.to_bits(), want.1.to_bits());
        }
    }

    /// Truncating a valid envelope anywhere is a typed error.
    #[test]
    fn truncation_never_panics(wire in arb_wire()) {
        let mut body = Vec::new();
        wire.encode(&mut body);
        for cut in 0..body.len() {
            prop_assert!(
                WireReader::new(&body[..cut]).finish::<BusWire>().is_err(),
                "prefix of {} bytes decoded", cut
            );
        }
    }

    /// Arbitrary bytes never panic the envelope decoder.
    #[test]
    fn hostile_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..160)) {
        let _ = WireReader::new(&bytes).finish::<BusWire>();
        let _ = WireReader::new(&bytes).finish::<CoopKind>();
        let _ = decode_frame::<BusWire>(&bytes, MAX_FRAME);
    }
}
