//! Property tests for the spatial awareness model and temporal weights.

use odp_awareness::spatial::{AwarenessLevel, Position, SpatialBody, SpatialModel};
use odp_awareness::weights::{combined_weight, TemporalDecay};
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn body(x: f64, y: f64, aura: f64, focus: f64, nimbus: f64) -> SpatialBody {
    SpatialBody {
        position: Position::new(x, y),
        aura,
        focus,
        nimbus,
    }
}

proptest! {
    /// Weights always lie in [0, 1], vanish beyond the aura, and are
    /// consistent with the qualitative levels: Full > 0, None == 0.
    #[test]
    fn weights_are_bounded_and_level_consistent(
        x in -100.0f64..100.0, y in -100.0f64..100.0,
        aura in 1.0f64..200.0, focus in 0.0f64..100.0, nimbus in 0.0f64..100.0,
    ) {
        let mut s = SpatialModel::new();
        s.place(NodeId(0), body(0.0, 0.0, aura, focus, nimbus));
        s.place(NodeId(1), body(x, y, aura, focus, nimbus));
        let w = s.weight(NodeId(0), NodeId(1));
        prop_assert!((0.0..=1.0).contains(&w), "w={w}");
        let d = Position::new(0.0, 0.0).distance(&Position::new(x, y));
        if d > aura {
            prop_assert_eq!(w, 0.0, "outside the aura");
            prop_assert_eq!(s.level(NodeId(0), NodeId(1)), AwarenessLevel::None);
        }
        match s.level(NodeId(0), NodeId(1)) {
            AwarenessLevel::Full => prop_assert!(w > 0.0),
            AwarenessLevel::None => {}
            AwarenessLevel::Peripheral => {}
        }
    }

    /// Weight is monotonically non-increasing in distance along a ray
    /// (same radii everywhere).
    #[test]
    fn weight_decreases_with_distance(
        d1 in 0.0f64..100.0, d2 in 0.0f64..100.0,
        radius in 1.0f64..120.0,
    ) {
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let mut s = SpatialModel::new();
        s.place(NodeId(0), body(0.0, 0.0, 1_000.0, radius, radius));
        s.place(NodeId(1), body(near, 0.0, 1_000.0, radius, radius));
        s.place(NodeId(2), body(far, 0.0, 1_000.0, radius, radius));
        prop_assert!(
            s.weight(NodeId(0), NodeId(1)) >= s.weight(NodeId(0), NodeId(2)),
            "nearer must weigh at least as much"
        );
    }

    /// `aware_of` is sorted by weight, contains no self entry and no
    /// zero-weight entries.
    #[test]
    fn aware_of_is_sorted_and_clean(
        positions in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..8),
    ) {
        let mut s = SpatialModel::new();
        for (i, &(x, y)) in positions.iter().enumerate() {
            s.place(NodeId(i as u32), body(x, y, 1_000.0, 40.0, 40.0));
        }
        let aware = s.aware_of(NodeId(0));
        for w in aware.windows(2) {
            prop_assert!(w[0].1 >= w[1].1, "sorted descending");
        }
        for &(n, w) in &aware {
            prop_assert_ne!(n, NodeId(0), "no self-awareness");
            prop_assert!(w > 0.0);
        }
    }

    /// Temporal decay is in (0, 1], monotone, and multiplicative over
    /// concatenated intervals.
    #[test]
    fn decay_is_multiplicative(
        half_life_ms in 1u64..100_000,
        a_ms in 0u64..1_000_000,
        b_ms in 0u64..1_000_000,
    ) {
        let d = TemporalDecay::new(SimDuration::from_millis(half_life_ms));
        let t0 = SimTime::ZERO;
        let wa = d.weight(t0, SimTime::from_millis(a_ms));
        let wb = d.weight(t0, SimTime::from_millis(b_ms));
        let wab = d.weight(t0, SimTime::from_millis(a_ms + b_ms));
        prop_assert!((wab - wa * wb).abs() < 1e-9, "exponential: {wab} vs {}", wa * wb);
        // Weights are within [0, 1]; extreme elapsed/half-life ratios may
        // underflow to exactly 0.0, which is acceptable.
        prop_assert!((0.0..=1.0).contains(&wa));
    }

    /// The combined weight never exceeds any of its factors.
    #[test]
    fn combined_weight_is_dominated(
        s in 0.0f64..1.5, t in 0.0f64..1.5, r in 0.0f64..1.5,
    ) {
        let w = combined_weight(s, t, r);
        prop_assert!(w <= s.clamp(0.0, 1.0) + 1e-12);
        prop_assert!(w <= t.clamp(0.0, 1.0) + 1e-12);
        prop_assert!(w <= r.clamp(0.0, 1.0) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&w));
    }
}
