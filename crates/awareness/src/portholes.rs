//! Portholes-style asynchronous awareness (Dourish & Bly): periodic,
//! low-fidelity snapshots of each participant's activity, distributed to
//! subscribers regardless of distance — "awareness in a distributed work
//! group" across both time and space.

use std::collections::{BTreeMap, BTreeSet};

use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One low-fidelity activity snapshot ("a frame from the office camera").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Whose office.
    pub who: NodeId,
    /// When it was captured.
    pub at: SimTime,
    /// A coarse activity descriptor (e.g. "typing", "away", "meeting").
    pub activity: String,
}

/// The Portholes directory: captures snapshots and answers queries with
/// staleness tracking.
///
/// # Examples
///
/// ```
/// use odp_awareness::portholes::Portholes;
/// use odp_sim::net::NodeId;
/// use odp_sim::time::{SimDuration, SimTime};
///
/// let mut p = Portholes::new(SimDuration::from_secs(300));
/// p.subscribe(NodeId(1), NodeId(0));
/// p.capture(NodeId(0), "typing", SimTime::ZERO);
/// let wall = p.wall_for(NodeId(1), SimTime::from_secs(60));
/// assert_eq!(wall.len(), 1);
/// assert_eq!(wall[0].0.activity, "typing");
/// assert!(!wall[0].1, "not yet stale");
/// ```
#[derive(Debug, Clone)]
pub struct Portholes {
    latest: BTreeMap<NodeId, Snapshot>,
    subscriptions: BTreeMap<NodeId, BTreeSet<NodeId>>,
    stale_after: SimDuration,
    captures: u64,
}

impl Portholes {
    /// Creates a directory in which snapshots older than `stale_after`
    /// are flagged stale.
    pub fn new(stale_after: SimDuration) -> Self {
        Portholes {
            latest: BTreeMap::new(),
            subscriptions: BTreeMap::new(),
            stale_after,
            captures: 0,
        }
    }

    /// `viewer` subscribes to `target`'s snapshots.
    pub fn subscribe(&mut self, viewer: NodeId, target: NodeId) {
        self.subscriptions.entry(viewer).or_default().insert(target);
    }

    /// Removes a subscription.
    pub fn unsubscribe(&mut self, viewer: NodeId, target: NodeId) {
        if let Some(set) = self.subscriptions.get_mut(&viewer) {
            set.remove(&target);
        }
    }

    /// Records a snapshot of `who`.
    pub fn capture(&mut self, who: NodeId, activity: impl Into<String>, at: SimTime) {
        self.captures += 1;
        self.latest.insert(
            who,
            Snapshot {
                who,
                at,
                activity: activity.into(),
            },
        );
    }

    /// The viewer's "porthole wall": each subscribed target's latest
    /// snapshot with a staleness flag. Targets that never captured are
    /// omitted.
    pub fn wall_for(&self, viewer: NodeId, now: SimTime) -> Vec<(Snapshot, bool)> {
        let Some(targets) = self.subscriptions.get(&viewer) else {
            return Vec::new();
        };
        targets
            .iter()
            .filter_map(|t| self.latest.get(t))
            .map(|s| (s.clone(), now.saturating_since(s.at) > self.stale_after))
            .collect()
    }

    /// Total snapshots captured.
    pub fn captures(&self) -> u64 {
        self.captures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_shows_latest_snapshot_per_target() {
        let mut p = Portholes::new(SimDuration::from_secs(60));
        p.subscribe(NodeId(9), NodeId(0));
        p.capture(NodeId(0), "idle", SimTime::ZERO);
        p.capture(NodeId(0), "typing", SimTime::from_secs(5));
        let wall = p.wall_for(NodeId(9), SimTime::from_secs(6));
        assert_eq!(wall.len(), 1);
        assert_eq!(wall[0].0.activity, "typing");
    }

    #[test]
    fn staleness_is_flagged() {
        let mut p = Portholes::new(SimDuration::from_secs(10));
        p.subscribe(NodeId(9), NodeId(0));
        p.capture(NodeId(0), "typing", SimTime::ZERO);
        assert!(!p.wall_for(NodeId(9), SimTime::from_secs(10))[0].1);
        assert!(p.wall_for(NodeId(9), SimTime::from_secs(11))[0].1);
    }

    #[test]
    fn unsubscribed_targets_disappear() {
        let mut p = Portholes::new(SimDuration::from_secs(60));
        p.subscribe(NodeId(9), NodeId(0));
        p.subscribe(NodeId(9), NodeId(1));
        p.capture(NodeId(0), "a", SimTime::ZERO);
        p.capture(NodeId(1), "b", SimTime::ZERO);
        assert_eq!(p.wall_for(NodeId(9), SimTime::ZERO).len(), 2);
        p.unsubscribe(NodeId(9), NodeId(0));
        let wall = p.wall_for(NodeId(9), SimTime::ZERO);
        assert_eq!(wall.len(), 1);
        assert_eq!(wall[0].0.who, NodeId(1));
    }

    #[test]
    fn targets_without_captures_are_omitted() {
        let mut p = Portholes::new(SimDuration::from_secs(60));
        p.subscribe(NodeId(9), NodeId(5));
        assert!(p.wall_for(NodeId(9), SimTime::ZERO).is_empty());
    }

    #[test]
    fn viewer_without_subscriptions_sees_nothing() {
        let mut p = Portholes::new(SimDuration::from_secs(60));
        p.capture(NodeId(0), "x", SimTime::ZERO);
        assert!(p.wall_for(NodeId(7), SimTime::ZERO).is_empty());
    }

    /// A re-`capture` freshens a snapshot across the stale boundary: the
    /// same wall entry flips stale → fresh without growing the wall.
    #[test]
    fn recapture_refreshes_a_stale_snapshot() {
        let mut p = Portholes::new(SimDuration::from_secs(10));
        p.subscribe(NodeId(9), NodeId(0));
        p.capture(NodeId(0), "typing", SimTime::ZERO);
        let wall = p.wall_for(NodeId(9), SimTime::from_secs(30));
        assert_eq!(wall.len(), 1);
        assert!(wall[0].1, "first snapshot has gone stale");
        p.capture(NodeId(0), "meeting", SimTime::from_secs(30));
        let wall = p.wall_for(NodeId(9), SimTime::from_secs(31));
        assert_eq!(wall.len(), 1, "replaced, not accumulated");
        assert_eq!(wall[0].0.activity, "meeting");
        assert!(!wall[0].1, "fresh again");
    }

    /// Re-`capture` overwrites the retained snapshot (one per target)
    /// while the capture counter keeps accumulating — retention and
    /// accounting are deliberately different.
    #[test]
    fn recapture_overwrites_retention_but_accumulates_the_counter() {
        let mut p = Portholes::new(SimDuration::from_secs(60));
        p.subscribe(NodeId(9), NodeId(0));
        for (i, act) in ["idle", "typing", "away"].iter().enumerate() {
            p.capture(NodeId(0), *act, SimTime::from_secs(i as u64));
        }
        assert_eq!(p.captures(), 3, "every capture is counted");
        let wall = p.wall_for(NodeId(9), SimTime::from_secs(3));
        assert_eq!(wall.len(), 1, "but only the latest is retained");
        assert_eq!(wall[0].0.activity, "away");
        assert_eq!(wall[0].0.at, SimTime::from_secs(2));
    }

    /// After unsubscribing, further captures of the dropped target no
    /// longer grow the viewer's wall.
    #[test]
    fn unsubscribe_stops_wall_growth_for_future_captures() {
        let mut p = Portholes::new(SimDuration::from_secs(60));
        p.subscribe(NodeId(9), NodeId(0));
        p.subscribe(NodeId(9), NodeId(1));
        p.capture(NodeId(1), "typing", SimTime::ZERO);
        p.unsubscribe(NodeId(9), NodeId(0));
        // The dropped target only starts capturing *after* the
        // unsubscribe; its snapshots must never reach this wall.
        p.capture(NodeId(0), "typing", SimTime::from_secs(1));
        p.capture(NodeId(0), "meeting", SimTime::from_secs(2));
        let wall = p.wall_for(NodeId(9), SimTime::from_secs(3));
        assert_eq!(wall.len(), 1);
        assert_eq!(wall[0].0.who, NodeId(1));
        // Another viewer still subscribed to the target sees them fine.
        p.subscribe(NodeId(8), NodeId(0));
        assert_eq!(p.wall_for(NodeId(8), SimTime::from_secs(3)).len(), 1);
    }
}
