//! Awareness events and their distribution.
//!
//! The paper (§4.2.1): *"a more recent trend has been to ... provide
//! explicit **awareness mechanisms** for both synchronous and asynchronous
//! modes of working. This work often uses spatial and temporal metrics to
//! generate awareness weightings defining the impact of actions on other
//! users."*
//!
//! An [`AwarenessEngine`] routes published [`AwarenessEvent`]s to
//! registered participants, weighting each delivery by a pluggable
//! [`WeightFn`] (see [`crate::spatial`] and [`crate::weights`] for the
//! standard metrics). Deliveries below a participant's threshold are
//! suppressed — this is how "at a glance" peripheral awareness stays
//! useful rather than noisy.

use std::collections::BTreeMap;
use std::fmt;

use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// What a participant did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityKind {
    /// Edited a shared artefact.
    Edit,
    /// Viewed a shared artefact.
    View,
    /// Entered a space / session.
    Enter,
    /// Left a space / session.
    Leave,
    /// An informal gesture (pointing, highlighting, chance remark).
    Gesture,
    /// Moved within a shared space.
    Move,
}

impl fmt::Display for ActivityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActivityKind::Edit => "edit",
            ActivityKind::View => "view",
            ActivityKind::Enter => "enter",
            ActivityKind::Leave => "leave",
            ActivityKind::Gesture => "gesture",
            ActivityKind::Move => "move",
        };
        f.write_str(s)
    }
}

/// One observable action by a participant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AwarenessEvent {
    /// Who acted.
    pub actor: NodeId,
    /// The artefact acted upon (an application-level identifier).
    pub artefact: String,
    /// The kind of action.
    pub kind: ActivityKind,
    /// When.
    pub at: SimTime,
}

/// A weighted delivery of an event to one observer.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedDelivery {
    /// The observer receiving the event.
    pub observer: NodeId,
    /// The event.
    pub event: AwarenessEvent,
    /// Awareness weight in `[0, 1]`.
    pub weight: f64,
}

/// Computes the awareness weight of `event` for `observer`.
///
/// Returning `0.0` suppresses delivery entirely.
///
/// `Send` so awareness state can ride along when a hosting actor moves
/// into a threaded transport backend.
pub type WeightFn = Box<dyn Fn(NodeId, &AwarenessEvent) -> f64 + Send>;

/// Per-observer delivery configuration.
struct Observer {
    threshold: f64,
    received: u64,
    suppressed: u64,
}

/// Routes awareness events to observers with weights.
///
/// # Examples
///
/// ```
/// use odp_awareness::events::{ActivityKind, AwarenessEngine, AwarenessEvent};
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut engine = AwarenessEngine::new(Box::new(|_, _| 1.0));
/// engine.register(NodeId(1), 0.1);
/// let deliveries = engine.publish(AwarenessEvent {
///     actor: NodeId(0),
///     artefact: "doc:intro".into(),
///     kind: ActivityKind::Edit,
///     at: SimTime::ZERO,
/// });
/// assert_eq!(deliveries.len(), 1);
/// assert_eq!(deliveries[0].observer, NodeId(1));
/// ```
pub struct AwarenessEngine {
    weight: WeightFn,
    observers: BTreeMap<NodeId, Observer>,
    published: u64,
}

impl AwarenessEngine {
    /// Creates an engine using `weight` to score deliveries.
    pub fn new(weight: WeightFn) -> Self {
        AwarenessEngine {
            weight,
            observers: BTreeMap::new(),
            published: 0,
        }
    }

    /// Registers an observer with a minimum-interest threshold in
    /// `[0, 1]`; events weighted below it are suppressed.
    pub fn register(&mut self, observer: NodeId, threshold: f64) {
        self.observers.insert(
            observer,
            Observer {
                threshold: threshold.clamp(0.0, 1.0),
                received: 0,
                suppressed: 0,
            },
        );
    }

    /// Removes an observer.
    pub fn unregister(&mut self, observer: NodeId) {
        self.observers.remove(&observer);
    }

    /// Replaces the weighting function (e.g. when participants move in
    /// space).
    pub fn set_weight_fn(&mut self, weight: WeightFn) {
        self.weight = weight;
    }

    /// Publishes an event, returning the weighted deliveries that pass
    /// each observer's threshold. The actor never observes itself.
    pub fn publish(&mut self, event: AwarenessEvent) -> Vec<WeightedDelivery> {
        self.published += 1;
        let mut out = Vec::new();
        for (&observer, state) in self.observers.iter_mut() {
            if observer == event.actor {
                continue;
            }
            let w = (self.weight)(observer, &event).clamp(0.0, 1.0);
            if w >= state.threshold && w > 0.0 {
                state.received += 1;
                out.push(WeightedDelivery {
                    observer,
                    // Each observer gets an owned event by API contract;
                    // the deep part is one short artefact string.
                    // odp-check: allow(hot-path-alloc)
                    event: event.clone(),
                    weight: w,
                });
            } else {
                state.suppressed += 1;
            }
        }
        out
    }

    /// Total events published.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// `(received, suppressed)` counts for an observer.
    pub fn stats(&self, observer: NodeId) -> Option<(u64, u64)> {
        self.observers
            .get(&observer)
            .map(|o| (o.received, o.suppressed))
    }
}

impl fmt::Debug for AwarenessEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AwarenessEngine")
            .field("observers", &self.observers.len())
            .field("published", &self.published)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(actor: u32) -> AwarenessEvent {
        AwarenessEvent {
            actor: NodeId(actor),
            artefact: "doc".into(),
            kind: ActivityKind::Edit,
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn publishes_to_all_but_the_actor() {
        let mut e = AwarenessEngine::new(Box::new(|_, _| 1.0));
        e.register(NodeId(0), 0.0);
        e.register(NodeId(1), 0.0);
        e.register(NodeId(2), 0.0);
        let out = e.publish(event(0));
        let observers: Vec<NodeId> = out.iter().map(|d| d.observer).collect();
        assert_eq!(observers, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn threshold_suppresses_low_weight_events() {
        let mut e =
            AwarenessEngine::new(Box::new(|obs, _| if obs == NodeId(1) { 0.9 } else { 0.2 }));
        e.register(NodeId(1), 0.5);
        e.register(NodeId(2), 0.5);
        let out = e.publish(event(0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].observer, NodeId(1));
        assert_eq!(e.stats(NodeId(2)), Some((0, 1)));
        assert_eq!(e.stats(NodeId(1)), Some((1, 0)));
    }

    #[test]
    fn zero_weight_never_delivers_even_at_zero_threshold() {
        let mut e = AwarenessEngine::new(Box::new(|_, _| 0.0));
        e.register(NodeId(1), 0.0);
        assert!(e.publish(event(0)).is_empty());
    }

    #[test]
    fn weights_are_clamped() {
        let mut e = AwarenessEngine::new(Box::new(|_, _| 7.5));
        e.register(NodeId(1), 0.0);
        let out = e.publish(event(0));
        assert_eq!(out[0].weight, 1.0);
    }

    #[test]
    fn unregister_stops_delivery() {
        let mut e = AwarenessEngine::new(Box::new(|_, _| 1.0));
        e.register(NodeId(1), 0.0);
        e.unregister(NodeId(1));
        assert!(e.publish(event(0)).is_empty());
    }

    #[test]
    fn weight_fn_can_be_replaced_at_runtime() {
        let mut e = AwarenessEngine::new(Box::new(|_, _| 0.0));
        e.register(NodeId(1), 0.1);
        assert!(e.publish(event(0)).is_empty());
        e.set_weight_fn(Box::new(|_, _| 1.0));
        assert_eq!(e.publish(event(0)).len(), 1);
    }
}
