#![warn(missing_docs)]

//! # odp-awareness — explicit awareness mechanisms
//!
//! The paper's counterpoint to concurrency *transparency* (§4.2.1): CSCW
//! systems need users to be **aware** of each other's activity. This
//! crate provides the mechanisms the paper surveys:
//!
//! - [`events`] — weighted awareness-event distribution with per-observer
//!   interest thresholds;
//! - [`bus`] — the unified, rights-gated cooperation-event bus: one
//!   [`CoopEvent`] vocabulary for lock, txgroup, floor, mobility,
//!   session and trader notices, gated through `odp_access` rights and
//!   scored by the same focus–nimbus weighting;
//! - [`dist`] — bus distribution over `odp_groupcomm` causal multicast
//!   with `aware.publish`/`aware.deliver` telemetry spans;
//! - [`spatial`] — the aura/focus/nimbus spatial model of interaction
//!   (Benford & Fahlén, DIVE);
//! - [`weights`] — temporal decay and combined spatial×temporal×relevance
//!   awareness weightings (Mariani & Prinz);
//! - [`portholes`] — asynchronous snapshot awareness (Dourish & Bly);
//! - [`mediaspace`] — RAVE-style media-space connections with
//!   privacy-graded acceptance policies.
//!
//! ```
//! use odp_awareness::spatial::{Position, SpatialBody, SpatialModel};
//! use odp_sim::net::NodeId;
//!
//! let mut space = SpatialModel::new();
//! space.place(NodeId(0), SpatialBody::symmetric(Position::new(0.0, 0.0), 100.0, 20.0));
//! space.place(NodeId(1), SpatialBody::symmetric(Position::new(4.0, 3.0), 100.0, 20.0));
//! assert!(space.weight(NodeId(0), NodeId(1)) > 0.5);
//! ```

pub mod bus;
pub mod dist;
pub mod events;
pub mod mediaspace;
pub mod portholes;
pub mod spatial;
pub mod weights;
pub mod wire;

pub use bus::{
    Audience, BusDelivery, BusStats, CoopEvent, CoopKind, CoopMode, CoopWeightFn, EventBus,
};
pub use dist::{BusActor, BusWire};
pub use events::{ActivityKind, AwarenessEngine, AwarenessEvent, WeightedDelivery};
pub use mediaspace::{
    Acceptance, ConnectOutcome, ConnectionId, ConnectionType, MediaSpace, MediaSpaceError,
};
pub use portholes::{Portholes, Snapshot};
pub use spatial::{AwarenessLevel, Position, SpatialBody, SpatialModel};
pub use weights::{combined_weight, RelevanceMap, TemporalDecay};
