//! The unified, rights-gated cooperation-event bus.
//!
//! The paper's integration thesis (§4.3–§4.4) is that awareness is a
//! *cross-cutting* platform service: concurrency control, floor control,
//! access negotiation, mobility and trading should all feed user
//! awareness, mediated by focus–nimbus weighting and gated by access
//! rights so participants only become aware of what they may see (Shen &
//! Dewan). Before this module, each subsystem spoke its own notice
//! vocabulary (`Notice`, `GroupNotice`, `FloorEvent`, `ReplayOutcome`,
//! session transition logs) and none were rights-checked.
//!
//! [`CoopEvent`] is the single vocabulary: one `actor`/`artefact`/`at`
//! header plus a [`CoopKind`] variant per cooperative phenomenon. The
//! [`EventBus`] routes published events to registered observers:
//!
//! 1. **rights gate** — an observer without [`Rights::READ`] on the
//!    event's artefact path never sees the event (counted per observer
//!    in `suppressed_by_rights`, disclosed via [`EventBus::stats`]);
//! 2. **focus–nimbus weighting** — survivors are scored by a pluggable
//!    [`CoopWeightFn`] and compared against the observer's interest
//!    threshold, exactly as [`crate::events::AwarenessEngine`] does for
//!    raw activity events.
//!
//! Network distribution of bus deliveries over causal multicast lives in
//! [`crate::dist`].

use std::fmt;

use odp_access::matrix::Subject;
use odp_access::rbac::{ObjectPath, RbacPolicy};
use odp_access::rights::Rights;
use odp_fabric::SortedVecMap;
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::events::{ActivityKind, AwarenessEvent, WeightFn};

/// Lock/access mode carried by cooperation events.
///
/// A bus-local mirror of `odp_concurrency::locks::LockMode` — the
/// awareness crate sits *below* the concurrency crate in the dependency
/// graph, so the mode is restated here rather than imported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoopMode {
    /// Shared / read intent.
    Shared,
    /// Exclusive / write intent.
    Exclusive,
}

impl fmt::Display for CoopMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CoopMode::Shared => "shared",
            CoopMode::Exclusive => "exclusive",
        })
    }
}

/// Who an event is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Audience {
    /// Every registered observer, scored by the weight function; the
    /// actor never observes itself.
    Everyone,
    /// One specific addressee (a lock grant, a tickle request): the
    /// weight function and threshold are bypassed (weight `1.0`) and the
    /// addressee may equal the actor — but the rights gate still
    /// applies.
    Direct(NodeId),
}

/// What happened — one variant per cooperative phenomenon the platform's
/// subsystems previously reported through private notice types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoopKind {
    /// A raw activity observation (edit/view/enter/...), the vocabulary
    /// of [`crate::events`].
    Activity(ActivityKind),
    /// A lock was granted to the actor.
    LockGranted {
        /// Granted mode.
        mode: CoopMode,
    },
    /// A tickle request: `by` wants the actor's idle lock.
    LockTickled {
        /// The requester.
        by: NodeId,
    },
    /// The actor's lock was revoked in favour of `to`.
    LockRevoked {
        /// The new holder.
        to: NodeId,
    },
    /// The actor's optimistic access conflicts with `with`.
    LockConflict {
        /// The conflicting party.
        with: NodeId,
    },
    /// Notification-scheme access: `by` accessed the artefact.
    LockAccess {
        /// Who accessed.
        by: NodeId,
        /// In which mode.
        mode: CoopMode,
    },
    /// A transaction-group member accessed a shared object.
    GroupAccess {
        /// Access mode.
        mode: CoopMode,
    },
    /// The actor acquired the floor.
    FloorGranted,
    /// The actor lost the floor to preemption.
    FloorPreempted,
    /// The floor fell idle after the actor released it.
    FloorIdle,
    /// A remote OT operation from `site` was applied locally.
    RemoteOp {
        /// Originating site.
        site: NodeId,
        /// Site-local sequence number.
        seq: u64,
    },
    /// An access-renegotiation outcome on the artefact.
    AccessChanged {
        /// Granted (`true`) or revoked/denied (`false`).
        granted: bool,
        /// Human-readable rights description.
        rights: String,
    },
    /// Mobile reintegration hit a conflict on the artefact.
    ReintegrationConflict {
        /// Whether the mobile value was applied (client-wins).
        applied: bool,
    },
    /// The session switched cooperation mode.
    SessionSwitched {
        /// Previous mode label.
        from: String,
        /// New mode label.
        to: String,
    },
    /// A traded service binding was invalidated.
    ServiceInvalidated {
        /// Invalidation reason label.
        reason: String,
    },
    /// The placement controller moved a cluster to a new home (the
    /// artefact names the cluster's offer, e.g. `raster/tile/3`).
    ClusterMigrated {
        /// The old home node.
        from: NodeId,
        /// The new home node.
        to: NodeId,
    },
}

impl CoopKind {
    /// A stable dotted label for traces, metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            CoopKind::Activity(_) => "activity",
            CoopKind::LockGranted { .. } => "lock.granted",
            CoopKind::LockTickled { .. } => "lock.tickled",
            CoopKind::LockRevoked { .. } => "lock.revoked",
            CoopKind::LockConflict { .. } => "lock.conflict",
            CoopKind::LockAccess { .. } => "lock.access",
            CoopKind::GroupAccess { .. } => "group.access",
            CoopKind::FloorGranted => "floor.granted",
            CoopKind::FloorPreempted => "floor.preempted",
            CoopKind::FloorIdle => "floor.idle",
            CoopKind::RemoteOp { .. } => "ot.remote",
            CoopKind::AccessChanged { .. } => "access.changed",
            CoopKind::ReintegrationConflict { .. } => "mobility.conflict",
            CoopKind::SessionSwitched { .. } => "session.switched",
            CoopKind::ServiceInvalidated { .. } => "trader.invalidated",
            CoopKind::ClusterMigrated { .. } => "place.migrated",
        }
    }

    /// Maps the cooperative phenomenon onto the closest raw
    /// [`ActivityKind`], so existing [`WeightFn`]s written against
    /// [`AwarenessEvent`] can score cooperation events too.
    pub fn activity(&self) -> ActivityKind {
        match self {
            CoopKind::Activity(k) => *k,
            CoopKind::LockGranted { .. }
            | CoopKind::LockTickled { .. }
            | CoopKind::LockRevoked { .. }
            | CoopKind::LockConflict { .. }
            | CoopKind::LockAccess { .. }
            | CoopKind::GroupAccess { .. }
            | CoopKind::RemoteOp { .. }
            | CoopKind::ReintegrationConflict { .. } => ActivityKind::Edit,
            CoopKind::SessionSwitched { .. } | CoopKind::ClusterMigrated { .. } => {
                ActivityKind::Move
            }
            CoopKind::FloorGranted
            | CoopKind::FloorPreempted
            | CoopKind::FloorIdle
            | CoopKind::AccessChanged { .. }
            | CoopKind::ServiceInvalidated { .. } => ActivityKind::Gesture,
        }
    }
}

/// One cooperation event: the unified header shared by every subsystem
/// plus the phenomenon-specific [`CoopKind`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoopEvent {
    /// Who caused the event.
    pub actor: NodeId,
    /// The artefact path it concerns (rights are checked against this).
    pub artefact: String,
    /// When.
    pub at: SimTime,
    /// Who should hear about it.
    pub audience: Audience,
    /// What happened.
    pub kind: CoopKind,
}

impl CoopEvent {
    /// A broadcast event (audience [`Audience::Everyone`]).
    pub fn broadcast(
        actor: NodeId,
        artefact: impl Into<String>,
        at: SimTime,
        kind: CoopKind,
    ) -> Self {
        CoopEvent {
            actor,
            artefact: artefact.into(),
            at,
            audience: Audience::Everyone,
            kind,
        }
    }

    /// A directed event for one addressee (still rights-gated).
    pub fn direct(
        actor: NodeId,
        to: NodeId,
        artefact: impl Into<String>,
        at: SimTime,
        kind: CoopKind,
    ) -> Self {
        CoopEvent {
            actor,
            artefact: artefact.into(),
            at,
            audience: Audience::Direct(to),
            kind,
        }
    }

    /// The event viewed as a raw [`AwarenessEvent`], for weight
    /// functions written against the older vocabulary.
    pub fn as_awareness(&self) -> AwarenessEvent {
        AwarenessEvent {
            actor: self.actor,
            artefact: self.artefact.clone(),
            kind: self.kind.activity(),
            at: self.at,
        }
    }
}

/// A weighted, rights-cleared delivery of a cooperation event to one
/// observer.
#[derive(Debug, Clone, PartialEq)]
pub struct BusDelivery {
    /// The observer receiving the event.
    pub observer: NodeId,
    /// The event.
    pub event: CoopEvent,
    /// Awareness weight in `[0, 1]` (always `1.0` for
    /// [`Audience::Direct`] deliveries).
    pub weight: f64,
}

/// Computes the awareness weight of a cooperation event for an observer.
///
/// Returning `0.0` suppresses delivery entirely (broadcast audience
/// only; directed events bypass weighting).
///
/// `Send` so a bus replica can be hosted on a threaded transport
/// backend (`odp-net`'s TCP driver moves the actor into its driver
/// thread).
pub type CoopWeightFn = Box<dyn Fn(NodeId, &CoopEvent) -> f64 + Send>;

/// Per-observer bus state.
struct BusObserver {
    threshold: f64,
    received: u64,
    suppressed_low_weight: u64,
    suppressed_by_rights: u64,
}

/// Per-observer delivery statistics, disclosed by [`EventBus::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusStats {
    /// Deliveries that reached the observer.
    pub received: u64,
    /// Events suppressed below the observer's interest threshold.
    pub suppressed_low_weight: u64,
    /// Events suppressed because the observer lacked read rights on the
    /// artefact.
    pub suppressed_by_rights: u64,
}

/// The unified cooperation-event bus: rights gate, then focus–nimbus
/// weighting, then delivery.
///
/// A fresh bus is *open*: weight `1.0` for everyone and no rights gate,
/// matching the pre-bus behaviour of the subsystem notice types it
/// replaces. Installing a policy with [`EventBus::set_policy`] arms the
/// gate.
///
/// # Examples
///
/// ```
/// use odp_access::matrix::Subject;
/// use odp_access::rbac::{Effect, RbacPolicy, RoleId};
/// use odp_access::rights::Rights;
/// use odp_awareness::bus::{CoopEvent, CoopKind, CoopMode, EventBus};
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut policy = RbacPolicy::new();
/// policy.add_rule(RoleId(1), "doc".into(), Rights::READ, Effect::Allow);
/// policy.assign(Subject(1), RoleId(1)); // observer 1 may read doc/*
///
/// let mut bus = EventBus::new();
/// bus.set_policy(policy);
/// bus.register(NodeId(1), 0.0);
/// bus.register(NodeId(2), 0.0); // no rights on doc/*
///
/// let out = bus.publish(CoopEvent::broadcast(
///     NodeId(0),
///     "doc/intro",
///     SimTime::ZERO,
///     CoopKind::LockGranted { mode: CoopMode::Exclusive },
/// ));
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].observer, NodeId(1));
/// assert_eq!(bus.suppressed_by_rights(), 1); // observer 2 never saw it
/// ```
pub struct EventBus {
    weight: CoopWeightFn,
    // Sorted vec, not a BTreeMap: the grant loop in `publish` walks
    // every observer per event, and contiguous entries keep that scan
    // cache-friendly while preserving NodeId iteration order.
    observers: SortedVecMap<NodeId, BusObserver>,
    policy: RbacPolicy,
    gate: bool,
    published: u64,
}

impl EventBus {
    /// Creates an open bus: weight `1.0` for every observer, rights gate
    /// disarmed until [`EventBus::set_policy`] installs a policy.
    pub fn new() -> Self {
        EventBus {
            weight: Box::new(|_, _| 1.0),
            observers: SortedVecMap::new(),
            policy: RbacPolicy::new(),
            gate: false,
            published: 0,
        }
    }

    /// Installs the access policy the rights gate consults and arms the
    /// gate: from now on an observer needs [`Rights::READ`] on an
    /// event's artefact path to receive it.
    pub fn set_policy(&mut self, policy: RbacPolicy) {
        self.policy = policy;
        self.gate = true;
    }

    /// Arms or disarms the rights gate explicitly.
    ///
    /// Intended for harnesses and fault injection (the known-bad
    /// explorer fixture disarms the gate to prove the `awareness-gating`
    /// detector detects); production configurations arm the gate via
    /// [`EventBus::set_policy`].
    pub fn set_rights_gate(&mut self, on: bool) {
        self.gate = on;
    }

    /// Whether the rights gate is armed.
    pub fn rights_gate(&self) -> bool {
        self.gate
    }

    /// The installed access policy.
    pub fn policy(&self) -> &RbacPolicy {
        &self.policy
    }

    /// Mutable access to the installed policy (renegotiation).
    pub fn policy_mut(&mut self) -> &mut RbacPolicy {
        &mut self.policy
    }

    /// Replaces the weighting function.
    pub fn set_weight_fn(&mut self, weight: CoopWeightFn) {
        self.weight = weight;
    }

    /// Adapts a legacy [`WeightFn`] (written against [`AwarenessEvent`])
    /// into the bus's weighting slot via [`CoopEvent::as_awareness`].
    pub fn set_awareness_weight_fn(&mut self, weight: WeightFn) {
        self.weight = Box::new(move |obs, ev| weight(obs, &ev.as_awareness()));
    }

    /// Registers an observer with a minimum-interest threshold in
    /// `[0, 1]`.
    pub fn register(&mut self, observer: NodeId, threshold: f64) {
        self.observers.insert(
            observer,
            BusObserver {
                threshold: threshold.clamp(0.0, 1.0),
                received: 0,
                suppressed_low_weight: 0,
                suppressed_by_rights: 0,
            },
        );
    }

    /// Removes an observer.
    pub fn unregister(&mut self, observer: NodeId) {
        self.observers.remove(&observer);
    }

    /// The registered observers.
    pub fn observers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.observers.keys().copied()
    }

    /// Whether `observer` may read `artefact` under the installed
    /// policy (always `true` while the gate is disarmed).
    pub fn rights_allow(&self, observer: NodeId, artefact: &str) -> bool {
        if !self.gate {
            return true;
        }
        self.policy
            .check(
                Subject(observer.0),
                &ObjectPath::new(artefact),
                Rights::READ,
            )
            .allowed
    }

    /// Publishes a cooperation event.
    ///
    /// For each registered observer, in order: the rights gate (no read
    /// rights on the artefact → suppressed, counted), then — broadcast
    /// audience only — the weight function against the observer's
    /// threshold. Directed events go only to their addressee at weight
    /// `1.0`; broadcast events never reach their own actor.
    pub fn publish(&mut self, event: CoopEvent) -> Vec<BusDelivery> {
        self.published += 1;
        let mut out = Vec::new();
        for (&observer, state) in self.observers.iter_mut() {
            let weight = match event.audience {
                Audience::Direct(to) => {
                    if observer != to {
                        continue;
                    }
                    1.0
                }
                Audience::Everyone => {
                    if observer == event.actor {
                        continue;
                    }
                    (self.weight)(observer, &event).clamp(0.0, 1.0)
                }
            };
            // Rights first: an observer without read rights must not
            // learn the event existed, regardless of interest.
            let allowed = !self.gate
                || self
                    .policy
                    .check(
                        Subject(observer.0),
                        &ObjectPath::new(event.artefact.as_str()),
                        Rights::READ,
                    )
                    .allowed;
            if !allowed {
                state.suppressed_by_rights += 1;
                continue;
            }
            let pass = match event.audience {
                Audience::Direct(_) => true,
                Audience::Everyone => weight >= state.threshold && weight > 0.0,
            };
            if pass {
                state.received += 1;
                out.push(BusDelivery {
                    observer,
                    // Each observer gets an owned event by API contract;
                    // the deep part is one short artefact string.
                    // odp-check: allow(hot-path-alloc)
                    event: event.clone(),
                    weight,
                });
            } else {
                state.suppressed_low_weight += 1;
            }
        }
        out
    }

    /// Total events published.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Total deliveries suppressed by the rights gate, across all
    /// observers.
    pub fn suppressed_by_rights(&self) -> u64 {
        self.observers
            .values()
            .map(|o| o.suppressed_by_rights)
            .sum()
    }

    /// Per-observer delivery statistics.
    pub fn stats(&self, observer: NodeId) -> Option<BusStats> {
        self.observers.get(&observer).map(|o| BusStats {
            received: o.received,
            suppressed_low_weight: o.suppressed_low_weight,
            suppressed_by_rights: o.suppressed_by_rights,
        })
    }
}

impl Default for EventBus {
    fn default() -> Self {
        EventBus::new()
    }
}

impl fmt::Debug for EventBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventBus")
            .field("observers", &self.observers.len())
            .field("gate", &self.gate)
            .field("published", &self.published)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_access::rbac::{Effect, RoleId};

    fn reader_policy(readers: &[u32], path: &str) -> RbacPolicy {
        let mut p = RbacPolicy::new();
        p.add_rule(RoleId(1), path.into(), Rights::READ, Effect::Allow);
        for &r in readers {
            p.assign(Subject(r), RoleId(1));
        }
        p
    }

    fn bcast(actor: u32) -> CoopEvent {
        CoopEvent::broadcast(
            NodeId(actor),
            "doc/a",
            SimTime::ZERO,
            CoopKind::Activity(ActivityKind::Edit),
        )
    }

    #[test]
    fn open_bus_behaves_like_the_awareness_engine() {
        let mut bus = EventBus::new();
        bus.register(NodeId(0), 0.0);
        bus.register(NodeId(1), 0.0);
        bus.register(NodeId(2), 0.0);
        let out = bus.publish(bcast(0));
        let observers: Vec<NodeId> = out.iter().map(|d| d.observer).collect();
        assert_eq!(observers, vec![NodeId(1), NodeId(2)], "actor excluded");
        assert_eq!(bus.suppressed_by_rights(), 0);
    }

    #[test]
    fn rights_gate_suppresses_unauthorized_observers_with_disclosure() {
        let mut bus = EventBus::new();
        bus.set_policy(reader_policy(&[1], "doc"));
        bus.register(NodeId(1), 0.0);
        bus.register(NodeId(2), 0.0);
        let out = bus.publish(bcast(0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].observer, NodeId(1));
        assert_eq!(bus.suppressed_by_rights(), 1);
        let s2 = bus.stats(NodeId(2)).unwrap();
        assert_eq!(s2.suppressed_by_rights, 1);
        assert_eq!(s2.received, 0);
        assert_eq!(s2.suppressed_low_weight, 0, "rights, not weight");
    }

    #[test]
    fn direct_events_bypass_weighting_but_not_the_rights_gate() {
        let mut bus = EventBus::new();
        bus.set_policy(reader_policy(&[1], "doc"));
        bus.set_weight_fn(Box::new(|_, _| 0.0)); // would suppress broadcasts
        bus.register(NodeId(1), 0.9);
        bus.register(NodeId(2), 0.0);
        let to_reader = bus.publish(CoopEvent::direct(
            NodeId(0),
            NodeId(1),
            "doc/a",
            SimTime::ZERO,
            CoopKind::LockGranted {
                mode: CoopMode::Shared,
            },
        ));
        assert_eq!(to_reader.len(), 1, "weight fn and threshold bypassed");
        assert_eq!(to_reader[0].weight, 1.0);
        let to_stranger = bus.publish(CoopEvent::direct(
            NodeId(0),
            NodeId(2),
            "doc/a",
            SimTime::ZERO,
            CoopKind::LockGranted {
                mode: CoopMode::Shared,
            },
        ));
        assert!(to_stranger.is_empty(), "rights gate still applies");
        assert_eq!(bus.stats(NodeId(2)).unwrap().suppressed_by_rights, 1);
    }

    #[test]
    fn direct_events_may_address_the_actor() {
        let mut bus = EventBus::new();
        bus.register(NodeId(5), 0.0);
        let out = bus.publish(CoopEvent::direct(
            NodeId(5),
            NodeId(5),
            "res/1",
            SimTime::ZERO,
            CoopKind::LockGranted {
                mode: CoopMode::Exclusive,
            },
        ));
        assert_eq!(out.len(), 1, "a lock grant notifies its own requester");
    }

    #[test]
    fn threshold_and_zero_weight_suppress_broadcasts() {
        let mut bus = EventBus::new();
        bus.set_weight_fn(Box::new(|obs, _| if obs == NodeId(1) { 0.9 } else { 0.2 }));
        bus.register(NodeId(1), 0.5);
        bus.register(NodeId(2), 0.5);
        let out = bus.publish(bcast(0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].observer, NodeId(1));
        let s2 = bus.stats(NodeId(2)).unwrap();
        assert_eq!(s2.suppressed_low_weight, 1);
        assert_eq!(s2.suppressed_by_rights, 0);
    }

    #[test]
    fn disarming_the_gate_reopens_delivery() {
        let mut bus = EventBus::new();
        bus.set_policy(reader_policy(&[], "doc"));
        bus.register(NodeId(1), 0.0);
        assert!(bus.publish(bcast(0)).is_empty());
        bus.set_rights_gate(false);
        assert_eq!(bus.publish(bcast(0)).len(), 1);
    }

    #[test]
    fn legacy_weight_fns_score_coop_events_via_the_activity_mapping() {
        let mut bus = EventBus::new();
        // A legacy fn that only cares about Edit activity.
        bus.set_awareness_weight_fn(Box::new(|_, ev| {
            if ev.kind == ActivityKind::Edit {
                1.0
            } else {
                0.0
            }
        }));
        bus.register(NodeId(1), 0.5);
        // GroupAccess maps onto Edit.
        let seen = bus.publish(CoopEvent::broadcast(
            NodeId(0),
            "obj/1",
            SimTime::ZERO,
            CoopKind::GroupAccess {
                mode: CoopMode::Exclusive,
            },
        ));
        assert_eq!(seen.len(), 1);
        // FloorIdle maps onto Gesture → weight 0 → suppressed.
        let unseen = bus.publish(CoopEvent::broadcast(
            NodeId(0),
            "floor",
            SimTime::ZERO,
            CoopKind::FloorIdle,
        ));
        assert!(unseen.is_empty());
    }

    #[test]
    fn labels_are_stable_and_dotted() {
        assert_eq!(
            CoopKind::LockGranted {
                mode: CoopMode::Shared
            }
            .label(),
            "lock.granted"
        );
        assert_eq!(
            CoopKind::SessionSwitched {
                from: "a".into(),
                to: "b".into()
            }
            .label(),
            "session.switched"
        );
        assert_eq!(
            CoopKind::ServiceInvalidated { reason: "x".into() }.label(),
            "trader.invalidated"
        );
        assert_eq!(
            CoopKind::ClusterMigrated {
                from: NodeId(0),
                to: NodeId(3)
            }
            .label(),
            "place.migrated"
        );
    }
}
