//! Network distribution of cooperation events over causal multicast.
//!
//! A [`BusActor`] hosts an [`EventBus`] replica on an [`odp_sim`] actor.
//! Publishing works like the collaboration-aware workspace of
//! `cscw-core`: the *publisher* runs the rights gate and focus–nimbus
//! weighting locally (so a suppressed observer's node never even
//! receives the event for them), then disseminates the surviving grants
//! over `odp_groupcomm` causal multicast. Each node surfaces the grants
//! addressed to observers it hosts.
//!
//! With telemetry enabled, publications mint an `aware.publish` root
//! span and every surfaced grant mints an `aware.deliver` child from the
//! span piggybacked on the data message, so awareness fan-out appears in
//! `odp_telemetry` causal DAGs and critical paths alongside `gc.*` and
//! `rpc.*` spans.

use std::collections::BTreeSet;

use odp_groupcomm::membership::View;
use odp_groupcomm::multicast::{Delivery, GcMsg, GroupEngine, Ordering, Reliability, Step};
use odp_net::actor::TransportActor;
use odp_net::ctx::NetCtx;
use odp_sim::actor::{Actor, Ctx, TimerId};
use odp_sim::net::NodeId;
use odp_sim::time::SimDuration;
use odp_telemetry::span::SpanContext;
use serde::{Deserialize, Serialize};

use crate::bus::{BusDelivery, CoopEvent, EventBus};

/// Maintenance-tick timer tag.
const TICK: u64 = 1;

/// The wire payload: a cooperation event plus the `(observer, weight)`
/// grants the publisher's bus cleared through the rights gate and
/// weighting. Receivers surface only grants for observers they host —
/// they never re-derive deliveries, so a publisher-side suppression is
/// final.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusWire {
    /// The event.
    pub event: CoopEvent,
    /// Cleared `(observer, weight)` grants (empty until published).
    pub grants: Vec<(NodeId, f64)>,
}

impl BusWire {
    /// Wraps an event for injection as a [`GcMsg::AppCmd`]; the
    /// publishing [`BusActor`] fills in the grants.
    pub fn new(event: CoopEvent) -> Self {
        BusWire {
            event,
            grants: Vec::new(),
        }
    }
}

/// An actor hosting an [`EventBus`] replica and distributing cleared
/// deliveries over causal reliable multicast.
///
/// Inject `GcMsg::AppCmd(BusWire::new(event))` at a node to publish
/// from it; after the run, [`BusActor::delivered`] on each node lists
/// the [`BusDelivery`]s surfaced for the observers that node hosts
/// (by default just the node itself).
pub struct BusActor {
    engine: GroupEngine<BusWire>,
    bus: EventBus,
    hosted: BTreeSet<NodeId>,
    delivered: Vec<BusDelivery>,
    tick_every: SimDuration,
    telemetry: bool,
}

impl BusActor {
    /// Creates a bus actor for `me`: causal ordering, reliable
    /// delivery, hosting `me` as its only local observer.
    pub fn new(me: NodeId, view: View, bus: EventBus) -> Self {
        BusActor {
            engine: GroupEngine::new(me, view, Ordering::Causal, Reliability::reliable()),
            bus,
            hosted: BTreeSet::from([me]),
            delivered: Vec::new(),
            tick_every: SimDuration::from_millis(50),
            telemetry: false,
        }
    }

    /// Declares that `observer` is hosted at this node, so its grants
    /// are surfaced here.
    pub fn host_observer(&mut self, observer: NodeId) {
        self.hosted.insert(observer);
    }

    /// Enables `aware.publish`/`aware.deliver` span telemetry. Off by
    /// default — minting draws from the actor's rng stream, so enabling
    /// it perturbs runs that share a seed with an uninstrumented
    /// baseline.
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
    }

    /// Adjusts the maintenance tick period (default 50 ms).
    pub fn set_tick_interval(&mut self, every: SimDuration) {
        self.tick_every = every;
    }

    /// The hosted bus replica.
    pub fn bus(&self) -> &EventBus {
        &self.bus
    }

    /// Mutable access to the hosted bus replica (policy renegotiation,
    /// observer churn).
    pub fn bus_mut(&mut self) -> &mut EventBus {
        &mut self.bus
    }

    /// Deliveries surfaced at this node, in arrival order.
    pub fn delivered(&self) -> &[BusDelivery] {
        &self.delivered
    }

    fn apply_step(&mut self, ctx: &mut dyn NetCtx<GcMsg<BusWire>>, step: Step<BusWire>) {
        for (to, msg) in step.outbound {
            ctx.send(to, msg);
        }
        for delivery in step.delivered {
            self.surface(ctx, delivery);
        }
    }

    /// Surfaces the grants of one delivered wire message that are
    /// addressed to locally hosted observers.
    fn surface(&mut self, ctx: &mut dyn NetCtx<GcMsg<BusWire>>, delivery: Delivery<BusWire>) {
        let wire = delivery.payload;
        for &(observer, weight) in &wire.grants {
            if !self.hosted.contains(&observer) {
                continue;
            }
            ctx.metrics().incr("aware.deliver");
            if self.telemetry {
                if let Some(parent) = delivery.span {
                    let child = parent.child(ctx.rng());
                    ctx.span_open(child.carrier(), "aware.deliver");
                    ctx.span_close(child.carrier());
                }
            }
            self.delivered.push(BusDelivery {
                observer,
                event: wire.event.clone(),
                weight,
            });
        }
    }
}

impl BusActor {
    fn handle_start(&mut self, ctx: &mut dyn NetCtx<GcMsg<BusWire>>) {
        ctx.set_timer(self.tick_every, TICK);
    }

    fn handle_message(
        &mut self,
        ctx: &mut dyn NetCtx<GcMsg<BusWire>>,
        from: NodeId,
        msg: GcMsg<BusWire>,
    ) {
        match msg {
            GcMsg::AppCmd(mut wire) => {
                let event = wire.event.clone();
                wire.grants = self
                    .bus
                    .publish(event)
                    .into_iter()
                    .map(|d| (d.observer, d.weight))
                    .collect();
                ctx.metrics().incr("aware.publish");
                let span = if self.telemetry {
                    // The publish root closes at issue time; deliveries
                    // hang aware.deliver children off it as they land.
                    let root = SpanContext::root(ctx.rng());
                    ctx.span_open(root.carrier(), "aware.publish");
                    ctx.span_close(root.carrier());
                    Some(root)
                } else {
                    None
                };
                let step = self.engine.mcast_spanned(wire, ctx.now(), span);
                self.apply_step(ctx, step);
            }
            GcMsg::InstallView(view) => {
                self.engine.install_view(view);
            }
            other => {
                let step = self.engine.on_message(from, other, ctx.now());
                self.apply_step(ctx, step);
            }
        }
    }

    fn handle_timer(&mut self, ctx: &mut dyn NetCtx<GcMsg<BusWire>>, tag: u64) {
        if tag == TICK {
            let step = self.engine.on_tick(ctx.now());
            self.apply_step(ctx, step);
            ctx.set_timer(self.tick_every, TICK);
        }
    }
}

/// Sim backend: `&mut Ctx` coerces to `&mut dyn NetCtx`, whose methods
/// forward 1:1, so seeded runs match the pre-`odp-net` adapter exactly.
impl Actor<GcMsg<BusWire>> for BusActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GcMsg<BusWire>>) {
        self.handle_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, GcMsg<BusWire>>, from: NodeId, msg: GcMsg<BusWire>) {
        self.handle_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GcMsg<BusWire>>, _timer: TimerId, tag: u64) {
        self.handle_timer(ctx, tag);
    }
}

/// Real-transport backends drive the same handlers; peer churn is the
/// membership layer's concern ([`GcMsg::InstallView`]).
impl TransportActor<GcMsg<BusWire>> for BusActor {
    fn on_start(&mut self, ctx: &mut dyn NetCtx<GcMsg<BusWire>>) {
        self.handle_start(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut dyn NetCtx<GcMsg<BusWire>>,
        from: NodeId,
        msg: GcMsg<BusWire>,
    ) {
        self.handle_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx<GcMsg<BusWire>>, _timer: TimerId, tag: u64) {
        self.handle_timer(ctx, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{CoopKind, CoopMode};
    use crate::events::ActivityKind;
    use odp_access::matrix::Subject;
    use odp_access::rbac::{Effect, RbacPolicy, RoleId};
    use odp_access::rights::Rights;
    use odp_groupcomm::membership::GroupId;
    use odp_sim::prelude::*;

    /// Everyone in `readers` may read `path/*`; everyone is a bus
    /// observer at threshold 0.
    fn gated_bus(n: u32, readers: &[u32], path: &str) -> EventBus {
        let mut policy = RbacPolicy::new();
        policy.add_rule(RoleId(1), path.into(), Rights::READ, Effect::Allow);
        for &r in readers {
            policy.assign(Subject(r), RoleId(1));
        }
        let mut bus = EventBus::new();
        bus.set_policy(policy);
        for i in 0..n {
            bus.register(NodeId(i), 0.0);
        }
        bus
    }

    fn build(n: u32, readers: &[u32], seed: u64, telemetry: bool) -> Sim<GcMsg<BusWire>> {
        let view = View::initial(GroupId(0), (0..n).map(NodeId));
        let mut sim = SimBuilder::new(seed).build();
        for i in 0..n {
            let mut actor = BusActor::new(NodeId(i), view.clone(), gated_bus(n, readers, "doc"));
            actor.set_telemetry(telemetry);
            sim.add_actor(NodeId(i), actor);
        }
        sim
    }

    fn actor(sim: &Sim<GcMsg<BusWire>>, i: u32) -> &BusActor {
        sim.get(ActorHandle::of(NodeId(i)))
            .expect("bus actor exists")
    }

    fn edit(actor: u32) -> BusWire {
        BusWire::new(CoopEvent::broadcast(
            NodeId(actor),
            "doc/a",
            SimTime::ZERO,
            CoopKind::Activity(ActivityKind::Edit),
        ))
    }

    #[test]
    fn grants_surface_only_at_the_observers_own_node() {
        let mut sim = build(3, &[0, 1, 2], 7, false);
        sim.inject(SimTime::from_millis(1), NodeId(0), NodeId(0), {
            GcMsg::AppCmd(edit(0))
        });
        sim.run(Until::For(SimDuration::from_secs(2)));
        // Broadcast from 0: observers 1 and 2 each see it exactly once,
        // at their own node; node 0 (the actor) surfaces nothing.
        assert!(actor(&sim, 0).delivered().is_empty());
        for i in 1..3u32 {
            let got = actor(&sim, i).delivered();
            assert_eq!(got.len(), 1, "node {i}");
            assert_eq!(got[0].observer, NodeId(i));
            assert_eq!(got[0].weight, 1.0);
        }
    }

    #[test]
    fn rights_suppression_happens_at_the_publisher() {
        // Observer 2 may not read doc/*.
        let mut sim = build(3, &[0, 1], 7, false);
        sim.inject(
            SimTime::from_millis(1),
            NodeId(0),
            NodeId(0),
            GcMsg::AppCmd(edit(0)),
        );
        sim.run(Until::For(SimDuration::from_secs(2)));
        assert_eq!(actor(&sim, 1).delivered().len(), 1);
        assert!(actor(&sim, 2).delivered().is_empty(), "gated out");
        // The suppression is counted at the publishing replica.
        assert_eq!(actor(&sim, 0).bus().suppressed_by_rights(), 1);
    }

    #[test]
    fn directed_events_reach_only_the_addressee() {
        let mut sim = build(3, &[0, 1, 2], 11, false);
        sim.inject(
            SimTime::from_millis(1),
            NodeId(0),
            NodeId(0),
            GcMsg::AppCmd(BusWire::new(CoopEvent::direct(
                NodeId(0),
                NodeId(2),
                "doc/a",
                SimTime::ZERO,
                CoopKind::LockGranted {
                    mode: CoopMode::Exclusive,
                },
            ))),
        );
        sim.run(Until::For(SimDuration::from_secs(2)));
        assert!(actor(&sim, 1).delivered().is_empty());
        let got = actor(&sim, 2).delivered();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].event.kind.label(), "lock.granted");
    }

    #[test]
    fn telemetry_links_publish_and_deliver_spans_causally() {
        use odp_telemetry::collector::Collector;

        let mut sim = build(3, &[0, 1, 2], 13, true);
        sim.inject(
            SimTime::from_millis(1),
            NodeId(0),
            NodeId(0),
            GcMsg::AppCmd(edit(0)),
        );
        sim.run(Until::For(SimDuration::from_secs(2)));
        let collector = Collector::from_trace(sim.trace());
        collector.well_formed().expect("aware spans well-formed");
        assert_eq!(collector.len(), 1, "one publication, one causal trace");
        let (_, dag) = collector.traces().next().unwrap();
        let kinds: Vec<_> = dag.spans().map(|s| s.kind.as_str()).collect();
        assert_eq!(kinds.iter().filter(|k| **k == "aware.publish").count(), 1);
        // One aware.deliver per surfaced grant (observers 1 and 2).
        assert_eq!(kinds.iter().filter(|k| **k == "aware.deliver").count(), 2);
    }

    #[test]
    fn hosted_observers_surface_at_their_host() {
        // Node 0 hosts an extra (non-member) observer 9 with read
        // rights: its grants surface at node 0.
        let view = View::initial(GroupId(0), (0..2).map(NodeId));
        let mut sim: Sim<GcMsg<BusWire>> = SimBuilder::new(3).build();
        for i in 0..2u32 {
            let mut bus = gated_bus(2, &[0, 1], "doc");
            bus.policy_mut().assign(Subject(9), RoleId(1));
            bus.register(NodeId(9), 0.0);
            let mut actor = BusActor::new(NodeId(i), view.clone(), bus);
            if i == 0 {
                actor.host_observer(NodeId(9));
            }
            sim.add_actor(NodeId(i), actor);
        }
        sim.inject(
            SimTime::from_millis(1),
            NodeId(1),
            NodeId(1),
            GcMsg::AppCmd(edit(1)),
        );
        sim.run(Until::For(SimDuration::from_secs(2)));
        let at0: Vec<NodeId> = actor(&sim, 0)
            .delivered()
            .iter()
            .map(|d| d.observer)
            .collect();
        assert_eq!(at0, vec![NodeId(0), NodeId(9)]);
    }
}
