//! Media spaces (RAVE / Cruiser, paper §3.3.2): point-to-point audio/video
//! connections embedded in the workplace, with privacy-graded connection
//! types and per-user acceptance policies.
//!
//! RAVE distinguished connection types by how intrusive they are: a
//! *background* connection (shared coffee-room wall), a one-way *glance*,
//! a full two-way *vphone* call, and a persistent *office-share*. Each
//! user configures which types connect automatically, which ask first, and
//! which are refused — privacy management by social protocol, not locks.

use std::collections::BTreeMap;
use std::fmt;

use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// RAVE's connection types, least to most intrusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ConnectionType {
    /// Ambient, many-to-many background view.
    Background,
    /// One-way, few-second look into an office.
    Glance,
    /// Two-way audio/video call.
    VPhone,
    /// Persistent two-way office link.
    OfficeShare,
}

impl fmt::Display for ConnectionType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConnectionType::Background => "background",
            ConnectionType::Glance => "glance",
            ConnectionType::VPhone => "vphone",
            ConnectionType::OfficeShare => "office-share",
        };
        f.write_str(s)
    }
}

/// What a callee's policy says about an incoming connection type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Acceptance {
    /// Connect without asking.
    Auto,
    /// Ask the callee first.
    #[default]
    Ask,
    /// Always refuse.
    Refuse,
}

/// The outcome of a connection attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectOutcome {
    /// Connected immediately.
    Connected(ConnectionId),
    /// The callee must confirm; resolve with [`MediaSpace::answer`].
    Pending(ConnectionId),
    /// Refused by policy.
    Refused,
}

/// Identifies an (attempted) connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConnectionId(pub u64);

/// Errors from media-space operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaSpaceError {
    /// The connection id is unknown or already resolved.
    UnknownConnection(ConnectionId),
    /// Only the callee may answer a pending connection.
    NotCallee(NodeId),
}

impl fmt::Display for MediaSpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaSpaceError::UnknownConnection(c) => write!(f, "unknown connection {}", c.0),
            MediaSpaceError::NotCallee(n) => write!(f, "{n} is not the callee"),
        }
    }
}

impl std::error::Error for MediaSpaceError {}

#[derive(Debug, Clone)]
struct Connection {
    from: NodeId,
    to: NodeId,
    kind: ConnectionType,
    established: Option<SimTime>,
}

/// The media-space switchboard.
///
/// # Examples
///
/// ```
/// use odp_awareness::mediaspace::{Acceptance, ConnectOutcome, ConnectionType, MediaSpace};
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut ms = MediaSpace::new();
/// ms.set_policy(NodeId(1), ConnectionType::Glance, Acceptance::Auto);
/// let outcome = ms.connect(NodeId(0), NodeId(1), ConnectionType::Glance, SimTime::ZERO);
/// assert!(matches!(outcome, ConnectOutcome::Connected(_)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MediaSpace {
    policies: BTreeMap<(NodeId, ConnectionType), Acceptance>,
    connections: BTreeMap<ConnectionId, Connection>,
    next: u64,
}

impl MediaSpace {
    /// Creates an empty switchboard (default policy: ask for everything).
    pub fn new() -> Self {
        MediaSpace::default()
    }

    /// Sets `who`'s acceptance policy for one connection type.
    pub fn set_policy(&mut self, who: NodeId, kind: ConnectionType, acceptance: Acceptance) {
        self.policies.insert((who, kind), acceptance);
    }

    /// The policy in force for `who` / `kind`.
    pub fn policy(&self, who: NodeId, kind: ConnectionType) -> Acceptance {
        self.policies.get(&(who, kind)).copied().unwrap_or_default()
    }

    /// Attempts a connection from `from` to `to`.
    pub fn connect(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: ConnectionType,
        now: SimTime,
    ) -> ConnectOutcome {
        match self.policy(to, kind) {
            Acceptance::Refuse => ConnectOutcome::Refused,
            Acceptance::Auto => {
                let id = self.insert(from, to, kind, Some(now));
                ConnectOutcome::Connected(id)
            }
            Acceptance::Ask => {
                let id = self.insert(from, to, kind, None);
                ConnectOutcome::Pending(id)
            }
        }
    }

    fn insert(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: ConnectionType,
        established: Option<SimTime>,
    ) -> ConnectionId {
        let id = ConnectionId(self.next);
        self.next += 1;
        self.connections.insert(
            id,
            Connection {
                from,
                to,
                kind,
                established,
            },
        );
        id
    }

    /// The callee answers a pending connection.
    ///
    /// # Errors
    ///
    /// Fails on unknown/settled connections or if `who` is not the callee.
    pub fn answer(
        &mut self,
        who: NodeId,
        id: ConnectionId,
        accept: bool,
        now: SimTime,
    ) -> Result<ConnectOutcome, MediaSpaceError> {
        let conn = self
            .connections
            .get_mut(&id)
            .ok_or(MediaSpaceError::UnknownConnection(id))?;
        if conn.to != who {
            return Err(MediaSpaceError::NotCallee(who));
        }
        if conn.established.is_some() {
            return Err(MediaSpaceError::UnknownConnection(id));
        }
        if accept {
            conn.established = Some(now);
            Ok(ConnectOutcome::Connected(id))
        } else {
            self.connections.remove(&id);
            Ok(ConnectOutcome::Refused)
        }
    }

    /// Tears down a connection (either party).
    pub fn disconnect(&mut self, id: ConnectionId) -> Result<(), MediaSpaceError> {
        self.connections
            .remove(&id)
            .map(|_| ())
            .ok_or(MediaSpaceError::UnknownConnection(id))
    }

    /// Active (established) connections involving `who`.
    pub fn active_for(&self, who: NodeId) -> Vec<(ConnectionId, NodeId, ConnectionType)> {
        self.connections
            .iter()
            .filter(|(_, c)| c.established.is_some() && (c.from == who || c.to == who))
            .map(|(&id, c)| {
                let peer = if c.from == who { c.to } else { c.from };
                (id, peer, c.kind)
            })
            .collect()
    }

    /// Reciprocity check: a glance shows the caller to the callee too —
    /// returns the peers who can currently see `who`.
    pub fn who_sees(&self, who: NodeId) -> Vec<NodeId> {
        self.connections
            .values()
            .filter(|c| c.established.is_some())
            .filter_map(|c| {
                if c.to == who {
                    Some(c.from)
                } else if c.from == who && c.kind >= ConnectionType::VPhone {
                    // Two-way types expose the caller symmetrically.
                    Some(c.to)
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_policy_connects_immediately() {
        let mut ms = MediaSpace::new();
        ms.set_policy(NodeId(1), ConnectionType::Background, Acceptance::Auto);
        let out = ms.connect(
            NodeId(0),
            NodeId(1),
            ConnectionType::Background,
            SimTime::ZERO,
        );
        let ConnectOutcome::Connected(id) = out else {
            panic!("expected immediate connection, got {out:?}");
        };
        assert_eq!(
            ms.active_for(NodeId(1)),
            vec![(id, NodeId(0), ConnectionType::Background)]
        );
    }

    #[test]
    fn default_policy_asks_first() {
        let mut ms = MediaSpace::new();
        let out = ms.connect(NodeId(0), NodeId(1), ConnectionType::VPhone, SimTime::ZERO);
        let ConnectOutcome::Pending(id) = out else {
            panic!("expected pending, got {out:?}");
        };
        assert!(ms.active_for(NodeId(1)).is_empty(), "not yet established");
        let answered = ms
            .answer(NodeId(1), id, true, SimTime::from_secs(2))
            .unwrap();
        assert!(matches!(answered, ConnectOutcome::Connected(_)));
        assert_eq!(ms.active_for(NodeId(0)).len(), 1);
    }

    #[test]
    fn refuse_policy_blocks() {
        let mut ms = MediaSpace::new();
        ms.set_policy(NodeId(1), ConnectionType::OfficeShare, Acceptance::Refuse);
        let out = ms.connect(
            NodeId(0),
            NodeId(1),
            ConnectionType::OfficeShare,
            SimTime::ZERO,
        );
        assert_eq!(out, ConnectOutcome::Refused);
    }

    #[test]
    fn declining_a_pending_connection_removes_it() {
        let mut ms = MediaSpace::new();
        let ConnectOutcome::Pending(id) =
            ms.connect(NodeId(0), NodeId(1), ConnectionType::Glance, SimTime::ZERO)
        else {
            panic!("expected pending");
        };
        let out = ms.answer(NodeId(1), id, false, SimTime::ZERO).unwrap();
        assert_eq!(out, ConnectOutcome::Refused);
        assert!(ms.disconnect(id).is_err(), "connection is gone");
    }

    #[test]
    fn only_the_callee_may_answer() {
        let mut ms = MediaSpace::new();
        let ConnectOutcome::Pending(id) =
            ms.connect(NodeId(0), NodeId(1), ConnectionType::Glance, SimTime::ZERO)
        else {
            panic!("expected pending");
        };
        assert_eq!(
            ms.answer(NodeId(2), id, true, SimTime::ZERO).unwrap_err(),
            MediaSpaceError::NotCallee(NodeId(2))
        );
    }

    #[test]
    fn glance_is_one_way_vphone_is_two_way() {
        let mut ms = MediaSpace::new();
        ms.set_policy(NodeId(1), ConnectionType::Glance, Acceptance::Auto);
        ms.set_policy(NodeId(2), ConnectionType::VPhone, Acceptance::Auto);
        ms.connect(NodeId(0), NodeId(1), ConnectionType::Glance, SimTime::ZERO);
        ms.connect(NodeId(0), NodeId(2), ConnectionType::VPhone, SimTime::ZERO);
        // Node 1 is seen by 0 (glance), and node 0 is seen by 2 (two-way)
        // but NOT by 1 (glance is one-way).
        assert_eq!(ms.who_sees(NodeId(1)), vec![NodeId(0)]);
        let sees_0 = ms.who_sees(NodeId(0));
        assert!(sees_0.contains(&NodeId(2)));
        assert!(!sees_0.contains(&NodeId(1)));
    }

    #[test]
    fn disconnect_ends_the_connection() {
        let mut ms = MediaSpace::new();
        ms.set_policy(NodeId(1), ConnectionType::VPhone, Acceptance::Auto);
        let ConnectOutcome::Connected(id) =
            ms.connect(NodeId(0), NodeId(1), ConnectionType::VPhone, SimTime::ZERO)
        else {
            panic!("expected connected");
        };
        ms.disconnect(id).unwrap();
        assert!(ms.active_for(NodeId(0)).is_empty());
    }
}
