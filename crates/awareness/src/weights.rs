//! Temporal and combined awareness weightings (Mariani & Prinz's
//! "awareness about co-workers in cooperation support object databases").
//!
//! Asynchronous awareness needs a *temporal* metric — how recently
//! something happened — combined with the *spatial* metric of
//! [`crate::spatial`] and an artefact-relevance factor. The product is
//! the awareness weighting the paper describes (§4.2.1).

use std::collections::BTreeMap;

use odp_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Exponential-decay recency weighting.
///
/// `weight = 0.5 ^ (elapsed / half_life)` — 1.0 for "just now", 0.5 after
/// one half-life, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemporalDecay {
    /// Elapsed time at which the weight halves. Private: a zero value
    /// would make `weight` divide 0-by-0 into NaN, which `powf` and
    /// `clamp` propagate silently past every threshold comparison.
    half_life: SimDuration,
}

impl TemporalDecay {
    /// Creates a decay with the given half-life.
    ///
    /// # Panics
    ///
    /// Panics if `half_life` is zero.
    pub fn new(half_life: SimDuration) -> Self {
        assert!(!half_life.is_zero(), "half-life must be positive");
        TemporalDecay { half_life }
    }

    /// The configured half-life.
    pub fn half_life(&self) -> SimDuration {
        self.half_life
    }

    /// The weight of an event that happened at `event_time`, observed at
    /// `now`. Future events weigh 1.0; events older than ~1074
    /// half-lives weigh an exact 0.0 (`0.5^ratio` underflows past the
    /// smallest subnormal there and `powf`'s rounding is
    /// platform-dependent, so the result is pinned).
    pub fn weight(&self, event_time: SimTime, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(event_time);
        // A zero half-life can still arrive via deserialization, which
        // bypasses `new`'s assertion. 0/0 would be NaN — NaN fails the
        // underflow comparison below, survives `powf` and `clamp`, and
        // then fails *every* threshold comparison downstream, silently
        // suppressing all deliveries. Saturate instead: instant decay.
        if self.half_life.is_zero() {
            return if elapsed.is_zero() { 1.0 } else { 0.0 };
        }
        let ratio = elapsed.as_micros() as f64 / self.half_life.as_micros() as f64;
        if ratio >= 1074.0 {
            return 0.0;
        }
        0.5f64.powf(ratio).clamp(0.0, 1.0)
    }
}

/// Relevance of artefacts to each observer: a sparse map defaulting to a
/// configurable base value.
#[derive(Debug, Clone)]
pub struct RelevanceMap {
    base: f64,
    entries: BTreeMap<String, f64>,
}

impl RelevanceMap {
    /// Creates a map where unlisted artefacts weigh `base`.
    pub fn new(base: f64) -> Self {
        RelevanceMap {
            base: base.clamp(0.0, 1.0),
            entries: BTreeMap::new(),
        }
    }

    /// Declares interest in an artefact.
    pub fn set(&mut self, artefact: impl Into<String>, relevance: f64) {
        self.entries
            .insert(artefact.into(), relevance.clamp(0.0, 1.0));
    }

    /// The relevance of an artefact.
    pub fn get(&self, artefact: &str) -> f64 {
        self.entries.get(artefact).copied().unwrap_or(self.base)
    }
}

/// The combined awareness weighting: spatial × temporal × relevance.
///
/// # Examples
///
/// ```
/// use odp_awareness::weights::{combined_weight, RelevanceMap, TemporalDecay};
/// use odp_sim::time::{SimDuration, SimTime};
///
/// let decay = TemporalDecay::new(SimDuration::from_secs(60));
/// let mut relevance = RelevanceMap::new(0.2);
/// relevance.set("doc:intro", 1.0);
/// let w = combined_weight(
///     0.8,
///     decay.weight(SimTime::ZERO, SimTime::ZERO),
///     relevance.get("doc:intro"),
/// );
/// assert!((w - 0.8).abs() < 1e-9);
/// ```
pub fn combined_weight(spatial: f64, temporal: f64, relevance: f64) -> f64 {
    (spatial.clamp(0.0, 1.0)) * (temporal.clamp(0.0, 1.0)) * (relevance.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_halves_per_half_life() {
        let d = TemporalDecay::new(SimDuration::from_secs(10));
        let t0 = SimTime::ZERO;
        assert!((d.weight(t0, t0) - 1.0).abs() < 1e-9);
        assert!((d.weight(t0, SimTime::from_secs(10)) - 0.5).abs() < 1e-9);
        assert!((d.weight(t0, SimTime::from_secs(20)) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn future_events_weigh_full() {
        let d = TemporalDecay::new(SimDuration::from_secs(10));
        assert_eq!(d.weight(SimTime::from_secs(5), SimTime::ZERO), 1.0);
    }

    #[test]
    #[should_panic(expected = "half-life must be positive")]
    fn zero_half_life_panics() {
        TemporalDecay::new(SimDuration::ZERO);
    }

    #[test]
    fn relevance_defaults_and_overrides() {
        let mut r = RelevanceMap::new(0.3);
        r.set("doc:a", 0.9);
        r.set("doc:b", 5.0); // clamped
        assert_eq!(r.get("doc:a"), 0.9);
        assert_eq!(r.get("doc:b"), 1.0);
        assert_eq!(r.get("doc:zzz"), 0.3);
    }

    #[test]
    fn combined_weight_is_a_product_with_clamping() {
        assert_eq!(combined_weight(0.5, 0.5, 0.5), 0.125);
        assert_eq!(combined_weight(2.0, 1.0, 1.0), 1.0);
        assert_eq!(combined_weight(-1.0, 1.0, 1.0), 0.0);
        assert_eq!(combined_weight(1.0, 0.0, 1.0), 0.0);
    }

    /// Recorded proptest shrink (see
    /// `tests/spatial_properties.proptest-regressions`):
    /// `half_life_ms = 1, a_ms = 1075, b_ms = 0` drives the decay ratio
    /// to 1075 half-lives, where `0.5^ratio` underflows past the last
    /// f64 subnormal. The weight must stay an exact, in-range 0.0 and
    /// the multiplicative property must still hold.
    #[test]
    fn regression_deep_underflow_stays_bounded_and_multiplicative() {
        let d = TemporalDecay::new(SimDuration::from_millis(1));
        let t0 = SimTime::ZERO;
        let (a_ms, b_ms) = (1075u64, 0u64);
        let wa = d.weight(t0, SimTime::from_millis(a_ms));
        let wb = d.weight(t0, SimTime::from_millis(b_ms));
        let wab = d.weight(t0, SimTime::from_millis(a_ms + b_ms));
        assert_eq!(wa, 0.0, "0.5^1075 underflows; must pin to exact zero");
        assert_eq!(wb, 1.0);
        assert!((wab - wa * wb).abs() < 1e-9);
        for w in [wa, wb, wab] {
            assert!((0.0..=1.0).contains(&w));
        }
    }

    /// Regression: a zero half-life (reachable through deserialization,
    /// which skips `new`'s assertion) made `weight` compute `0/0 = NaN`;
    /// NaN slipped past the underflow guard, `powf` and `clamp`, then
    /// failed every `>= threshold` comparison, silently suppressing all
    /// deliveries. The weight must instead saturate: 1.0 at the event
    /// instant, 0.0 after.
    #[test]
    fn regression_zero_half_life_saturates_instead_of_nan() {
        let d = TemporalDecay {
            half_life: SimDuration::ZERO,
        };
        let w_now = d.weight(SimTime::ZERO, SimTime::ZERO);
        let w_later = d.weight(SimTime::ZERO, SimTime::from_micros(1));
        assert!(!w_now.is_nan() && !w_later.is_nan());
        assert_eq!(w_now, 1.0, "instant decay still weighs 'just now' fully");
        assert_eq!(w_later, 0.0, "anything older decays completely");
    }

    #[test]
    fn half_life_is_exposed_via_the_getter() {
        let d = TemporalDecay::new(SimDuration::from_secs(10));
        assert_eq!(d.half_life(), SimDuration::from_secs(10));
    }

    #[test]
    fn decay_is_monotone_in_elapsed_time() {
        let d = TemporalDecay::new(SimDuration::from_millis(500));
        let t0 = SimTime::ZERO;
        let mut prev = 2.0;
        for ms in [0u64, 100, 200, 400, 800, 1600] {
            let w = d.weight(t0, SimTime::from_millis(ms));
            assert!(w < prev, "not monotone at {ms}");
            prev = w;
        }
    }
}
