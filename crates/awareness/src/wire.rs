//! Wire codecs for the cooperation-event bus envelope: [`BusWire`] and
//! every [`CoopKind`] variant round-trip through `odp-net` framing, so
//! bus replicas can disseminate over real transports.
//!
//! All decoders are total — corrupt bytes yield a typed [`NetError`],
//! never a panic. Impls live here per the orphan rule.

use odp_net::error::NetError;
use odp_net::wire::{WireCodec, WireReader};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;

use crate::bus::{Audience, CoopEvent, CoopKind, CoopMode};
use crate::dist::BusWire;
use crate::events::ActivityKind;

impl WireCodec for ActivityKind {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            ActivityKind::Edit => 0,
            ActivityKind::View => 1,
            ActivityKind::Enter => 2,
            ActivityKind::Leave => 3,
            ActivityKind::Gesture => 4,
            ActivityKind::Move => 5,
        };
        tag.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match u8::decode(r)? {
            0 => Ok(ActivityKind::Edit),
            1 => Ok(ActivityKind::View),
            2 => Ok(ActivityKind::Enter),
            3 => Ok(ActivityKind::Leave),
            4 => Ok(ActivityKind::Gesture),
            5 => Ok(ActivityKind::Move),
            tag => Err(NetError::BadTag {
                what: "ActivityKind",
                tag: tag as u32,
            }),
        }
    }
}

impl WireCodec for CoopMode {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            CoopMode::Shared => 0,
            CoopMode::Exclusive => 1,
        };
        tag.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match u8::decode(r)? {
            0 => Ok(CoopMode::Shared),
            1 => Ok(CoopMode::Exclusive),
            tag => Err(NetError::BadTag {
                what: "CoopMode",
                tag: tag as u32,
            }),
        }
    }
}

impl WireCodec for Audience {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Audience::Everyone => 0u8.encode(out),
            Audience::Direct(node) => {
                1u8.encode(out);
                node.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match u8::decode(r)? {
            0 => Ok(Audience::Everyone),
            1 => Ok(Audience::Direct(NodeId::decode(r)?)),
            tag => Err(NetError::BadTag {
                what: "Audience",
                tag: tag as u32,
            }),
        }
    }
}

impl WireCodec for CoopKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CoopKind::Activity(kind) => {
                0u8.encode(out);
                kind.encode(out);
            }
            CoopKind::LockGranted { mode } => {
                1u8.encode(out);
                mode.encode(out);
            }
            CoopKind::LockTickled { by } => {
                2u8.encode(out);
                by.encode(out);
            }
            CoopKind::LockRevoked { to } => {
                3u8.encode(out);
                to.encode(out);
            }
            CoopKind::LockConflict { with } => {
                4u8.encode(out);
                with.encode(out);
            }
            CoopKind::LockAccess { by, mode } => {
                5u8.encode(out);
                by.encode(out);
                mode.encode(out);
            }
            CoopKind::GroupAccess { mode } => {
                6u8.encode(out);
                mode.encode(out);
            }
            CoopKind::FloorGranted => 7u8.encode(out),
            CoopKind::FloorPreempted => 8u8.encode(out),
            CoopKind::FloorIdle => 9u8.encode(out),
            CoopKind::RemoteOp { site, seq } => {
                10u8.encode(out);
                site.encode(out);
                seq.encode(out);
            }
            CoopKind::AccessChanged { granted, rights } => {
                11u8.encode(out);
                granted.encode(out);
                rights.encode(out);
            }
            CoopKind::ReintegrationConflict { applied } => {
                12u8.encode(out);
                applied.encode(out);
            }
            CoopKind::SessionSwitched { from, to } => {
                13u8.encode(out);
                from.encode(out);
                to.encode(out);
            }
            CoopKind::ServiceInvalidated { reason } => {
                14u8.encode(out);
                reason.encode(out);
            }
            CoopKind::ClusterMigrated { from, to } => {
                15u8.encode(out);
                from.encode(out);
                to.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match u8::decode(r)? {
            0 => Ok(CoopKind::Activity(ActivityKind::decode(r)?)),
            1 => Ok(CoopKind::LockGranted {
                mode: CoopMode::decode(r)?,
            }),
            2 => Ok(CoopKind::LockTickled {
                by: NodeId::decode(r)?,
            }),
            3 => Ok(CoopKind::LockRevoked {
                to: NodeId::decode(r)?,
            }),
            4 => Ok(CoopKind::LockConflict {
                with: NodeId::decode(r)?,
            }),
            5 => Ok(CoopKind::LockAccess {
                by: NodeId::decode(r)?,
                mode: CoopMode::decode(r)?,
            }),
            6 => Ok(CoopKind::GroupAccess {
                mode: CoopMode::decode(r)?,
            }),
            7 => Ok(CoopKind::FloorGranted),
            8 => Ok(CoopKind::FloorPreempted),
            9 => Ok(CoopKind::FloorIdle),
            10 => Ok(CoopKind::RemoteOp {
                site: NodeId::decode(r)?,
                seq: u64::decode(r)?,
            }),
            11 => Ok(CoopKind::AccessChanged {
                granted: bool::decode(r)?,
                rights: String::decode(r)?,
            }),
            12 => Ok(CoopKind::ReintegrationConflict {
                applied: bool::decode(r)?,
            }),
            13 => Ok(CoopKind::SessionSwitched {
                from: String::decode(r)?,
                to: String::decode(r)?,
            }),
            14 => Ok(CoopKind::ServiceInvalidated {
                reason: String::decode(r)?,
            }),
            15 => Ok(CoopKind::ClusterMigrated {
                from: NodeId::decode(r)?,
                to: NodeId::decode(r)?,
            }),
            tag => Err(NetError::BadTag {
                what: "CoopKind",
                tag: tag as u32,
            }),
        }
    }
}

impl WireCodec for CoopEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        self.actor.encode(out);
        self.artefact.encode(out);
        self.at.encode(out);
        self.audience.encode(out);
        self.kind.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(CoopEvent {
            actor: NodeId::decode(r)?,
            artefact: String::decode(r)?,
            at: SimTime::decode(r)?,
            audience: Audience::decode(r)?,
            kind: CoopKind::decode(r)?,
        })
    }
}

impl WireCodec for BusWire {
    fn encode(&self, out: &mut Vec<u8>) {
        self.event.encode(out);
        self.grants.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(BusWire {
            event: CoopEvent::decode(r)?,
            grants: WireCodec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(value: &T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let back: T = WireReader::new(&buf).finish().expect("decodes");
        assert_eq!(&back, value);
    }

    #[test]
    fn every_coop_kind_roundtrips() {
        let kinds = vec![
            CoopKind::Activity(ActivityKind::Gesture),
            CoopKind::LockGranted {
                mode: CoopMode::Exclusive,
            },
            CoopKind::LockTickled { by: NodeId(4) },
            CoopKind::LockRevoked { to: NodeId(5) },
            CoopKind::LockConflict { with: NodeId(6) },
            CoopKind::LockAccess {
                by: NodeId(7),
                mode: CoopMode::Shared,
            },
            CoopKind::GroupAccess {
                mode: CoopMode::Shared,
            },
            CoopKind::FloorGranted,
            CoopKind::FloorPreempted,
            CoopKind::FloorIdle,
            CoopKind::RemoteOp {
                site: NodeId(2),
                seq: 41,
            },
            CoopKind::AccessChanged {
                granted: true,
                rights: "rw".to_owned(),
            },
            CoopKind::ReintegrationConflict { applied: false },
            CoopKind::SessionSwitched {
                from: "meeting".to_owned(),
                to: "async".to_owned(),
            },
            CoopKind::ServiceInvalidated {
                reason: "withdrawn".to_owned(),
            },
            CoopKind::ClusterMigrated {
                from: NodeId(0),
                to: NodeId(9),
            },
        ];
        for kind in kinds {
            let wire = BusWire {
                event: CoopEvent {
                    actor: NodeId(1),
                    artefact: "doc/a".to_owned(),
                    at: SimTime::from_millis(9),
                    audience: Audience::Direct(NodeId(3)),
                    kind,
                },
                grants: vec![(NodeId(3), 1.0), (NodeId(4), 0.25)],
            };
            roundtrip(&wire);
        }
    }

    #[test]
    fn unknown_kind_tag_is_a_typed_error() {
        let mut buf = Vec::new();
        200u8.encode(&mut buf);
        let got: Result<CoopKind, NetError> = WireReader::new(&buf).finish();
        assert_eq!(
            got,
            Err(NetError::BadTag {
                what: "CoopKind",
                tag: 200
            })
        );
    }
}
