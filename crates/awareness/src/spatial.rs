//! The spatial model of interaction: aura, focus and nimbus
//! (Benford & Fahlén, DIVE — paper §3.3.2's "spatial model for cooperation
//! in large unbounded space").
//!
//! Each participant occupies a [`Position`] and projects
//!
//! - an **aura** — the radius within which interaction is possible at all;
//! - a **focus** — the region it is paying attention to;
//! - a **nimbus** — the region over which it projects its presence.
//!
//! The awareness that A has of B combines A's focus with B's nimbus: full
//! when each contains the other, peripheral when only one does, none when
//! neither. The quantitative weighting uses a linear falloff within each
//! radius, giving the continuous "awareness weighting" the paper calls
//! for.

use std::collections::BTreeMap;

use odp_sim::net::NodeId;
use serde::{Deserialize, Serialize};

/// A point in the shared 2-D space.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// X coordinate (arbitrary spatial units).
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A participant's spatial extent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialBody {
    /// Where the participant is.
    pub position: Position,
    /// Interaction radius: no mutual awareness beyond it.
    pub aura: f64,
    /// Attention radius.
    pub focus: f64,
    /// Presence-projection radius.
    pub nimbus: f64,
}

impl SpatialBody {
    /// A body with equal focus and nimbus radii.
    pub fn symmetric(position: Position, aura: f64, radius: f64) -> Self {
        SpatialBody {
            position,
            aura,
            focus: radius,
            nimbus: radius,
        }
    }
}

/// Qualitative awareness levels derived from focus/nimbus overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AwarenessLevel {
    /// No awareness (outside aura, or neither focus nor nimbus reach).
    None,
    /// Peripheral: only one of focus/nimbus reaches.
    Peripheral,
    /// Full mutual engagement.
    Full,
}

/// The shared space containing all participants.
///
/// # Examples
///
/// ```
/// use odp_awareness::spatial::{AwarenessLevel, Position, SpatialBody, SpatialModel};
/// use odp_sim::net::NodeId;
///
/// let mut space = SpatialModel::new();
/// space.place(NodeId(0), SpatialBody::symmetric(Position::new(0.0, 0.0), 100.0, 10.0));
/// space.place(NodeId(1), SpatialBody::symmetric(Position::new(5.0, 0.0), 100.0, 10.0));
/// assert_eq!(space.level(NodeId(0), NodeId(1)), AwarenessLevel::Full);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpatialModel {
    bodies: BTreeMap<NodeId, SpatialBody>,
}

impl SpatialModel {
    /// Creates an empty space.
    pub fn new() -> Self {
        SpatialModel::default()
    }

    /// Places (or moves) a participant.
    pub fn place(&mut self, who: NodeId, body: SpatialBody) {
        self.bodies.insert(who, body);
    }

    /// Moves a participant, keeping its radii.
    pub fn move_to(&mut self, who: NodeId, position: Position) -> bool {
        match self.bodies.get_mut(&who) {
            Some(b) => {
                b.position = position;
                true
            }
            None => false,
        }
    }

    /// Removes a participant.
    pub fn remove(&mut self, who: NodeId) {
        self.bodies.remove(&who);
    }

    /// The body of a participant, if present.
    pub fn body(&self, who: NodeId) -> Option<&SpatialBody> {
        self.bodies.get(&who)
    }

    /// The qualitative awareness `observer` has of `subject`.
    pub fn level(&self, observer: NodeId, subject: NodeId) -> AwarenessLevel {
        let (Some(a), Some(b)) = (self.bodies.get(&observer), self.bodies.get(&subject)) else {
            return AwarenessLevel::None;
        };
        let d = a.position.distance(&b.position);
        if observer == subject || d > a.aura.min(b.aura) {
            return AwarenessLevel::None;
        }
        let in_focus = d <= a.focus; // subject inside observer's focus
        let in_nimbus = d <= b.nimbus; // observer inside subject's nimbus
        match (in_focus, in_nimbus) {
            (true, true) => AwarenessLevel::Full,
            (false, false) => AwarenessLevel::None,
            _ => AwarenessLevel::Peripheral,
        }
    }

    /// The quantitative awareness weight in `[0, 1]`: the product of a
    /// linear falloff of the subject within the observer's focus and of
    /// the observer within the subject's nimbus, gated by the aura.
    pub fn weight(&self, observer: NodeId, subject: NodeId) -> f64 {
        let (Some(a), Some(b)) = (self.bodies.get(&observer), self.bodies.get(&subject)) else {
            return 0.0;
        };
        if observer == subject {
            return 0.0;
        }
        let d = a.position.distance(&b.position);
        if d > a.aura.min(b.aura) {
            return 0.0;
        }
        let falloff = |radius: f64| -> f64 {
            if radius <= 0.0 {
                0.0
            } else {
                (1.0 - d / radius).max(0.0)
            }
        };
        // Average rather than multiply so peripheral (one-sided) awareness
        // yields a non-zero weight, matching the qualitative levels.
        (falloff(a.focus) + falloff(b.nimbus)) / 2.0
    }

    /// Everyone with a non-`None` level as seen by `observer`, with
    /// weights, nearest first.
    pub fn aware_of(&self, observer: NodeId) -> Vec<(NodeId, f64)> {
        let mut out: Vec<(NodeId, f64)> = self
            .bodies
            .keys()
            .filter(|&&n| n != observer)
            .map(|&n| (n, self.weight(observer, n)))
            .filter(|&(_, w)| w > 0.0)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Number of participants present.
    pub fn population(&self) -> usize {
        self.bodies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(x: f64, focus: f64, nimbus: f64) -> SpatialBody {
        SpatialBody {
            position: Position::new(x, 0.0),
            aura: 1000.0,
            focus,
            nimbus,
        }
    }

    #[test]
    fn mutual_closeness_gives_full_awareness() {
        let mut s = SpatialModel::new();
        s.place(NodeId(0), body(0.0, 10.0, 10.0));
        s.place(NodeId(1), body(5.0, 10.0, 10.0));
        assert_eq!(s.level(NodeId(0), NodeId(1)), AwarenessLevel::Full);
        assert!(s.weight(NodeId(0), NodeId(1)) > 0.4);
    }

    #[test]
    fn awareness_is_asymmetric() {
        let mut s = SpatialModel::new();
        // 0 focuses far; 1 projects a small nimbus and focuses nowhere.
        s.place(NodeId(0), body(0.0, 50.0, 1.0));
        s.place(NodeId(1), body(10.0, 1.0, 1.0));
        // 0 sees 1 in focus, but is outside 1's nimbus: peripheral.
        assert_eq!(s.level(NodeId(0), NodeId(1)), AwarenessLevel::Peripheral);
        // 1 has 0 outside focus, and 0's nimbus (1.0) does not reach: none.
        assert_eq!(s.level(NodeId(1), NodeId(0)), AwarenessLevel::None);
    }

    #[test]
    fn aura_gates_everything() {
        let mut s = SpatialModel::new();
        let mut a = body(0.0, 100.0, 100.0);
        a.aura = 5.0;
        s.place(NodeId(0), a);
        s.place(NodeId(1), body(10.0, 100.0, 100.0));
        assert_eq!(s.level(NodeId(0), NodeId(1)), AwarenessLevel::None);
        assert_eq!(s.weight(NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn weight_decreases_with_distance() {
        let mut s = SpatialModel::new();
        s.place(NodeId(0), body(0.0, 20.0, 20.0));
        s.place(NodeId(1), body(2.0, 20.0, 20.0));
        s.place(NodeId(2), body(15.0, 20.0, 20.0));
        assert!(s.weight(NodeId(0), NodeId(1)) > s.weight(NodeId(0), NodeId(2)));
    }

    #[test]
    fn moving_updates_awareness() {
        let mut s = SpatialModel::new();
        s.place(NodeId(0), body(0.0, 10.0, 10.0));
        s.place(NodeId(1), body(100.0, 10.0, 10.0));
        assert_eq!(s.level(NodeId(0), NodeId(1)), AwarenessLevel::None);
        assert!(s.move_to(NodeId(1), Position::new(3.0, 0.0)));
        assert_eq!(s.level(NodeId(0), NodeId(1)), AwarenessLevel::Full);
        assert!(!s.move_to(NodeId(9), Position::new(0.0, 0.0)));
    }

    #[test]
    fn aware_of_sorts_by_weight() {
        let mut s = SpatialModel::new();
        s.place(NodeId(0), body(0.0, 50.0, 50.0));
        s.place(NodeId(1), body(40.0, 50.0, 50.0));
        s.place(NodeId(2), body(5.0, 50.0, 50.0));
        s.place(NodeId(3), body(500.0, 50.0, 50.0)); // out of range
        let aware = s.aware_of(NodeId(0));
        assert_eq!(aware.len(), 2);
        assert_eq!(aware[0].0, NodeId(2), "nearest first");
        assert_eq!(aware[1].0, NodeId(1));
    }

    #[test]
    fn self_awareness_is_zero() {
        let mut s = SpatialModel::new();
        s.place(NodeId(0), body(0.0, 10.0, 10.0));
        assert_eq!(s.level(NodeId(0), NodeId(0)), AwarenessLevel::None);
        assert_eq!(s.weight(NodeId(0), NodeId(0)), 0.0);
    }

    #[test]
    fn zero_radius_focus_gives_no_weight_from_focus() {
        let mut s = SpatialModel::new();
        s.place(NodeId(0), body(0.0, 0.0, 0.0));
        s.place(NodeId(1), body(0.5, 10.0, 10.0));
        // 1's nimbus covers 0 but 0's zero-radius focus reaches nothing:
        // peripheral, weight from the nimbus half only.
        assert_eq!(s.level(NodeId(0), NodeId(1)), AwarenessLevel::Peripheral);
        let w = s.weight(NodeId(0), NodeId(1));
        assert!(w > 0.0 && w <= 0.5, "w={w}");
    }
}
