//! Property tests for the access-control mechanisms.

use odp_access::matrix::{AccessMatrix, Protected, Subject};
use odp_access::rbac::{Effect, ObjectPath, RbacPolicy, RoleId};
use odp_access::rights::Rights;
use proptest::prelude::*;

fn arb_rights() -> impl Strategy<Value = Rights> {
    (0u8..32).prop_map(|bits| {
        let mut r = Rights::NONE;
        for (i, right) in [
            Rights::READ,
            Rights::WRITE,
            Rights::ANNOTATE,
            Rights::DELETE,
            Rights::GRANT,
        ]
        .iter()
        .enumerate()
        {
            if bits & (1 << i) != 0 {
                r = r | *right;
            }
        }
        r
    })
}

proptest! {
    /// The matrix, its ACL (column) view and its capability (row) view
    /// must always agree on every check.
    #[test]
    fn matrix_acl_capability_equivalence(
        grants in prop::collection::vec((0u32..6, 0u64..6, arb_rights()), 0..40),
        checks in prop::collection::vec((0u32..6, 0u64..6, arb_rights()), 0..20),
    ) {
        let mut m = AccessMatrix::new();
        for (s, o, r) in grants {
            m.grant(Subject(s), Protected(o), r);
        }
        for (s, o, needed) in checks {
            let subject = Subject(s);
            let object = Protected(o);
            let via_matrix = m.check(subject, object, needed);
            let via_caps = m
                .capabilities_of(subject)
                .iter()
                .any(|c| c.authorises(object, needed))
                || needed.is_empty();
            let via_acl = m
                .acl_of(object)
                .iter()
                .any(|&(subj, r)| subj == subject && r.contains(needed))
                || needed.is_empty();
            prop_assert_eq!(via_matrix, via_caps, "matrix vs caps");
            prop_assert_eq!(via_matrix, via_acl, "matrix vs acl");
        }
    }

    /// Rights set algebra: union/intersection/difference behave like
    /// set operations.
    #[test]
    fn rights_set_laws(a in arb_rights(), b in arb_rights(), c in arb_rights()) {
        prop_assert!( (a | b).contains(a) );
        prop_assert!( a.contains(a & b) );
        prop_assert_eq!(a & (b | c), (a & b) | (a & c), "distributivity");
        prop_assert_eq!((a - b) & b, Rights::NONE);
        prop_assert_eq!(a | Rights::NONE, a);
        prop_assert_eq!(a & Rights::ALL, a);
        prop_assert_eq!(!(!a), a, "double complement");
    }

    /// Revoking exactly what was granted returns the matrix to empty.
    #[test]
    fn grant_revoke_round_trip(
        grants in prop::collection::vec((0u32..6, 0u64..6, arb_rights()), 0..40),
    ) {
        let mut m = AccessMatrix::new();
        for &(s, o, r) in &grants {
            m.grant(Subject(s), Protected(o), r);
        }
        for &(s, o, r) in &grants {
            m.revoke(Subject(s), Protected(o), r);
        }
        // Some grants may overlap, so revoking each grant once must have
        // removed at least its own bits: final matrix grants nothing
        // beyond re-granted overlaps — and revoking everything again is
        // idempotent.
        let snapshot: Vec<_> = grants.iter().map(|&(s, o, _)| (s, o)).collect();
        for (s, o) in snapshot {
            m.revoke(Subject(s), Protected(o), Rights::ALL);
        }
        prop_assert!(m.is_empty());
    }

    /// RBAC monotonicity: adding an Allow rule never removes an existing
    /// permission; adding a Deny rule never adds one.
    #[test]
    fn rbac_rule_monotonicity(
        base_rules in prop::collection::vec((0u32..4, 0usize..4, arb_rights()), 1..10),
        check_paths in prop::collection::vec(0usize..4, 1..8),
        extra_allow in (0u32..4, 0usize..4, arb_rights()),
        extra_deny in (0u32..4, 0usize..4, arb_rights()),
    ) {
        let paths = ["docs", "docs/a", "docs/a/b", "other"];
        let mut policy = RbacPolicy::new();
        for &(role, p, rights) in &base_rules {
            policy.add_rule(RoleId(role), ObjectPath::new(paths[p]), rights, Effect::Allow);
        }
        for role in 0..4 {
            policy.assign(Subject(1), RoleId(role));
        }
        let check = |policy: &RbacPolicy| -> Vec<bool> {
            check_paths
                .iter()
                .map(|&p| policy.check(Subject(1), &ObjectPath::new(paths[p]), Rights::READ).allowed)
                .collect()
        };
        let before = check(&policy);
        // An extra *shallow* allow at the root can never remove access.
        let mut with_allow = policy.clone();
        with_allow.add_rule(RoleId(extra_allow.0), ObjectPath::new(""), extra_allow.2 | Rights::READ, Effect::Allow);
        let after_allow = check(&with_allow);
        for (b, a) in before.iter().zip(&after_allow) {
            prop_assert!(!b || *a, "allow rule removed access");
        }
        // An extra deny can never add access.
        let mut with_deny = policy.clone();
        with_deny.add_rule(
            RoleId(extra_deny.0),
            ObjectPath::new(paths[extra_deny.1]),
            extra_deny.2,
            Effect::Deny,
        );
        let after_deny = check(&with_deny);
        for (b, a) in before.iter().zip(&after_deny) {
            prop_assert!(*b || !a, "deny rule added access");
        }
    }

    /// `explain` always terminates with a consistent verdict.
    #[test]
    fn rbac_explain_matches_check(
        rules in prop::collection::vec((0u32..3, 0usize..4, arb_rights(), any::<bool>()), 0..12),
        path_idx in 0usize..4,
    ) {
        let paths = ["p", "p/q", "p/q/r", "x"];
        let mut policy = RbacPolicy::new();
        for &(role, p, rights, allow) in &rules {
            policy.add_rule(
                RoleId(role),
                ObjectPath::new(paths[p]),
                rights,
                if allow { Effect::Allow } else { Effect::Deny },
            );
        }
        policy.assign(Subject(2), RoleId(0));
        let path = ObjectPath::new(paths[path_idx]);
        let decision = policy.check(Subject(2), &path, Rights::WRITE);
        let why = policy.explain(Subject(2), &path, Rights::WRITE);
        if decision.allowed {
            prop_assert!(!why.contains("NOT"), "{why}");
        } else {
            prop_assert!(why.contains("NOT"), "{why}");
        }
    }
}
