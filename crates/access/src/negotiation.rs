//! Negotiation of access rights.
//!
//! The paper (§4.2.1): *"access models within CSCW systems should also
//! support dynamic changes to access control information. It is also
//! likely that such changes will be made as a result of **negotiation**
//! between parties involved."*
//!
//! A [`Negotiator`] runs request → (counter-offer)* → accept/reject
//! conversations between a requester and an object owner. A successful
//! negotiation yields an [`AgreedChange`] that the caller applies to its
//! [`crate::rbac::RbacPolicy`] (the negotiator is policy-agnostic).

use std::collections::HashMap;
use std::fmt;

use odp_sim::time::SimTime;

use crate::matrix::Subject;
use crate::rbac::ObjectPath;
use crate::rights::Rights;

/// Identifies a negotiation session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NegotiationId(pub u64);

/// The state of a negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegotiationState {
    /// Waiting for the owner's first response.
    Requested,
    /// The owner countered; waiting for the requester.
    Countered,
    /// Concluded successfully.
    Agreed,
    /// Concluded unsuccessfully.
    Rejected,
}

/// A concluded agreement, ready to apply to a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgreedChange {
    /// Who receives the rights.
    pub subject: Subject,
    /// On what.
    pub path: ObjectPath,
    /// The rights agreed (possibly fewer than requested).
    pub rights: Rights,
    /// How many message exchanges it took (for E5 accounting).
    pub round_trips: u32,
}

/// Errors from negotiation operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegotiationError {
    /// Unknown or concluded session.
    UnknownSession(NegotiationId),
    /// The actor is not the party whose turn it is.
    NotYourTurn(Subject),
    /// A counter-offer must be a subset of the previous ask.
    CounterNotNarrower,
}

impl fmt::Display for NegotiationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NegotiationError::UnknownSession(id) => write!(f, "unknown negotiation {}", id.0),
            NegotiationError::NotYourTurn(s) => write!(f, "it is not {s}'s turn"),
            NegotiationError::CounterNotNarrower => {
                write!(f, "counter-offer must narrow the request")
            }
        }
    }
}

impl std::error::Error for NegotiationError {}

#[derive(Debug)]
struct Session {
    requester: Subject,
    owner: Subject,
    path: ObjectPath,
    on_table: Rights,
    state: NegotiationState,
    round_trips: u32,
    opened: SimTime,
}

/// Runs access-rights negotiations.
///
/// # Examples
///
/// ```
/// use odp_access::matrix::Subject;
/// use odp_access::negotiation::Negotiator;
/// use odp_access::rights::Rights;
/// use odp_sim::time::SimTime;
///
/// let mut n = Negotiator::new();
/// let id = n.request(Subject(1), Subject(0), "doc/sec2".into(),
///                    Rights::READ | Rights::WRITE, SimTime::ZERO);
/// let agreed = n.accept(Subject(0), id, SimTime::ZERO)?;
/// assert_eq!(agreed.rights, Rights::READ | Rights::WRITE);
/// # Ok::<(), odp_access::negotiation::NegotiationError>(())
/// ```
#[derive(Debug, Default)]
pub struct Negotiator {
    sessions: HashMap<NegotiationId, Session>,
    next: u64,
    concluded: u64,
}

impl Negotiator {
    /// Creates an empty negotiator.
    pub fn new() -> Self {
        Negotiator::default()
    }

    /// Opens a negotiation: `requester` asks `owner` for `rights` on
    /// `path`.
    pub fn request(
        &mut self,
        requester: Subject,
        owner: Subject,
        path: ObjectPath,
        rights: Rights,
        now: SimTime,
    ) -> NegotiationId {
        let id = NegotiationId(self.next);
        self.next += 1;
        self.sessions.insert(
            id,
            Session {
                requester,
                owner,
                path,
                on_table: rights,
                state: NegotiationState::Requested,
                round_trips: 1,
                opened: now,
            },
        );
        id
    }

    /// The state of a session, if it exists.
    pub fn state(&self, id: NegotiationId) -> Option<NegotiationState> {
        self.sessions.get(&id).map(|s| s.state)
    }

    /// The rights currently on the table.
    pub fn on_table(&self, id: NegotiationId) -> Option<Rights> {
        self.sessions.get(&id).map(|s| s.on_table)
    }

    /// The owner counter-offers a narrower set of rights.
    ///
    /// # Errors
    ///
    /// Fails for unknown sessions, wrong party, or a counter that is not
    /// a strict subset of the current ask.
    pub fn counter(
        &mut self,
        who: Subject,
        id: NegotiationId,
        offer: Rights,
    ) -> Result<(), NegotiationError> {
        let s = self
            .sessions
            .get_mut(&id)
            .filter(|s| matches!(s.state, NegotiationState::Requested))
            .ok_or(NegotiationError::UnknownSession(id))?;
        if who != s.owner {
            return Err(NegotiationError::NotYourTurn(who));
        }
        if !s.on_table.contains(offer) || offer == s.on_table || offer.is_empty() {
            // An empty offer is a rejection, not a counter.
            return Err(NegotiationError::CounterNotNarrower);
        }
        s.on_table = offer;
        s.state = NegotiationState::Countered;
        s.round_trips += 1;
        Ok(())
    }

    /// The party whose turn it is accepts what is on the table, yielding
    /// the agreed change.
    ///
    /// # Errors
    ///
    /// Fails for unknown/concluded sessions or the wrong party.
    pub fn accept(
        &mut self,
        who: Subject,
        id: NegotiationId,
        now: SimTime,
    ) -> Result<AgreedChange, NegotiationError> {
        let s = self
            .sessions
            .get_mut(&id)
            .ok_or(NegotiationError::UnknownSession(id))?;
        let expected = match s.state {
            NegotiationState::Requested => s.owner,
            NegotiationState::Countered => s.requester,
            _ => return Err(NegotiationError::UnknownSession(id)),
        };
        if who != expected {
            return Err(NegotiationError::NotYourTurn(who));
        }
        s.state = NegotiationState::Agreed;
        s.round_trips += 1;
        self.concluded += 1;
        let _ = now.saturating_since(s.opened);
        Ok(AgreedChange {
            subject: s.requester,
            path: s.path.clone(),
            rights: s.on_table,
            round_trips: s.round_trips,
        })
    }

    /// The party whose turn it is rejects, closing the session.
    ///
    /// # Errors
    ///
    /// Fails for unknown/concluded sessions or the wrong party.
    pub fn reject(&mut self, who: Subject, id: NegotiationId) -> Result<(), NegotiationError> {
        let s = self
            .sessions
            .get_mut(&id)
            .ok_or(NegotiationError::UnknownSession(id))?;
        let expected = match s.state {
            NegotiationState::Requested => s.owner,
            NegotiationState::Countered => s.requester,
            _ => return Err(NegotiationError::UnknownSession(id)),
        };
        if who != expected {
            return Err(NegotiationError::NotYourTurn(who));
        }
        s.state = NegotiationState::Rejected;
        self.concluded += 1;
        Ok(())
    }

    /// Sessions concluded (agreed or rejected).
    pub fn concluded(&self) -> u64 {
        self.concluded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOW: SimTime = SimTime::ZERO;

    #[test]
    fn direct_acceptance() {
        let mut n = Negotiator::new();
        let id = n.request(Subject(1), Subject(0), "doc".into(), Rights::WRITE, NOW);
        assert_eq!(n.state(id), Some(NegotiationState::Requested));
        let agreed = n.accept(Subject(0), id, NOW).unwrap();
        assert_eq!(agreed.subject, Subject(1));
        assert_eq!(agreed.rights, Rights::WRITE);
        assert_eq!(agreed.round_trips, 2);
        assert_eq!(n.state(id), Some(NegotiationState::Agreed));
    }

    #[test]
    fn counter_offer_narrows_then_requester_accepts() {
        let mut n = Negotiator::new();
        let id = n.request(
            Subject(1),
            Subject(0),
            "doc".into(),
            Rights::READ | Rights::WRITE,
            NOW,
        );
        n.counter(Subject(0), id, Rights::READ).unwrap();
        assert_eq!(n.state(id), Some(NegotiationState::Countered));
        assert_eq!(n.on_table(id), Some(Rights::READ));
        let agreed = n.accept(Subject(1), id, NOW).unwrap();
        assert_eq!(agreed.rights, Rights::READ);
        assert_eq!(agreed.round_trips, 3);
    }

    #[test]
    fn counter_must_narrow() {
        let mut n = Negotiator::new();
        let id = n.request(Subject(1), Subject(0), "doc".into(), Rights::READ, NOW);
        assert_eq!(
            n.counter(Subject(0), id, Rights::READ).unwrap_err(),
            NegotiationError::CounterNotNarrower
        );
        assert_eq!(
            n.counter(Subject(0), id, Rights::WRITE).unwrap_err(),
            NegotiationError::CounterNotNarrower
        );
    }

    #[test]
    fn turn_taking_is_enforced() {
        let mut n = Negotiator::new();
        let id = n.request(Subject(1), Subject(0), "doc".into(), Rights::READ, NOW);
        assert_eq!(
            n.accept(Subject(1), id, NOW).unwrap_err(),
            NegotiationError::NotYourTurn(Subject(1))
        );
        // An empty counter is not a valid narrowing either.
        assert_eq!(
            n.counter(Subject(0), id, Rights::NONE).unwrap_err(),
            NegotiationError::CounterNotNarrower
        );
    }

    #[test]
    fn rejection_closes_the_session() {
        let mut n = Negotiator::new();
        let id = n.request(Subject(1), Subject(0), "doc".into(), Rights::READ, NOW);
        n.reject(Subject(0), id).unwrap();
        assert_eq!(n.state(id), Some(NegotiationState::Rejected));
        assert!(n.accept(Subject(0), id, NOW).is_err());
        assert_eq!(n.concluded(), 1);
    }

    #[test]
    fn unknown_sessions_error() {
        let mut n = Negotiator::new();
        assert!(n.accept(Subject(0), NegotiationId(9), NOW).is_err());
        assert!(n.reject(Subject(0), NegotiationId(9)).is_err());
        assert_eq!(n.state(NegotiationId(9)), None);
    }
}
