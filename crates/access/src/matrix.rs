//! The classic access matrix and its two standard realisations, ACLs and
//! capabilities — the baselines the paper says CSCW has outgrown
//! (§4.2.1: "most existing approaches to access control in distributed
//! systems are based on the classic Access Matrix. Specific mechanisms
//! derived from this matrix include access control lists and
//! capabilities").
//!
//! These mechanisms are *static*: they identify individuals, not roles,
//! and assume "access is set up and only occasionally altered by a single
//! administrator". Experiment E5 quantifies the cost of that assumption
//! against [`crate::rbac`].

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::rights::Rights;

/// A principal (an individual user — the matrix knows nothing of roles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Subject(pub u32);

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A protected object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Protected(pub u64);

impl fmt::Display for Protected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// The access matrix: `(subject, object) -> rights`.
///
/// # Examples
///
/// ```
/// use odp_access::matrix::{AccessMatrix, Protected, Subject};
/// use odp_access::rights::Rights;
///
/// let mut m = AccessMatrix::new();
/// m.grant(Subject(1), Protected(7), Rights::READ | Rights::WRITE);
/// assert!(m.check(Subject(1), Protected(7), Rights::READ));
/// assert!(!m.check(Subject(2), Protected(7), Rights::READ));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AccessMatrix {
    cells: BTreeMap<(Subject, Protected), Rights>,
}

impl AccessMatrix {
    /// Creates an empty (deny-everything) matrix.
    pub fn new() -> Self {
        AccessMatrix::default()
    }

    /// Adds `rights` to a cell.
    pub fn grant(&mut self, subject: Subject, object: Protected, rights: Rights) {
        let cell = self.cells.entry((subject, object)).or_insert(Rights::NONE);
        *cell = *cell | rights;
    }

    /// Removes `rights` from a cell.
    pub fn revoke(&mut self, subject: Subject, object: Protected, rights: Rights) {
        if let Some(cell) = self.cells.get_mut(&(subject, object)) {
            *cell = *cell - rights;
            if cell.is_empty() {
                self.cells.remove(&(subject, object));
            }
        }
    }

    /// The rights in a cell.
    pub fn rights(&self, subject: Subject, object: Protected) -> Rights {
        self.cells
            .get(&(subject, object))
            .copied()
            .unwrap_or(Rights::NONE)
    }

    /// True if the cell contains every right in `needed`.
    pub fn check(&self, subject: Subject, object: Protected, needed: Rights) -> bool {
        self.rights(subject, object).contains(needed)
    }

    /// Column view: the ACL of `object`.
    pub fn acl_of(&self, object: Protected) -> Vec<(Subject, Rights)> {
        self.cells
            .iter()
            .filter(|((_, o), _)| *o == object)
            .map(|((s, _), &r)| (*s, r))
            .collect()
    }

    /// Row view: the capability list of `subject`.
    pub fn capabilities_of(&self, subject: Subject) -> Vec<Capability> {
        self.cells
            .iter()
            .filter(|((s, _), _)| *s == subject)
            .map(|((_, o), &r)| Capability {
                object: *o,
                rights: r,
            })
            .collect()
    }

    /// Number of non-empty cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no rights are granted at all.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// An unforgeable token naming an object and the holder's rights on it
/// (the row realisation of the matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capability {
    /// The object this capability names.
    pub object: Protected,
    /// The rights it conveys.
    pub rights: Rights,
}

impl Capability {
    /// Attenuates the capability to a subset of its rights (capabilities
    /// may be weakened when delegated, never strengthened).
    pub fn attenuate(self, keep: Rights) -> Capability {
        Capability {
            object: self.object,
            rights: self.rights & keep,
        }
    }

    /// True if the capability authorises `needed` on `object`.
    pub fn authorises(&self, object: Protected, needed: Rights) -> bool {
        self.object == object && self.rights.contains(needed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_check_revoke() {
        let mut m = AccessMatrix::new();
        m.grant(Subject(1), Protected(1), Rights::READ);
        m.grant(Subject(1), Protected(1), Rights::WRITE);
        assert!(m.check(Subject(1), Protected(1), Rights::READ | Rights::WRITE));
        m.revoke(Subject(1), Protected(1), Rights::WRITE);
        assert!(m.check(Subject(1), Protected(1), Rights::READ));
        assert!(!m.check(Subject(1), Protected(1), Rights::WRITE));
        m.revoke(Subject(1), Protected(1), Rights::READ);
        assert!(m.is_empty(), "empty cells are pruned");
    }

    #[test]
    fn default_is_deny() {
        let m = AccessMatrix::new();
        assert!(!m.check(Subject(0), Protected(0), Rights::READ));
        assert!(
            m.check(Subject(0), Protected(0), Rights::NONE),
            "vacuous check passes"
        );
    }

    #[test]
    fn acl_is_the_column_view() {
        let mut m = AccessMatrix::new();
        m.grant(Subject(1), Protected(7), Rights::READ);
        m.grant(Subject(2), Protected(7), Rights::ALL);
        m.grant(Subject(1), Protected(8), Rights::WRITE);
        let acl = m.acl_of(Protected(7));
        assert_eq!(acl.len(), 2);
        assert_eq!(acl[0], (Subject(1), Rights::READ));
        assert_eq!(acl[1], (Subject(2), Rights::ALL));
    }

    #[test]
    fn capabilities_are_the_row_view() {
        let mut m = AccessMatrix::new();
        m.grant(Subject(1), Protected(7), Rights::READ);
        m.grant(Subject(1), Protected(8), Rights::WRITE);
        let caps = m.capabilities_of(Subject(1));
        assert_eq!(caps.len(), 2);
        assert!(caps[0].authorises(Protected(7), Rights::READ));
        assert!(!caps[0].authorises(Protected(8), Rights::READ));
    }

    #[test]
    fn attenuation_only_weakens() {
        let cap = Capability {
            object: Protected(1),
            rights: Rights::READ | Rights::WRITE,
        };
        let weak = cap.attenuate(Rights::READ | Rights::GRANT);
        assert_eq!(weak.rights, Rights::READ);
        assert!(weak.attenuate(Rights::ALL).rights.contains(Rights::READ));
    }

    #[test]
    fn views_agree_with_the_matrix() {
        let mut m = AccessMatrix::new();
        for s in 0..4 {
            for o in 0..4 {
                if (s + o) % 2 == 0 {
                    m.grant(Subject(s), Protected(o as u64), Rights::READ);
                }
            }
        }
        for s in 0..4 {
            let caps = m.capabilities_of(Subject(s));
            for o in 0..4u64 {
                let via_matrix = m.check(Subject(s), Protected(o), Rights::READ);
                let via_caps = caps
                    .iter()
                    .any(|c| c.authorises(Protected(o), Rights::READ));
                let via_acl = m
                    .acl_of(Protected(o))
                    .iter()
                    .any(|&(subj, r)| subj == Subject(s) && r.contains(Rights::READ));
                assert_eq!(via_matrix, via_caps);
                assert_eq!(via_matrix, via_acl);
            }
        }
    }
}
