//! Access rights as a small bit-set.
//!
//! Implemented by hand (rather than pulling in `bitflags`) to keep the
//! workspace's dependency set to the approved list; the API mirrors the
//! conventional flag-set shape.

use std::fmt;
use std::ops::{BitAnd, BitOr, Not, Sub};

use serde::{Deserialize, Serialize};

/// A set of access rights.
///
/// # Examples
///
/// ```
/// use odp_access::rights::Rights;
///
/// let rw = Rights::READ | Rights::WRITE;
/// assert!(rw.contains(Rights::READ));
/// assert!(!rw.contains(Rights::GRANT));
/// assert_eq!(rw - Rights::WRITE, Rights::READ);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rights(u8);

impl Rights {
    /// The empty set.
    pub const NONE: Rights = Rights(0);
    /// Permission to read.
    pub const READ: Rights = Rights(1 << 0);
    /// Permission to modify.
    pub const WRITE: Rights = Rights(1 << 1);
    /// Permission to append/annotate without modifying existing content.
    pub const ANNOTATE: Rights = Rights(1 << 2);
    /// Permission to delete.
    pub const DELETE: Rights = Rights(1 << 3);
    /// Permission to grant one's rights onward.
    pub const GRANT: Rights = Rights(1 << 4);
    /// Every right.
    pub const ALL: Rights = Rights(0b1_1111);

    /// True if every right in `other` is present in `self`.
    pub fn contains(self, other: Rights) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if no rights are present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The union of both sets.
    pub fn union(self, other: Rights) -> Rights {
        self | other
    }

    /// The intersection of both sets.
    pub fn intersection(self, other: Rights) -> Rights {
        self & other
    }

    /// Number of individual rights present.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }
}

impl BitOr for Rights {
    type Output = Rights;
    fn bitor(self, rhs: Rights) -> Rights {
        Rights(self.0 | rhs.0)
    }
}

impl BitAnd for Rights {
    type Output = Rights;
    fn bitand(self, rhs: Rights) -> Rights {
        Rights(self.0 & rhs.0)
    }
}

impl Sub for Rights {
    type Output = Rights;
    fn sub(self, rhs: Rights) -> Rights {
        Rights(self.0 & !rhs.0)
    }
}

impl Not for Rights {
    type Output = Rights;
    fn not(self) -> Rights {
        Rights(!self.0 & Rights::ALL.0)
    }
}

impl fmt::Display for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "-");
        }
        let mut first = true;
        for (bit, name) in [
            (Rights::READ, "read"),
            (Rights::WRITE, "write"),
            (Rights::ANNOTATE, "annotate"),
            (Rights::DELETE, "delete"),
            (Rights::GRANT, "grant"),
        ] {
            if self.contains(bit) {
                if !first {
                    write!(f, "+")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_operations() {
        let rw = Rights::READ | Rights::WRITE;
        assert!(rw.contains(Rights::READ));
        assert!(rw.contains(Rights::WRITE));
        assert!(!rw.contains(Rights::DELETE));
        assert_eq!(rw & Rights::READ, Rights::READ);
        assert_eq!(rw - Rights::READ, Rights::WRITE);
        assert_eq!(rw.count(), 2);
    }

    #[test]
    fn complement_stays_within_all() {
        let c = !Rights::READ;
        assert!(!c.contains(Rights::READ));
        assert!(c.contains(Rights::GRANT));
        assert_eq!(!Rights::ALL, Rights::NONE);
        assert_eq!(!Rights::NONE, Rights::ALL);
    }

    #[test]
    fn contains_on_empty() {
        assert!(Rights::ALL.contains(Rights::NONE));
        assert!(Rights::NONE.contains(Rights::NONE));
        assert!(!Rights::NONE.contains(Rights::READ));
        assert!(Rights::NONE.is_empty());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!((Rights::READ | Rights::GRANT).to_string(), "read+grant");
        assert_eq!(Rights::NONE.to_string(), "-");
    }
}
