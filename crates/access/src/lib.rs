#![warn(missing_docs)]

//! # odp-access — access control for collaborative environments
//!
//! The paper's security critique (§4.2.1): classic access-matrix
//! mechanisms identify *individuals*, assume identities and rights are
//! *static*, and are administered centrally — all wrong for CSCW, where
//! policies should be based on **dynamic roles**, changed **during**
//! collaboration, at a **fine granularity**, often by **negotiation**.
//!
//! - [`rights`] — the right set (read/write/annotate/delete/grant);
//! - [`matrix`] — the classic access matrix with ACL (column) and
//!   capability (row) views: the static baseline;
//! - [`rbac`] — Shen & Dewan role-based dynamic fine-grained control with
//!   path-inherited rules, deny conflicts and explanations;
//! - [`negotiation`] — request/counter/accept rights negotiation;
//! - [`delegation`] — capability delegation chains with grant gating,
//!   attenuation and subtree revocation.
//!
//! ```
//! use odp_access::prelude::*;
//!
//! let mut policy = RbacPolicy::new();
//! policy.add_rule(RoleId(1), "doc".into(), Rights::READ, Effect::Allow);
//! policy.assign(Subject(7), RoleId(1));
//! assert!(policy.check(Subject(7), &"doc/para1".into(), Rights::READ).allowed);
//! ```

pub mod delegation;
pub mod matrix;
pub mod negotiation;
pub mod rbac;
pub mod rights;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::delegation::{Delegation, DelegationError, DelegationRegistry, GrantId};
    pub use crate::matrix::{AccessMatrix, Capability, Protected, Subject};
    pub use crate::negotiation::{
        AgreedChange, NegotiationError, NegotiationId, NegotiationState, Negotiator,
    };
    pub use crate::rbac::{Decision, Effect, ObjectPath, RbacPolicy, RoleId, Rule};
    pub use crate::rights::Rights;
}

pub use prelude::*;
