//! Role-based, dynamic, fine-grained access control (Shen & Dewan,
//! "Access Control for Collaborative Environments", CSCW'92).
//!
//! The paper's requirements (§4.2.1), all realised here:
//!
//! - policies are based on **roles**, not individual identity;
//! - roles are **dynamic**: assignments change during a collaboration in
//!   O(1), without re-administering per-object lists;
//! - control is **fine-grained**: objects are hierarchical paths
//!   (`"report/sec2/para3"`, down to individual lines) and rules attach
//!   at any level, inherited downward;
//! - rules may be negative (**deny**), with conflict resolution: the more
//!   specific path wins, and at equal specificity deny beats allow;
//! - rights are **visible and easy to understand**: `explain` returns the
//!   rule that decided an access.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::matrix::Subject;
use crate::rights::Rights;

/// Names a role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RoleId(pub u32);

impl fmt::Display for RoleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "role{}", self.0)
    }
}

/// A hierarchical object path, e.g. `report/sec2/para3/line14`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectPath(String);

impl ObjectPath {
    /// Creates a path, trimming redundant slashes.
    pub fn new(path: impl Into<String>) -> Self {
        let raw: String = path.into();
        let cleaned: Vec<&str> = raw.split('/').filter(|s| !s.is_empty()).collect();
        ObjectPath(cleaned.join("/"))
    }

    /// The path as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Number of components.
    pub fn depth(&self) -> usize {
        if self.0.is_empty() {
            0
        } else {
            self.0.split('/').count()
        }
    }

    /// True if `self` is `other` or an ancestor of it.
    pub fn covers(&self, other: &ObjectPath) -> bool {
        if self.0.is_empty() {
            return true; // root covers everything
        }
        other.0 == self.0 || other.0.starts_with(&format!("{}/", self.0))
    }

    /// The parent path (`None` at the root).
    pub fn parent(&self) -> Option<ObjectPath> {
        let idx = self.0.rfind('/')?;
        Some(ObjectPath(self.0[..idx].to_owned()))
    }
}

impl fmt::Display for ObjectPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ObjectPath {
    fn from(s: &str) -> Self {
        ObjectPath::new(s)
    }
}

/// Allow or deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effect {
    /// Grants the rights.
    Allow,
    /// Forbids the rights (beats Allow at equal specificity).
    Deny,
}

/// One policy rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// The role it applies to.
    pub role: RoleId,
    /// The object subtree it covers.
    pub path: ObjectPath,
    /// The rights concerned.
    pub rights: Rights,
    /// Allow or deny.
    pub effect: Effect,
}

/// The decision for one access check, with its justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Whether access is granted.
    pub allowed: bool,
    /// The rule that decided it (None = default deny).
    pub because: Option<Rule>,
}

/// The Shen–Dewan policy engine.
///
/// # Examples
///
/// ```
/// use odp_access::matrix::Subject;
/// use odp_access::rbac::{Effect, ObjectPath, RbacPolicy, RoleId};
/// use odp_access::rights::Rights;
///
/// let mut p = RbacPolicy::new();
/// let author = RoleId(1);
/// p.add_rule(author, "report".into(), Rights::READ | Rights::WRITE, Effect::Allow);
/// p.add_rule(author, "report/appendix".into(), Rights::WRITE, Effect::Deny);
/// p.assign(Subject(5), author);
/// assert!(p.check(Subject(5), &"report/sec1".into(), Rights::WRITE).allowed);
/// assert!(!p.check(Subject(5), &"report/appendix/a1".into(), Rights::WRITE).allowed);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RbacPolicy {
    rules: Vec<Rule>,
    assignments: BTreeMap<Subject, BTreeSet<RoleId>>,
    /// role -> roles it inherits from (junior roles).
    inherits: BTreeMap<RoleId, BTreeSet<RoleId>>,
    role_changes: u64,
}

impl RbacPolicy {
    /// Creates an empty (default-deny) policy.
    pub fn new() -> Self {
        RbacPolicy::default()
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, role: RoleId, path: ObjectPath, rights: Rights, effect: Effect) {
        self.rules.push(Rule {
            role,
            path,
            rights,
            effect,
        });
    }

    /// Declares that `senior` inherits all permissions of `junior`.
    pub fn add_inheritance(&mut self, senior: RoleId, junior: RoleId) {
        self.inherits.entry(senior).or_default().insert(junior);
    }

    /// Assigns a role to a subject — an O(1) *dynamic* change, the
    /// operation static schemes cannot express without re-administration.
    pub fn assign(&mut self, subject: Subject, role: RoleId) {
        self.assignments.entry(subject).or_default().insert(role);
        self.role_changes += 1;
    }

    /// Removes a role from a subject (equally dynamic).
    pub fn unassign(&mut self, subject: Subject, role: RoleId) {
        if let Some(roles) = self.assignments.get_mut(&subject) {
            roles.remove(&role);
        }
        self.role_changes += 1;
    }

    /// The subject's direct roles.
    pub fn roles_of(&self, subject: Subject) -> Vec<RoleId> {
        self.assignments
            .get(&subject)
            .map(|r| r.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The subject's effective roles (direct plus transitively inherited
    /// junior roles).
    pub fn effective_roles(&self, subject: Subject) -> BTreeSet<RoleId> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<RoleId> = self.roles_of(subject);
        while let Some(role) = stack.pop() {
            if out.insert(role) {
                if let Some(juniors) = self.inherits.get(&role) {
                    stack.extend(juniors.iter().copied());
                }
            }
        }
        out
    }

    /// Number of dynamic role changes performed (for E5 accounting).
    pub fn role_changes(&self) -> u64 {
        self.role_changes
    }

    /// Checks whether `subject` may exercise `needed` on `path`, and
    /// explains why. Conflict resolution: deepest matching path wins;
    /// deny beats allow at equal depth; default deny.
    pub fn check(&self, subject: Subject, path: &ObjectPath, needed: Rights) -> Decision {
        if needed.is_empty() {
            return Decision {
                allowed: true,
                because: None,
            };
        }
        let roles = self.effective_roles(subject);
        let mut best: Option<(&Rule, usize)> = None;
        for rule in &self.rules {
            if !roles.contains(&rule.role) || !rule.path.covers(path) {
                continue;
            }
            if !rule.rights.intersection(needed).is_empty() || rule.rights.contains(needed) {
                // Relevant if it says anything about any needed right.
                let depth = rule.path.depth();
                let wins = match best {
                    None => true,
                    Some((cur, cur_depth)) => {
                        depth > cur_depth
                            || (depth == cur_depth
                                && rule.effect == Effect::Deny
                                && cur.effect == Effect::Allow)
                    }
                };
                if wins {
                    best = Some((rule, depth));
                }
            }
        }
        match best {
            Some((rule, _)) => Decision {
                allowed: rule.effect == Effect::Allow && rule.rights.contains(needed),
                because: Some(rule.clone()),
            },
            None => Decision {
                allowed: false,
                because: None,
            },
        }
    }

    /// Human-readable explanation of a check — the paper's demand that
    /// "access rights are both visible and easy to understand".
    pub fn explain(&self, subject: Subject, path: &ObjectPath, needed: Rights) -> String {
        let d = self.check(subject, path, needed);
        match (&d.because, d.allowed) {
            (Some(rule), true) => format!(
                "{subject} may {needed} on {path}: {} grants {} at '{}'",
                rule.role, rule.rights, rule.path
            ),
            (Some(rule), false) => format!(
                "{subject} may NOT {needed} on {path}: {} {} {} at '{}'",
                rule.role,
                match rule.effect {
                    Effect::Deny => "denies",
                    Effect::Allow => "only grants",
                },
                rule.rights,
                rule.path
            ),
            (None, _) => {
                format!("{subject} may NOT {needed} on {path}: no applicable rule (default deny)")
            }
        }
    }

    /// Total rules in the policy.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RbacPolicy {
        let mut p = RbacPolicy::new();
        // role 1 = author, role 2 = reviewer, role 3 = editor-in-chief.
        p.add_rule(
            RoleId(1),
            "report".into(),
            Rights::READ | Rights::WRITE,
            Effect::Allow,
        );
        p.add_rule(
            RoleId(2),
            "report".into(),
            Rights::READ | Rights::ANNOTATE,
            Effect::Allow,
        );
        p.add_rule(
            RoleId(1),
            "report/reviews".into(),
            Rights::WRITE,
            Effect::Deny,
        );
        p.add_rule(RoleId(3), "report".into(), Rights::ALL, Effect::Allow);
        p.add_inheritance(RoleId(3), RoleId(1));
        p
    }

    #[test]
    fn roles_grant_rights() {
        let mut p = policy();
        p.assign(Subject(1), RoleId(1));
        assert!(
            p.check(Subject(1), &"report/sec1/para2".into(), Rights::WRITE)
                .allowed
        );
        assert!(
            !p.check(Subject(1), &"report/sec1".into(), Rights::DELETE)
                .allowed
        );
        assert!(
            !p.check(Subject(2), &"report/sec1".into(), Rights::READ)
                .allowed,
            "no role, default deny"
        );
    }

    #[test]
    fn deeper_deny_beats_shallower_allow() {
        let mut p = policy();
        p.assign(Subject(1), RoleId(1));
        assert!(
            p.check(Subject(1), &"report/sec1".into(), Rights::WRITE)
                .allowed
        );
        assert!(
            !p.check(Subject(1), &"report/reviews/r1".into(), Rights::WRITE)
                .allowed
        );
        // Reads in the denied subtree are still fine (deny only names WRITE).
        assert!(
            p.check(Subject(1), &"report/reviews/r1".into(), Rights::READ)
                .allowed
        );
    }

    #[test]
    fn deny_beats_allow_at_equal_depth() {
        let mut p = RbacPolicy::new();
        p.add_rule(RoleId(1), "doc".into(), Rights::WRITE, Effect::Allow);
        p.add_rule(RoleId(2), "doc".into(), Rights::WRITE, Effect::Deny);
        p.assign(Subject(1), RoleId(1));
        p.assign(Subject(1), RoleId(2));
        assert!(!p.check(Subject(1), &"doc/x".into(), Rights::WRITE).allowed);
    }

    #[test]
    fn dynamic_role_change_is_immediate() {
        let mut p = policy();
        let path: ObjectPath = "report/sec1".into();
        assert!(!p.check(Subject(9), &path, Rights::WRITE).allowed);
        p.assign(Subject(9), RoleId(1));
        assert!(p.check(Subject(9), &path, Rights::WRITE).allowed);
        p.unassign(Subject(9), RoleId(1));
        assert!(!p.check(Subject(9), &path, Rights::WRITE).allowed);
        assert_eq!(p.role_changes(), 2);
    }

    #[test]
    fn inheritance_carries_junior_permissions() {
        let mut p = policy();
        p.assign(Subject(3), RoleId(3)); // editor-in-chief inherits author
        assert!(p.effective_roles(Subject(3)).contains(&RoleId(1)));
        // But the author's deny at report/reviews is overridden by the
        // chief's own ALL at 'report'? No: deeper path wins regardless of
        // which role it came from.
        assert!(
            !p.check(Subject(3), &"report/reviews/r1".into(), Rights::WRITE)
                .allowed
        );
        assert!(
            p.check(Subject(3), &"report/sec1".into(), Rights::DELETE)
                .allowed
        );
    }

    #[test]
    fn fine_grained_line_level_rules() {
        let mut p = RbacPolicy::new();
        p.add_rule(RoleId(1), "doc".into(), Rights::READ, Effect::Allow);
        p.add_rule(
            RoleId(1),
            "doc/para3/line14".into(),
            Rights::WRITE,
            Effect::Allow,
        );
        p.assign(Subject(1), RoleId(1));
        assert!(
            p.check(Subject(1), &"doc/para3/line14".into(), Rights::WRITE)
                .allowed
        );
        assert!(
            !p.check(Subject(1), &"doc/para3/line15".into(), Rights::WRITE)
                .allowed
        );
    }

    #[test]
    fn explain_names_the_deciding_rule() {
        let mut p = policy();
        p.assign(Subject(1), RoleId(1));
        let why = p.explain(Subject(1), &"report/reviews/r1".into(), Rights::WRITE);
        assert!(why.contains("NOT"), "{why}");
        assert!(why.contains("report/reviews"), "{why}");
        let why_ok = p.explain(Subject(1), &"report/sec1".into(), Rights::WRITE);
        assert!(why_ok.contains("grants"), "{why_ok}");
        let why_none = p.explain(Subject(42), &"report".into(), Rights::READ);
        assert!(why_none.contains("default deny"), "{why_none}");
    }

    #[test]
    fn object_path_normalisation_and_covers() {
        let p = ObjectPath::new("/a//b/c/");
        assert_eq!(p.as_str(), "a/b/c");
        assert_eq!(p.depth(), 3);
        assert!(ObjectPath::new("a/b").covers(&p));
        assert!(!ObjectPath::new("a/bc").covers(&p));
        assert!(ObjectPath::new("").covers(&p), "root covers all");
        assert_eq!(p.parent().unwrap().as_str(), "a/b");
        assert_eq!(ObjectPath::new("a").parent(), None);
    }

    #[test]
    fn empty_rights_check_is_vacuously_true() {
        let p = RbacPolicy::new();
        assert!(p.check(Subject(0), &"x".into(), Rights::NONE).allowed);
    }
}
