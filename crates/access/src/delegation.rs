//! Capability delegation with attenuation.
//!
//! The classic capability model lets holders pass rights onward; in a
//! CSCW setting this is how ad-hoc task handover works ("the process of
//! allocating tasks amongst individuals can be very flexible", §2.2)
//! without a central administrator. Two invariants make it safe:
//!
//! 1. **Grant gating** — only a holder whose capability carries
//!    [`Rights::GRANT`] may delegate;
//! 2. **Attenuation** — a delegate never receives more rights than the
//!    delegator holds (minus `GRANT` itself unless explicitly passed).
//!
//! The chain of [`Delegation`] hops records how a capability was derived
//! so a verifier can audit it, and revocation of any hop severs
//! everything derived from it.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::matrix::{Capability, Protected, Subject};
use crate::rights::Rights;

/// One hop in a delegation chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delegation {
    /// Who delegated.
    pub from: Subject,
    /// Who received.
    pub to: Subject,
    /// The rights passed on.
    pub rights: Rights,
}

/// Identifies an issued (possibly derived) capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GrantId(pub u64);

/// Errors from delegation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DelegationError {
    /// The delegator holds no live capability for the object.
    NotAHolder(Subject, Protected),
    /// The delegator's capability lacks [`Rights::GRANT`].
    NoGrantRight(Subject),
    /// The delegation asks for rights the delegator does not hold.
    Amplification {
        /// What was asked.
        asked: Rights,
        /// What the delegator holds.
        held: Rights,
    },
    /// Unknown grant id.
    UnknownGrant(GrantId),
}

impl fmt::Display for DelegationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelegationError::NotAHolder(s, o) => write!(f, "{s} holds no capability for {o}"),
            DelegationError::NoGrantRight(s) => write!(f, "{s} may not delegate (no grant right)"),
            DelegationError::Amplification { asked, held } => {
                write!(
                    f,
                    "delegation would amplify rights: asked {asked}, held {held}"
                )
            }
            DelegationError::UnknownGrant(g) => write!(f, "unknown grant {}", g.0),
        }
    }
}

impl std::error::Error for DelegationError {}

#[derive(Debug, Clone)]
struct Grant {
    holder: Subject,
    capability: Capability,
    /// The grant this one was derived from (None for root grants).
    parent: Option<GrantId>,
    revoked: bool,
}

/// The delegation registry: issues root capabilities, validates and
/// records delegations, answers authorisation queries, and revokes
/// subtrees.
///
/// # Examples
///
/// ```
/// use odp_access::delegation::DelegationRegistry;
/// use odp_access::matrix::{Protected, Subject};
/// use odp_access::rights::Rights;
///
/// let mut reg = DelegationRegistry::new();
/// let root = reg.issue_root(Subject(0), Protected(1), Rights::ALL);
/// let derived = reg.delegate(root, Subject(1), Rights::READ | Rights::WRITE)?;
/// assert!(reg.authorised(Subject(1), Protected(1), Rights::WRITE));
/// reg.revoke(root)?;
/// assert!(!reg.authorised(Subject(1), Protected(1), Rights::WRITE));
/// # let _ = derived;
/// # Ok::<(), odp_access::delegation::DelegationError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DelegationRegistry {
    grants: BTreeMap<GrantId, Grant>,
    next: u64,
}

impl DelegationRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        DelegationRegistry::default()
    }

    /// Issues a root capability (e.g. to an object's creator).
    pub fn issue_root(&mut self, holder: Subject, object: Protected, rights: Rights) -> GrantId {
        let id = GrantId(self.next);
        self.next += 1;
        self.grants.insert(
            id,
            Grant {
                holder,
                capability: Capability { object, rights },
                parent: None,
                revoked: false,
            },
        );
        id
    }

    /// Delegates from an existing grant: checks grant gating and
    /// attenuation, then issues the derived grant.
    ///
    /// # Errors
    ///
    /// See [`DelegationError`].
    pub fn delegate(
        &mut self,
        from: GrantId,
        to: Subject,
        rights: Rights,
    ) -> Result<GrantId, DelegationError> {
        let parent = self
            .grants
            .get(&from)
            .ok_or(DelegationError::UnknownGrant(from))?
            .clone();
        if self.effectively_revoked(from) {
            return Err(DelegationError::NotAHolder(
                parent.holder,
                parent.capability.object,
            ));
        }
        if !parent.capability.rights.contains(Rights::GRANT) {
            return Err(DelegationError::NoGrantRight(parent.holder));
        }
        if !parent.capability.rights.contains(rights) {
            return Err(DelegationError::Amplification {
                asked: rights,
                held: parent.capability.rights,
            });
        }
        let id = GrantId(self.next);
        self.next += 1;
        self.grants.insert(
            id,
            Grant {
                holder: to,
                capability: Capability {
                    object: parent.capability.object,
                    rights,
                },
                parent: Some(from),
                revoked: false,
            },
        );
        Ok(id)
    }

    /// True if the grant, or any ancestor, was revoked.
    fn effectively_revoked(&self, id: GrantId) -> bool {
        let mut cursor = Some(id);
        while let Some(g) = cursor {
            match self.grants.get(&g) {
                Some(grant) if grant.revoked => return true,
                Some(grant) => cursor = grant.parent,
                None => return true,
            }
        }
        false
    }

    /// Revokes a grant; everything derived from it dies with it.
    ///
    /// # Errors
    ///
    /// [`DelegationError::UnknownGrant`] if absent.
    pub fn revoke(&mut self, id: GrantId) -> Result<(), DelegationError> {
        self.grants
            .get_mut(&id)
            .map(|g| g.revoked = true)
            .ok_or(DelegationError::UnknownGrant(id))
    }

    /// True if `who` holds a live grant authorising `needed` on `object`.
    pub fn authorised(&self, who: Subject, object: Protected, needed: Rights) -> bool {
        self.grants.iter().any(|(&id, g)| {
            g.holder == who
                && g.capability.authorises(object, needed)
                && !self.effectively_revoked(id)
        })
    }

    /// The delegation chain from the root down to `id`, for audit.
    ///
    /// # Errors
    ///
    /// [`DelegationError::UnknownGrant`] if absent.
    pub fn chain(&self, id: GrantId) -> Result<Vec<Delegation>, DelegationError> {
        let mut hops = Vec::new();
        let mut cursor = Some(id);
        while let Some(g) = cursor {
            let grant = self
                .grants
                .get(&g)
                .ok_or(DelegationError::UnknownGrant(g))?;
            if let Some(parent_id) = grant.parent {
                let parent = self
                    .grants
                    .get(&parent_id)
                    .ok_or(DelegationError::UnknownGrant(parent_id))?;
                hops.push(Delegation {
                    from: parent.holder,
                    to: grant.holder,
                    rights: grant.capability.rights,
                });
            }
            cursor = grant.parent;
        }
        hops.reverse();
        Ok(hops)
    }

    /// Live grants held by a subject.
    pub fn grants_of(&self, who: Subject) -> Vec<(GrantId, Capability)> {
        self.grants
            .iter()
            .filter(|(&id, g)| g.holder == who && !self.effectively_revoked(id))
            .map(|(&id, g)| (id, g.capability))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: Protected = Protected(7);

    #[test]
    fn root_and_derived_grants_authorise() {
        let mut reg = DelegationRegistry::new();
        let root = reg.issue_root(Subject(0), DOC, Rights::ALL);
        let child = reg
            .delegate(root, Subject(1), Rights::READ | Rights::WRITE)
            .unwrap();
        assert!(reg.authorised(Subject(0), DOC, Rights::DELETE));
        assert!(reg.authorised(Subject(1), DOC, Rights::WRITE));
        assert!(
            !reg.authorised(Subject(1), DOC, Rights::DELETE),
            "attenuated"
        );
        let chain = reg.chain(child).unwrap();
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].from, Subject(0));
    }

    #[test]
    fn delegation_requires_the_grant_right() {
        let mut reg = DelegationRegistry::new();
        let root = reg.issue_root(Subject(0), DOC, Rights::ALL);
        // Child receives no GRANT right: it cannot re-delegate.
        let child = reg.delegate(root, Subject(1), Rights::READ).unwrap();
        assert_eq!(
            reg.delegate(child, Subject(2), Rights::READ).unwrap_err(),
            DelegationError::NoGrantRight(Subject(1))
        );
        // With GRANT passed explicitly, re-delegation works.
        let child2 = reg
            .delegate(root, Subject(1), Rights::READ | Rights::GRANT)
            .unwrap();
        assert!(reg.delegate(child2, Subject(2), Rights::READ).is_ok());
    }

    #[test]
    fn amplification_is_rejected() {
        let mut reg = DelegationRegistry::new();
        let root = reg.issue_root(Subject(0), DOC, Rights::READ | Rights::GRANT);
        assert!(matches!(
            reg.delegate(root, Subject(1), Rights::WRITE),
            Err(DelegationError::Amplification { .. })
        ));
    }

    #[test]
    fn revocation_severs_the_subtree() {
        let mut reg = DelegationRegistry::new();
        let root = reg.issue_root(Subject(0), DOC, Rights::ALL);
        let a = reg
            .delegate(root, Subject(1), Rights::READ | Rights::GRANT)
            .unwrap();
        let b = reg.delegate(a, Subject(2), Rights::READ).unwrap();
        assert!(reg.authorised(Subject(2), DOC, Rights::READ));
        reg.revoke(a).unwrap();
        assert!(!reg.authorised(Subject(1), DOC, Rights::READ));
        assert!(
            !reg.authorised(Subject(2), DOC, Rights::READ),
            "derived grant dies"
        );
        // The root is untouched.
        assert!(reg.authorised(Subject(0), DOC, Rights::ALL));
        // Delegating from a revoked grant fails.
        assert!(reg.delegate(b, Subject(3), Rights::READ).is_err());
    }

    #[test]
    fn chains_audit_multi_hop_handover() {
        let mut reg = DelegationRegistry::new();
        let root = reg.issue_root(Subject(0), DOC, Rights::ALL);
        let a = reg
            .delegate(
                root,
                Subject(1),
                Rights::READ | Rights::WRITE | Rights::GRANT,
            )
            .unwrap();
        let b = reg
            .delegate(a, Subject(2), Rights::READ | Rights::GRANT)
            .unwrap();
        let c = reg.delegate(b, Subject(3), Rights::READ).unwrap();
        let chain = reg.chain(c).unwrap();
        let parties: Vec<(u32, u32)> = chain.iter().map(|d| (d.from.0, d.to.0)).collect();
        assert_eq!(parties, vec![(0, 1), (1, 2), (2, 3)]);
        // Rights attenuate monotonically along the chain.
        for pair in chain.windows(2) {
            assert!(pair[0].rights.contains(pair[1].rights - Rights::GRANT));
        }
    }

    #[test]
    fn unknown_grants_error() {
        let mut reg = DelegationRegistry::new();
        assert!(reg.revoke(GrantId(9)).is_err());
        assert!(reg.chain(GrantId(9)).is_err());
        assert!(reg.delegate(GrantId(9), Subject(1), Rights::READ).is_err());
    }

    #[test]
    fn grants_of_lists_only_live_grants() {
        let mut reg = DelegationRegistry::new();
        let root = reg.issue_root(Subject(0), DOC, Rights::ALL);
        let a = reg.delegate(root, Subject(1), Rights::READ).unwrap();
        assert_eq!(reg.grants_of(Subject(1)).len(), 1);
        reg.revoke(a).unwrap();
        assert!(reg.grants_of(Subject(1)).is_empty());
    }
}
