//! Federation planner integration suite: scope-prefix edge cases
//! (empty-prefix links, nested prefixes, diamond exclusion) and the
//! planner-vs-flood cross-domain message economics on a topology the
//! `trader_lookup` bench mirrors.

use odp_access::rights::Rights;
use odp_sim::net::{LinkQos, NodeId};
use odp_sim::time::SimDuration;
use odp_trader::prelude::*;

fn store_with(trader: u32, offers: &[(&str, u32)]) -> ShardedStore {
    let mut s = ShardedStore::new([NodeId(trader)]);
    for (name, node) in offers {
        s.export(ServiceOffer::session(
            ServiceType::new(*name),
            SessionKind::Conference,
            QosSpec::video(),
            NodeId(*node),
        ))
        .unwrap();
    }
    s
}

fn penalty_ms(lat: u64) -> LinkQos {
    LinkQos::new(SimDuration::from_millis(lat), SimDuration::ZERO, 0.0)
}

/// A hub-and-spoke federation: the hub links to four gateway domains
/// under disjoint scope prefixes, and each gateway links on (scope "")
/// to two leaf domains. Only the `conference/` arm can reach the wanted
/// offer, which lives in the *second* leaf behind that gateway.
fn campus_federation() -> (Federation, DomainId) {
    let hub = DomainId(0);
    let mut fed = Federation::new();
    fed.add_domain(hub, store_with(1, &[]));
    let scopes = ["audio/", "video/", "workspace/", "conference/"];
    for (i, scope) in scopes.iter().enumerate() {
        let gw = DomainId(10 + i as u32);
        fed.add_domain(gw, store_with(100 + i as u32, &[]));
        fed.link_via(hub, gw, *scope, Rights::NONE, penalty_ms(10));
        for leaf_n in 0..2u32 {
            let leaf = DomainId(20 + 2 * i as u32 + leaf_n);
            let offers: &[(&str, u32)] = if *scope == "conference/" && leaf_n == 1 {
                &[("conference/room-7", 77)]
            } else {
                &[]
            };
            fed.add_domain(leaf, store_with(200 + 2 * i as u32 + leaf_n, offers));
            fed.link_via(gw, leaf, "", Rights::NONE, penalty_ms(5 + leaf_n as u64));
        }
    }
    (fed, hub)
}

fn room7() -> ImportRequest {
    ImportRequest::for_type(ServiceType::new("conference/room-7"))
        .qos(QosSpec::video())
        .max_hops(3)
}

#[test]
fn empty_prefix_links_never_narrow() {
    let mut fed = Federation::new();
    fed.add_domain(DomainId(0), store_with(1, &[]));
    fed.add_domain(DomainId(1), store_with(2, &[]));
    fed.add_domain(DomainId(2), store_with(3, &[("anything/at/all", 9)]));
    fed.link(DomainId(0), DomainId(1), "", Rights::NONE);
    fed.link(DomainId(1), DomainId(2), "", Rights::NONE);
    let r = fed
        .resolve(
            DomainId(0),
            &ImportRequest::for_type(ServiceType::new("anything/at/all")),
            None,
        )
        .unwrap();
    assert_eq!(
        r.narrowed_scope,
        Scope::all(),
        "two unrestricted links leave the scope unrestricted"
    );
    assert_eq!(r.hops, 2);
}

#[test]
fn nested_prefixes_narrow_to_the_longest() {
    // video/ then video/hd/ then "": the path scope is video/hd/ the
    // whole way after the second link, regardless of later wider links.
    let mut fed = Federation::new();
    fed.add_domain(DomainId(0), store_with(1, &[]));
    fed.add_domain(DomainId(1), store_with(2, &[]));
    fed.add_domain(DomainId(2), store_with(3, &[]));
    fed.add_domain(DomainId(3), store_with(4, &[("video/hd/tour", 9)]));
    fed.link(DomainId(0), DomainId(1), "video/", Rights::NONE);
    fed.link(DomainId(1), DomainId(2), "video/hd/", Rights::NONE);
    fed.link(DomainId(2), DomainId(3), "", Rights::NONE);
    let r = fed
        .resolve(
            DomainId(0),
            &ImportRequest::for_type(ServiceType::new("video/hd/tour")),
            None,
        )
        .unwrap();
    assert_eq!(r.narrowed_scope, Scope::prefix("video/hd/"));

    // A plain video/ type is admitted by the first link but excluded
    // the moment the path would narrow to video/hd/: the link into
    // domain 2 is pruned even though domain 2 holds the type, and the
    // bar is reported as AccessDenied, not scarcity.
    fed.domain_mut(DomainId(2))
        .unwrap()
        .export(ServiceOffer::session(
            ServiceType::new("video/conference"),
            SessionKind::Conference,
            QosSpec::video(),
            NodeId(10),
        ))
        .unwrap();
    let err = fed
        .resolve(
            DomainId(0),
            &ImportRequest::for_type(ServiceType::new("video/conference")),
            None,
        )
        .unwrap_err();
    assert_eq!(err, TraderError::AccessDenied);
}

#[test]
fn diamond_exclusion_takes_the_admitting_arm() {
    // One arm narrows to exclusion (workspace/ ∩ video/ = nothing),
    // the other admits; the planner must find the offer via the
    // admitting arm and never query the excluded one.
    let mut fed = Federation::new();
    fed.add_domain(DomainId(0), store_with(1, &[]));
    fed.add_domain(DomainId(1), store_with(2, &[]));
    fed.add_domain(DomainId(2), store_with(3, &[]));
    fed.add_domain(DomainId(3), store_with(4, &[("video/conference", 9)]));
    fed.link_via(
        DomainId(0),
        DomainId(1),
        "workspace/",
        Rights::NONE,
        penalty_ms(1),
    );
    fed.link_via(
        DomainId(0),
        DomainId(2),
        "video/",
        Rights::NONE,
        penalty_ms(50),
    );
    fed.link_via(
        DomainId(1),
        DomainId(3),
        "video/",
        Rights::NONE,
        penalty_ms(1),
    );
    fed.link_via(DomainId(2), DomainId(3), "", Rights::NONE, penalty_ms(50));
    let r = fed
        .resolve(
            DomainId(0),
            &ImportRequest::for_type(ServiceType::new("video/conference")).qos(QosSpec::video()),
            None,
        )
        .unwrap();
    assert_eq!(
        r.path,
        vec![DomainId(0), DomainId(2), DomainId(3)],
        "only the video/ arm admits the type, despite costing 100x"
    );
    assert_eq!(r.narrowed_scope, Scope::prefix("video/"));
    assert_eq!(r.domains_queried, 2, "the workspace/ arm is never queried");
}

#[test]
fn planner_prunes_where_flood_pays() {
    // The acceptance-criteria topology (mirrored by the federated
    // trader_lookup bench rows): scope pruning at the hub cuts the
    // whole non-conference arms — 9 of 12 remote domains are never
    // sent a lookup.
    let (mut fed, hub) = campus_federation();
    let planned = fed.resolve(hub, &room7(), None).unwrap();
    let flooded = fed.resolve(hub, &room7().narrowing(false), None).unwrap();
    assert_eq!(planned.matched.offer, flooded.matched.offer);
    assert_eq!(planned.matched.offer.node, NodeId(77));
    assert_eq!(
        planned.domains_queried, 3,
        "conference gateway + its two leaves"
    );
    assert_eq!(
        flooded.domains_queried, 12,
        "eager forwarding consults every reachable domain"
    );
    assert!(planned.domains_queried < flooded.domains_queried);
    assert_eq!(
        planned.penalty,
        penalty_ms(16),
        "hub→gw (10) + gw→leaf1 (6)"
    );
}

#[test]
fn resolutions_cache_under_their_narrowed_scope() {
    use odp_sim::time::SimTime;
    let (mut fed, hub) = campus_federation();
    let r = fed.resolve(hub, &room7(), None).unwrap();
    let mut cache = LookupCache::new(SimDuration::from_secs(60));
    cache.put_scoped(
        r.matched.offer.service_type.clone(),
        r.narrowed_scope.clone(),
        vec![r.matched.offer.clone()],
        SimTime::ZERO,
    );
    // A caller resolving under the narrowed scope hits; an
    // unrestricted (local) caller must not be served the cross-link
    // resolution.
    let t = ServiceType::new("conference/room-7");
    assert!(cache
        .get_scoped(&t, &Scope::prefix("conference/"), SimTime::ZERO)
        .is_some());
    assert!(cache.get(&t, SimTime::ZERO).is_none());
}
