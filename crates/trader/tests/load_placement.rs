//! Trader → management integration: the sharded store's lookup-load
//! report feeds `odp_mgmt::placement` so management can co-locate
//! replicas (or the trader database itself) with trading hot spots.

use odp_mgmt::placement::{place, PlacementPolicy};
use odp_sim::net::NodeId;
use odp_sim::time::SimDuration;
use odp_streams::qos::QosSpec;
use odp_trader::offer::{ServiceOffer, ServiceType, SessionKind};
use odp_trader::store::ShardedStore;

#[test]
fn placement_follows_trader_lookup_load() {
    let traders = [NodeId(0), NodeId(1), NodeId(2)];
    let mut store = ShardedStore::new(traders);

    // Find two types living on different shards so we can skew load.
    let mut types = (0..)
        .map(|i| ServiceType::new(format!("svc/kind-{i}")))
        .filter(|t| store.shard_for(t).is_some());
    let hot = types.next().unwrap();
    let cold = types
        .find(|t| store.shard_for(t) != store.shard_for(&hot))
        .unwrap();
    let hot_shard = store.shard_for(&hot).unwrap();

    for (st, node) in [(&hot, 10), (&cold, 11)] {
        store
            .export(ServiceOffer::session(
                st.clone(),
                SessionKind::Workspace,
                QosSpec::audio(),
                NodeId(node),
            ))
            .unwrap();
    }

    // 50 lookups against the hot type, 2 against the cold one.
    for _ in 0..50 {
        store.offers_of_type(&hot);
    }
    for _ in 0..2 {
        store.offers_of_type(&cold);
    }

    let usage = store.usage_pattern();
    assert_eq!(usage.total(), 52);
    assert_eq!(usage.count(hot_shard), 50);

    // Management places a shared object among the trader nodes using
    // the trader's own load report: group-mean placement must follow
    // the lookup traffic to the hot shard.
    let latency = |a: NodeId, b: NodeId| {
        if a == b {
            SimDuration::ZERO
        } else {
            SimDuration::from_millis(10)
        }
    };
    let placement = place(
        PlacementPolicy::GroupMean,
        &usage,
        &traders,
        NodeId(2),
        &latency,
    );
    assert_eq!(placement.node, hot_shard);

    // The naive baseline ignores the report and stays home.
    let home = place(
        PlacementPolicy::StaticHome,
        &usage,
        &traders,
        NodeId(2),
        &latency,
    );
    assert_eq!(home.node, NodeId(2));
}
